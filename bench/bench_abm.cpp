// bench_abm — ablation: LET-push vs ABM request-driven traversal.
//
// The paper's production code hides latency with request-driven traversal
// over asynchronous batched messages; many later codes instead push locally
// essential trees (LET) eagerly. hotlib implements both on the same tree
// (gravity::parallel_tree_forces vs gravity::abm_tree_forces); this harness
// compares their interaction counts, imported data volumes and message
// counts on the same problem, and reports the modelled time on Loki's
// fast-ethernet network for each.
//
// Expected shape: ABM imports far less data (only what each sink group's
// MAC actually opens) at the cost of request round trips; batching keeps the
// message count small, so on a high-latency network ABM's modelled comm time
// stays competitive while its evaluation cost (interactions) is strictly
// lower than the conservative LET import.
#include <cstdio>

#include "gravity/abm_forces.hpp"
#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

int main() {
  telemetry::Session session("abm");
  std::printf("=== Ablation: LET push vs ABM request-driven traversal ===\n\n");

  const std::size_t n = telemetry::tiny_run() ? 1500 : 20000;
  auto all = gravity::plummer_sphere(n, 1997);
  const auto domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = 0.02};
  const auto loki_net = simnet::loki().net;

  TextTable t({"pipeline", "ranks", "interactions", "bytes moved", "messages",
               "host s", "modelled Loki comm s"});

  for (int p : {4, 8}) {
    // LET push.
    {
      WallTimer w;
      std::uint64_t ints = 0, bytes = 0, msgs = 0;
      double vtime = 0;
      const auto stats = parc::Runtime::run(
          p,
          [&](parc::Rank& r) {
            hot::Bodies local;
            for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n;
                 i += static_cast<std::size_t>(p))
              local.append_from(all, i);
            const auto res = gravity::parallel_tree_forces(r, local, domain, cfg);
            const auto total = r.allreduce(res.tally.interactions(), parc::Sum{});
            if (r.rank() == 0) ints = total;
          },
          loki_net);
      bytes = stats.bytes;
      msgs = stats.messages;
      vtime = stats.max_vclock;
      t.add_row({"LET push", TextTable::integer(p),
                 TextTable::integer(static_cast<long long>(ints)),
                 TextTable::integer(static_cast<long long>(bytes)),
                 TextTable::integer(static_cast<long long>(msgs)),
                 TextTable::num(w.seconds(), 2), TextTable::num(vtime, 3)});
    }
    // ABM request-driven.
    {
      WallTimer w;
      std::uint64_t ints = 0, bytes = 0, msgs = 0;
      double vtime = 0;
      std::uint64_t requests = 0, crown = 0;
      const auto stats = parc::Runtime::run(
          p,
          [&](parc::Rank& r) {
            hot::Bodies local;
            for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n;
                 i += static_cast<std::size_t>(p))
              local.append_from(all, i);
            const auto res = gravity::abm_tree_forces(r, local, domain, cfg);
            const auto total = r.allreduce(res.tally.interactions(), parc::Sum{});
            const auto reqs = r.allreduce(res.traversal.requests_sent, parc::Sum{});
            if (r.rank() == 0) {
              ints = total;
              requests = reqs;
              crown = res.traversal.crown_cells;
            }
          },
          loki_net);
      bytes = stats.bytes;
      msgs = stats.messages;
      vtime = stats.max_vclock;
      t.add_row({"ABM requests", TextTable::integer(p),
                 TextTable::integer(static_cast<long long>(ints)),
                 TextTable::integer(static_cast<long long>(bytes)),
                 TextTable::integer(static_cast<long long>(msgs)),
                 TextTable::num(w.seconds(), 2), TextTable::num(vtime, 3)});
      if (p == 8) session.set_modelled_seconds(vtime);
      std::printf("  (p=%d: %llu key requests, %llu replicated crown cells)\n", p,
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(crown));
    }
  }
  std::printf("\n%s\n", t.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "Shape checks: ABM evaluates fewer interactions (no conservative import\n"
      "applied to every sink) and both keep message counts tiny relative to the\n"
      "cell traffic thanks to batching; the LET bytes grow with rank count while\n"
      "ABM traffic tracks what traversals actually open.\n");
  return 0;
}
