// bench_accuracy — the force-accuracy claims and the MAC/multipole design
// ablations.
//
// Paper claims: "we can update 3 million particles per second ... with an
// RMS force accuracy of better than 1e-3", and "the force errors are
// exceeded by or are comparable to the time integration error".
//
// This harness sweeps (a) the Barnes-Hut opening parameter, (b) the
// Salmon-Warren absolute-error bound, (c) monopole vs quadrupole expansions
// and (d) the leaf bucket size — printing RMS relative force error against
// the exact O(N^2) sum next to the interaction cost, so the cost/accuracy
// frontier and the 1e-3 operating point are visible.
#include <cstdio>

#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/models.hpp"
#include "hot/hot.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace hotlib;

namespace {

struct Measurement {
  double rms_rel = 0;
  double max_rel = 0;
  std::uint64_t interactions = 0;
  std::uint64_t mac_tests = 0;
};

Measurement measure(const hot::Bodies& bodies, const std::vector<Vec3d>& ref_acc,
                    double ref_rms, const hot::Mac& mac, int bucket) {
  hot::Bodies b = bodies;
  hot::Tree tree;
  tree.build(b.pos, b.mass, gravity::fit_domain(b), {.bucket_size = bucket});
  gravity::TreeForceConfig cfg{.mac = mac, .softening = 0.02};
  b.clear_forces();
  const auto tally = gravity::tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
  RunningStats err;
  double worst = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double e = norm(b.acc[i] - ref_acc[i]);
    err.add(e);
    worst = std::max(worst, e / (norm(ref_acc[i]) + 1e-30));
  }
  return {err.rms() / ref_rms, worst, tally.interactions(), tally.mac_tests};
}

}  // namespace

int main() {
  telemetry::Session session("accuracy");
  std::printf("=== Force accuracy & MAC ablations (paper: RMS error better than 1e-3) ===\n\n");
  const std::size_t n = telemetry::tiny_run() ? 500 : 4000;
  const auto bodies = gravity::plummer_sphere(n, 1234);
  std::vector<Vec3d> ref_acc(n);
  std::vector<double> ref_pot(n);
  gravity::direct_forces(bodies.pos, bodies.mass, 0.02, 1.0, ref_acc, ref_pot);
  RunningStats mag;
  for (const auto& a : ref_acc) mag.add(norm(a));
  const double ref_rms = mag.rms();
  const double nsq = static_cast<double>(n) * (n - 1);

  // (a) Barnes-Hut theta sweep (bmax/d convention), quadrupole on.
  TextTable bh({"theta", "RMS rel err", "max rel err", "ints/particle", "vs N^2"});
  for (double theta : {1.0, 0.8, 0.6, 0.45, 0.35, 0.25, 0.15}) {
    const auto m = measure(bodies, ref_acc, ref_rms, hot::Mac{.theta = theta}, 16);
    if (theta == 0.35) session.metric("rms_rel_err_theta035", m.rms_rel);
    bh.add_row({TextTable::num(theta, 2), TextTable::num(m.rms_rel * 1e3, 3) + "e-3",
                TextTable::num(m.max_rel * 1e3, 2) + "e-3",
                TextTable::num(static_cast<double>(m.interactions) / n, 0),
                TextTable::num(100.0 * m.interactions / nsq, 1) + "%"});
  }
  std::printf("(a) Barnes-Hut MAC sweep (quadrupole):\n%s\n", bh.to_string().c_str());
  telemetry::sample_now();

  // (b) Salmon-Warren absolute error MAC.
  TextTable sw({"eps_abs", "RMS rel err", "ints/particle"});
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    const auto m = measure(
        bodies, ref_acc, ref_rms,
        hot::Mac{.type = hot::MacType::SalmonWarren, .eps_abs = eps}, 16);
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", eps);
    sw.add_row({label, TextTable::num(m.rms_rel * 1e3, 3) + "e-3",
                TextTable::num(static_cast<double>(m.interactions) / n, 0)});
  }
  std::printf("(b) Salmon-Warren error MAC sweep:\n%s\n", sw.to_string().c_str());
  telemetry::sample_now();

  // (c) Monopole vs quadrupole at equal theta (the paper's expansion order).
  TextTable order({"expansion", "RMS rel err", "ints/particle"});
  for (bool quad : {false, true}) {
    const auto m = measure(bodies, ref_acc, ref_rms,
                           hot::Mac{.theta = 0.45, .quadrupole = quad}, 16);
    order.add_row({quad ? "monopole+quadrupole" : "monopole only",
                   TextTable::num(m.rms_rel * 1e3, 3) + "e-3",
                   TextTable::num(static_cast<double>(m.interactions) / n, 0)});
  }
  std::printf("(c) Expansion order at theta=0.45:\n%s\n", order.to_string().c_str());
  telemetry::sample_now();

  // (d) Bucket size ablation: direct work vs traversal overhead.
  TextTable bucket({"bucket", "ints/particle", "MAC tests/particle", "RMS rel err"});
  for (int bsz : {1, 4, 8, 16, 32, 64, 128}) {
    const auto m = measure(bodies, ref_acc, ref_rms, hot::Mac{.theta = 0.35}, bsz);
    bucket.add_row({TextTable::integer(bsz),
                    TextTable::num(static_cast<double>(m.interactions) / n, 0),
                    TextTable::num(static_cast<double>(m.mac_tests) / n, 0),
                    TextTable::num(m.rms_rel * 1e3, 3) + "e-3"});
  }
  std::printf("(d) Leaf bucket size (theta=0.35):\n%s\n", bucket.to_string().c_str());
  telemetry::sample_now();

  std::printf(
      "Shape checks: error falls monotonically with theta (~theta^4 with\n"
      "quadrupoles) and with eps_abs; the paper's <1e-3 RMS operating point is\n"
      "reached near theta ~ 0.35 at a few hundred interactions per particle —\n"
      "a tiny fraction of the N^2 cost; larger buckets trade MAC tests for\n"
      "direct pair work at equal accuracy.\n");
  return 0;
}
