// bench_comm — the paper's network microbenchmarks (Section "Architecture")
// and the ABM batching ablation.
//
// Paper measurements:
//   ASCI Red: 290 MB/s uni-directional out of a node; 41/68 us round trip.
//   Loki:     11.5 MB/s per fast-ethernet port; 208 us round trip at MPI
//             level (55 us at hardware level).
//
// The harness measures the parc fabric itself (host numbers), then runs the
// same ping-pong and streaming patterns under the modelled Loki and ASCI Red
// network parameters, recovering the paper's measured values. A final
// section quantifies what the paper's "asynchronous batched messages" buy:
// message count with and without batching for a scatter of small requests.
#include <cstdio>

#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;
using namespace hotlib::parc;

namespace {

// Round-trip time of `reps` ping-pongs with `bytes` payloads; returns
// (host seconds, virtual seconds).
std::pair<double, double> ping_pong(std::size_t bytes, int reps, NetworkParams net) {
  WallTimer t;
  const RunStats stats = Runtime::run(
      2,
      [&](Rank& r) {
        std::vector<std::uint8_t> buf(bytes, 0x5A);
        for (int i = 0; i < reps; ++i) {
          if (r.rank() == 0) {
            r.send(1, 1, buf);
            (void)r.recv(1, 2);
          } else {
            (void)r.recv(0, 1);
            r.send(0, 2, buf);
          }
        }
      },
      net);
  return {t.seconds(), stats.max_vclock};
}

}  // namespace

int main() {
  telemetry::Session session("comm");
  std::printf("=== Network microbenchmarks (paper: Red 290 MB/s & 41-68 us RT; Loki 11.5 MB/s & 208 us RT) ===\n\n");

  const auto loki = simnet::loki();
  const auto red = simnet::asci_red_april97();
  const bool tiny = telemetry::tiny_run();

  // Latency: zero-byte ping-pong.
  {
    const int reps = tiny ? 100 : 2000;
    const auto [host_s, _] = ping_pong(1, reps, {});
    const auto [h1, loki_v] = ping_pong(1, reps, loki.net);
    const auto [h2, red_v] = ping_pong(1, reps, red.net);
    (void)h1;
    (void)h2;
    TextTable t({"fabric", "round-trip latency", "paper"});
    t.add_row({"parc (this host)", TextTable::num(host_s / reps * 1e6, 1) + " us", "-"});
    t.add_row({"Loki model", TextTable::num(loki_v / reps * 1e6, 1) + " us", "208 us"});
    t.add_row({"ASCI Red model", TextTable::num(red_v / reps * 1e6, 1) + " us",
               "41 us (co-processor mode)"});
    session.metric("loki_roundtrip_us", loki_v / reps * 1e6);
    std::printf("Ping-pong latency (1-byte messages):\n%s\n", t.to_string().c_str());
    telemetry::sample_now();
  }

  // Bandwidth: large-message streaming.
  {
    const std::size_t bytes = tiny ? (1 << 16) : (1 << 20);
    const int reps = tiny ? 4 : 20;
    const auto [host_s, _] = ping_pong(bytes, reps, {});
    const auto [h1, loki_v] = ping_pong(bytes, reps, loki.net);
    const auto [h2, red_v] = ping_pong(bytes, reps, red.net);
    (void)h1;
    (void)h2;
    const double moved = 2.0 * reps * static_cast<double>(bytes);
    TextTable t({"fabric", "bandwidth", "paper"});
    t.add_row({"parc (this host)",
               TextTable::num(moved / host_s / 1e6, 0) + " MB/s", "-"});
    t.add_row({"Loki model", TextTable::num(moved / loki_v / 1e6, 1) + " MB/s",
               "11.5 MB/s per port"});
    t.add_row({"ASCI Red model", TextTable::num(moved / red_v / 1e6, 0) + " MB/s",
               "290 MB/s"});
    std::printf("Streaming bandwidth (1 MiB messages):\n%s\n", t.to_string().c_str());
    telemetry::sample_now();
  }

  // ABM batching ablation: 10,000 scattered 16-byte requests from each rank.
  {
    TextTable t({"mode", "fabric messages", "modelled Loki seconds"});
    for (bool batched : {false, true}) {
      std::uint64_t messages = 0;
      const RunStats stats = Runtime::run(
          4,
          [&](Rank& r) {
            r.am_set_batch_limit(batched ? (1u << 16) : 1);
            const int h = r.am_register([](Rank&, int, std::span<const std::uint8_t>) {});
            hotlib::Xoshiro256ss rng(static_cast<std::uint64_t>(r.rank()) + 1);
            for (int i = 0; i < (tiny ? 500 : 10000); ++i) {
              const int dst = static_cast<int>(rng.next() % 4u);
              if (dst != r.rank()) r.am_post_value(dst, h, i);
            }
            r.am_quiesce();
            if (r.rank() == 0) messages = r.fabric().messages_delivered();
          },
          loki.net);
      t.add_row({batched ? "ABM batching (64 KiB)" : "one message per request",
                 TextTable::integer(static_cast<long long>(messages)),
                 TextTable::num(stats.max_vclock, 3)});
    }
    std::printf("Asynchronous batched messages (paper's ABM layer), 4 ranks x 10k requests:\n%s\n",
                t.to_string().c_str());
    telemetry::sample_now();
  }

  std::printf(
      "Shape checks: the modelled fabrics recover the paper's measured latency\n"
      "and bandwidth; batching collapses message counts by orders of magnitude,\n"
      "which on a 104-us-latency network is the difference between seconds and\n"
      "milliseconds of communication time — the reason the treecode hides\n"
      "latency with ABM 'context switching'.\n");
  return 0;
}
