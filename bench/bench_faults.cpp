// bench_faults — cost of reliability, and behaviour under injected faults.
//
// Two questions about the ABM retry/ack layer (ISSUE: fault-injecting fabric):
//
//  1. What does the sequence/ack/checksum machinery cost when the fabric is
//     clean? Reliable mode is forced on with no fault plan and compared
//     against raw mode on the same traversal; acceptance is <= 5% modelled
//     virtual-time overhead (the acks are small and ride the same mailboxes,
//     so they add messages but almost no serialisation or latency on the
//     critical path).
//
//  2. How does the pipeline degrade as the fault rate rises? A sweep of
//     drop+duplicate rates reports retransmits, fault counts and modelled
//     time. Forces stay bit-identical to the clean run at every rate the
//     retry budget can absorb — that invariant is enforced by test_faults;
//     here we report the price paid for it.
#include <cstdio>
#include <cstring>

#include "gravity/abm_forces.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

struct RunOut {
  parc::RunStats stats;
  std::vector<Vec3d> acc;
  telemetry::CounterBlock counters;  // telemetry delta for this run alone
};

RunOut run_pipeline(const hot::Bodies& all, const morton::Domain& domain,
                    const gravity::TreeForceConfig& cfg, int p,
                    const parc::NetworkParams& net, const parc::FaultPlan& faults,
                    bool force_reliable) {
  RunOut out;
  out.acc.assign(all.size(), {});
  const telemetry::CounterBlock before = telemetry::global_counters();
  out.stats = parc::Runtime::run(
      p,
      [&](parc::Rank& r) {
        if (force_reliable) r.am_set_reliable(true);
        hot::Bodies local;
        for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
             i += static_cast<std::size_t>(p))
          local.append_from(all, i);
        gravity::abm_tree_forces(r, local, domain, cfg);
        for (std::size_t i = 0; i < local.size(); ++i)
          out.acc[local.id[i]] = local.acc[i];
      },
      net, faults);
  out.counters = telemetry::global_counters() - before;
  return out;
}

// Cost of one Span on the disabled path (HOTLIB_TELEMETRY=0 / set_enabled
// false): an atomic load and a branch. Measured so the report carries the
// number the "zero overhead when off" claim rests on.
double disabled_span_ns() {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(false);
  constexpr int kIters = 1'000'000;
  volatile std::uint64_t sink = 0;
  WallTimer t;
  for (int i = 0; i < kIters; ++i) {
    telemetry::Span span("disabled_probe", telemetry::Phase::kOther,
                         static_cast<std::uint64_t>(i));
    sink = sink + 1;
  }
  const double ns = t.seconds() * 1e9 / kIters;
  telemetry::set_enabled(was_enabled);
  return ns;
}

}  // namespace

int main() {
  telemetry::Session session("faults");
  std::printf("=== Fault injection: reliability overhead + degradation sweep ===\n\n");

  const std::size_t n = telemetry::tiny_run() ? 1500 : 20000;
  const int p = 4;
  auto all = gravity::plummer_sphere(n, 1997);
  const auto domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = 0.02};
  const auto loki_net = simnet::loki().net;

  // --- 1. ack/seq machinery overhead on a clean fabric -----------------------
  const RunOut raw = run_pipeline(all, domain, cfg, p, loki_net, {}, false);
  const RunOut rel = run_pipeline(all, domain, cfg, p, loki_net, {}, true);
  const double overhead =
      raw.stats.max_vclock > 0
          ? (rel.stats.max_vclock - raw.stats.max_vclock) / raw.stats.max_vclock
          : 0.0;

  using telemetry::Counter;
  TextTable ovh({"ABM mode", "messages", "bytes moved", "acks", "modelled Loki s"});
  ovh.add_row({"raw", TextTable::integer(static_cast<long long>(raw.stats.messages)),
               TextTable::integer(static_cast<long long>(raw.stats.bytes)),
               TextTable::integer(static_cast<long long>(raw.counters[Counter::kAbmAcksSent])),
               TextTable::num(raw.stats.max_vclock, 4)});
  ovh.add_row({"reliable (no faults)",
               TextTable::integer(static_cast<long long>(rel.stats.messages)),
               TextTable::integer(static_cast<long long>(rel.stats.bytes)),
               TextTable::integer(static_cast<long long>(rel.counters[Counter::kAbmAcksSent])),
               TextTable::num(rel.stats.max_vclock, 4)});
  std::printf("%s\n", ovh.to_string().c_str());
  telemetry::sample_now();
  const bool same_forces =
      std::memcmp(raw.acc.data(), rel.acc.data(), n * sizeof(Vec3d)) == 0;
  std::printf("virtual-time overhead of seq/ack/checksum machinery: %.2f%%  [%s]\n",
              100.0 * overhead, overhead <= 0.05 ? "PASS <= 5%" : "FAIL > 5%");
  std::printf("forces bit-identical raw vs reliable: %s\n\n",
              same_forces ? "yes" : "NO (bug!)");

  // --- 2. degradation sweep over fault intensity -----------------------------
  TextTable sweep({"drop", "dup", "faults fired", "retransmits", "abandoned",
                   "modelled Loki s", "vs clean", "forces"});
  for (const double rate : {0.01, 0.05, 0.10, 0.20}) {
    parc::FaultPlan plan;
    plan.seed = 42;
    plan.drop_prob = rate;
    plan.duplicate_prob = rate / 2;
    const RunOut f = run_pipeline(all, domain, cfg, p, loki_net, plan, false);
    const bool exact =
        std::memcmp(raw.acc.data(), f.acc.data(), n * sizeof(Vec3d)) == 0;
    // Counts come from the telemetry registry (the per-run delta); test
    // coverage asserts they agree with the fabric/health numbers in RunStats.
    sweep.add_row(
        {TextTable::num(rate, 2), TextTable::num(rate / 2, 3),
         TextTable::integer(static_cast<long long>(f.counters[Counter::kFaultsInjected])),
         TextTable::integer(static_cast<long long>(f.counters[Counter::kAbmRetransmits])),
         TextTable::integer(
             static_cast<long long>(f.counters[Counter::kAbmAbandonedRecords])),
         TextTable::num(f.stats.max_vclock, 4),
         TextTable::num(raw.stats.max_vclock > 0
                            ? f.stats.max_vclock / raw.stats.max_vclock
                            : 0.0,
                        2),
         exact ? "bit-identical" : "DIVERGED"});
  }
  std::printf("%s\n", sweep.to_string().c_str());
  telemetry::sample_now();

  // --- 3. telemetry's own cost when switched off -----------------------------
  const double span_ns = disabled_span_ns();
  std::printf("disabled-path Span cost: %.2f ns/span  [%s]\n\n", span_ns,
              span_ns < 20.0 ? "PASS < 20 ns" : "WARN >= 20 ns");

  session.metric("reliability_overhead_frac", overhead);
  session.metric("disabled_span_ns", span_ns);
  session.set_modelled_seconds(rel.stats.max_vclock);
  std::printf(
      "Shape checks: overhead of the reliability layer is within the 5%% budget\n"
      "(acks are tiny and off the serialisation critical path); under faults the\n"
      "modelled time grows with retransmissions but forces remain bit-identical\n"
      "whenever nothing is abandoned (exactly-once, in-order delivery).\n");
  return 0;
}
