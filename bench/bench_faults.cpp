// bench_faults — cost of reliability, and behaviour under injected faults.
//
// Two questions about the ABM retry/ack layer (ISSUE: fault-injecting fabric):
//
//  1. What does the sequence/ack/checksum machinery cost when the fabric is
//     clean? Reliable mode is forced on with no fault plan and compared
//     against raw mode on the same traversal; acceptance is <= 5% modelled
//     virtual-time overhead (the acks are small and ride the same mailboxes,
//     so they add messages but almost no serialisation or latency on the
//     critical path).
//
//  2. How does the pipeline degrade as the fault rate rises? A sweep of
//     drop+duplicate rates reports retransmits, fault counts and modelled
//     time. Forces stay bit-identical to the clean run at every rate the
//     retry budget can absorb — that invariant is enforced by test_faults;
//     here we report the price paid for it.
#include <cstdio>
#include <cstring>

#include "gravity/abm_forces.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

struct RunOut {
  parc::RunStats stats;
  std::vector<Vec3d> acc;
};

RunOut run_pipeline(const hot::Bodies& all, const morton::Domain& domain,
                    const gravity::TreeForceConfig& cfg, int p,
                    const parc::NetworkParams& net, const parc::FaultPlan& faults,
                    bool force_reliable) {
  RunOut out;
  out.acc.assign(all.size(), {});
  out.stats = parc::Runtime::run(
      p,
      [&](parc::Rank& r) {
        if (force_reliable) r.am_set_reliable(true);
        hot::Bodies local;
        for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
             i += static_cast<std::size_t>(p))
          local.append_from(all, i);
        gravity::abm_tree_forces(r, local, domain, cfg);
        for (std::size_t i = 0; i < local.size(); ++i)
          out.acc[local.id[i]] = local.acc[i];
      },
      net, faults);
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fault injection: reliability overhead + degradation sweep ===\n\n");

  const std::size_t n = 20000;
  const int p = 4;
  auto all = gravity::plummer_sphere(n, 1997);
  const auto domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = 0.02};
  const auto loki_net = simnet::loki().net;

  // --- 1. ack/seq machinery overhead on a clean fabric -----------------------
  const RunOut raw = run_pipeline(all, domain, cfg, p, loki_net, {}, false);
  const RunOut rel = run_pipeline(all, domain, cfg, p, loki_net, {}, true);
  const double overhead =
      raw.stats.max_vclock > 0
          ? (rel.stats.max_vclock - raw.stats.max_vclock) / raw.stats.max_vclock
          : 0.0;

  TextTable ovh({"ABM mode", "messages", "bytes moved", "modelled Loki s"});
  ovh.add_row({"raw", TextTable::integer(static_cast<long long>(raw.stats.messages)),
               TextTable::integer(static_cast<long long>(raw.stats.bytes)),
               TextTable::num(raw.stats.max_vclock, 4)});
  ovh.add_row({"reliable (no faults)",
               TextTable::integer(static_cast<long long>(rel.stats.messages)),
               TextTable::integer(static_cast<long long>(rel.stats.bytes)),
               TextTable::num(rel.stats.max_vclock, 4)});
  std::printf("%s\n", ovh.to_string().c_str());
  const bool same_forces =
      std::memcmp(raw.acc.data(), rel.acc.data(), n * sizeof(Vec3d)) == 0;
  std::printf("virtual-time overhead of seq/ack/checksum machinery: %.2f%%  [%s]\n",
              100.0 * overhead, overhead <= 0.05 ? "PASS <= 5%" : "FAIL > 5%");
  std::printf("forces bit-identical raw vs reliable: %s\n\n",
              same_forces ? "yes" : "NO (bug!)");

  // --- 2. degradation sweep over fault intensity -----------------------------
  TextTable sweep({"drop", "dup", "faults fired", "retransmits", "abandoned",
                   "modelled Loki s", "vs clean", "forces"});
  for (const double rate : {0.01, 0.05, 0.10, 0.20}) {
    parc::FaultPlan plan;
    plan.seed = 42;
    plan.drop_prob = rate;
    plan.duplicate_prob = rate / 2;
    const RunOut f = run_pipeline(all, domain, cfg, p, loki_net, plan, false);
    const bool exact =
        std::memcmp(raw.acc.data(), f.acc.data(), n * sizeof(Vec3d)) == 0;
    sweep.add_row(
        {TextTable::num(rate, 2), TextTable::num(rate / 2, 3),
         TextTable::integer(static_cast<long long>(f.stats.faults.total())),
         TextTable::integer(static_cast<long long>(f.stats.retransmits)),
         TextTable::integer(static_cast<long long>(f.stats.abandoned_records)),
         TextTable::num(f.stats.max_vclock, 4),
         TextTable::num(raw.stats.max_vclock > 0
                            ? f.stats.max_vclock / raw.stats.max_vclock
                            : 0.0,
                        2),
         exact ? "bit-identical" : "DIVERGED"});
  }
  std::printf("%s\n", sweep.to_string().c_str());
  std::printf(
      "Shape checks: overhead of the reliability layer is within the 5%% budget\n"
      "(acks are tiny and off the serialisation critical path); under faults the\n"
      "modelled time grows with retransmissions but forces remain bit-identical\n"
      "whenever nothing is abandoned (exactly-once, in-order delivery).\n");
  return 0;
}
