// bench_kernels — google-benchmark microbenchmarks of the computational
// kernels the paper's rates rest on: the Karp reciprocal square root
// ("table lookup, Chebychev polynomial interpolation, and Newton-Raphson
// iteration ... 38 floating point operations per interaction"), the
// particle-particle and particle-cell interactions, Morton key generation,
// the key hash table, and tree construction. Also carries the design
// ablations: monopole vs quadrupole cell kernels, hash load factors and
// tree bucket sizes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "gravity/batch.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/kernels.hpp"
#include "gravity/models.hpp"
#include "hot/hash_table.hpp"
#include "hot/tree.hpp"
#include "morton/key.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/rng.hpp"

using namespace hotlib;

namespace {

void BM_KarpRsqrt(benchmark::State& state) {
  Xoshiro256ss rng(1);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = std::exp(rng.uniform(-10, 10));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gravity::karp_rsqrt(xs[i++ & 4095]));
  }
}
BENCHMARK(BM_KarpRsqrt);

void BM_KarpRsqrtTable(benchmark::State& state) {
  static const gravity::KarpRsqrtTable table;
  Xoshiro256ss rng(1);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = std::exp(rng.uniform(-10, 10));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(xs[i++ & 4095]));
  }
}
BENCHMARK(BM_KarpRsqrtTable);

void BM_HardwareRsqrt(benchmark::State& state) {
  Xoshiro256ss rng(1);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = std::exp(rng.uniform(-10, 10));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(1.0 / std::sqrt(xs[i++ & 4095]));
  }
}
BENCHMARK(BM_HardwareRsqrt);

void BM_PPInteraction(benchmark::State& state) {
  Xoshiro256ss rng(2);
  const Vec3d xi = rng.in_cube();
  std::vector<Vec3d> sources(1024);
  for (auto& s : sources) s = rng.in_cube();
  Vec3d acc{};
  double pot = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    gravity::pp_accumulate(xi, sources[i++ & 1023], 0.001, 1e-4, acc, pot);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flops/s"] = benchmark::Counter(
      38.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PPInteraction);

void BM_PCInteraction(benchmark::State& state) {
  const bool quad = state.range(0) != 0;
  Xoshiro256ss rng(3);
  hot::Cell c;
  c.com = {0.5, 0.5, 0.5};
  c.mass = 1.0;
  c.quad = {0.1, 0.02, -0.01, -0.05, 0.03, -0.05};
  std::vector<Vec3d> sinks(1024);
  for (auto& s : sinks) s = rng.in_cube() + Vec3d{2, 2, 2};
  Vec3d acc{};
  double pot = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    gravity::pc_accumulate(sinks[i++ & 1023], c, quad, 1e-4, acc, pot);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PCInteraction)->Arg(0)->Arg(1)->ArgName("quad");

// Whole-list evaluation, one sink against n sources: mode 0 is the per-pair
// kernel called source by source (the pre-batch shape), mode 1 the batched
// scalar kernel, mode 2 the batched AVX2 kernel. All three perform the same
// tallied work (n interactions, 38 flops each); the flops/s column is the
// scalar-vs-batched-vs-SIMD comparison.
void BM_BatchPP(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  if (mode == 2 && !gravity::batch_avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  Xoshiro256ss rng(2);
  const Vec3d xi = rng.in_cube() + Vec3d{2, 2, 2};
  gravity::InteractionBatch batch;
  std::vector<Vec3d> pos(n);
  std::vector<double> mass(n);
  for (std::size_t j = 0; j < n; ++j) {
    pos[j] = rng.in_cube();
    mass[j] = 0.001;
    batch.add_body(pos[j], mass[j]);
  }
  const double eps2 = 1e-4;
  const gravity::BatchPath prev = gravity::batch_path();
  if (mode == 1) gravity::force_batch_path(gravity::BatchPath::kScalar);
  if (mode == 2) gravity::force_batch_path(gravity::BatchPath::kAvx2);
  for (auto _ : state) {
    Vec3d acc{};
    double pot = 0;
    if (mode == 0) {
      for (std::size_t j = 0; j < n; ++j)
        gravity::pp_accumulate(xi, pos[j], mass[j], eps2, acc, pot);
    } else {
      gravity::batch_pp(batch, xi, eps2, gravity::kNoSelf, acc, pot);
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(pot);
  }
  gravity::force_batch_path(prev);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["interactions"] = static_cast<double>(n);
  state.counters["flops/s"] = benchmark::Counter(
      38.0 * static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchPP)
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({0, 16384})
    ->Args({1, 16384})
    ->Args({2, 16384})
    ->ArgNames({"mode", "n"});

void BM_BatchPC(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const bool quad = state.range(1) != 0;
  const std::size_t n = 1024;
  if (mode == 2 && !gravity::batch_avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  Xoshiro256ss rng(3);
  const Vec3d xi = rng.in_cube() + Vec3d{2, 2, 2};
  gravity::InteractionBatch batch;
  batch.use_quad = quad;
  std::vector<Vec3d> com(n);
  std::vector<double> mass(n);
  std::vector<std::array<double, 6>> quads(n);
  for (std::size_t j = 0; j < n; ++j) {
    com[j] = rng.in_cube();
    mass[j] = 1.0;
    quads[j] = {0.1, 0.02, -0.01, -0.05, 0.03, -0.05};
    batch.add_cell(com[j], mass[j], quads[j]);
  }
  const double eps2 = 1e-4;
  const gravity::BatchPath prev = gravity::batch_path();
  if (mode == 1) gravity::force_batch_path(gravity::BatchPath::kScalar);
  if (mode == 2) gravity::force_batch_path(gravity::BatchPath::kAvx2);
  for (auto _ : state) {
    Vec3d acc{};
    double pot = 0;
    if (mode == 0) {
      for (std::size_t j = 0; j < n; ++j)
        gravity::pc_accumulate(xi, com[j], mass[j], quads[j], quad, eps2, acc, pot);
    } else {
      gravity::batch_pc(batch, xi, eps2, acc, pot);
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(pot);
  }
  gravity::force_batch_path(prev);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchPC)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->ArgNames({"mode", "quad"});

void BM_MortonKey(benchmark::State& state) {
  Xoshiro256ss rng(4);
  std::vector<Vec3d> pts(4096);
  for (auto& p : pts) p = rng.in_cube();
  const morton::Domain d{};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton::key_from_position(pts[i++ & 4095], d));
  }
}
BENCHMARK(BM_MortonKey);

void BM_HashInsertFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256ss rng(5);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next() | 1;
  for (auto _ : state) {
    hot::KeyHashTable h(n);
    for (std::size_t i = 0; i < n; ++i) h.insert(keys[i], static_cast<std::uint32_t>(i));
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc ^= h.find(keys[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_HashInsertFind)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_TreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int bucket = static_cast<int>(state.range(1));
  auto b = gravity::plummer_sphere(n, 11);
  const auto domain = gravity::fit_domain(b);
  for (auto _ : state) {
    hot::Tree tree;
    tree.build(b.pos, b.mass, domain, {.bucket_size = bucket});
    benchmark::DoNotOptimize(tree.cells().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TreeBuild)
    ->Args({10000, 8})
    ->Args({10000, 16})
    ->Args({10000, 64})
    ->Args({50000, 16})
    ->ArgNames({"n", "bucket"});

void BM_TreeForces(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 100.0;
  auto b = gravity::plummer_sphere(n, 12);
  const auto domain = gravity::fit_domain(b);
  hot::Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 16});
  gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = theta}, .softening = 0.02};
  InteractionTally last;
  for (auto _ : state) {
    b.clear_forces();
    last = gravity::tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
    benchmark::DoNotOptimize(b.acc.data());
  }
  state.counters["interactions"] =
      static_cast<double>(last.interactions());
  state.counters["flops/s"] = benchmark::Counter(
      last.flops() * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TreeForces)
    ->Args({10000, 35})
    ->Args({10000, 60})
    ->ArgNames({"n", "theta_x100"});

}  // namespace

// Expanded BENCHMARK_MAIN() so a telemetry::Session wraps the run (writing
// BENCH_kernels.json) and HOTLIB_BENCH_TINY can restrict the suite to two
// fast kernels for the bench-smoke slice.
int main(int argc, char** argv) {
  // --print-kernel-path: report the dispatch decision (after HOTLIB_SIMD and
  // CPUID) and exit; update_baselines.sh stamps this into the baselines.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-kernel-path") == 0) {
      std::puts(gravity::batch_path_name());
      return 0;
    }
  }
  telemetry::Session session("kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (telemetry::tiny_run())
    benchmark::RunSpecifiedBenchmarks("BM_KarpRsqrt$|BM_MortonKey$");
  else
    benchmark::RunSpecifiedBenchmarks();
  telemetry::sample_now();  // snapshot peak memory / tree gauges of the suite
  benchmark::Shutdown();
  return 0;
}
