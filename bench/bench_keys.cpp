// bench_keys — ablation: Morton vs Hilbert space-filling curves.
//
// The paper: Morton ordering "maps the points in 3-dimensional space to a
// 1-dimensional list, which maintains as much spatial locality as possible"
// — with the caveat that Hilbert ordering (adopted by the group's later
// codes) has strictly better locality at the cost of harder key algebra.
// This harness quantifies the trade on the decomposition-facing metrics:
// mean jump distance along the curve, and the bounding-box surface area of
// P-way contiguous segments (a proxy for LET import volume).
#include <cstdio>

#include "gravity/models.hpp"
#include "morton/hilbert.hpp"
#include "morton/key.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

struct CurveMetrics {
  double mean_jump = 0;      // mean distance between curve-order neighbours
  double segment_area = 0;   // mean bounding-box surface of 16-way segments
  double keys_per_second = 0;
};

template <class KeyFn>
CurveMetrics measure(const std::vector<Vec3d>& pts, const morton::Domain& d,
                     KeyFn key_fn) {
  WallTimer t;
  std::vector<std::pair<morton::Key, std::size_t>> keyed(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) keyed[i] = {key_fn(pts[i], d), i};
  const double key_secs = t.seconds();
  std::sort(keyed.begin(), keyed.end());

  CurveMetrics m;
  RunningStats jump;
  for (std::size_t i = 1; i < keyed.size(); ++i)
    jump.add(norm(pts[keyed[i].second] - pts[keyed[i - 1].second]));
  m.mean_jump = jump.mean();

  const int segments = 16;
  RunningStats area;
  for (int s = 0; s < segments; ++s) {
    const std::size_t lo = pts.size() * static_cast<std::size_t>(s) / segments;
    const std::size_t hi = pts.size() * (static_cast<std::size_t>(s) + 1) / segments;
    Vec3d bmin = pts[keyed[lo].second], bmax = bmin;
    for (std::size_t i = lo; i < hi; ++i) {
      const Vec3d& p = pts[keyed[i].second];
      for (int a = 0; a < 3; ++a) {
        bmin[static_cast<std::size_t>(a)] =
            std::min(bmin[static_cast<std::size_t>(a)], p[static_cast<std::size_t>(a)]);
        bmax[static_cast<std::size_t>(a)] =
            std::max(bmax[static_cast<std::size_t>(a)], p[static_cast<std::size_t>(a)]);
      }
    }
    const Vec3d e = bmax - bmin;
    area.add(2 * (e.x * e.y + e.y * e.z + e.z * e.x));
  }
  m.segment_area = area.mean();
  m.keys_per_second = static_cast<double>(pts.size()) / key_secs;
  return m;
}

}  // namespace

int main() {
  telemetry::Session session("keys");
  std::printf("=== Ablation: Morton vs Hilbert key ordering ===\n\n");
  const std::size_t n = telemetry::tiny_run() ? 2000 : 50000;
  for (const char* dist : {"uniform", "clustered"}) {
    const bool clustered = dist[0] == 'c';
    hot::Bodies b =
        clustered ? gravity::plummer_sphere(n, 9) : gravity::uniform_cube(n, 9);
    const morton::Domain d = gravity::fit_domain(b);
    const auto morton_m = measure(b.pos, d, [](const Vec3d& p, const morton::Domain& dd) {
      return morton::key_from_position(p, dd);
    });
    const auto hilbert_m = measure(b.pos, d, [](const Vec3d& p, const morton::Domain& dd) {
      return morton::hilbert_from_position(p, dd);
    });
    TextTable t({"curve", "mean jump", "16-way segment area", "keys/s"});
    t.add_row({"Morton", TextTable::num(morton_m.mean_jump, 4),
               TextTable::num(morton_m.segment_area, 4),
               TextTable::num(morton_m.keys_per_second / 1e6, 1) + "M"});
    t.add_row({"Hilbert", TextTable::num(hilbert_m.mean_jump, 4),
               TextTable::num(hilbert_m.segment_area, 4),
               TextTable::num(hilbert_m.keys_per_second / 1e6, 1) + "M"});
    if (clustered) {
      session.metric("morton_keys_per_s", morton_m.keys_per_second);
      session.metric("hilbert_keys_per_s", hilbert_m.keys_per_second);
    }
    std::printf("%s points (%zu):\n%s\n", dist, n, t.to_string().c_str());
    telemetry::sample_now();
  }
  std::printf(
      "Shape checks: Hilbert's jump distance is smaller (every curve step is\n"
      "face-adjacent) and its decomposition segments have smaller surfaces —\n"
      "less LET traffic — while Morton keys are several times cheaper to\n"
      "compute and keep the trivial parent/child bit algebra the paper's hash\n"
      "addressing relies on. That is exactly the trade the paper chose.\n");
  return 0;
}
