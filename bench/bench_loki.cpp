// bench_loki — Experiment E5 plus the price/performance headline: the
// 9.75M-particle cosmology simulation on Loki.
//
// Paper rows:
//   first 30 steps: 1.15e12 interactions / 36973 s => 1.19 Gflops;
//   run to Apr 30: 1.97e13 interactions / 850000 s => 879 Mflops;
//   price/performance: $51,379 / 879 Mflops => $58/Mflop;
//   whole 1000-step simulation: 1.2e15 flops.
//
// The harness runs the same pipeline (spherical CDM region, 8x buffer,
// weighted decomposition, LET exchange) at laptop scale on 4 ranks,
// measures interactions per particle-step as clustering develops, and maps
// the accounting through the Loki machine model and the Table 1 cost data.
#include <cstdio>

#include "cosmo/simulation.hpp"
#include "machine/prices.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

int main() {
  telemetry::Session session("loki");
  std::printf("=== E5: Loki 9.75M-body cosmology (paper: 1.19 Gflops early, 879 Mflops sustained, $58/Mflop) ===\n\n");

  const bool tiny = telemetry::tiny_run();
  cosmo::SimConfig cfg;
  cfg.ics.grid_n = tiny ? 8 : 16;
  cfg.ics.box_mpc = 100.0;
  cfg.ics.spectrum.amplitude = 60.0;
  cfg.ics.growth = 4.0;
  cfg.hubble = 0.02;
  cfg.dt = 0.8;
  cfg.mac.theta = 0.35;

  const int steps = tiny ? 2 : 6;
  std::vector<double> ipp_series(static_cast<std::size_t>(steps), 0.0);
  std::vector<double> imbalance_series(static_cast<std::size_t>(steps), 0.0);
  std::uint64_t total_bodies = 0;
  double host_flops = 0, host_secs = 0;

  WallTimer wall;
  parc::Runtime::run(4, [&](parc::Rank& r) {
    cosmo::CosmologySim sim(r, cfg);
    for (int s = 0; s < steps; ++s) {
      const auto st = sim.step();
      if (r.rank() == 0) {
        ipp_series[static_cast<std::size_t>(s)] =
            static_cast<double>(st.tally.interactions()) /
            static_cast<double>(sim.total_bodies());
        imbalance_series[static_cast<std::size_t>(s)] = st.imbalance;
        host_flops += st.tally.flops();
      }
    }
    if (r.rank() == 0) total_bodies = sim.total_bodies();
  });
  host_secs = wall.seconds();

  TextTable meas({"step", "interactions/particle", "work imbalance"});
  for (int s = 0; s < steps; ++s)
    meas.add_row({TextTable::integer(s),
                  TextTable::num(ipp_series[static_cast<std::size_t>(s)], 0),
                  TextTable::num(imbalance_series[static_cast<std::size_t>(s)], 2)});
  std::printf("Measured (%llu bodies, 4 ranks, this host: %.2e flops in %.1f s = %.0f Mflops):\n%s\n",
              static_cast<unsigned long long>(total_bodies), host_flops, host_secs,
              host_flops / host_secs / 1e6, meas.to_string().c_str());
  telemetry::sample_now();

  // Model rows using the paper's own interaction counts.
  const auto loki = simnet::loki();
  TextTable model({"row", "modelled", "paper"});
  {
    const double ipp_early = 1.15e12 / (9.75e6 * 30);
    const auto early = simnet::project_tree_run(loki, 9.75e6, 30, ipp_early, false);
    model.add_row({"first 30 steps",
                   TextTable::num(early.seconds, 0) + " s, " +
                       TextTable::num(early.gflops(), 2) + " Gflops",
                   "36973 s, 1.19 Gflops"});
    const double ipp_run = 1.97e13 / (9.75e6 * 750);
    const auto run = simnet::project_tree_run(loki, 9.75e6, 750, ipp_run, true);
    session.metric("mflops_model_sustained", run.gflops() * 1000);
    session.set_modelled_seconds(run.seconds);
    model.add_row({"750-step production run",
                   TextTable::num(run.seconds / 86400, 1) + " days, " +
                       TextTable::num(run.gflops() * 1000, 0) + " Mflops",
                   "9.8 days, 879 Mflops"});
    const double usd = machine::total_price(machine::loki_parts_sept1996());
    model.add_row({"price/performance",
                   "$" + TextTable::num(usd, 0) + " => $" +
                       TextTable::num(machine::dollars_per_mflop(usd, run.gflops() * 1e9), 0) +
                       "/Mflop",
                   "$51,379 => $58/Mflop"});
    // Whole-simulation flop budget (1000+ steps).
    const double sim_flops = 1.2e15;
    model.add_row({"total simulation",
                   TextTable::num(sim_flops / (run.gflops() * 1e9) / 86400, 1) +
                       " days for 1.2 Pflop",
                   "13.5 days continuous, 1.2e15 flops"});
  }
  std::printf("Machine-model rows (Loki: 16 procs, fast ethernet 11.5 MB/s / 104 us):\n%s\n",
              model.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "Shape checks: interactions/particle grow as clustering develops (the\n"
      "879-vs-1190 Mflops gap); decomposition keeps imbalance near 1; $/Mflop\n"
      "arithmetic reproduces the paper's price/performance entry.\n");
  return 0;
}
