// bench_npb — Tables 3 and 4 and Figure 3: the NAS Parallel Benchmarks.
//
// Paper data:
//   Table 3: sixteen-processor Class B Mops for BT/SP/LU/MG/FT/EP/IS on
//            Loki (PGI and GNU compilers), ASCI Red, and an SGI Origin 2000.
//   Table 4 + Figure 3: Class A scaling on Loki over 1..16 processors.
//
// Our mini-kernels run *for real* on parc ranks at reduced classes; the
// machine model then assigns virtual time: compute at a per-kernel
// calibrated per-processor rate and communication at the machine's measured
// latency/bandwidth, with the kernels' actual message traffic. The absolute
// calibration is taken from the paper's own 16-processor Loki column
// (documented below); the *shapes* the model must then reproduce on its own
// are (a) near-linear scaling for BT/SP/LU/MG/FT, (b) EP scaling perfectly,
// (c) IS scaling poorly on fast ethernet (the "message bandwidth hungry"
// anomaly), and (d) the machine ordering Loki < ASCI Red < Origin with IS
// showing the largest Red advantage.
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "npb/adi.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;
using namespace hotlib::npb;

namespace {

struct KernelRun {
  double ops = 0;
  bool verified = false;
};

using KernelFn = std::function<KernelRun(parc::Rank&)>;

struct Kernel {
  std::string name;
  KernelFn fn;
  // Per-processor sustained rate on Loki (ops of *our* accounting per
  // second), calibrated so the 16-rank model lands near the paper's Table 4
  // Class A Loki column. All other machines are expressed relative to Loki.
  double loki_rate;
  double paper_class_b_loki_pgi;  // Table 3 reference values
  double paper_class_b_gnu;
  double paper_class_b_red;
  double paper_class_b_origin;
};

std::vector<Kernel> kernels() {
  return {
      {"BT",
       [](parc::Rank& r) {
         const auto res = run_adi(r, AdiVariant::BT, 32, 1);
         return KernelRun{res.ops, res.verified};
       },
       22.4e6, 354.6, 331.4, 445.5, 925.5},
      {"SP",
       [](parc::Rank& r) {
         const auto res = run_adi(r, AdiVariant::SP, 32, 1);
         return KernelRun{res.ops, res.verified};
       },
       15.1e6, 255.5, 224.5, 334.8, 957.0},
      {"LU",
       [](parc::Rank& r) {
         const auto res = run_adi(r, AdiVariant::LU, 32, 1);
         return KernelRun{res.ops, res.verified};
       },
       28.3e6, 428.6, 403.7, 490.2, 1317.4},
      {"MG",
       [](parc::Rank& r) {
         const auto res = run_mg(r, 6, 3);  // 64^3 so 16 ranks keep 2 levels
         return KernelRun{res.ops, res.verified};
       },
       17.6e6, 296.8, 267.1, 363.7, 1039.6},
      {"FT",
       [](parc::Rank& r) {
         const auto res = run_ft(r, 5, 4);
         return KernelRun{res.ops, res.verified};
       },
       15.6e6, 177.8, 0, 0, 648.2},
      {"EP",
       [](parc::Rank& r) {
         const auto res = run_ep(r, 24);  // Class S: verified bit-exact
         return KernelRun{res.ops, res.verified};
       },
       // EP op accounting differs from NPB's (we count ~30 flops/pair);
       // the paper's EP column is tiny because NPB counts "Mops" as random
       // pairs. Calibrated in our units.
       16.7e6, 8.9, 12.7, 7.1, 68.7},
      {"IS",
       [](parc::Rank& r) {
         const auto res = run_is(r, 17, 11);
         return KernelRun{res.ops, res.verified};
       },
       // IS "ops" are keys ranked; bandwidth-bound in parallel.
       0.94e6, 14.8, 14.6, 38.0, 33.9},
      {"CG (extra)",
       [](parc::Rank& r) {
         const auto res = run_cg(r, 512);
         return KernelRun{res.ops, res.verified};
       },
       12.0e6, 0, 0, 0, 0},
  };
}

// Run a kernel on `ranks` ranks under the given machine's network with
// compute charged at `rate` ops/s per rank; returns modelled Mops.
struct ModelResult {
  double mops = 0;
  bool verified = false;
  double efficiency = 0;  // vs perfect scaling of the 1-rank rate
};

ModelResult model_run(const Kernel& k, int ranks, parc::NetworkParams net,
                      double rate) {
  net.flops_per_s = rate;
  KernelRun result;
  const parc::RunStats stats = parc::Runtime::run(
      ranks,
      [&](parc::Rank& r) {
        const KernelRun kr = k.fn(r);
        if (r.rank() == 0) result = kr;
      },
      net);
  ModelResult m;
  m.verified = result.verified;
  if (stats.max_vclock > 0) m.mops = result.ops / stats.max_vclock / 1e6;
  m.efficiency = m.mops / (rate / 1e6 * ranks);
  return m;
}

}  // namespace

int main() {
  telemetry::Session session("npb");
  std::printf("=== Tables 3-4 / Figure 3: NAS Parallel Benchmarks on parc + machine model ===\n\n");
  const bool tiny = telemetry::tiny_run();
  const auto ks = kernels();

  // ---- Correctness + host-measured rates (serial) --------------------------
  TextTable host({"kernel", "ops", "verified", "host seconds", "host Mops"});
  for (const auto& k : ks) {
    WallTimer t;
    KernelRun r;
    parc::Runtime::run(1, [&](parc::Rank& rank) { r = k.fn(rank); });
    const double secs = t.seconds();
    host.add_row({k.name, TextTable::num(r.ops / 1e6, 1) + "M",
                  r.verified ? "yes" : "NO", TextTable::num(secs, 3),
                  TextTable::num(r.ops / secs / 1e6, 1)});
  }
  std::printf("Mini-kernel verification (reduced classes, this host):\n%s\n",
              host.to_string().c_str());
  telemetry::sample_now();

  // ---- Table 4 + Figure 3: Class A scaling on Loki --------------------------
  const auto loki = simnet::loki();
  const std::vector<int> rank_counts =
      tiny ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  TextTable t4_head_builder = [] {
    std::vector<std::string> h{"kernel"};
    for (int p : {1, 2, 4, 8, 16}) h.push_back("P=" + std::to_string(p));
    h.push_back("paper P=16 (Class A)");
    return TextTable(h);
  }();
  TextTable& t4 = t4_head_builder;
  TextTable fig3 = [] {
    std::vector<std::string> h{"kernel"};
    for (int p : {1, 2, 4, 8, 16}) h.push_back("eff P=" + std::to_string(p));
    return TextTable(h);
  }();
  const std::map<std::string, double> paper_t4 = {
      {"BT", 358}, {"SP", 242}, {"LU", 453}, {"MG", 281}, {"FT", 250}, {"IS", 15.0},
      {"EP", 0}};

  for (const auto& k : ks) {
    if (k.name == "CG (extra)") continue;
    std::vector<std::string> row{k.name}, erow{k.name};
    for (int p : rank_counts) {
      const ModelResult m = model_run(k, p, loki.net, k.loki_rate);
      row.push_back(TextTable::num(m.mops, 1) + (m.verified ? "" : "*"));
      erow.push_back(TextTable::num(100 * m.efficiency, 0) + "%");
    }
    const auto it = paper_t4.find(k.name);
    row.push_back(it != paper_t4.end() && it->second > 0 ? TextTable::num(it->second, 1)
                                                         : "-");
    t4.add_row(row);
    fig3.add_row(erow);
  }
  std::printf("Table 4 analogue: modelled Loki Mops vs ranks (our op units;\n"
              "'*' marks a kernel whose reduced-class self-verification failed):\n%s\n",
              t4.to_string().c_str());
  telemetry::sample_now();
  std::printf("Figure 3 analogue: parallel efficiency on Loki (modelled):\n%s\n",
              fig3.to_string().c_str());
  telemetry::sample_now();

  // ---- Table 3: machine comparison at 16 processors -------------------------
  // Relative machine factors (documented calibration): GNU ~0.92x PGI on
  // Loki; ASCI Red nodes ~1.25x Loki (faster memory) with the mesh network;
  // Origin ~2.8x with a low-latency fat network.
  const auto red16 = simnet::asci_red_16();
  const auto origin = simnet::origin2000_16();
  TextTable t3({"kernel", "Loki PGI", "Loki GNU", "ASCI Red", "Origin",
                "paper (B): Loki/GNU/Red/Origin"});
  const int cmp_ranks = tiny ? 4 : 16;
  for (const auto& k : ks) {
    if (k.name == "CG (extra)") continue;
    const double pgi = model_run(k, cmp_ranks, loki.net, k.loki_rate).mops;
    const double gnu = model_run(k, cmp_ranks, loki.net, 0.92 * k.loki_rate).mops;
    const double red = model_run(k, cmp_ranks, red16.net, 1.25 * k.loki_rate).mops;
    const double org = model_run(k, cmp_ranks, origin.net, 2.8 * k.loki_rate).mops;
    auto fmt = [](double v) {
      if (v <= 0) return std::string("-");
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", v);
      return std::string(buf);
    };
    const std::string paper = fmt(k.paper_class_b_loki_pgi) + " / " +
                              fmt(k.paper_class_b_gnu) + " / " +
                              fmt(k.paper_class_b_red) + " / " +
                              fmt(k.paper_class_b_origin);
    t3.add_row({k.name, TextTable::num(pgi, 1), TextTable::num(gnu, 1),
                TextTable::num(red, 1), TextTable::num(org, 1), paper});
  }
  std::printf("Table 3 analogue: modelled 16-proc Mops per machine (our op units):\n%s\n",
              t3.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "Shape checks: EP scales perfectly; IS efficiency collapses on fast\n"
      "ethernet and gains the most from the Red mesh (the paper's 14.8 -> 38.0\n"
      "anomaly); the remaining kernels scale near-linearly and order\n"
      "Loki GNU <= Loki PGI < ASCI Red < Origin, as in Table 3.\n");
  return 0;
}
