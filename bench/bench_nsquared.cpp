// bench_nsquared — Experiment E1: "A 1 million body O(N^2) benchmark".
//
// The paper ran 1M particles for 4 timesteps on 3400 nodes (6800 Pentium Pro
// processors) of ASCI Red in 239.3 s: 1e6 x 1e6 x 38 x 4 flops => 635 Gflops.
//
// This harness (a) runs the *real* ring-decomposed O(N^2) solver at laptop
// scale across several rank counts, measuring actual interactions and
// Mflops, and (b) maps the measured interaction accounting through the
// calibrated machine model to regenerate the paper's row. Absolute host
// numbers differ; the shape to check is the flat (embarrassingly parallel)
// scaling of the ring algorithm and the model row matching the paper.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gravity/direct.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

// --threads=1,2,4 -> {1,2,4}; empty when the flag is absent.
std::vector<int> parse_threads_flag(int argc, char** argv) {
  std::vector<int> out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) != 0) continue;
    const std::string list = argv[i] + 10;
    for (std::size_t pos = 0; pos < list.size();) {
      const std::size_t comma = list.find(',', pos);
      const std::string tok = list.substr(pos, comma - pos);
      const int t = std::atoi(tok.c_str());
      if (t >= 1) out.push_back(t);
      pos = comma == std::string::npos ? list.size() : comma + 1;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::Session session("nsquared");
  std::printf("=== E1: O(N^2) benchmark (paper: 635 Gflops, 1M bodies, 6800 procs) ===\n\n");

  // (a) Real runs: ring decomposition at several rank counts.
  const std::size_t n = telemetry::tiny_run() ? 600 : 6000;
  auto all = gravity::plummer_sphere(n, 1997);
  TextTable real({"ranks", "interactions", "seconds", "Mflops (host)", "interactions/s"});
  for (int p : {1, 2, 4, 8}) {
    WallTimer t;
    std::vector<std::uint64_t> total(1, 0);
    parc::Runtime::run(p, [&](parc::Rank& r) {
      const std::size_t lo = n * static_cast<std::size_t>(r.rank()) /
                             static_cast<std::size_t>(p);
      const std::size_t hi = n * (static_cast<std::size_t>(r.rank()) + 1) /
                             static_cast<std::size_t>(p);
      std::vector<Vec3d> pos(all.pos.begin() + lo, all.pos.begin() + hi);
      std::vector<double> mass(all.mass.begin() + lo, all.mass.begin() + hi);
      std::vector<Vec3d> acc(hi - lo);
      std::vector<double> pot(hi - lo);
      const auto tally = gravity::ring_direct_forces(r, pos, mass, 0.02, 1.0, acc, pot);
      const auto sum = r.allreduce(tally.body_body, parc::Sum{});
      if (r.rank() == 0) total[0] = sum;
    });
    const double secs = t.seconds();
    const double flops = static_cast<double>(total[0]) * kFlopsPerGravityInteraction;
    real.add_row({TextTable::integer(p), TextTable::integer(static_cast<long long>(total[0])),
                  TextTable::num(secs, 3), TextTable::num(flops / secs / 1e6, 1),
                  TextTable::num(static_cast<double>(total[0]) / secs / 1e6, 2) + "M"});
  }
  std::printf("Measured (this host, %zu bodies, 1 step; threads share one core):\n%s\n",
              n, real.to_string().c_str());
  telemetry::sample_now();

  // (b) Machine-model projection of the paper's configuration.
  TextTable model({"configuration", "seconds", "Gflops", "paper"});
  {
    const auto red = simnet::asci_red_april97();
    const auto proj = simnet::project_nsq_run(red, 1e6, 4);
    session.metric("gflops_model_red", proj.gflops());
    session.set_modelled_seconds(proj.seconds);
    model.add_row({"1M bodies, 4 steps, 6800 procs (ASCI Red)",
                   TextTable::num(proj.seconds, 1), TextTable::num(proj.gflops(), 0),
                   "239.3 s, 635 Gflops"});
    const auto grape = simnet::grape4_like();
    const auto gproj = simnet::project_nsq_run(grape, 1e6, 4);
    model.add_row({"same problem, GRAPE-4-like pipeline",
                   TextTable::num(gproj.seconds, 1), TextTable::num(gproj.gflops(), 0),
                   "(comparison device)"});
    const auto loki = simnet::loki();
    const auto lproj = simnet::project_nsq_run(loki, 1e6, 4);
    model.add_row({"same problem on Loki (16 procs)", TextTable::num(lproj.seconds, 0),
                   TextTable::num(lproj.gflops(), 2), "-"});
  }
  std::printf("Machine-model projections (calibrated per DESIGN.md):\n%s\n",
              model.to_string().c_str());
  telemetry::sample_now();

  // (c) Optional shared-memory thread sweep (--threads=1,2,4): the single-
  // rank O(N^2) solver over the task pool's sink-parallel loop. Print-only;
  // the perf-gate metrics above are independent of this sweep. Accelerations
  // and tallies are bit-identical at every thread count.
  if (const std::vector<int> sweep_t = parse_threads_flag(argc, argv); !sweep_t.empty()) {
    TextTable tt({"threads", "interactions", "seconds", "Mflops (host)", "speedup"});
    double base_s = 0;
    for (int t : sweep_t) {
      util::TaskPool::set_global_concurrency(t);
      WallTimer wt;
      std::vector<Vec3d> acc(n);
      std::vector<double> pot(n);
      const auto tally = gravity::direct_forces(all.pos, all.mass, 0.02, 1.0, acc, pot);
      const double secs = wt.seconds();
      if (base_s == 0) base_s = secs;
      const double flops = tally.flops();
      tt.add_row({TextTable::integer(t),
                  TextTable::integer(static_cast<long long>(tally.interactions())),
                  TextTable::num(secs, 3), TextTable::num(flops / secs / 1e6, 1),
                  TextTable::num(base_s / secs, 2) + "x"});
    }
    util::TaskPool::set_global_concurrency(0);  // back to HOTLIB_THREADS default
    std::printf("Thread sweep (same bits at every pool size; %zu bodies):\n%s\n",
                n, tt.to_string().c_str());
  }
  std::printf(
      "Shape check: ring O(N^2) scales near-perfectly with ranks (compute >> comm),\n"
      "and the Red projection reproduces the paper's 635 Gflops / 239.3 s row.\n");
  return 0;
}
