// bench_price — Tables 1 and 2 and the price/performance + GRAPE
// comparisons of the paper's conclusion.
//
// Paper rows: Table 1 Loki total $51,379; Table 2 spot prices giving a $28k
// system; $58/Mflop (Loki production), $47/Mflop (SC'96), ~21 Gflops/M$;
// "our treecode on the Intel Teraflops system is equivalent to special
// purpose hardware running an N^2 algorithm at ... 25 Exaflops".
#include <cstdio>

#include "machine/prices.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"

using namespace hotlib;

int main() {
  telemetry::Session session("price");
  std::printf("=== Tables 1-2 + price/performance + GRAPE equivalence ===\n\n");

  // Table 1 / Table 2 totals.
  TextTable totals({"table", "computed total", "paper"});
  totals.add_row({"Table 1: Loki (Sept 1996)",
                  "$" + TextTable::num(machine::total_price(machine::loki_parts_sept1996()), 0),
                  "$51,379"});
  totals.add_row({"Table 2 system: 16 procs at Aug-1997 spot prices",
                  "$" + TextTable::num(machine::total_price(machine::system_aug1997()), 0),
                  "~$28k"});
  std::printf("%s\n", totals.to_string().c_str());
  telemetry::sample_now();

  // Price/performance ladder.
  TextTable pp({"system", "sustained", "$/Mflop", "Gflops/M$", "paper"});
  auto row = [&](const char* name, double cost, double flops, const char* paper) {
    pp.add_row({name, TextTable::num(flops / 1e6, 0) + " Mflops",
                TextTable::num(machine::dollars_per_mflop(cost, flops), 1),
                TextTable::num(machine::gflops_per_million_dollars(cost, flops), 1),
                paper});
  };
  row("Loki production run", 51379, 879e6, "$58/Mflop");
  row("SC'96 joined cluster", 103000, 2.19e9, "$47/Mflop, 21 Gflops/M$");
  const double aug97 = machine::total_price(machine::system_aug1997());
  row("Aug-1997 rebuild (projected)", aug97, 1.19e9, "~2x better");
  std::printf("Price/performance:\n%s\n", pp.to_string().c_str());
  telemetry::sample_now();

  // GRAPE / Exaflops equivalence: what N^2 rate would match the treecode's
  // particles-per-second on the 322M-body problem?
  const auto red = simnet::asci_red_april97();
  const auto tree = simnet::project_tree_run(red, 322e6, 5, 4459.0, false);
  const double tree_pps = simnet::particles_per_second(tree, 322e6, 5);
  // An N^2 device updating `tree_pps` particles/s at N=322e6 must evaluate
  // tree_pps * N interactions/s at 38 flops each.
  const double equivalent_flops = tree_pps * 322e6 * kFlopsPerGravityInteraction;
  const double grape_pps =
      simnet::grape_particles_per_second(simnet::grape4_like(), 322e6);

  session.metric("loki_total_usd", machine::total_price(machine::loki_parts_sept1996()));
  session.metric("usd_per_mflop_loki", machine::dollars_per_mflop(51379, 879e6));
  TextTable grape({"quantity", "modelled", "paper"});
  grape.add_row({"treecode particles/s (3400 nodes)",
                 TextTable::num(tree_pps / 1e6, 1) + " M/s", "3 M/s"});
  // The paper states "25 million Gigaflops, or 25 Exaflops" — 25e6 Gflops is
  // actually 25 Petaflops; we report Pflops and flag the unit slip.
  grape.add_row({"N^2-equivalent special-purpose rate",
                 TextTable::num(equivalent_flops / 1e15, 0) + " Pflops",
                 "25e6 Gflops (text: '25 Exaflops')"});
  grape.add_row({"GRAPE-4-like device on same problem",
                 TextTable::num(grape_pps, 0) + " particles/s", "(1e5 x slower)"});
  std::printf("GRAPE / algorithm-equivalence (the paper's closing argument):\n%s\n",
              grape.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "\"We make this point in order to firmly emphasize the advantages of a\n"
      " good algorithm.\" — the treecode's advantage is algorithmic, not Gflops.\n");
  return 0;
}
