// bench_sc96 — Experiment E7: Loki and Hyglac joined on the Supercomputing
// '96 floor.
//
// Paper row: "the two machines performed a 10 million particle treecode
// benchmark at the rate of 2.19 Gflops. The cost of the combined system
// (including the $3000 of additional hardware...) was $103k. Thus, we quote
// ... $47/Mflop, or equivalently, 21 Gflops per million dollars."
//
// The harness runs the real parallel treecode benchmark on 2x the rank count
// of the single-machine run (measuring how doubling ranks changes the LET
// import volume — the cost of joining machines), then prints the calibrated
// SC'96 model row and the price/performance arithmetic.
#include <cstdio>

#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "machine/prices.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

struct Result {
  std::uint64_t interactions = 0;
  std::size_t let_bytes = 0;
  double seconds = 0;
};

Result run_benchmark(const hot::Bodies& all, int ranks) {
  const morton::Domain domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = 0.02};
  Result res;
  WallTimer t;
  parc::Runtime::run(ranks, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
         i += static_cast<std::size_t>(ranks))
      local.append_from(all, i);
    const auto fr = gravity::parallel_tree_forces(r, local, domain, cfg);
    struct Agg {
      std::uint64_t ints;
      std::uint64_t bytes;
      Agg operator+(const Agg& o) const { return {ints + o.ints, bytes + o.bytes}; }
    };
    const Agg total = r.allreduce(
        Agg{fr.tally.interactions(), static_cast<std::uint64_t>(fr.let_bytes_sent)},
        parc::Sum{});
    if (r.rank() == 0) {
      res.interactions = total.ints;
      res.let_bytes = total.bytes;
    }
  });
  res.seconds = t.seconds();
  return res;
}

}  // namespace

int main() {
  telemetry::Session session("sc96");
  std::printf("=== E7: Loki+Hyglac at SC'96 (paper: 2.19 Gflops, $47/Mflop, 21 Gflops/M$) ===\n\n");

  const auto all = gravity::plummer_sphere(telemetry::tiny_run() ? 1500 : 16000, 96);
  TextTable meas({"config", "ranks", "interactions", "LET bytes", "Mflops (host)"});
  for (int ranks : {8, 16}) {
    const Result r = run_benchmark(all, ranks);
    meas.add_row({ranks == 8 ? "one machine" : "joined machines",
                  TextTable::integer(ranks),
                  TextTable::integer(static_cast<long long>(r.interactions)),
                  TextTable::integer(static_cast<long long>(r.let_bytes)),
                  TextTable::num(38.0 * static_cast<double>(r.interactions) /
                                     r.seconds / 1e6,
                                 0)});
  }
  std::printf("Measured (16k-body benchmark; doubling ranks raises the LET volume —\n"
              "the traffic that crossed the SC'96 show floor):\n%s\n",
              meas.to_string().c_str());
  telemetry::sample_now();

  const auto sc96 = simnet::sc96_cluster();
  const double ipp = 3000.0;  // treecode benchmark, moderately clustered
  const auto proj = simnet::project_tree_run(sc96, 10e6, 1, ipp, false);
  session.metric("gflops_model_sc96", proj.gflops());
  session.set_modelled_seconds(proj.seconds);
  TextTable model({"row", "modelled", "paper"});
  model.add_row({"10M-body benchmark throughput",
                 TextTable::num(proj.gflops(), 2) + " Gflops", "2.19 Gflops"});
  model.add_row({"price/performance",
                 "$" + TextTable::num(machine::dollars_per_mflop(sc96.cost_usd,
                                                                 proj.gflops() * 1e9),
                                      0) +
                     "/Mflop",
                 "$47/Mflop"});
  model.add_row({"Gflops per million dollars",
                 TextTable::num(machine::gflops_per_million_dollars(
                                    sc96.cost_usd, proj.gflops() * 1e9),
                                1),
                 "21"});
  std::printf("SC'96 model rows (32 procs, $103k incl. $3k of interconnect):\n%s\n",
              model.to_string().c_str());
  telemetry::sample_now();
  return 0;
}
