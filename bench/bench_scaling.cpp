// bench_scaling — strong and weak scaling of the full parallel treecode
// pipeline under the machine models.
//
// The paper's two headline partitions (431 Gflops on 6800 procs early, 170
// Gflops on 4096 procs clustered) bracket how the treecode scales; this
// harness runs the real pipeline — the ABM request-driven traversal, whose
// interaction count stays at the serial treecode's (the LET-push variant
// inflates evaluation work at laptop-scale N/P; see bench_abm) — at small
// scale over rank counts under the Loki and ASCI Red network models,
// reporting modelled efficiency, then prints the analytic strong-scaling
// curve of the calibrated model out to the paper's processor counts.
#include <cstdio>

#include "gravity/models.hpp"
#include "gravity/abm_forces.hpp"
#include "parc/parc.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"

using namespace hotlib;

namespace {

// Modelled makespan of one force computation on `ranks` ranks.
double modelled_step(const hot::Bodies& all, int ranks, parc::NetworkParams net,
                     double rate, std::uint64_t* interactions) {
  net.flops_per_s = rate;
  const morton::Domain domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = 0.02};
  std::uint64_t total = 0;
  const auto stats = parc::Runtime::run(
      ranks,
      [&](parc::Rank& r) {
        hot::Bodies local;
        for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
             i += static_cast<std::size_t>(ranks))
          local.append_from(all, i);
        const auto res = gravity::abm_tree_forces(r, local, domain, cfg);
        r.charge_flops(res.tally.flops());
        const auto sum = r.allreduce(res.tally.interactions(), parc::Sum{});
        if (r.rank() == 0) total = sum;
      },
      net);
  if (interactions != nullptr) *interactions = total;
  return stats.max_vclock;
}

}  // namespace

int main() {
  telemetry::Session session("scaling");
  std::printf("=== Strong/weak scaling of the parallel treecode (machine-modelled) ===\n\n");

  // Strong scaling: fixed 16k-body problem, growing rank counts, Loki vs Red
  // networks at the Pentium Pro treecode rate.
  const bool tiny = telemetry::tiny_run();
  const double rate = 70e6;
  const auto loki_net = simnet::loki().net;
  const auto red_net = simnet::asci_red_16().net;
  const auto all = gravity::plummer_sphere(tiny ? 1500 : 16000, 70);

  TextTable strong({"ranks", "Loki model s", "Loki eff", "Red model s", "Red eff"});
  double loki1 = 0, red1 = 0;
  const std::vector<int> strong_ranks = tiny ? std::vector<int>{1, 4}
                                             : std::vector<int>{1, 2, 4, 8, 16};
  for (int p : strong_ranks) {
    const double tl = modelled_step(all, p, loki_net, rate, nullptr);
    const double tr = modelled_step(all, p, red_net, rate, nullptr);
    if (p == 1) {
      loki1 = tl;
      red1 = tr;
    }
    strong.add_row({TextTable::integer(p), TextTable::num(tl, 3),
                    TextTable::num(100 * loki1 / (tl * p), 0) + "%",
                    TextTable::num(tr, 3),
                    TextTable::num(100 * red1 / (tr * p), 0) + "%"});
  }
  std::printf("Strong scaling, 16k bodies (real pipeline, modelled time):\n%s\n",
              strong.to_string().c_str());
  telemetry::sample_now();

  // Weak scaling: ~2k bodies per rank. The treecode's work per body grows
  // like log N, so efficiency is per-rank interaction throughput relative to
  // one rank.
  TextTable weak({"ranks", "bodies", "interactions", "Loki model s", "Mint/s/rank",
                  "efficiency"});
  double thr1 = 0;
  const std::vector<int> weak_ranks =
      tiny ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (int p : weak_ranks) {
    const auto b = gravity::plummer_sphere(
        (tiny ? 500u : 2000u) * static_cast<std::size_t>(p), 71);
    std::uint64_t ints = 0;
    const double t = modelled_step(b, p, loki_net, rate, &ints);
    const double thr = static_cast<double>(ints) / t / p / 1e6;
    if (p == 1) thr1 = thr;
    weak.add_row({TextTable::integer(p),
                  TextTable::integer(static_cast<long long>(b.size())),
                  TextTable::integer(static_cast<long long>(ints)),
                  TextTable::num(t, 3), TextTable::num(thr, 2),
                  TextTable::num(100 * thr / thr1, 0) + "%"});
  }
  std::printf("Weak scaling, 2k bodies/rank (per-rank interaction throughput):\n%s\n",
              weak.to_string().c_str());
  telemetry::sample_now();

  // Analytic strong scaling of the calibrated model to paper scale.
  TextTable paper({"machine", "procs", "Gflops (model)", "paper"});
  const auto red = simnet::asci_red_april97();
  for (int nodes : {512, 1024, 2048, 3400}) {
    auto m = red;
    m.nodes = nodes;
    const auto proj = simnet::project_tree_run(m, 322e6, 5, 4459.0, false);
    char label[32];
    std::snprintf(label, sizeof label, "%d", 2 * nodes);
    paper.add_row({"ASCI Red", label, TextTable::num(proj.gflops(), 0),
                   nodes == 3400 ? "431 Gflops" : "-"});
    if (nodes == 3400) {
      session.metric("gflops_model_6800", proj.gflops());
      session.set_modelled_seconds(proj.seconds);
    }
  }
  std::printf("Analytic projection to paper scale (322M bodies, unclustered):\n%s\n",
              paper.to_string().c_str());
  telemetry::sample_now();
  return 0;
}
