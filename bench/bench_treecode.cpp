// bench_treecode — Experiments E2, E3, E4: the 322-million-body treecode
// runs and the treecode-vs-O(N^2) efficiency claim.
//
// Paper rows:
//   E3: first 5 timesteps on 6800 procs: 7.18e12 interactions / 632 s
//       => 431 Gflops.
//   E2: timesteps 150-437 on 2048 nodes: 1.52e14 interactions / 9h24m
//       => 170 Gflops (clustered, load-balance limited).
//   E4: treecode ~1e5 x more efficient than N^2 at this N; Red updates
//       3e6 particles/s with the treecode vs 52/s with N^2.
//
// The harness measures the real treecode at laptop scale — including the
// unclustered-vs-clustered interaction-count growth the paper attributes the
// 431 -> 170 Gflops drop to — plus the N log N vs N^2 crossover, then prints
// the calibrated model rows next to the paper values.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/models.hpp"
#include "hot/hot.hpp"
#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/task_pool.hpp"
#include "util/timer.hpp"

using namespace hotlib;

namespace {

// --threads=1,2,4 -> {1,2,4}; empty when the flag is absent.
std::vector<int> parse_threads_flag(int argc, char** argv) {
  std::vector<int> out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) != 0) continue;
    const std::string list = argv[i] + 10;
    for (std::size_t pos = 0; pos < list.size();) {
      const std::size_t comma = list.find(',', pos);
      const std::string tok = list.substr(pos, comma - pos);
      const int t = std::atoi(tok.c_str());
      if (t >= 1) out.push_back(t);
      pos = comma == std::string::npos ? list.size() : comma + 1;
    }
  }
  return out;
}

struct Run {
  std::uint64_t interactions = 0;
  double seconds = 0;
  double per_particle = 0;
};

Run tree_run(const hot::Bodies& b, double theta) {
  hot::Bodies w = b;
  hot::Tree tree;
  WallTimer t;
  tree.build(w.pos, w.mass, gravity::fit_domain(w), {.bucket_size = 16});
  gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = theta}, .softening = 0.02};
  w.clear_forces();
  const auto tally = gravity::tree_forces(tree, w.pos, w.mass, cfg, w.acc, w.pot);
  Run r;
  r.interactions = tally.interactions();
  r.seconds = t.seconds();
  r.per_particle = static_cast<double>(tally.interactions()) / static_cast<double>(b.size());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::Session session("treecode");
  std::printf("=== E2/E3/E4: treecode at scale (paper: 431 & 170 Gflops; 1e5 x N^2) ===\n\n");

  // (a) Unclustered vs clustered interaction cost — the physical reason the
  // sustained rate drops from 431 to 170 Gflops.
  const bool tiny = telemetry::tiny_run();
  const std::size_t n = tiny ? 1000 : 20000;
  const auto uniform = gravity::uniform_cube(n, 3);      // like the early universe
  const auto clustered = gravity::plummer_sphere(n, 3);  // like the clustered epoch
  const Run u = tree_run(uniform, 0.35);
  const Run c = tree_run(clustered, 0.35);
  TextTable shape({"state", "interactions/particle", "seconds (host)", "Mflops (host)"});
  shape.add_row({"unclustered (grid-like)", TextTable::num(u.per_particle, 0),
                 TextTable::num(u.seconds, 3),
                 TextTable::num(38.0 * u.interactions / u.seconds / 1e6, 0)});
  shape.add_row({"clustered (halo-like)", TextTable::num(c.per_particle, 0),
                 TextTable::num(c.seconds, 3),
                 TextTable::num(38.0 * c.interactions / c.seconds / 1e6, 0)});
  std::printf("Measured, %zu bodies, theta=0.35:\n%s\n", n, shape.to_string().c_str());
  telemetry::sample_now();

  // (b) N log N vs N^2: interaction counts and the efficiency ratio.
  TextTable scaling({"N", "tree ints", "N^2 ints", "ratio", "tree s", "direct s"});
  const std::vector<std::size_t> sweep =
      tiny ? std::vector<std::size_t>{500} : std::vector<std::size_t>{2000, 8000, 32000};
  for (std::size_t nn : sweep) {
    const auto b = gravity::plummer_sphere(nn, 7);
    const Run tr = tree_run(b, 0.35);
    WallTimer t;
    std::vector<Vec3d> acc(nn);
    std::vector<double> pot(nn);
    const auto direct = gravity::direct_forces(b.pos, b.mass, 0.02, 1.0, acc, pot);
    const double ds = t.seconds();
    scaling.add_row(
        {TextTable::integer(static_cast<long long>(nn)),
         TextTable::integer(static_cast<long long>(tr.interactions)),
         TextTable::integer(static_cast<long long>(direct.interactions())),
         TextTable::num(static_cast<double>(direct.interactions()) /
                            static_cast<double>(tr.interactions),
                        1),
         TextTable::num(tr.seconds, 3), TextTable::num(ds, 3)});
  }
  std::printf("O(N log N) vs O(N^2) (measured):\n%s\n", scaling.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "Extrapolating the measured interactions/particle (~%.0f) to N = 322e6:\n"
      "  ratio N^2/tree = %.1e  (paper: \"approximately 1e5 times more efficient\")\n\n",
      c.per_particle, 322e6 / c.per_particle);

  // (c) Model rows against the paper.
  TextTable model({"row", "seconds", "Gflops", "paper"});
  const auto red = simnet::asci_red_april97();
  const auto early = simnet::project_tree_run(red, 322e6, 5, 4459.0, false);
  model.add_row({"E3: first 5 steps, 6800 procs", TextTable::num(early.seconds, 0),
                 TextTable::num(early.gflops(), 0), "632 s, 431 Gflops"});
  const auto red2048 = simnet::asci_red_2048();
  const auto sustained = simnet::project_tree_run(red2048, 322e6, 287, 1645.0, true);
  model.add_row({"E2: steps 150-437, 2048 nodes",
                 TextTable::num(sustained.seconds / 3600, 1) + " h",
                 TextTable::num(sustained.gflops(), 0), "9.4 h, 170 Gflops"});
  const double tree_pps = simnet::particles_per_second(early, 322e6, 5);
  const auto nsq = simnet::project_nsq_run(red, 322e6, 1);
  const double nsq_pps = simnet::particles_per_second(nsq, 322e6, 1);
  model.add_row({"E4: particles/s  tree vs N^2",
                 TextTable::num(tree_pps / 1e6, 1) + "M vs " + TextTable::num(nsq_pps, 0),
                 TextTable::num(tree_pps / nsq_pps / 1e3, 0) + "e3 x",
                 "3M vs 52 => ~1e5 x"});
  std::printf("Machine-model projections:\n%s\n", model.to_string().c_str());
  telemetry::sample_now();

  // (d) Optional shared-memory thread sweep (--threads=1,2,4): build + force
  // evaluation of the clustered workload at each pool size. Print-only — the
  // perf-gate metrics above always run at the pool the environment selected,
  // so baselines are independent of this sweep. Forces and tallies are
  // bit-identical at every thread count (see tests/test_parallel.cpp); only
  // the wall clock moves.
  if (const std::vector<int> sweep_t = parse_threads_flag(argc, argv); !sweep_t.empty()) {
    TextTable tt({"threads", "tree ints", "seconds", "Mflops (host)", "speedup"});
    double base_s = 0;
    for (int t : sweep_t) {
      util::TaskPool::set_global_concurrency(t);
      const Run r = tree_run(clustered, 0.35);
      if (base_s == 0) base_s = r.seconds;
      tt.add_row({TextTable::integer(t),
                  TextTable::integer(static_cast<long long>(r.interactions)),
                  TextTable::num(r.seconds, 3),
                  TextTable::num(38.0 * r.interactions / r.seconds / 1e6, 0),
                  TextTable::num(base_s / r.seconds, 2) + "x"});
    }
    util::TaskPool::set_global_concurrency(0);  // back to HOTLIB_THREADS default
    std::printf("Thread sweep (same bits at every pool size; %zu bodies):\n%s\n",
                n, tt.to_string().c_str());
  }
  session.metric("interactions_per_particle_clustered", c.per_particle);
  session.metric("gflops_model_first5", early.gflops());
  session.metric("gflops_model_sustained", sustained.gflops());
  session.set_modelled_seconds(early.seconds);
  std::printf(
      "Shape checks: clustered interactions/particle exceed unclustered (driving\n"
      "the 431 -> 170 Gflops drop); tree/N^2 interaction ratio grows with N; model\n"
      "rows reproduce the paper's throughput and the ~1e5 efficiency factor.\n");
  return 0;
}
