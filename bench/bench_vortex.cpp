// bench_vortex — Experiment E6: the Hyglac vortex-ring-fusion simulation.
//
// Paper row: "the fusion of two vortex rings using a vortex particle
// method... started with 57,000 vortex particles... by the end of the 340
// timestep simulation, there were 360,000 vortex particles. ... the code
// maintains somewhat over 65 Mflops per processor ... overall throughput of
// the code running on 16 processors is close to 950 Mflops" over 20 hours.
//
// The harness runs the real two-ring fusion (treecode + RK2 + remeshing) at
// laptop scale, reports particle growth and per-interaction cost, and maps
// the rates through the Hyglac machine model.
#include <cstdio>

#include "simnet/machine.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sample.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vortex/remesh.hpp"
#include "vortex/vpm.hpp"

using namespace hotlib;
using namespace hotlib::vortex;

int main() {
  telemetry::Session session("vortex");
  std::printf("=== E6: vortex ring fusion (paper: 950 Mflops on Hyglac, 57k -> 360k particles) ===\n\n");

  const bool tiny = telemetry::tiny_run();
  const std::size_t ring_n = tiny ? 48 : 160;
  const double sigma = 0.12;
  VortexParticles p =
      merge(make_ring(ring_n, 1.0, 1.0, {-0.55, 0, 0}, {0, 0, 1}, sigma),
            make_ring(ring_n, 1.0, 1.0, {0.55, 0, 0}, {0, 0, 1}, sigma));
  const std::size_t n0 = p.size();
  const Vec3d imp0 = p.linear_impulse();

  WallTimer wall;
  InteractionTally total;
  const hot::Mac mac{.theta = 0.3};
  TextTable growth({"step", "particles", "cumulative interactions"});
  const int steps = tiny ? 8 : 24;
  for (int s = 0; s < steps; ++s) {
    total += step_rk2(p, 0.04, mac);
    if ((s + 1) % 8 == 0) {
      p = remesh(p, {.overlap = 1.5, .keep_fraction = 1e-4});
      growth.add_row({TextTable::integer(s + 1), TextTable::integer(static_cast<long long>(p.size())),
                      TextTable::integer(static_cast<long long>(total.interactions()))});
    }
  }
  const double secs = wall.seconds();
  const double flops = static_cast<double>(total.interactions()) * kFlopsPerVortexInteraction;

  std::printf("Measured (2 rings, %zu -> %zu particles through remeshing):\n%s\n", n0,
              p.size(), growth.to_string().c_str());
  telemetry::sample_now();
  std::printf("  impulse drift %.2e; %.2e flops in %.1f s => %.0f Mflops (host)\n\n",
              norm(p.linear_impulse() - imp0) / norm(imp0), flops, secs,
              flops / secs / 1e6);

  // Hyglac model: the per-processor kernel rate was measured by the paper
  // with hardware counters (65 Mflops/proc); 16 procs with <10% overhead.
  const auto hyglac = simnet::hyglac();
  TextTable model({"row", "modelled", "paper"});
  const double per_proc = hyglac.tree_flops_per_proc;
  model.add_row({"per-processor kernel rate",
                 TextTable::num(per_proc / 1e6, 0) + " Mflops",
                 "somewhat over 65 Mflops"});
  model.add_row({"16-processor throughput (<10% overhead)",
                 TextTable::num(16 * per_proc * 0.92 / 1e6, 0) + " Mflops",
                 "close to 950 Mflops"});
  // 20-hour run flop budget at that rate.
  model.add_row({"20-hour run budget",
                 TextTable::num(16 * per_proc * 0.92 * 72000 / 1e12, 1) + " Tflop",
                 "~68 Tflop (950 Mflops x 20 h)"});
  session.metric("mflops_model_16proc", 16 * per_proc * 0.92 / 1e6);
  session.metric("final_particles", static_cast<double>(p.size()));
  std::printf("Hyglac model rows:\n%s\n", model.to_string().c_str());
  telemetry::sample_now();
  std::printf(
      "Shape checks: remeshing grows the particle count (57k -> 360k in the\n"
      "paper); each vortex interaction costs ~%dx the 38-flop gravity kernel,\n"
      "matching the paper's 'substantially more complex' interaction.\n",
      kFlopsPerVortexInteraction / 38);
  return 0;
}
