// report_check — drive one bench harness at smoke size and validate its
// machine-readable output.
//
//   report_check <bench-executable> <name>
//
// Runs the harness with HOTLIB_BENCH_TINY=1 (tiny problem sizes) and
// HOTLIB_REPORT_DIR pointing at the working directory, then strict-parses
// the BENCH_<name>.json it must produce and checks the run-report schema:
// required keys, types, and basic sanity (non-negative times, phase list
// consistent, counter block complete). Exit status is the test verdict —
// this is the bench-smoke ctest slice, so every harness keeps producing a
// valid report as the library evolves.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/counters.hpp"
#include "telemetry/json.hpp"

using namespace hotlib::telemetry;

namespace {

int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "report_check: FAIL: %s\n", what.c_str());
  ++g_failures;
}

const JsonValue* need(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(std::string("missing key \"") + key + "\"");
  return v;
}

double need_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = need(obj, key);
  if (v == nullptr) return 0.0;
  if (!v->is_number()) {
    fail(std::string("\"") + key + "\" is not a number");
    return 0.0;
  }
  return v->as_number();
}

std::string need_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = need(obj, key);
  if (v == nullptr || !v->is_string()) {
    fail(std::string("\"") + key + "\" is not a string");
    return {};
  }
  return v->as_string();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: report_check <bench-executable> <name>\n");
    return 2;
  }
  const std::string exe = argv[1];
  const std::string name = argv[2];

  setenv("HOTLIB_BENCH_TINY", "1", 1);
  setenv("HOTLIB_REPORT_DIR", ".", 1);
  const std::string report = std::string("BENCH_") + name + ".json";
  std::remove(report.c_str());

  const int rc = std::system((exe + " > /dev/null").c_str());
  if (rc != 0) {
    fail(exe + " exited with status " + std::to_string(rc));
    return 1;
  }

  std::ifstream in(report);
  if (!in) {
    fail(report + " was not written");
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  const JsonParseResult parsed = json_parse(buf.str());
  if (!parsed.ok) {
    fail(report + " is not strict JSON: " + parsed.error);
    return 1;
  }
  const JsonValue& root = parsed.value;
  if (!root.is_object()) {
    fail(report + ": top level is not an object");
    return 1;
  }

  if (need_string(root, "schema") != "hotlib-run-report-v1")
    fail("schema id is not hotlib-run-report-v1");
  if (need_string(root, "name") != name)
    fail("report name does not match harness name " + name);
  if (need_number(root, "nranks") < 1) fail("nranks < 1");
  if (need_number(root, "wall_seconds") < 0) fail("wall_seconds < 0");
  if (need_number(root, "modelled_seconds") < 0) fail("modelled_seconds < 0");
  if (need_number(root, "interactions") < 0) fail("interactions < 0");
  if (need_number(root, "flops") < 0) fail("flops < 0");

  // Phase entries: every listed phase ran (calls >= 1) with sane times.
  if (const JsonValue* phases = need(root, "phases")) {
    if (!phases->is_array()) {
      fail("\"phases\" is not an array");
    } else {
      for (const JsonValue& p : phases->as_array()) {
        if (!p.is_object()) {
          fail("phase entry is not an object");
          continue;
        }
        if (need_string(p, "name").empty()) fail("phase with empty name");
        if (need_number(p, "calls") < 1) fail("phase listed with zero calls");
        if (need_number(p, "wall_seconds") < 0) fail("phase wall_seconds < 0");
        if (need_number(p, "imbalance") < 1.0 - 1e-9) fail("phase imbalance < 1");
      }
    }
  }

  // Counter block must carry every registered counter (exporters iterate the
  // enum, so a missing key means the name table and enum diverged).
  if (const JsonValue* counters = need(root, "counters")) {
    if (!counters->is_object()) {
      fail("\"counters\" is not an object");
    } else {
      for (int i = 0; i < kCounterCount; ++i) {
        const char* key = counter_name(static_cast<Counter>(i));
        if (need_number(*counters, key) < 0) fail(std::string("counter ") + key + " < 0");
      }
    }
  }

  if (const JsonValue* metrics = need(root, "metrics")) {
    if (!metrics->is_object()) fail("\"metrics\" is not an object");
  }

  // Health-sampler timeseries: columnar per-rank series where every column
  // has the same length and every registered gauge has a track. The session
  // always commits a final snapshot, so at least one series must exist.
  if (const JsonValue* ts = need(root, "timeseries")) {
    if (!ts->is_array()) {
      fail("\"timeseries\" is not an array");
    } else {
      if (ts->as_array().empty()) fail("timeseries has no rank series");
      for (const JsonValue& s : ts->as_array()) {
        if (!s.is_object()) {
          fail("timeseries entry is not an object");
          continue;
        }
        if (need_number(s, "rank") < 0) fail("timeseries rank < 0");
        if (need_number(s, "stride_ticks") < 1) fail("timeseries stride_ticks < 1");
        std::size_t nsamples = 0;
        const JsonValue* tick = need(s, "tick");
        if (tick != nullptr && tick->is_array()) {
          nsamples = tick->as_array().size();
          if (nsamples == 0) fail("timeseries series with zero samples");
        } else {
          fail("timeseries \"tick\" is not an array");
        }
        for (const char* col : {"wall_s", "virt_s"}) {
          const JsonValue* v = need(s, col);
          if (v == nullptr || !v->is_array() || v->as_array().size() != nsamples)
            fail(std::string("timeseries \"") + col + "\" missing or length mismatch");
        }
        const JsonValue* gauges = need(s, "gauges");
        if (gauges == nullptr || !gauges->is_object()) {
          fail("timeseries \"gauges\" is not an object");
          continue;
        }
        for (int i = 0; i < kGaugeCount; ++i) {
          const char* key = gauge_name(static_cast<Gauge>(i));
          const JsonValue* track = gauges->find(key);
          if (track == nullptr || !track->is_array() || track->as_array().size() != nsamples)
            fail(std::string("gauge track ") + key + " missing or length mismatch");
        }
      }
    }
  }

  if (g_failures == 0) {
    std::printf("report_check: %s OK\n", report.c_str());
    return 0;
  }
  return 1;
}
