file(REMOVE_RECURSE
  "CMakeFiles/bench_abm.dir/bench_abm.cpp.o"
  "CMakeFiles/bench_abm.dir/bench_abm.cpp.o.d"
  "bench_abm"
  "bench_abm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
