# Empty dependencies file for bench_abm.
# This may be replaced when dependencies are built.
