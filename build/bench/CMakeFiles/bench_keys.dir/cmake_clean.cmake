file(REMOVE_RECURSE
  "CMakeFiles/bench_keys.dir/bench_keys.cpp.o"
  "CMakeFiles/bench_keys.dir/bench_keys.cpp.o.d"
  "bench_keys"
  "bench_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
