# Empty dependencies file for bench_keys.
# This may be replaced when dependencies are built.
