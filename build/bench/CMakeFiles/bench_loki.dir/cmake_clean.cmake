file(REMOVE_RECURSE
  "CMakeFiles/bench_loki.dir/bench_loki.cpp.o"
  "CMakeFiles/bench_loki.dir/bench_loki.cpp.o.d"
  "bench_loki"
  "bench_loki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
