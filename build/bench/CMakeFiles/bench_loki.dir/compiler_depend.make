# Empty compiler generated dependencies file for bench_loki.
# This may be replaced when dependencies are built.
