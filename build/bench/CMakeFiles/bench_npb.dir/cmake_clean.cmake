file(REMOVE_RECURSE
  "CMakeFiles/bench_npb.dir/bench_npb.cpp.o"
  "CMakeFiles/bench_npb.dir/bench_npb.cpp.o.d"
  "bench_npb"
  "bench_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
