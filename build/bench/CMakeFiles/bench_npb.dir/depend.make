# Empty dependencies file for bench_npb.
# This may be replaced when dependencies are built.
