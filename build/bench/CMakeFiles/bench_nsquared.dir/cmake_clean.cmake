file(REMOVE_RECURSE
  "CMakeFiles/bench_nsquared.dir/bench_nsquared.cpp.o"
  "CMakeFiles/bench_nsquared.dir/bench_nsquared.cpp.o.d"
  "bench_nsquared"
  "bench_nsquared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nsquared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
