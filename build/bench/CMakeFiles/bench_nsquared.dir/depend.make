# Empty dependencies file for bench_nsquared.
# This may be replaced when dependencies are built.
