file(REMOVE_RECURSE
  "CMakeFiles/bench_price.dir/bench_price.cpp.o"
  "CMakeFiles/bench_price.dir/bench_price.cpp.o.d"
  "bench_price"
  "bench_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
