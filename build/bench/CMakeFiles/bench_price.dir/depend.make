# Empty dependencies file for bench_price.
# This may be replaced when dependencies are built.
