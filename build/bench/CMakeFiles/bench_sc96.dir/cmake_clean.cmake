file(REMOVE_RECURSE
  "CMakeFiles/bench_sc96.dir/bench_sc96.cpp.o"
  "CMakeFiles/bench_sc96.dir/bench_sc96.cpp.o.d"
  "bench_sc96"
  "bench_sc96.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sc96.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
