# Empty dependencies file for bench_sc96.
# This may be replaced when dependencies are built.
