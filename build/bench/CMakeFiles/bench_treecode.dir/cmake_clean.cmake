file(REMOVE_RECURSE
  "CMakeFiles/bench_treecode.dir/bench_treecode.cpp.o"
  "CMakeFiles/bench_treecode.dir/bench_treecode.cpp.o.d"
  "bench_treecode"
  "bench_treecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
