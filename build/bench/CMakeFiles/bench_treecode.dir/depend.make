# Empty dependencies file for bench_treecode.
# This may be replaced when dependencies are built.
