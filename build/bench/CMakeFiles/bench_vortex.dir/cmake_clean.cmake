file(REMOVE_RECURSE
  "CMakeFiles/bench_vortex.dir/bench_vortex.cpp.o"
  "CMakeFiles/bench_vortex.dir/bench_vortex.cpp.o.d"
  "bench_vortex"
  "bench_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
