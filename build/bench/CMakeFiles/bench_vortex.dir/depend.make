# Empty dependencies file for bench_vortex.
# This may be replaced when dependencies are built.
