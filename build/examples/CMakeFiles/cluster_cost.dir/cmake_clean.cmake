file(REMOVE_RECURSE
  "CMakeFiles/cluster_cost.dir/cluster_cost.cpp.o"
  "CMakeFiles/cluster_cost.dir/cluster_cost.cpp.o.d"
  "cluster_cost"
  "cluster_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
