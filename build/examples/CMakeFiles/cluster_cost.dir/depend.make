# Empty dependencies file for cluster_cost.
# This may be replaced when dependencies are built.
