file(REMOVE_RECURSE
  "CMakeFiles/cosmo_sim.dir/cosmo_sim.cpp.o"
  "CMakeFiles/cosmo_sim.dir/cosmo_sim.cpp.o.d"
  "cosmo_sim"
  "cosmo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
