# Empty compiler generated dependencies file for cosmo_sim.
# This may be replaced when dependencies are built.
