file(REMOVE_RECURSE
  "CMakeFiles/sph_shock.dir/sph_shock.cpp.o"
  "CMakeFiles/sph_shock.dir/sph_shock.cpp.o.d"
  "sph_shock"
  "sph_shock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sph_shock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
