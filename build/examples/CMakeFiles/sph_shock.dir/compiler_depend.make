# Empty compiler generated dependencies file for sph_shock.
# This may be replaced when dependencies are built.
