file(REMOVE_RECURSE
  "CMakeFiles/vortex_rings.dir/vortex_rings.cpp.o"
  "CMakeFiles/vortex_rings.dir/vortex_rings.cpp.o.d"
  "vortex_rings"
  "vortex_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vortex_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
