# Empty compiler generated dependencies file for vortex_rings.
# This may be replaced when dependencies are built.
