
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosmo/checkpoint.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/checkpoint.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/checkpoint.cpp.o.d"
  "/root/repo/src/cosmo/correlate.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/correlate.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/correlate.cpp.o.d"
  "/root/repo/src/cosmo/expansion.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/expansion.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/expansion.cpp.o.d"
  "/root/repo/src/cosmo/fof.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/fof.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/fof.cpp.o.d"
  "/root/repo/src/cosmo/ics.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/ics.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/ics.cpp.o.d"
  "/root/repo/src/cosmo/power_spectrum.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/power_spectrum.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/power_spectrum.cpp.o.d"
  "/root/repo/src/cosmo/project.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/project.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/project.cpp.o.d"
  "/root/repo/src/cosmo/simulation.cpp" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/simulation.cpp.o" "gcc" "src/cosmo/CMakeFiles/hotlib_cosmo.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gravity/CMakeFiles/hotlib_gravity.dir/DependInfo.cmake"
  "/root/repo/build/src/hot/CMakeFiles/hotlib_hot.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/hotlib_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/parc/CMakeFiles/hotlib_parc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotlib_util.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/hotlib_morton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
