file(REMOVE_RECURSE
  "CMakeFiles/hotlib_cosmo.dir/checkpoint.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/correlate.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/correlate.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/expansion.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/expansion.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/fof.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/fof.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/ics.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/ics.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/power_spectrum.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/power_spectrum.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/project.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/project.cpp.o.d"
  "CMakeFiles/hotlib_cosmo.dir/simulation.cpp.o"
  "CMakeFiles/hotlib_cosmo.dir/simulation.cpp.o.d"
  "libhotlib_cosmo.a"
  "libhotlib_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
