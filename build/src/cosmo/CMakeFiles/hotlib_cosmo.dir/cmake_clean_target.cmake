file(REMOVE_RECURSE
  "libhotlib_cosmo.a"
)
