# Empty dependencies file for hotlib_cosmo.
# This may be replaced when dependencies are built.
