file(REMOVE_RECURSE
  "CMakeFiles/hotlib_fft.dir/fft.cpp.o"
  "CMakeFiles/hotlib_fft.dir/fft.cpp.o.d"
  "CMakeFiles/hotlib_fft.dir/slab_fft.cpp.o"
  "CMakeFiles/hotlib_fft.dir/slab_fft.cpp.o.d"
  "libhotlib_fft.a"
  "libhotlib_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
