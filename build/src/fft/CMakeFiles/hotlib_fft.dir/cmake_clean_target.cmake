file(REMOVE_RECURSE
  "libhotlib_fft.a"
)
