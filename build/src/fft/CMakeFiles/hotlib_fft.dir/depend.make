# Empty dependencies file for hotlib_fft.
# This may be replaced when dependencies are built.
