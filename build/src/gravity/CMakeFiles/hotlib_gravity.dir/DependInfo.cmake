
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gravity/abm_forces.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/abm_forces.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/abm_forces.cpp.o.d"
  "/root/repo/src/gravity/direct.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/direct.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/direct.cpp.o.d"
  "/root/repo/src/gravity/evaluator.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/evaluator.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/evaluator.cpp.o.d"
  "/root/repo/src/gravity/ewald.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/ewald.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/ewald.cpp.o.d"
  "/root/repo/src/gravity/integrator.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/integrator.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/integrator.cpp.o.d"
  "/root/repo/src/gravity/kernels.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/kernels.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/kernels.cpp.o.d"
  "/root/repo/src/gravity/models.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/models.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/models.cpp.o.d"
  "/root/repo/src/gravity/parallel.cpp" "src/gravity/CMakeFiles/hotlib_gravity.dir/parallel.cpp.o" "gcc" "src/gravity/CMakeFiles/hotlib_gravity.dir/parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hot/CMakeFiles/hotlib_hot.dir/DependInfo.cmake"
  "/root/repo/build/src/parc/CMakeFiles/hotlib_parc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotlib_util.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/hotlib_morton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
