file(REMOVE_RECURSE
  "CMakeFiles/hotlib_gravity.dir/abm_forces.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/abm_forces.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/direct.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/direct.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/evaluator.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/evaluator.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/ewald.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/ewald.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/integrator.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/integrator.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/kernels.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/kernels.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/models.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/models.cpp.o.d"
  "CMakeFiles/hotlib_gravity.dir/parallel.cpp.o"
  "CMakeFiles/hotlib_gravity.dir/parallel.cpp.o.d"
  "libhotlib_gravity.a"
  "libhotlib_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
