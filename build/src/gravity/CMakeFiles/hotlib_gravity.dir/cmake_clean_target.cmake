file(REMOVE_RECURSE
  "libhotlib_gravity.a"
)
