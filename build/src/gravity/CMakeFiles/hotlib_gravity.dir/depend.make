# Empty dependencies file for hotlib_gravity.
# This may be replaced when dependencies are built.
