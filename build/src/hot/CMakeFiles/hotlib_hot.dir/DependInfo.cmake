
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hot/decompose.cpp" "src/hot/CMakeFiles/hotlib_hot.dir/decompose.cpp.o" "gcc" "src/hot/CMakeFiles/hotlib_hot.dir/decompose.cpp.o.d"
  "/root/repo/src/hot/dtree.cpp" "src/hot/CMakeFiles/hotlib_hot.dir/dtree.cpp.o" "gcc" "src/hot/CMakeFiles/hotlib_hot.dir/dtree.cpp.o.d"
  "/root/repo/src/hot/let.cpp" "src/hot/CMakeFiles/hotlib_hot.dir/let.cpp.o" "gcc" "src/hot/CMakeFiles/hotlib_hot.dir/let.cpp.o.d"
  "/root/repo/src/hot/traverse.cpp" "src/hot/CMakeFiles/hotlib_hot.dir/traverse.cpp.o" "gcc" "src/hot/CMakeFiles/hotlib_hot.dir/traverse.cpp.o.d"
  "/root/repo/src/hot/tree.cpp" "src/hot/CMakeFiles/hotlib_hot.dir/tree.cpp.o" "gcc" "src/hot/CMakeFiles/hotlib_hot.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/morton/CMakeFiles/hotlib_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/parc/CMakeFiles/hotlib_parc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotlib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
