file(REMOVE_RECURSE
  "CMakeFiles/hotlib_hot.dir/decompose.cpp.o"
  "CMakeFiles/hotlib_hot.dir/decompose.cpp.o.d"
  "CMakeFiles/hotlib_hot.dir/dtree.cpp.o"
  "CMakeFiles/hotlib_hot.dir/dtree.cpp.o.d"
  "CMakeFiles/hotlib_hot.dir/let.cpp.o"
  "CMakeFiles/hotlib_hot.dir/let.cpp.o.d"
  "CMakeFiles/hotlib_hot.dir/traverse.cpp.o"
  "CMakeFiles/hotlib_hot.dir/traverse.cpp.o.d"
  "CMakeFiles/hotlib_hot.dir/tree.cpp.o"
  "CMakeFiles/hotlib_hot.dir/tree.cpp.o.d"
  "libhotlib_hot.a"
  "libhotlib_hot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_hot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
