file(REMOVE_RECURSE
  "libhotlib_hot.a"
)
