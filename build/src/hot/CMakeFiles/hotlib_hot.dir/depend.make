# Empty dependencies file for hotlib_hot.
# This may be replaced when dependencies are built.
