file(REMOVE_RECURSE
  "CMakeFiles/hotlib_machine.dir/prices.cpp.o"
  "CMakeFiles/hotlib_machine.dir/prices.cpp.o.d"
  "libhotlib_machine.a"
  "libhotlib_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
