file(REMOVE_RECURSE
  "libhotlib_machine.a"
)
