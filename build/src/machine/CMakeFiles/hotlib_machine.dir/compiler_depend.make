# Empty compiler generated dependencies file for hotlib_machine.
# This may be replaced when dependencies are built.
