file(REMOVE_RECURSE
  "CMakeFiles/hotlib_morton.dir/hilbert.cpp.o"
  "CMakeFiles/hotlib_morton.dir/hilbert.cpp.o.d"
  "CMakeFiles/hotlib_morton.dir/key.cpp.o"
  "CMakeFiles/hotlib_morton.dir/key.cpp.o.d"
  "libhotlib_morton.a"
  "libhotlib_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
