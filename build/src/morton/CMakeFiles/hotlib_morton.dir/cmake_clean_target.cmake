file(REMOVE_RECURSE
  "libhotlib_morton.a"
)
