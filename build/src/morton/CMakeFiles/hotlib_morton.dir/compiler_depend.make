# Empty compiler generated dependencies file for hotlib_morton.
# This may be replaced when dependencies are built.
