file(REMOVE_RECURSE
  "CMakeFiles/hotlib_npb.dir/adi.cpp.o"
  "CMakeFiles/hotlib_npb.dir/adi.cpp.o.d"
  "CMakeFiles/hotlib_npb.dir/cg.cpp.o"
  "CMakeFiles/hotlib_npb.dir/cg.cpp.o.d"
  "CMakeFiles/hotlib_npb.dir/ep.cpp.o"
  "CMakeFiles/hotlib_npb.dir/ep.cpp.o.d"
  "CMakeFiles/hotlib_npb.dir/ft.cpp.o"
  "CMakeFiles/hotlib_npb.dir/ft.cpp.o.d"
  "CMakeFiles/hotlib_npb.dir/is.cpp.o"
  "CMakeFiles/hotlib_npb.dir/is.cpp.o.d"
  "CMakeFiles/hotlib_npb.dir/mg.cpp.o"
  "CMakeFiles/hotlib_npb.dir/mg.cpp.o.d"
  "libhotlib_npb.a"
  "libhotlib_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
