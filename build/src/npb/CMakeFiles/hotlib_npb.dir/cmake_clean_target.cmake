file(REMOVE_RECURSE
  "libhotlib_npb.a"
)
