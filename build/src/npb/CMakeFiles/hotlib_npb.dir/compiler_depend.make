# Empty compiler generated dependencies file for hotlib_npb.
# This may be replaced when dependencies are built.
