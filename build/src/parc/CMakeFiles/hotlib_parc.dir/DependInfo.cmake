
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parc/fabric.cpp" "src/parc/CMakeFiles/hotlib_parc.dir/fabric.cpp.o" "gcc" "src/parc/CMakeFiles/hotlib_parc.dir/fabric.cpp.o.d"
  "/root/repo/src/parc/rank.cpp" "src/parc/CMakeFiles/hotlib_parc.dir/rank.cpp.o" "gcc" "src/parc/CMakeFiles/hotlib_parc.dir/rank.cpp.o.d"
  "/root/repo/src/parc/runtime.cpp" "src/parc/CMakeFiles/hotlib_parc.dir/runtime.cpp.o" "gcc" "src/parc/CMakeFiles/hotlib_parc.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hotlib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
