file(REMOVE_RECURSE
  "CMakeFiles/hotlib_parc.dir/fabric.cpp.o"
  "CMakeFiles/hotlib_parc.dir/fabric.cpp.o.d"
  "CMakeFiles/hotlib_parc.dir/rank.cpp.o"
  "CMakeFiles/hotlib_parc.dir/rank.cpp.o.d"
  "CMakeFiles/hotlib_parc.dir/runtime.cpp.o"
  "CMakeFiles/hotlib_parc.dir/runtime.cpp.o.d"
  "libhotlib_parc.a"
  "libhotlib_parc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_parc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
