file(REMOVE_RECURSE
  "libhotlib_parc.a"
)
