# Empty dependencies file for hotlib_parc.
# This may be replaced when dependencies are built.
