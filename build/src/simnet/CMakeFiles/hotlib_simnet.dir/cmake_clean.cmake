file(REMOVE_RECURSE
  "CMakeFiles/hotlib_simnet.dir/machine.cpp.o"
  "CMakeFiles/hotlib_simnet.dir/machine.cpp.o.d"
  "libhotlib_simnet.a"
  "libhotlib_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
