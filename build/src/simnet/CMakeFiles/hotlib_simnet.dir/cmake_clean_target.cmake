file(REMOVE_RECURSE
  "libhotlib_simnet.a"
)
