# Empty dependencies file for hotlib_simnet.
# This may be replaced when dependencies are built.
