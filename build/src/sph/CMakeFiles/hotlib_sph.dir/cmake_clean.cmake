file(REMOVE_RECURSE
  "CMakeFiles/hotlib_sph.dir/sph.cpp.o"
  "CMakeFiles/hotlib_sph.dir/sph.cpp.o.d"
  "libhotlib_sph.a"
  "libhotlib_sph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_sph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
