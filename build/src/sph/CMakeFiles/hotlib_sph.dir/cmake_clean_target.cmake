file(REMOVE_RECURSE
  "libhotlib_sph.a"
)
