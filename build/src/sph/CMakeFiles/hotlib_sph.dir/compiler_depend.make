# Empty compiler generated dependencies file for hotlib_sph.
# This may be replaced when dependencies are built.
