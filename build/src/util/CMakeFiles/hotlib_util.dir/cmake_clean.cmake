file(REMOVE_RECURSE
  "CMakeFiles/hotlib_util.dir/pgm.cpp.o"
  "CMakeFiles/hotlib_util.dir/pgm.cpp.o.d"
  "CMakeFiles/hotlib_util.dir/rng.cpp.o"
  "CMakeFiles/hotlib_util.dir/rng.cpp.o.d"
  "CMakeFiles/hotlib_util.dir/snapshot.cpp.o"
  "CMakeFiles/hotlib_util.dir/snapshot.cpp.o.d"
  "CMakeFiles/hotlib_util.dir/table.cpp.o"
  "CMakeFiles/hotlib_util.dir/table.cpp.o.d"
  "libhotlib_util.a"
  "libhotlib_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
