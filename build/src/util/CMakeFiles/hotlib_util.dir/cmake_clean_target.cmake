file(REMOVE_RECURSE
  "libhotlib_util.a"
)
