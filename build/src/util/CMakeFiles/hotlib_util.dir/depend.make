# Empty dependencies file for hotlib_util.
# This may be replaced when dependencies are built.
