file(REMOVE_RECURSE
  "CMakeFiles/hotlib_vortex.dir/remesh.cpp.o"
  "CMakeFiles/hotlib_vortex.dir/remesh.cpp.o.d"
  "CMakeFiles/hotlib_vortex.dir/vpm.cpp.o"
  "CMakeFiles/hotlib_vortex.dir/vpm.cpp.o.d"
  "libhotlib_vortex.a"
  "libhotlib_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlib_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
