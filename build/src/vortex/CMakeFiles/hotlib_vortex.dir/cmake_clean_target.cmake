file(REMOVE_RECURSE
  "libhotlib_vortex.a"
)
