# Empty dependencies file for hotlib_vortex.
# This may be replaced when dependencies are built.
