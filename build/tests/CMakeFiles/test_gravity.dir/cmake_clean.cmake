file(REMOVE_RECURSE
  "CMakeFiles/test_gravity.dir/test_gravity.cpp.o"
  "CMakeFiles/test_gravity.dir/test_gravity.cpp.o.d"
  "test_gravity"
  "test_gravity.pdb"
  "test_gravity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
