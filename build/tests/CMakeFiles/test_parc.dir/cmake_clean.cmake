file(REMOVE_RECURSE
  "CMakeFiles/test_parc.dir/test_parc.cpp.o"
  "CMakeFiles/test_parc.dir/test_parc.cpp.o.d"
  "test_parc"
  "test_parc.pdb"
  "test_parc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
