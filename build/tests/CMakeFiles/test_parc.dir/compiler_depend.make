# Empty compiler generated dependencies file for test_parc.
# This may be replaced when dependencies are built.
