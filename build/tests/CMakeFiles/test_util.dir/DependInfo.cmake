
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/test_util.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gravity/CMakeFiles/hotlib_gravity.dir/DependInfo.cmake"
  "/root/repo/build/src/hot/CMakeFiles/hotlib_hot.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/hotlib_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/hotlib_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/parc/CMakeFiles/hotlib_parc.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/hotlib_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hotlib_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
