# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_parc[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_hot[1]_include.cmake")
include("/root/repo/build/tests/test_gravity[1]_include.cmake")
include("/root/repo/build/tests/test_dtree[1]_include.cmake")
include("/root/repo/build/tests/test_cosmo[1]_include.cmake")
include("/root/repo/build/tests/test_vortex[1]_include.cmake")
include("/root/repo/build/tests/test_sph[1]_include.cmake")
include("/root/repo/build/tests/test_npb[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_expansion[1]_include.cmake")
