// cluster_cost — the price/performance side of the paper: prints Table 1
// (Loki parts list), Table 2 (August 1997 spot prices), the $28k spot-price
// system, and the $/Mflop arithmetic behind the Gordon Bell
// price/performance entry.
//
// Usage: cluster_cost
#include <cstdio>

#include "machine/prices.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"

using namespace hotlib;

namespace {

void print_parts(const char* title, const std::vector<machine::PriceLine>& lines) {
  std::printf("%s\n", title);
  TextTable t({"Qty", "Price", "Ext.", "Description"});
  for (const auto& l : lines)
    t.add_row({TextTable::integer(l.quantity), TextTable::num(l.unit_price, 0),
               TextTable::num(l.extended(), 0), l.description});
  t.add_row({"", "", TextTable::num(machine::total_price(lines), 0), "Total"});
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  print_parts("Table 1: Loki architecture and price (September 1996)",
              machine::loki_parts_sept1996());
  print_parts("Table 2: spot prices (August 1997, unit prices)",
              machine::spot_prices_aug1997());
  print_parts("16-processor system at August 1997 spot prices",
              machine::system_aug1997());

  std::printf("Price/performance arithmetic\n");
  TextTable t({"System", "Cost ($)", "Sustained", "$/Mflop", "Gflops/M$"});
  auto row = [&](const char* name, double cost, double flops) {
    t.add_row({name, TextTable::num(cost, 0), TextTable::num(flops / 1e6, 0) + " Mflops",
               TextTable::num(machine::dollars_per_mflop(cost, flops), 1),
               TextTable::num(machine::gflops_per_million_dollars(cost, flops), 1)});
  };
  row("Loki, 10-day production run", 51379, 879e6);
  row("Loki, first 30 steps", 51379, 1.19e9);
  row("Hyglac, vortex method", 50498, 950e6);
  row("Loki+Hyglac at SC'96", 103000, 2.19e9);
  const double aug97 = machine::total_price(machine::system_aug1997());
  row("Aug-1997 spot-price rebuild", aug97, 1.19e9);
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "The paper quotes $58/Mflop (Loki production), $47/Mflop (SC'96) and\n"
      "projects a further ~2x improvement at the August 1997 prices — the\n"
      "last row reproduces that projection.\n");
  return 0;
}
