// cosmo_sim — a laptop-scale version of the paper's cosmology runs
// (the 322M-particle ASCI Red simulation and the 9.75M-particle Loki
// simulation), exercising the full production pipeline:
//
//   FFT initial conditions from a CDM power spectrum -> spherical region
//   with 8x-mass buffer -> Hubble flow -> parallel treecode evolution with
//   weighted decomposition + LET exchange -> striped snapshot output ->
//   FoF halo catalog -> projected log-density image (the paper's Figures
//   1 and 2).
//
// Usage: cosmo_sim [grid_n] [steps] [ranks]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cosmo/fof.hpp"
#include "cosmo/project.hpp"
#include "cosmo/simulation.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "util/snapshot.hpp"
#include "util/timer.hpp"

using namespace hotlib;

int main(int argc, char** argv) {
  const int grid_n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

  cosmo::SimConfig cfg;
  cfg.ics.grid_n = grid_n;
  cfg.ics.box_mpc = 100.0;          // paper: 100 Mpc sphere on Loki
  cfg.ics.spectrum.amplitude = 60.0;
  cfg.ics.growth = 4.0;
  cfg.hubble = 0.02;
  cfg.dt = 0.8;
  cfg.mac.theta = 0.35;

  std::printf("cosmo_sim: %d^3 ICs, spherical region + 8x buffer, %d steps, %d ranks\n",
              grid_n, steps, ranks);

  parc::Runtime::run(ranks, [&](parc::Rank& r) {
    WallTimer wall;
    cosmo::CosmologySim sim(r, cfg);
    if (r.rank() == 0)
      std::printf("  %llu particles (%.1f%% high-res sphere)\n\n",
                  static_cast<unsigned long long>(sim.total_bodies()),
                  100.0);

    InteractionTally cumulative;
    for (int s = 0; s < steps; ++s) {
      const cosmo::StepStats st = sim.step();
      cumulative += st.tally;
      if (r.rank() == 0)
        std::printf(
            "  step %2d: %10llu interactions, imbalance %.2f, LET %5zu cells, "
            "E = %+.4e\n",
            s, static_cast<unsigned long long>(st.tally.interactions()),
            st.imbalance, st.let_cells, st.kinetic + st.potential);
    }

    // Gather to rank 0 for snapshot, halo catalog and imaging.
    hot::Bodies all = sim.gather_all();
    if (r.rank() == 0) {
      const double secs = wall.seconds();
      std::printf("\n  total: %.2e flops in %.1f s  =>  %.1f Mflops (this host)\n",
                  cumulative.flops(), secs, cumulative.flops() / secs / 1e6);

      // Striped snapshot (the paper wrote files striped over 16 disks).
      const auto dir = std::filesystem::temp_directory_path() / "hotlib_cosmo";
      std::filesystem::create_directories(dir);
      std::vector<double> flat;
      flat.reserve(all.size() * 3);
      for (const auto& x : all.pos) {
        flat.push_back(x.x);
        flat.push_back(x.y);
        flat.push_back(x.z);
      }
      SnapshotHeader h;
      h.particle_count = all.size();
      h.step = static_cast<std::uint64_t>(steps);
      SnapshotWriter writer((dir / "snap").string(), /*stripes=*/16);
      const bool ok = writer.write(h, pack_doubles(flat));
      std::printf("  snapshot: %zu bodies striped over 16 files under %s (%s)\n",
                  all.size(), dir.c_str(), ok ? "ok" : "FAILED");

      // Halo catalog.
      hot::Tree tree;
      tree.build(all.pos, all.mass, gravity::fit_domain(all), {});
      const double ll = 0.2 * cfg.ics.box_mpc / grid_n;  // b = 0.2 mean spacing
      const auto fof = cosmo::friends_of_friends(all, tree, ll, 10);
      std::printf("  FoF: %zu halos with >= 10 particles", fof.halos.size());
      if (!fof.halos.empty())
        std::printf(" (largest: %zu particles, M = %.3e)", fof.halos[0].size,
                    fof.halos[0].mass);
      std::printf("\n");

      // Projected log-density image (Figure 1 / Figure 2 of the paper).
      PgmImage img(256, 256);
      cosmo::project_density(all, /*axis=*/2, 0.0, cfg.ics.box_mpc, img);
      const std::string png = (dir / "projected_density.pgm").string();
      img.write_log(png);
      std::printf("  image: log projected density -> %s\n", png.c_str());
    }
  });
  std::printf("done.\n");
  return 0;
}
