// quickstart — the smallest end-to-end use of the hotlib public API.
//
// Builds a Plummer sphere, computes gravitational forces three ways (direct
// O(N^2), serial hashed-oct-tree, parallel treecode on 4 ranks), compares
// accuracy and interaction counts, then integrates a few leapfrog steps and
// reports energy conservation.
//
// Usage: quickstart [n_particles]
#include <cstdio>
#include <cstdlib>

#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/integrator.hpp"
#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "parc/parc.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace hotlib;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  std::printf("hotlib quickstart: %zu-body Plummer sphere\n\n", n);

  hot::Bodies bodies = gravity::plummer_sphere(n, /*seed=*/42);
  const morton::Domain domain = gravity::fit_domain(bodies);
  const double eps = 0.02;

  // 1. Direct O(N^2) reference.
  WallTimer t_direct;
  std::vector<Vec3d> ref_acc(n);
  std::vector<double> ref_pot(n);
  const InteractionTally direct =
      gravity::direct_forces(bodies.pos, bodies.mass, eps, 1.0, ref_acc, ref_pot);
  std::printf("direct:   %12llu interactions  %8.3f s  %7.1f Mflops\n",
              static_cast<unsigned long long>(direct.interactions()),
              t_direct.seconds(), direct.flops() / t_direct.seconds() / 1e6);

  // 2. Serial treecode.
  WallTimer t_tree;
  hot::Tree tree;
  tree.build(bodies.pos, bodies.mass, domain, {.bucket_size = 16});
  gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35}, .softening = eps};
  bodies.clear_forces();
  const InteractionTally tally = gravity::tree_forces(
      tree, bodies.pos, bodies.mass, cfg, bodies.acc, bodies.pot);
  std::printf("treecode: %12llu interactions  %8.3f s  %7.1f Mflops  (%.1fx fewer)\n",
              static_cast<unsigned long long>(tally.interactions()), t_tree.seconds(),
              tally.flops() / t_tree.seconds() / 1e6,
              static_cast<double>(direct.interactions()) /
                  static_cast<double>(tally.interactions()));

  RunningStats err, mag;
  for (std::size_t i = 0; i < n; ++i) {
    err.add(norm(bodies.acc[i] - ref_acc[i]));
    mag.add(norm(ref_acc[i]));
  }
  std::printf("          RMS force error vs direct: %.2e (relative)\n\n",
              err.rms() / mag.rms());

  // 3. Parallel treecode on 4 ranks (decompose -> LET exchange -> evaluate).
  parc::Runtime::run(4, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 4)
      local.append_from(bodies, i);
    const auto result = gravity::parallel_tree_forces(r, local, domain, cfg);
    const auto total = r.allreduce(result.tally.interactions(), parc::Sum{});
    if (r.rank() == 0)
      std::printf(
          "parallel: %12llu interactions on 4 ranks; imbalance %.2f, "
          "LET %zu cells + %zu bodies imported\n",
          static_cast<unsigned long long>(total), result.decomp.imbalance(),
          result.let_cells, result.let_bodies);
  });

  // 4. A few leapfrog steps with energy tracking.
  bodies.clear_forces();
  gravity::direct_forces(bodies.pos, bodies.mass, eps, 1.0, bodies.acc, bodies.pot);
  const double e0 =
      gravity::kinetic_energy(bodies) + gravity::potential_energy(bodies);
  const double dt = 0.01;
  for (int s = 0; s < 20; ++s) {
    gravity::kick(bodies, dt / 2);
    gravity::drift(bodies, dt);
    bodies.clear_forces();
    tree.build(bodies.pos, bodies.mass, gravity::fit_domain(bodies), {});
    gravity::tree_forces(tree, bodies.pos, bodies.mass, cfg, bodies.acc, bodies.pot);
    gravity::kick(bodies, dt / 2);
  }
  const double e1 =
      gravity::kinetic_energy(bodies) + gravity::potential_energy(bodies);
  std::printf("\nleapfrog: 20 steps, energy drift %.2e (relative)\n",
              std::abs(e1 - e0) / std::abs(e0));
  std::printf("done.\n");
  return 0;
}
