// sph_shock — the third application the paper implemented on the same
// library ("Smoothed Particle Hydrodynamics is implemented with 3000
// lines"): a Sod shock tube driven by the SPH module, printing the density
// and velocity profile along the tube so the shock / contact / rarefaction
// structure is visible.
//
// Usage: sph_shock [nx_left] [steps]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sph/sph.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace hotlib;
using namespace hotlib::sph;

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 20;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  SphParticles p = make_sod_tube(nx, 1.0, 0.12);
  const SphConfig cfg{};
  std::printf("sph_shock: Sod tube, %zu particles, %d steps\n", p.size(), steps);
  const double e0 = total_energy(p);

  WallTimer wall;
  for (int s = 0; s < steps; ++s) step(p, 0.002, cfg);
  std::printf("  %.1f s; energy drift %.2e\n\n", wall.seconds(),
              std::abs(total_energy(p) - e0) / e0);

  // Profile in 20 bins along x.
  const int bins = 20;
  std::vector<RunningStats> rho(bins), vx(bins), press(bins);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const int b = std::min(bins - 1, static_cast<int>(p.pos[i].x * bins));
    if (b < 0) continue;
    rho[static_cast<std::size_t>(b)].add(p.rho[i]);
    vx[static_cast<std::size_t>(b)].add(p.vel[i].x);
    press[static_cast<std::size_t>(b)].add(p.press[i]);
  }
  std::printf("  %6s %10s %10s %10s\n", "x", "rho", "v_x", "P");
  for (int b = 0; b < bins; ++b) {
    if (rho[static_cast<std::size_t>(b)].count() == 0) continue;
    std::printf("  %6.3f %10.4f %10.4f %10.4f\n", (b + 0.5) / bins,
                rho[static_cast<std::size_t>(b)].mean(),
                vx[static_cast<std::size_t>(b)].mean(),
                press[static_cast<std::size_t>(b)].mean());
  }
  std::printf("done.\n");
  return 0;
}
