// vortex_rings — the Hyglac experiment at laptop scale: fusion of two vortex
// rings with the vortex particle method on the hashed oct-tree, including
// the paper's remeshing ("the particles are occasionally 'remeshed' in order
// to satisfy the core-overlap condition. This creates additional
// particles...").
//
// Two coaxial-offset rings leapfrog/merge; we track particle growth through
// remeshing, the conserved invariants, and the sustained Mflops (the paper
// counted ~65 Mflops/processor via hardware counters; we count interactions
// times a documented per-interaction flop cost).
//
// Usage: vortex_rings [segments_per_ring] [steps]
#include <cstdio>
#include <cstdlib>

#include "util/timer.hpp"
#include "vortex/remesh.hpp"
#include "vortex/vpm.hpp"

using namespace hotlib;
using namespace hotlib::vortex;

int main(int argc, char** argv) {
  const std::size_t nseg = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 192;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 30;

  // Two rings, slightly offset laterally so the fusion is asymmetric (the
  // classic side-by-side ring-merger setup).
  const double sigma = 0.12;
  VortexParticles a = make_ring(nseg, 1.0, 1.0, {-0.55, 0.0, 0.0}, {0, 0, 1}, sigma);
  VortexParticles b = make_ring(nseg, 1.0, 1.0, {0.55, 0.0, 0.0}, {0, 0, 1}, sigma);
  VortexParticles p = merge(a, b);

  std::printf("vortex_rings: 2 rings x %zu segments, sigma=%.2f, %d steps\n\n", nseg,
              sigma, steps);
  const Vec3d imp0 = p.linear_impulse();
  std::printf("  initial: %zu particles, impulse = (%.3f, %.3f, %.3f)\n", p.size(),
              imp0.x, imp0.y, imp0.z);

  WallTimer wall;
  InteractionTally total;
  const hot::Mac mac{.theta = 0.3};
  const double dt = 0.04;
  for (int s = 0; s < steps; ++s) {
    total += step_rk2(p, dt, mac);
    // Remesh every 10 steps to restore core overlap.
    if ((s + 1) % 10 == 0) {
      const std::size_t before = p.size();
      p = remesh(p, {.overlap = 1.5, .keep_fraction = 1e-4});
      std::printf("  step %2d: remeshed %zu -> %zu particles\n", s + 1, before,
                  p.size());
    }
  }

  const double secs = wall.seconds();
  const Vec3d imp1 = p.linear_impulse();
  double zmean = 0;
  for (const auto& x : p.pos) zmean += x.z;
  zmean /= static_cast<double>(p.size());

  std::printf("\n  final: %zu particles, rings advanced to <z> = %.3f\n", p.size(),
              zmean);
  std::printf("  impulse drift: %.2e (relative)\n",
              norm(imp1 - imp0) / norm(imp0));
  const double flops =
      static_cast<double>(total.interactions()) * kFlopsPerVortexInteraction;
  std::printf("  %.2e vortex interactions (%d flops each) in %.1f s => %.1f Mflops\n",
              static_cast<double>(total.interactions()), kFlopsPerVortexInteraction,
              secs, flops / secs / 1e6);
  std::printf("done.\n");
  return 0;
}
