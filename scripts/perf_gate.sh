#!/bin/sh
# perf_gate.sh — one-command performance gate: configure, build, and run the
# perf-gate ctest slice (every bench harness at tiny sizes checked against
# the committed baselines in bench/baselines/ via hotlib-analyze).
#
#   scripts/perf_gate.sh [build-dir]
#
# Exit status is the gate verdict. See docs/observability.md for the
# tolerance policy and tools/update_baselines.sh for refreshing baselines
# after an intentional behaviour change.
set -eu

build=${1:-build}
src=$(dirname "$0")/..

cmake -B "$build" -S "$src"
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build" -L perf-gate --output-on-failure
