#!/bin/sh
# tsan.sh — build and run the shared-memory parallelism tests under
# ThreadSanitizer: the task-pool unit/stress suite and the bit-exact
# determinism sweep (ctest label `tsan`, see tests/CMakeLists.txt).
#
#   scripts/tsan.sh [build-dir]
#
# Uses a dedicated build dir (default build-tsan) — the sanitizer flavor is
# pinned per build dir by the HOTLIB_SANITIZE_FLAVOR guard in CMakeLists.txt,
# so TSan objects never mix with the regular build/. Bench and examples are
# skipped: TSan's ~5-15x slowdown buys nothing there.
#
# HOTLIB_THREADS is forced above 1 so the parallel paths actually run —
# on a single-core host the pool would otherwise default to serial and the
# sanitizer would have nothing to watch.
set -eu

build=${1:-build-tsan}
src=$(dirname "$0")/..

cmake -B "$build" -S "$src" \
  -DHOTLIB_SANITIZE=thread \
  -DHOTLIB_BUILD_BENCH=OFF \
  -DHOTLIB_BUILD_EXAMPLES=OFF
cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
  --target test_task_pool test_parallel
HOTLIB_THREADS=${HOTLIB_THREADS:-4} \
  ctest --test-dir "$build" -L tsan --output-on-failure
