#include "cosmo/checkpoint.hpp"

#include <cstring>

#include "util/snapshot.hpp"

namespace hotlib::cosmo {

namespace {
// Per-body record layout (POD, 11 doubles + id).
struct BodyRec {
  Vec3d pos, vel, acc;
  double mass, pot, work;
  std::uint64_t id;
};
}  // namespace

bool save_checkpoint(const std::string& base_path, const hot::Bodies& b,
                     const CheckpointInfo& info, std::uint32_t stripes) {
  std::vector<std::uint8_t> payload(b.size() * sizeof(BodyRec));
  for (std::size_t i = 0; i < b.size(); ++i) {
    BodyRec r{b.pos[i], b.vel[i], b.acc[i], b.mass[i], b.pot[i], b.work[i], b.id[i]};
    std::memcpy(payload.data() + i * sizeof(BodyRec), &r, sizeof r);
  }
  SnapshotHeader h;
  h.particle_count = b.size();
  h.step = info.step;
  h.time = info.time;
  return SnapshotWriter(base_path, stripes).write(h, payload);
}

bool load_checkpoint(const std::string& base_path, hot::Bodies& b,
                     CheckpointInfo& info) {
  SnapshotHeader h;
  std::vector<std::uint8_t> payload;
  if (!SnapshotReader(base_path).read(h, payload)) return false;
  if (payload.size() != h.particle_count * sizeof(BodyRec)) return false;
  b.resize(h.particle_count);
  for (std::size_t i = 0; i < h.particle_count; ++i) {
    BodyRec r;
    std::memcpy(&r, payload.data() + i * sizeof(BodyRec), sizeof r);
    b.pos[i] = r.pos;
    b.vel[i] = r.vel;
    b.acc[i] = r.acc;
    b.mass[i] = r.mass;
    b.pot[i] = r.pot;
    b.work[i] = r.work;
    b.id[i] = r.id;
  }
  info.step = h.step;
  info.time = h.time;
  return true;
}

}  // namespace hotlib::cosmo
