// checkpoint.hpp — checkpoint/restart for long simulations.
//
// The paper's production story is reliability: "Between April 25 and May 8,
// the code ran continuously for 13.5 days, with no restarts" — but a 1000-
// step run is only attempted because a restart *exists*. This module saves
// and restores the full particle state (positions, velocities, masses, ids,
// work weights) plus the simulation clock through the striped 64-bit
// snapshot writer, so a CosmologySim (or any Bodies-based run) can resume
// bit-for-bit.
#pragma once

#include <string>

#include "hot/bodies.hpp"

namespace hotlib::cosmo {

struct CheckpointInfo {
  std::uint64_t step = 0;
  double time = 0.0;
};

// Serialize `b` (+info) under base_path, striped over `stripes` files.
bool save_checkpoint(const std::string& base_path, const hot::Bodies& b,
                     const CheckpointInfo& info, std::uint32_t stripes = 16);

// Restore; returns false on missing files or checksum mismatch.
bool load_checkpoint(const std::string& base_path, hot::Bodies& b,
                     CheckpointInfo& info);

}  // namespace hotlib::cosmo
