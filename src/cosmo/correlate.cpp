#include "cosmo/correlate.hpp"

#include <cmath>
#include <numbers>

namespace hotlib::cosmo {

std::vector<CorrelationBin> two_point_correlation(const hot::Bodies& b,
                                                  const hot::Tree& tree, double box,
                                                  double r_min, double r_max,
                                                  int bins) {
  std::vector<CorrelationBin> out(static_cast<std::size_t>(bins));
  const double lr0 = std::log(r_min), lr1 = std::log(r_max);
  for (int k = 0; k < bins; ++k) {
    out[static_cast<std::size_t>(k)].r_lo = std::exp(lr0 + (lr1 - lr0) * k / bins);
    out[static_cast<std::size_t>(k)].r_hi =
        std::exp(lr0 + (lr1 - lr0) * (k + 1) / bins);
  }

  std::vector<std::uint32_t> cand;
  for (std::size_t i = 0; i < b.size(); ++i) {
    tree.find_within(b.pos[i], r_max, cand);
    for (std::uint32_t j : cand) {
      if (j <= i) continue;  // each pair once
      const double r = norm(b.pos[i] - b.pos[j]);
      if (r < r_min || r >= r_max) continue;
      const int k = static_cast<int>((std::log(r) - lr0) / (lr1 - lr0) * bins);
      if (k >= 0 && k < bins) ++out[static_cast<std::size_t>(k)].pairs;
    }
  }

  // Natural estimator: xi = DD / RR - 1 with RR from the analytic expected
  // pair count of a uniform distribution in the box (edge effects ignored;
  // keep r_max << box).
  const double n = static_cast<double>(b.size());
  const double density = n / (box * box * box);
  for (auto& bin : out) {
    const double shell = 4.0 / 3.0 * std::numbers::pi *
                         (bin.r_hi * bin.r_hi * bin.r_hi - bin.r_lo * bin.r_lo * bin.r_lo);
    const double rr = 0.5 * n * density * shell;  // expected unordered pairs
    bin.xi = rr > 0 ? static_cast<double>(bin.pairs) / rr - 1.0 : 0.0;
  }
  return out;
}

}  // namespace hotlib::cosmo
