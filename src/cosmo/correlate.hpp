// correlate.hpp — two-point correlation statistics.
//
// The science the paper's simulations exist for: "galaxy catalogs will soon
// be available which contain the positions and redshifts of a million or
// more galaxies" — the standard comparison statistic is the two-point
// correlation function xi(r): the excess pair probability over a uniform
// distribution. Pairs are counted with the oct-tree's neighbour search, so
// the estimator stays near O(N) for the short separations of interest.
#pragma once

#include <vector>

#include "hot/bodies.hpp"
#include "hot/tree.hpp"

namespace hotlib::cosmo {

struct CorrelationBin {
  double r_lo = 0, r_hi = 0;
  std::uint64_t pairs = 0;   // data-data pair count DD(r)
  double xi = 0;             // natural estimator DD/RR - 1
};

// xi(r) in logarithmic bins between r_min and r_max inside a cubical volume
// of side `box` (positions assumed inside; no periodic wrap). Uniform RR is
// computed analytically from the shell volumes (good away from edges).
std::vector<CorrelationBin> two_point_correlation(const hot::Bodies& b,
                                                  const hot::Tree& tree, double box,
                                                  double r_min, double r_max,
                                                  int bins);

}  // namespace hotlib::cosmo
