#include "cosmo/expansion.hpp"

#include <cmath>

namespace hotlib::cosmo {

double EdsCosmology::a_of_t(double t) const {
  return std::pow(1.5 * h0_ * t, 2.0 / 3.0);
}

double EdsCosmology::t_of_a(double a) const {
  return std::pow(a, 1.5) * 2.0 / (3.0 * h0_);
}

double EdsCosmology::hubble_of_a(double a) const { return h0_ * std::pow(a, -1.5); }

double EdsCosmology::kick_factor(double t1, double t2) const {
  // int dt (3 H0 t / 2)^{-2/3} = 3 c (t2^{1/3} - t1^{1/3}), c = (1.5 H0)^{-2/3}.
  const double c = std::pow(1.5 * h0_, -2.0 / 3.0);
  return 3.0 * c * (std::cbrt(t2) - std::cbrt(t1));
}

double EdsCosmology::drift_factor(double t1, double t2) const {
  // int dt (3 H0 t / 2)^{-4/3} = 3 c^2 (t1^{-1/3} - t2^{-1/3}).
  const double c = std::pow(1.5 * h0_, -2.0 / 3.0);
  return 3.0 * c * c * (1.0 / std::cbrt(t1) - 1.0 / std::cbrt(t2));
}

}  // namespace hotlib::cosmo
