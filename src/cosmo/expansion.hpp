// expansion.hpp — comoving coordinates in an Einstein-de Sitter background.
//
// The paper's production cosmology integrates comoving equations of motion
// in an expanding background (the alternative to the physical-coordinate
// spherical-region setup used by simulation.hpp). For the Omega = 1
// (Einstein-de Sitter) universe of early-90s CDM simulations everything is
// analytic:
//
//   a(t) = (3 H0 t / 2)^(2/3),    t0 = 2 / (3 H0),    H = H0 a^{-3/2}.
//
// With canonical momentum p = a^2 dx/dt the leapfrog factors are time
// integrals with closed forms:
//
//   kick:   dp = -grad(phi) * K,  K = int dt / a
//   drift:  dx =  p * D,          D = int dt / a^2
//
// where phi is the comoving-coordinate potential of the *perturbation*
// (periodic tinfoil Ewald removes the k=0 background automatically). In
// linear theory the growing mode is D+(a) = a exactly, which the test suite
// verifies end to end against the Ewald periodic solver.
#pragma once

#include "hot/bodies.hpp"

namespace hotlib::cosmo {

class EdsCosmology {
 public:
  // H0 in code units; for a unit box of unit total mass with G = 1, the
  // Omega = 1 background requires H0^2 = 8 pi G rho_bar / 3.
  explicit EdsCosmology(double h0) : h0_(h0) {}

  double h0() const { return h0_; }
  double t0() const { return 2.0 / (3.0 * h0_); }  // a(t0) = 1

  double a_of_t(double t) const;
  double t_of_a(double a) const;
  double hubble_of_a(double a) const;  // H(a) = H0 a^{-3/2}

  // Closed-form leapfrog factors between cosmic times t1 < t2.
  double kick_factor(double t1, double t2) const;   // int_{t1}^{t2} dt / a
  double drift_factor(double t1, double t2) const;  // int_{t1}^{t2} dt / a^2

 private:
  double h0_;
};

// One comoving KDK step from t to t+dt. `forces` must fill b.acc with the
// comoving-potential gradient (e.g. periodic_direct_forces on comoving
// positions); velocities store the canonical momentum p = a^2 dx/dt.
template <class ForceFn>
void comoving_kdk_step(hot::Bodies& b, const EdsCosmology& cosmo, double t, double dt,
                       ForceFn&& forces) {
  const double tm = t + 0.5 * dt;
  // Kick (first half): acc currently holds forces at time t.
  const double k1 = cosmo.kick_factor(t, tm);
  for (std::size_t i = 0; i < b.size(); ++i) b.vel[i] += k1 * b.acc[i];
  // Drift across the whole step with the half-step momentum.
  const double d = cosmo.drift_factor(t, t + dt);
  for (std::size_t i = 0; i < b.size(); ++i) b.pos[i] += d * b.vel[i];
  // Kick (second half) with fresh forces.
  forces(b);
  const double k2 = cosmo.kick_factor(tm, t + dt);
  for (std::size_t i = 0; i < b.size(); ++i) b.vel[i] += k2 * b.acc[i];
}

}  // namespace hotlib::cosmo
