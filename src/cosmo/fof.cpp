#include "cosmo/fof.hpp"

#include <algorithm>
#include <numeric>

namespace hotlib::cosmo {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

FofResult friends_of_friends(const hot::Bodies& b, const hot::Tree& tree,
                             double linking_length, std::size_t min_members) {
  const std::size_t n = b.size();
  UnionFind uf(n);
  const double ll2 = linking_length * linking_length;
  std::vector<std::uint32_t> cand;
  for (std::size_t i = 0; i < n; ++i) {
    tree.find_within(b.pos[i], linking_length, cand);
    for (std::uint32_t j : cand) {
      if (j <= i) continue;
      if (norm2(b.pos[i] - b.pos[j]) <= ll2)
        uf.unite(static_cast<std::uint32_t>(i), j);
    }
  }

  FofResult result;
  result.group_of.resize(n);
  std::vector<std::uint32_t> root_to_dense;
  std::vector<std::uint32_t> dense(n, 0xFFFFFFFFu);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = uf.find(static_cast<std::uint32_t>(i));
    if (dense[r] == 0xFFFFFFFFu) {
      dense[r] = static_cast<std::uint32_t>(root_to_dense.size());
      root_to_dense.push_back(r);
    }
    result.group_of[i] = dense[r];
  }

  // Accumulate group properties.
  std::vector<Halo> groups(root_to_dense.size());
  for (std::size_t i = 0; i < n; ++i) {
    Halo& g = groups[result.group_of[i]];
    g.size += 1;
    g.mass += b.mass[i];
    g.center += b.mass[i] * b.pos[i];
  }
  for (auto& g : groups)
    if (g.mass > 0) g.center /= g.mass;
  for (std::size_t i = 0; i < n; ++i) {
    Halo& g = groups[result.group_of[i]];
    g.radius = std::max(g.radius, norm(b.pos[i] - g.center));
  }

  for (const Halo& g : groups)
    if (g.size >= min_members) result.halos.push_back(g);
  std::sort(result.halos.begin(), result.halos.end(),
            [](const Halo& a, const Halo& c) { return a.size > c.size; });
  return result;
}

}  // namespace hotlib::cosmo
