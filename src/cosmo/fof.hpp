// fof.hpp — friends-of-friends halo finder.
//
// "Our ability to identify galaxies which can be compared to observational
// results requires that each galaxy contain hundreds or thousands of
// particles." The standard tool is friends-of-friends: particles closer
// than a linking length belong to the same group; groups above a minimum
// size are dark-matter halos. Candidate pairs come from the oct-tree's
// neighbour search, so the cost is near-linear in N.
#pragma once

#include <cstdint>
#include <vector>

#include "hot/bodies.hpp"
#include "hot/tree.hpp"

namespace hotlib::cosmo {

struct Halo {
  std::size_t size = 0;
  double mass = 0.0;
  Vec3d center{};      // center of mass
  double radius = 0.0; // max member distance from center
};

struct FofResult {
  std::vector<std::uint32_t> group_of;  // group id per body (dense ids)
  std::vector<Halo> halos;              // groups with >= min_members, largest first
};

FofResult friends_of_friends(const hot::Bodies& b, const hot::Tree& tree,
                             double linking_length, std::size_t min_members = 10);

}  // namespace hotlib::cosmo
