#include "cosmo/ics.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace hotlib::cosmo {

namespace {

// Signed frequency index for mode i of an n-point transform.
int freq(int i, int n) { return i <= n / 2 ? i : i - n; }

}  // namespace

DisplacementField make_displacement_field(const IcsConfig& cfg) {
  const int n = cfg.grid_n;
  const std::size_t total = static_cast<std::size_t>(n) * n * n;
  const double L = cfg.box_mpc;

  // White noise in real space keeps the transform automatically Hermitian.
  std::vector<fft::Complex> delta_k(total);
  {
    Xoshiro256ss rng(cfg.seed);
    for (auto& c : delta_k) c = {rng.normal(), 0.0};
    fft::fft3d(delta_k, n, n, n, fft::Direction::Forward);
  }

  // Shape by sqrt(P(k)); zero the DC mode and the Nyquist planes (their
  // asymmetric conjugates would break Hermitian symmetry of i*k*delta).
  const double kf = 2.0 * std::numbers::pi / L;
  auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * n + y) * n + x;
  };
  std::vector<fft::Complex> psi_k[3];
  for (auto& p : psi_k) p.assign(total, {0, 0});

  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const int fx = freq(x, n), fy = freq(y, n), fz = freq(z, n);
        const std::size_t i = idx(x, y, z);
        if ((fx == 0 && fy == 0 && fz == 0) || x == n / 2 || y == n / 2 || z == n / 2) {
          delta_k[i] = {0, 0};
          continue;
        }
        const double kx = kf * fx, ky = kf * fy, kz = kf * fz;
        const double k2 = kx * kx + ky * ky + kz * kz;
        const double k = std::sqrt(k2);
        delta_k[i] *= std::sqrt(cfg.spectrum(k) / (L * L * L)) ;
        // Zel'dovich: psi_k = i k delta_k / k^2.
        const fft::Complex ik_over_k2(0.0, 1.0 / k2);
        psi_k[0][i] = ik_over_k2 * kx * delta_k[i];
        psi_k[1][i] = ik_over_k2 * ky * delta_k[i];
        psi_k[2][i] = ik_over_k2 * kz * delta_k[i];
      }

  DisplacementField field;
  field.n = n;
  fft::fft3d(delta_k, n, n, n, fft::Direction::Inverse);
  field.delta.resize(total);
  for (std::size_t i = 0; i < total; ++i) field.delta[i] = delta_k[i].real();

  std::vector<double>* out[3] = {&field.psi_x, &field.psi_y, &field.psi_z};
  for (int a = 0; a < 3; ++a) {
    fft::fft3d(psi_k[a], n, n, n, fft::Direction::Inverse);
    out[a]->resize(total);
    for (std::size_t i = 0; i < total; ++i) (*out[a])[i] = psi_k[a][i].real();
  }
  return field;
}

hot::Bodies make_grid_ics(const IcsConfig& cfg) {
  const DisplacementField f = make_displacement_field(cfg);
  const int n = cfg.grid_n;
  const double L = cfg.box_mpc;
  const double h = L / n;
  const double m = 1.0 / (static_cast<double>(n) * n * n);

  hot::Bodies b;
  b.pos.reserve(static_cast<std::size_t>(n) * n * n);
  std::size_t i = 0;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x, ++i) {
        const Vec3d q{(x + 0.5) * h, (y + 0.5) * h, (z + 0.5) * h};
        const Vec3d psi{f.psi_x[i], f.psi_y[i], f.psi_z[i]};
        Vec3d pos = q + cfg.growth * psi;
        // Periodic wrap into [0, L).
        for (int ax = 0; ax < 3; ++ax) {
          double& c = pos[static_cast<std::size_t>(ax)];
          c = std::fmod(std::fmod(c, L) + L, L);
        }
        b.push_back(pos, (cfg.velocity_factor * cfg.growth) * psi, m, i);
      }
  return b;
}

hot::Bodies make_spherical_ics(const IcsConfig& cfg, double r_inner_frac,
                               double r_outer_frac) {
  const DisplacementField f = make_displacement_field(cfg);
  const int n = cfg.grid_n;
  const double L = cfg.box_mpc;
  const double h = L / n;
  const double m = 1.0 / (static_cast<double>(n) * n * n);
  const Vec3d center = Vec3d::all(L / 2);
  const double r_in = r_inner_frac * L;
  const double r_out = r_outer_frac * L;

  auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * n + y) * n + x;
  };
  auto lattice = [&](int x, int y, int z) {
    return Vec3d{(x + 0.5) * h, (y + 0.5) * h, (z + 0.5) * h};
  };

  hot::Bodies b;
  // High-resolution interior.
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const Vec3d q = lattice(x, y, z);
        if (norm(q - center) >= r_in) continue;
        const std::size_t i = idx(x, y, z);
        const Vec3d psi{f.psi_x[i], f.psi_y[i], f.psi_z[i]};
        b.push_back(q + cfg.growth * psi, (cfg.velocity_factor * cfg.growth) * psi, m,
                    i);
      }
  // 8x-mass buffer shell: merge 2x2x2 blocks.
  for (int z = 0; z + 1 < n; z += 2)
    for (int y = 0; y + 1 < n; y += 2)
      for (int x = 0; x + 1 < n; x += 2) {
        Vec3d qc{};
        Vec3d psi{};
        for (int dz = 0; dz < 2; ++dz)
          for (int dy = 0; dy < 2; ++dy)
            for (int dx = 0; dx < 2; ++dx) {
              qc += lattice(x + dx, y + dy, z + dz);
              const std::size_t i = idx(x + dx, y + dy, z + dz);
              psi += Vec3d{f.psi_x[i], f.psi_y[i], f.psi_z[i]};
            }
        qc /= 8.0;
        psi /= 8.0;
        const double r = norm(qc - center);
        if (r < r_in || r >= r_out) continue;
        b.push_back(qc + cfg.growth * psi, (cfg.velocity_factor * cfg.growth) * psi,
                    8 * m, idx(x, y, z) | (std::uint64_t{1} << 63));
      }
  return b;
}

morton::Domain ics_domain(const IcsConfig& cfg) {
  const double pad = 0.15 * cfg.box_mpc;
  return {.lo = Vec3d::all(-pad), .size = cfg.box_mpc + 2 * pad};
}

}  // namespace hotlib::cosmo
