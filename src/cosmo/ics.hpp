// ics.hpp — cosmological initial conditions via the Zel'dovich approximation.
//
// Following the paper's recipe: a Gaussian random density field is realized
// on an n^3 grid from the CDM power spectrum with a 3-D FFT; Zel'dovich
// displacements move particles off the grid, with velocities proportional to
// the displacements. The paper's runs then carve a *spherical* high-
// resolution region out of the periodic cube surrounded by a buffer of
// 8x-mass particles providing boundary conditions ("The region inside a
// sphere of diameter 160 Mpc was calculated at high mass resolution, while a
// buffer region ... with a particle mass 8 times higher was used around the
// outside"). make_spherical_ics reproduces exactly that construction by
// keeping every grid particle inside the inner sphere and merging 2x2x2
// blocks into single 8x-mass particles in the buffer shell.
#pragma once

#include <cstdint>

#include "cosmo/power_spectrum.hpp"
#include "hot/bodies.hpp"
#include "morton/key.hpp"

namespace hotlib::cosmo {

struct IcsConfig {
  int grid_n = 32;            // particles-per-side of the FFT grid
  double box_mpc = 100.0;     // periodic box side
  double growth = 1.0;        // displacement amplitude (linear growth factor D)
  double velocity_factor = 1.0;  // v = velocity_factor * D * psi (a H f)
  std::uint64_t seed = 1997;
  CdmSpectrum spectrum{};
};

// Full periodic cube of grid_n^3 particles displaced by Zel'dovich.
// Total mass is 1 (code units).
hot::Bodies make_grid_ics(const IcsConfig& cfg);

// The paper's spherical-region construction: all high-resolution particles
// inside radius r_inner (box units, centered), 2x2x2-merged 8x-mass buffer
// particles between r_inner and r_outer, nothing outside.
hot::Bodies make_spherical_ics(const IcsConfig& cfg, double r_inner_frac = 0.4,
                               double r_outer_frac = 0.5);

// The Zel'dovich displacement field psi (3 scalar grids of size n^3,
// x-fastest layout), exposed for tests: psi_k = i k delta_k / k^2.
struct DisplacementField {
  int n = 0;
  std::vector<double> psi_x, psi_y, psi_z;
  std::vector<double> delta;  // the realized overdensity field
};
DisplacementField make_displacement_field(const IcsConfig& cfg);

// Domain enclosing the (possibly displaced) particles of a box of side
// box_mpc with padding for displacements.
morton::Domain ics_domain(const IcsConfig& cfg);

}  // namespace hotlib::cosmo
