#include "cosmo/power_spectrum.hpp"

#include <cmath>
#include <numbers>

namespace hotlib::cosmo {

double CdmSpectrum::transfer(double k) const {
  if (k <= 0) return 1.0;
  const double q = k / gamma;
  const double l = std::log(1.0 + 2.34 * q) / (2.34 * q);
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) + std::pow(5.46 * q, 3) +
                      std::pow(6.71 * q, 4);
  return l * std::pow(poly, -0.25);
}

double CdmSpectrum::operator()(double k) const {
  if (k <= 0) return 0.0;
  const double t = transfer(k);
  return amplitude * std::pow(k, spectral_index) * t * t;
}

double CdmSpectrum::sigma_r(double r_mpc) const {
  // sigma^2 = 1/(2 pi^2) \int P(k) W^2(kR) k^2 dk, top-hat W.
  auto window = [](double x) {
    if (x < 1e-4) return 1.0 - x * x / 10.0;
    return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
  };
  // Log-spaced trapezoid over k in [1e-4, 1e3].
  const int n = 4000;
  const double lk0 = std::log(1e-4), lk1 = std::log(1e3);
  double sum = 0;
  double prev = 0;
  for (int i = 0; i <= n; ++i) {
    const double lk = lk0 + (lk1 - lk0) * i / n;
    const double k = std::exp(lk);
    const double w = window(k * r_mpc);
    const double f = (*this)(k)*w * w * k * k * k;  // extra k from dlnk measure
    if (i > 0) sum += 0.5 * (prev + f) * (lk1 - lk0) / n;
    prev = f;
  }
  return std::sqrt(sum / (2.0 * std::numbers::pi * std::numbers::pi));
}

}  // namespace hotlib::cosmo
