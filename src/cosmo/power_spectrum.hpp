// power_spectrum.hpp — Cold Dark Matter power spectrum.
//
// The paper's initial conditions were "calculated using a ... 3-d FFT from a
// Cold Dark Matter power spectrum of density fluctuations". We use the
// standard BBKS (Bardeen, Bond, Kaiser & Szalay 1986) transfer function on a
// scale-invariant n=1 primordial spectrum — the canonical CDM spectrum of
// the early-90s simulations this paper continues.
#pragma once

namespace hotlib::cosmo {

struct CdmSpectrum {
  double amplitude = 1.0;     // overall normalization A
  double spectral_index = 1.0;  // primordial n
  double gamma = 0.25;        // shape parameter (Omega h)

  // BBKS transfer function T(k); k in h/Mpc.
  double transfer(double k) const;

  // P(k) = A k^n T(k)^2.
  double operator()(double k) const;

  // sigma at top-hat radius 8 Mpc/h via direct integration (normalization
  // diagnostic used by the tests).
  double sigma_r(double r_mpc) const;
};

}  // namespace hotlib::cosmo
