#include "cosmo/project.hpp"

#include <cmath>

namespace hotlib::cosmo {

void project_density(const hot::Bodies& b, int axis, double lo, double extent,
                     PgmImage& img) {
  const int u_axis = (axis + 1) % 3;
  const int v_axis = (axis + 2) % 3;
  const double su = static_cast<double>(img.width()) / extent;
  const double sv = static_cast<double>(img.height()) / extent;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double u = (b.pos[i][static_cast<std::size_t>(u_axis)] - lo) * su;
    const double v = (b.pos[i][static_cast<std::size_t>(v_axis)] - lo) * sv;
    if (u < 0 || v < 0) continue;
    img.deposit(static_cast<std::size_t>(u), static_cast<std::size_t>(v), b.mass[i]);
  }
}

void add_hubble_flow(hot::Bodies& b, const Vec3d& center, double hubble) {
  for (std::size_t i = 0; i < b.size(); ++i)
    b.vel[i] += hubble * (b.pos[i] - center);
}

}  // namespace hotlib::cosmo
