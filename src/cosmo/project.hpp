// project.hpp — projected-density imaging (Figures 1 and 2 of the paper:
// "the color of each pixel represents the logarithm of the projected
// particle density along the line of sight").
#pragma once

#include "hot/bodies.hpp"
#include "util/pgm.hpp"

namespace hotlib::cosmo {

// Deposit mass-weighted columns along `axis` (0=x,1=y,2=z) into `img`,
// mapping the square [lo, lo+extent)^2 of the two remaining coordinates onto
// the full image.
void project_density(const hot::Bodies& b, int axis, double lo, double extent,
                     PgmImage& img);

// Hubble-flow helper for the spherical-region runs: v += H * (x - center).
void add_hubble_flow(hot::Bodies& b, const Vec3d& center, double hubble);

}  // namespace hotlib::cosmo
