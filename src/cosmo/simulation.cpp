#include "cosmo/simulation.hpp"

#include "cosmo/project.hpp"
#include "gravity/abm_forces.hpp"
#include "gravity/integrator.hpp"

namespace hotlib::cosmo {

CosmologySim::CosmologySim(parc::Rank& rank, const SimConfig& cfg)
    : rank_(rank), cfg_(cfg), domain_(ics_domain(cfg.ics)) {
  // Deterministic global ICs; each rank keeps a strided share, the first
  // decomposition sorts everything out.
  hot::Bodies all = cfg.spherical_region ? make_spherical_ics(cfg.ics)
                                         : make_grid_ics(cfg.ics);
  add_hubble_flow(all, Vec3d::all(cfg.ics.box_mpc / 2), cfg.hubble);
  const int p = rank_.size();
  for (std::size_t i = static_cast<std::size_t>(rank_.rank()); i < all.size();
       i += static_cast<std::size_t>(p))
    bodies_.append_from(all, i);
  total_bodies_ = all.size();

  force_cfg_.mac = cfg.mac;
  force_cfg_.mac.G = cfg.G;
  force_cfg_.softening = cfg.softening_frac * cfg.ics.box_mpc;
  force_cfg_.G = cfg.G;
}

StepStats CosmologySim::forces_internal() {
  InteractionTally tally;
  double imbalance = 1.0;
  std::size_t let_cells = 0, let_bodies = 0;
  if (cfg_.use_abm) {
    const auto result = gravity::abm_tree_forces(rank_, bodies_, domain_, force_cfg_);
    tally = result.tally;
    imbalance = result.decomp.imbalance();
    let_cells = result.traversal.crown_cells;
    let_bodies = result.traversal.requests_sent;
  } else {
    const auto result =
        gravity::parallel_tree_forces(rank_, bodies_, domain_, force_cfg_);
    tally = result.tally;
    imbalance = result.decomp.imbalance();
    let_cells = result.let_cells;
    let_bodies = result.let_bodies;
  }
  StepStats s;
  struct Pack {
    std::uint64_t bb, bc;
    double ke, pe;
    Pack operator+(const Pack& o) const {
      return {bb + o.bb, bc + o.bc, ke + o.ke, pe + o.pe};
    }
  };
  const Pack total = rank_.allreduce(
      Pack{tally.body_body, tally.body_cell, gravity::kinetic_energy(bodies_),
           gravity::potential_energy(bodies_)},
      parc::Sum{});
  s.tally.body_body = total.bb;
  s.tally.body_cell = total.bc;
  s.kinetic = total.ke;
  s.potential = total.pe;
  s.imbalance = imbalance;
  s.let_cells = let_cells;
  s.let_bodies = let_bodies;
  have_forces_ = true;
  return s;
}

StepStats CosmologySim::compute_forces() { return forces_internal(); }

StepStats CosmologySim::step() {
  if (!have_forces_) forces_internal();
  gravity::kick(bodies_, cfg_.dt / 2);
  gravity::drift(bodies_, cfg_.dt);
  const StepStats s = forces_internal();
  gravity::kick(bodies_, cfg_.dt / 2);
  time_ += cfg_.dt;
  return s;
}

hot::Bodies CosmologySim::gather_all() const {
  // Serialize local bodies as (pos, vel, mass) triples via allgather.
  struct Rec {
    Vec3d pos, vel;
    double mass;
  };
  std::vector<Rec> mine(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i)
    mine[i] = {bodies_.pos[i], bodies_.vel[i], bodies_.mass[i]};
  auto all = rank_.allgather_vector<Rec>(mine);
  hot::Bodies out;
  if (rank_.rank() != 0) return out;
  for (const auto& block : all)
    for (const Rec& r : block) out.push_back(r.pos, r.vel, r.mass, out.size());
  return out;
}

}  // namespace hotlib::cosmo
