// simulation.hpp — the high-level cosmology N-body driver: the public API a
// downstream user calls to run the paper's style of simulation (spherical
// region, Hubble flow, parallel treecode, striped snapshots, projected-
// density images). Used by examples/cosmo_sim and bench_loki/bench_treecode.
#pragma once

#include <functional>
#include <string>

#include "cosmo/ics.hpp"
#include "gravity/parallel.hpp"
#include "hot/bodies.hpp"
#include "parc/rank.hpp"
#include "telemetry/counters.hpp"

namespace hotlib::cosmo {

struct SimConfig {
  IcsConfig ics{};
  double hubble = 0.05;            // initial Hubble rate (code units)
  double dt = 0.5;                 // leapfrog step
  double softening_frac = 0.02;    // softening as fraction of box
  hot::Mac mac{.theta = 0.35};
  double G = 1.0;
  bool spherical_region = true;    // paper-style sphere+buffer vs full cube
  // Force pipeline: LET push (default) or the paper's ABM request-driven
  // traversal (see hot/dtree.hpp and bench_abm for the trade-off).
  bool use_abm = false;
};

struct StepStats {
  InteractionTally tally;          // global (allreduced) interactions
  double imbalance = 1.0;          // decomposition work imbalance
  std::size_t let_cells = 0;
  std::size_t let_bodies = 0;
  double kinetic = 0.0;            // global energies
  double potential = 0.0;
};

// One rank's share of a cosmology simulation. Construct inside a parc body;
// every rank constructs with identical config (the ICs are generated
// deterministically and each rank keeps its strided share).
class CosmologySim {
 public:
  CosmologySim(parc::Rank& rank, const SimConfig& cfg);

  // Kick-drift-kick step with a fresh force computation; returns global
  // statistics (identical on every rank).
  StepStats step();

  // Forces only (used by benchmarks that measure a single evaluation).
  StepStats compute_forces();

  const hot::Bodies& local() const { return bodies_; }
  hot::Bodies& local() { return bodies_; }
  const morton::Domain& domain() const { return domain_; }
  double time() const { return time_; }
  std::uint64_t total_bodies() const { return total_bodies_; }

  // Gather all bodies to rank 0 (returns empty elsewhere) — for imaging and
  // snapshotting at laptop scale.
  hot::Bodies gather_all() const;

 private:
  StepStats forces_internal();

  parc::Rank& rank_;
  SimConfig cfg_;
  morton::Domain domain_;
  hot::Bodies bodies_;
  gravity::TreeForceConfig force_cfg_;
  double time_ = 0.0;
  bool have_forces_ = false;
  std::uint64_t total_bodies_ = 0;
};

}  // namespace hotlib::cosmo
