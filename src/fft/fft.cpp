#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hotlib::fft {

void fft(std::span<Complex> data, Direction dir) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = (dir == Direction::Forward) ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (dir == Direction::Inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= inv;
  }
}

std::vector<Complex> dft_reference(std::span<const Complex> data, Direction dir) {
  const std::size_t n = data.size();
  const double sign = (dir == Direction::Forward) ? -1.0 : 1.0;
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang =
          sign * 2.0 * std::numbers::pi * static_cast<double>(k * j) / static_cast<double>(n);
      acc += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = (dir == Direction::Inverse) ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void transpose_square(Complex* plane, int n) {
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) std::swap(plane[i * n + j], plane[j * n + i]);
}

void fft3d(std::vector<Complex>& data, int nx, int ny, int nz, Direction dir) {
  assert(data.size() == static_cast<std::size_t>(nx) * ny * nz);
  if (!is_pow2(static_cast<std::size_t>(nx)) || !is_pow2(static_cast<std::size_t>(ny)) ||
      !is_pow2(static_cast<std::size_t>(nz)))
    throw std::invalid_argument("fft3d: dims must be powers of two");

  const auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * ny + y) * nx + x;
  };

  // Along x: contiguous lines.
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      fft(std::span<Complex>(&data[idx(0, y, z)], static_cast<std::size_t>(nx)), dir);

  // Along y and z: gather strided lines into a scratch buffer.
  std::vector<Complex> line(static_cast<std::size_t>(std::max(ny, nz)));
  for (int z = 0; z < nz; ++z)
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) line[static_cast<std::size_t>(y)] = data[idx(x, y, z)];
      fft(std::span<Complex>(line.data(), static_cast<std::size_t>(ny)), dir);
      for (int y = 0; y < ny; ++y) data[idx(x, y, z)] = line[static_cast<std::size_t>(y)];
    }
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      for (int z = 0; z < nz; ++z) line[static_cast<std::size_t>(z)] = data[idx(x, y, z)];
      fft(std::span<Complex>(line.data(), static_cast<std::size_t>(nz)), dir);
      for (int z = 0; z < nz; ++z) data[idx(x, y, z)] = line[static_cast<std::size_t>(z)];
    }
}

}  // namespace hotlib::fft
