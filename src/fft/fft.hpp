// fft.hpp — radix-2 complex FFT, serial 1-D and 3-D.
//
// The paper's initial conditions were "calculated using a 1024^3 point 3-d
// FFT from a Cold Dark Matter power spectrum" (and a 512^3 FFT computed on
// Loki itself). We build the transform from scratch: an iterative
// Cooley-Tukey radix-2 kernel, a 3-D wrapper, and (in slab_fft.hpp) a
// slab-decomposed parallel version running on parc ranks — the same
// structure as the NPB FT benchmark.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace hotlib::fft {

using Complex = std::complex<double>;

enum class Direction { Forward, Inverse };

// True when n is a power of two (the only sizes the radix-2 kernel accepts).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// In-place iterative radix-2 FFT. Forward uses e^{-i...}; Inverse applies the
// 1/n normalization so that inverse(forward(x)) == x.
void fft(std::span<Complex> data, Direction dir);

// Out-of-place discrete Fourier transform by direct summation (O(n^2));
// reference implementation used by the tests to validate fft().
std::vector<Complex> dft_reference(std::span<const Complex> data, Direction dir);

// In-place 3-D FFT of data[z][y][x] with x fastest; all dims powers of two.
void fft3d(std::vector<Complex>& data, int nx, int ny, int nz, Direction dir);

// Transpose a square plane held row-major (used by the 3-D kernels).
void transpose_square(Complex* plane, int n);

}  // namespace hotlib::fft
