#include "fft/slab_fft.hpp"

#include <cassert>
#include <stdexcept>

namespace hotlib::fft {

SlabFft3D::SlabFft3D(parc::Rank& rank, int n) : rank_(rank), n_(n) {
  if (!is_pow2(static_cast<std::size_t>(n)))
    throw std::invalid_argument("SlabFft3D: n must be a power of two");
  if (n % rank.size() != 0)
    throw std::invalid_argument("SlabFft3D: n must be divisible by rank count");
  planes_ = n / rank.size();
}

void SlabFft3D::local_lines_fft(std::vector<Complex>& slab, Direction dir) {
  for (int p = 0; p < planes_; ++p)
    for (int y = 0; y < n_; ++y)
      fft(std::span<Complex>(&slab[(static_cast<std::size_t>(p) * n_ + y) * n_],
                             static_cast<std::size_t>(n_)),
          dir);
}

void SlabFft3D::local_middle_fft(std::vector<Complex>& slab, Direction dir) {
  std::vector<Complex> line(static_cast<std::size_t>(n_));
  for (int p = 0; p < planes_; ++p) {
    Complex* plane = &slab[static_cast<std::size_t>(p) * n_ * n_];
    for (int x = 0; x < n_; ++x) {
      for (int m = 0; m < n_; ++m) line[static_cast<std::size_t>(m)] = plane[m * n_ + x];
      fft(std::span<Complex>(line.data(), static_cast<std::size_t>(n_)), dir);
      for (int m = 0; m < n_; ++m) plane[m * n_ + x] = line[static_cast<std::size_t>(m)];
    }
  }
}

std::vector<Complex> SlabFft3D::global_transpose(const std::vector<Complex>& slab) {
  const int p = rank_.size();
  const int chunk = n_ / p;  // middle-axis rows per destination rank
  // Pack: destination rank d receives, for each of our local planes `a` and
  // each middle index b in its chunk, the contiguous x-line.
  std::vector<std::vector<Complex>> out(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    auto& buf = out[static_cast<std::size_t>(d)];
    buf.reserve(static_cast<std::size_t>(planes_) * chunk * n_);
    for (int a = 0; a < planes_; ++a)
      for (int b = d * chunk; b < (d + 1) * chunk; ++b) {
        const Complex* line = &slab[(static_cast<std::size_t>(a) * n_ + b) * n_];
        buf.insert(buf.end(), line, line + n_);
      }
  }
  auto in = rank_.alltoallv_typed<Complex>(out);

  // Unpack into B[bl][a_global][x].
  std::vector<Complex> result(local_size());
  for (int src = 0; src < p; ++src) {
    const auto& buf = in[static_cast<std::size_t>(src)];
    assert(buf.size() == static_cast<std::size_t>(planes_) * chunk * n_);
    std::size_t pos = 0;
    for (int a_local = 0; a_local < planes_; ++a_local) {
      const int a_global = src * planes_ + a_local;
      for (int bl = 0; bl < chunk; ++bl) {
        Complex* dst = &result[(static_cast<std::size_t>(bl) * n_ + a_global) * n_];
        std::copy_n(buf.data() + pos, n_, dst);
        pos += static_cast<std::size_t>(n_);
      }
    }
  }
  return result;
}

std::vector<Complex> SlabFft3D::forward(std::vector<Complex> slab) {
  assert(slab.size() == local_size());
  local_lines_fft(slab, Direction::Forward);   // x
  local_middle_fft(slab, Direction::Forward);  // y
  slab = global_transpose(slab);               // -> [yl][z][x]
  local_middle_fft(slab, Direction::Forward);  // z (now the middle axis)
  return slab;
}

std::vector<Complex> SlabFft3D::inverse(std::vector<Complex> slab) {
  assert(slab.size() == local_size());
  local_middle_fft(slab, Direction::Inverse);  // z
  slab = global_transpose(slab);               // -> [zl][y][x]
  local_middle_fft(slab, Direction::Inverse);  // y
  local_lines_fft(slab, Direction::Inverse);   // x
  return slab;
}

}  // namespace hotlib::fft
