// slab_fft.hpp — slab-decomposed parallel 3-D FFT on parc ranks.
//
// Each rank owns n/P contiguous z-planes of an n^3 complex grid (x fastest).
// forward() transforms x and y locally, then performs a global transpose
// (alltoallv) so each rank owns y-slabs with z contiguous, and transforms z.
// The result is therefore left in *transposed* layout out[yl][z][x];
// inverse() accepts that layout and returns the original z-slab layout.
// This is exactly the communication structure of the NPB FT benchmark and of
// the paper's 512^3 initial-condition FFT computed on Loki.
#pragma once

#include <complex>
#include <vector>

#include "fft/fft.hpp"
#include "parc/rank.hpp"

namespace hotlib::fft {

class SlabFft3D {
 public:
  // n must be a power of two and divisible by rank.size().
  SlabFft3D(parc::Rank& rank, int n);

  int n() const { return n_; }
  int local_planes() const { return planes_; }
  std::size_t local_size() const {
    return static_cast<std::size_t>(planes_) * n_ * n_;
  }

  // z-slab layout in[zl][y][x]  ->  transposed layout out[yl][z][x].
  std::vector<Complex> forward(std::vector<Complex> slab);

  // transposed layout in[yl][z][x]  ->  z-slab layout out[zl][y][x].
  std::vector<Complex> inverse(std::vector<Complex> slab);

  // Global (z, y, x) index owned locally in z-slab layout; helper for tests.
  std::size_t local_index(int z_local, int y, int x) const {
    return (static_cast<std::size_t>(z_local) * n_ + y) * n_ + x;
  }
  int z_offset() const { return rank_.rank() * planes_; }

 private:
  // Exchange so the axis currently second-fastest becomes rank-distributed:
  // A[al][b][x] distributed over a -> B[bl][a][x] distributed over b.
  std::vector<Complex> global_transpose(const std::vector<Complex>& slab);
  void local_lines_fft(std::vector<Complex>& slab, Direction dir);      // x lines
  void local_middle_fft(std::vector<Complex>& slab, Direction dir);     // middle axis

  parc::Rank& rank_;
  int n_;
  int planes_;
};

}  // namespace hotlib::fft
