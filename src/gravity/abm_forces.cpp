#include "gravity/abm_forces.hpp"

#include "gravity/kernels.hpp"
#include "hot/tree.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

AbmForceResult abm_tree_forces(parc::Rank& rank, hot::Bodies& local,
                               const morton::Domain& domain,
                               const TreeForceConfig& cfg) {
  AbmForceResult result;
  const std::vector<hot::KeyRange> ranges =
      hot::decompose(rank, local, domain, &result.decomp);

  hot::Tree tree;
  tree.build(local.pos, local.mass, domain);
  hot::DistributedTree dtree(rank, tree, local.pos, local.mass, ranges, domain);

  local.clear_forces();
  const double eps2 = cfg.softening * cfg.softening;
  const auto& cells = tree.cells();

  result.traversal = dtree.traverse(
      cfg.mac,
      [&](std::uint32_t leaf_index, const hot::InteractionLists& lists,
          const hot::DistributedTree::RemoteLists& remote) {
        const hot::Cell& group = cells[leaf_index];
        for (std::uint32_t t = group.body_begin;
             t < group.body_begin + group.body_count; ++t) {
          const std::uint32_t i = tree.order()[t];
          Vec3d a{};
          double p = 0;
          for (std::uint32_t j : lists.bodies) {
            if (j == i) continue;
            pp_accumulate(local.pos[i], local.pos[j], local.mass[j], eps2, a, p);
          }
          for (std::uint32_t ci : lists.cells)
            pc_accumulate(local.pos[i], cells[ci], cfg.mac.quadrupole, eps2, a, p);
          for (const hot::SourceRecord& s : remote.bodies)
            pp_accumulate(local.pos[i], s.pos, s.mass, eps2, a, p);
          for (const hot::CellRecord& c : remote.cells)
            pc_accumulate(local.pos[i], c.com, c.mass, c.quad, cfg.mac.quadrupole,
                          eps2, a, p);
          local.acc[i] += cfg.G * a;
          local.pot[i] += cfg.G * p;
          const std::uint64_t pp = lists.bodies.size() - 1 + remote.bodies.size();
          const std::uint64_t pc = lists.cells.size() + remote.cells.size();
          result.tally.body_body += pp;
          result.tally.body_cell += pc;
          local.work[i] = static_cast<double>(pp + pc);
        }
      });
  result.health = rank.am_health();
  // The force kernel runs inside the traversal callback, so its tally is
  // flushed here once rather than by a dedicated kForceEval span.
  telemetry::count_tally(result.tally);
  return result;
}

}  // namespace hotlib::gravity
