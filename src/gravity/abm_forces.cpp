#include "gravity/abm_forces.hpp"

#include <algorithm>

#include "gravity/batch.hpp"
#include "hot/tree.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

AbmForceResult abm_tree_forces(parc::Rank& rank, hot::Bodies& local,
                               const morton::Domain& domain,
                               const TreeForceConfig& cfg) {
  AbmForceResult result;
  const std::vector<hot::KeyRange> ranges =
      hot::decompose(rank, local, domain, &result.decomp);

  hot::Tree tree;
  tree.build(local.pos, local.mass, domain);
  hot::DistributedTree dtree(rank, tree, local.pos, local.mass, ranges, domain);

  local.clear_forces();
  const double eps2 = cfg.softening * cfg.softening;
  const auto& cells = tree.cells();

  // Gather buffers reused across sink groups. Local and remote sources stay
  // in separate batches to preserve the evaluation order of the per-pair
  // code (local bodies, local cells, remote bodies, remote cells), which
  // keeps results bit-identical on the scalar path.
  InteractionBatch batch_local;
  InteractionBatch batch_remote;

  result.traversal = dtree.traverse(
      cfg.mac,
      [&](std::uint32_t leaf_index, const hot::InteractionLists& lists,
          const hot::DistributedTree::RemoteLists& remote) {
        batch_local.clear();
        batch_local.use_quad = cfg.mac.quadrupole;
        batch_local.reserve_bodies(lists.bodies.size());
        for (std::uint32_t j : lists.bodies)
          batch_local.add_body(local.pos[j], local.mass[j]);
        for (std::uint32_t ci : lists.cells)
          batch_local.add_cell(cells[ci].com, cells[ci].mass, cells[ci].quad);
        batch_remote.clear();
        batch_remote.use_quad = cfg.mac.quadrupole;
        batch_remote.reserve_bodies(remote.bodies.size());
        for (const hot::SourceRecord& s : remote.bodies)
          batch_remote.add_body(s.pos, s.mass);
        for (const hot::CellRecord& c : remote.cells)
          batch_remote.add_cell(c.com, c.mass, c.quad);

        const hot::Cell& group = cells[leaf_index];
        for (std::uint32_t t = group.body_begin;
             t < group.body_begin + group.body_count; ++t) {
          const std::uint32_t i = tree.order()[t];
          Vec3d a{};
          double p = 0;
          // The distributed walk usually pushes the group's own bodies
          // contiguously at self_begin, but the below-local-leaf interval
          // path can deliver them elsewhere — validate and fall back to a
          // scan when the O(1) slot guess misses.
          std::size_t self = lists.self_begin + (t - group.body_begin);
          if (self >= lists.bodies.size() || lists.bodies[self] != i) {
            const auto it = std::find(lists.bodies.begin(), lists.bodies.end(), i);
            self = it == lists.bodies.end()
                       ? kNoSelf
                       : static_cast<std::size_t>(it - lists.bodies.begin());
          }
          batch_pp(batch_local, local.pos[i], eps2, self, a, p);
          batch_pc(batch_local, local.pos[i], eps2, a, p);
          batch_pp(batch_remote, local.pos[i], eps2, kNoSelf, a, p);
          batch_pc(batch_remote, local.pos[i], eps2, a, p);
          local.acc[i] += cfg.G * a;
          local.pot[i] += cfg.G * p;
          const std::uint64_t pp = lists.bodies.size() - 1 + remote.bodies.size();
          const std::uint64_t pc = lists.cells.size() + remote.cells.size();
          result.tally.body_body += pp;
          result.tally.body_cell += pc;
          local.work[i] = static_cast<double>(pp + pc);
        }
      });
  result.health = rank.am_health();
  // The force kernel runs inside the traversal callback, so its tally is
  // flushed here once rather than by a dedicated kForceEval span.
  telemetry::count_tally(result.tally);
  return result;
}

}  // namespace hotlib::gravity
