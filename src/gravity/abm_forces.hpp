// abm_forces.hpp — gravity on the request-driven distributed traversal
// (hot::DistributedTree), the paper's latency-hiding alternative to the
// LET-push pipeline in parallel.hpp. Both produce forces at the same MAC
// accuracy; bench_abm compares their communication behaviour.
#pragma once

#include "gravity/evaluator.hpp"
#include "hot/bodies.hpp"
#include "hot/decompose.hpp"
#include "hot/dtree.hpp"
#include "parc/rank.hpp"

namespace hotlib::gravity {

struct AbmForceResult {
  InteractionTally tally;            // this rank's interactions
  hot::DecomposeStats decomp;
  hot::DistributedTree::Stats traversal;
  // Snapshot of the rank's reliable-ABM health after the traversal: under a
  // fault-injecting fabric this records retransmissions, duplicates and any
  // abandoned traffic. degraded() here (or traversal.degraded()) means the
  // forces are incomplete — surfaced instead of hanging the pipeline.
  parc::AmHealthReport health;
};

// Compute forces into local.acc/local.pot (overwritten); bodies migrate via
// the weighted decomposition exactly as in parallel_tree_forces.
AbmForceResult abm_tree_forces(parc::Rank& rank, hot::Bodies& local,
                               const morton::Domain& domain,
                               const TreeForceConfig& cfg);

}  // namespace hotlib::gravity
