// batch.cpp — portable scalar batch kernels and the runtime SIMD dispatch.
//
// The scalar kernels call the per-pair kernels from kernels.hpp source by
// source, in list order, so they are bit-identical to the pre-batch code
// paths by construction. The AVX2 kernels live in batch_avx2.cpp (compiled
// with -mavx2 only on x86-64); dispatch picks a path once, at first use.
#include "gravity/batch.hpp"

#include <cstdlib>
#include <cstring>

namespace hotlib::gravity {

#if defined(HOTLIB_HAVE_AVX2)
namespace detail {
// Implemented in batch_avx2.cpp.
bool cpu_has_avx2();
void pp_avx2(const InteractionBatch& b, const Vec3d& xi, double eps2,
             std::size_t self_slot, Vec3d& acc, double& pot);
void pc_avx2(const InteractionBatch& b, const Vec3d& xi, double eps2, Vec3d& acc,
             double& pot);
void bs_avx2(const BiotSavartBatch& b, const Vec3d& xi, const Vec3d& alpha_i,
             double sigma2, Vec3d& u, Vec3d& dalpha);
}  // namespace detail
#endif

namespace {

void pp_scalar(const InteractionBatch& b, const Vec3d& xi, double eps2,
               std::size_t self_slot, Vec3d& acc, double& pot) {
  const std::size_t n = b.body_count();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self_slot) continue;
    pp_accumulate(xi, Vec3d{b.px[j], b.py[j], b.pz[j]}, b.pm[j], eps2, acc, pot);
  }
}

void pc_scalar(const InteractionBatch& b, const Vec3d& xi, double eps2, Vec3d& acc,
               double& pot) {
  const std::size_t n = b.cell_count();
  std::array<double, 6> quad{};
  for (std::size_t j = 0; j < n; ++j) {
    if (b.use_quad)
      for (std::size_t k = 0; k < 6; ++k) quad[k] = b.cq[k][j];
    pc_accumulate(xi, Vec3d{b.cx[j], b.cy[j], b.cz[j]}, b.cm[j], quad, b.use_quad,
                  eps2, acc, pot);
  }
}

void bs_scalar(const BiotSavartBatch& b, const Vec3d& xi, const Vec3d& alpha_i,
               double sigma2, Vec3d& u, Vec3d& dalpha) {
  const std::size_t n = b.size();
  for (std::size_t j = 0; j < n; ++j)
    biot_savart_accumulate(xi, Vec3d{b.x[j], b.y[j], b.z[j]},
                           Vec3d{b.ax[j], b.ay[j], b.az[j]}, sigma2, u, &alpha_i,
                           &dalpha);
}

struct Dispatch {
  BatchPath path = BatchPath::kScalar;
  void (*pp)(const InteractionBatch&, const Vec3d&, double, std::size_t, Vec3d&,
             double&) = pp_scalar;
  void (*pc)(const InteractionBatch&, const Vec3d&, double, Vec3d&, double&) =
      pc_scalar;
  void (*bs)(const BiotSavartBatch&, const Vec3d&, const Vec3d&, double, Vec3d&,
             Vec3d&) = bs_scalar;
};

Dispatch make_dispatch(BatchPath wanted) {
  Dispatch d;  // scalar defaults
#if defined(HOTLIB_HAVE_AVX2)
  if (wanted == BatchPath::kAvx2 && detail::cpu_has_avx2()) {
    d.path = BatchPath::kAvx2;
    d.pp = detail::pp_avx2;
    d.pc = detail::pc_avx2;
    d.bs = detail::bs_avx2;
  }
#else
  (void)wanted;
#endif
  return d;
}

bool env_matches(const char* v, const char* a, const char* b, const char* c) {
  return std::strcmp(v, a) == 0 || std::strcmp(v, b) == 0 || std::strcmp(v, c) == 0;
}

// Environment + CPUID policy: AVX2 when available, unless HOTLIB_SIMD says
// otherwise. Unrecognised values fall through to the default so a typo
// degrades to auto-detection rather than silently changing numerics.
BatchPath default_path() {
  if (const char* e = std::getenv("HOTLIB_SIMD"); e != nullptr) {
    if (env_matches(e, "off", "0", "scalar")) return BatchPath::kScalar;
    if (env_matches(e, "avx2", "on", "1")) return BatchPath::kAvx2;
  }
  return batch_avx2_available() ? BatchPath::kAvx2 : BatchPath::kScalar;
}

Dispatch& active() {
  static Dispatch d = make_dispatch(default_path());
  return d;
}

}  // namespace

BatchPath batch_path() { return active().path; }

const char* batch_path_name() {
  return batch_path() == BatchPath::kAvx2 ? "avx2" : "scalar";
}

bool batch_avx2_available() {
#if defined(HOTLIB_HAVE_AVX2)
  return detail::cpu_has_avx2();
#else
  return false;
#endif
}

void force_batch_path(BatchPath p) { active() = make_dispatch(p); }

void batch_pp(const InteractionBatch& b, const Vec3d& xi, double eps2,
              std::size_t self_slot, Vec3d& acc, double& pot) {
  active().pp(b, xi, eps2, self_slot, acc, pot);
}

void batch_pc(const InteractionBatch& b, const Vec3d& xi, double eps2, Vec3d& acc,
              double& pot) {
  active().pc(b, xi, eps2, acc, pot);
}

void batch_biot_savart(const BiotSavartBatch& b, const Vec3d& xi,
                       const Vec3d& alpha_i, double sigma2, Vec3d& u, Vec3d& dalpha) {
  active().bs(b, xi, alpha_i, sigma2, u, dalpha);
}

}  // namespace hotlib::gravity
