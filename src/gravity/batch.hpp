// batch.hpp — batched structure-of-arrays interaction kernels.
//
// The paper's headline rates come from a blocked inner loop: interactions
// are gathered into lists and evaluated in dense batches, not one pair at a
// time ("the inner loop ... runs at nearly the peak floating point rate").
// This layer is that shape for hotlib: traversals and direct evaluators fill
// an InteractionBatch (source positions, masses and optional quadrupole
// lanes, one contiguous double array per component) and the batch_* kernels
// evaluate a whole sink's list per call.
//
// Two implementations sit behind a runtime-dispatched function table:
//
//   * a portable scalar path that reproduces the per-pair kernels in
//     kernels.hpp bit-for-bit (same operations, same order), and
//   * an AVX2 path (batch_avx2.cpp, compiled with -mavx2 on x86-64) that
//     evaluates four sources per instruction. Per-lane arithmetic is the
//     same mul/add sequence as the scalar kernel — only the accumulation
//     order differs (four partial sums plus a horizontal reduction), so the
//     two paths agree to a couple of ulps of the accumulated magnitude.
//
// The path is chosen once, at first use: AVX2 when the CPU supports it,
// unless HOTLIB_SIMD=off|0|scalar forces the portable path (HOTLIB_SIMD=avx2
// asks for AVX2 explicitly and falls back to scalar when unsupported).
// Tests and benchmarks can override the choice with force_batch_path().
//
// Flop accounting is unchanged: callers tally interactions exactly as
// before (38 flops each, kFlopsPerGravityInteraction); the batch layer only
// changes how the arithmetic is scheduled, never how much of it is counted.
#pragma once

#include <array>
#include <cstddef>
#include <numbers>
#include <vector>

#include "gravity/kernels.hpp"
#include "util/vec3.hpp"

namespace hotlib::gravity {

namespace detail {
inline constexpr double kQuarterInvPi = 1.0 / (4.0 * std::numbers::pi);
}

// Sentinel for "no self term in this batch".
inline constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);

// Structure-of-arrays gather buffer for one sink group's interaction list:
// particle sources (x/y/z/m) and cell sources (com, mass and — when
// use_quad — the six trace-free quadrupole lanes). clear() keeps capacity so
// one batch can be reused across groups without reallocating.
struct InteractionBatch {
  // Particle-particle source lanes.
  std::vector<double> px, py, pz, pm;
  // Particle-cell source lanes.
  std::vector<double> cx, cy, cz, cm;
  std::array<std::vector<double>, 6> cq;  // quad lanes (xx,xy,xz,yy,yz,zz)
  bool use_quad = false;

  std::size_t body_count() const { return pm.size(); }
  std::size_t cell_count() const { return cm.size(); }

  void clear() {
    px.clear(); py.clear(); pz.clear(); pm.clear();
    cx.clear(); cy.clear(); cz.clear(); cm.clear();
    for (auto& q : cq) q.clear();
  }

  void reserve_bodies(std::size_t n) {
    px.reserve(n); py.reserve(n); pz.reserve(n); pm.reserve(n);
  }

  // Appends a particle source; returns its slot (for self-term skipping).
  std::size_t add_body(const Vec3d& x, double m) {
    px.push_back(x.x);
    py.push_back(x.y);
    pz.push_back(x.z);
    pm.push_back(m);
    return pm.size() - 1;
  }

  void add_cell(const Vec3d& com, double m, const std::array<double, 6>& quad) {
    cx.push_back(com.x);
    cy.push_back(com.y);
    cz.push_back(com.z);
    cm.push_back(m);
    if (use_quad)
      for (int k = 0; k < 6; ++k) cq[static_cast<std::size_t>(k)].push_back(quad[static_cast<std::size_t>(k)]);
  }
};

// Structure-of-arrays gather buffer for Biot-Savart (vortex) sources:
// position and vector strength alpha. Tree cells enter as additional
// sources with the cell's centroid and summed strength — the kernel is the
// same, so one batch carries both.
struct BiotSavartBatch {
  std::vector<double> x, y, z, ax, ay, az;

  std::size_t size() const { return x.size(); }

  void clear() {
    x.clear(); y.clear(); z.clear();
    ax.clear(); ay.clear(); az.clear();
  }

  void reserve(std::size_t n) {
    x.reserve(n); y.reserve(n); z.reserve(n);
    ax.reserve(n); ay.reserve(n); az.reserve(n);
  }

  void add(const Vec3d& pos, const Vec3d& alpha) {
    x.push_back(pos.x);
    y.push_back(pos.y);
    z.push_back(pos.z);
    ax.push_back(alpha.x);
    ay.push_back(alpha.y);
    az.push_back(alpha.z);
  }
};

// The dispatched kernel path. kScalar is always available; kAvx2 only when
// the binary carries the AVX2 translation unit and the CPU supports it.
enum class BatchPath { kScalar, kAvx2 };

// Path selected by the runtime dispatch (environment + CPUID), after any
// force_batch_path() override.
BatchPath batch_path();

// Stable name of the active path: "scalar" or "avx2". update_baselines.sh
// stamps this into each BENCH_<name>.json via `hotlib-analyze stamp`.
const char* batch_path_name();

// True when the AVX2 path could be selected on this machine (compiled in
// and supported by the CPU), regardless of the current choice.
bool batch_avx2_available();

// Test/bench override: force a specific path (kAvx2 silently degrades to
// kScalar when unavailable). Not thread-safe against concurrent batch
// evaluation — call from single-threaded setup code only.
void force_batch_path(BatchPath p);

// Evaluate every particle source of `b` against the sink at `xi`,
// accumulating acceleration (without G) and potential (without G, negative)
// exactly like pp_accumulate. `self_slot` names the sink's own slot in the
// batch (skipped); pass kNoSelf when the sink is not among the sources.
void batch_pp(const InteractionBatch& b, const Vec3d& xi, double eps2,
              std::size_t self_slot, Vec3d& acc, double& pot);

// Evaluate every cell source of `b` (monopole, plus quadrupole when
// b.use_quad) against the sink at `xi`, exactly like pc_accumulate.
void batch_pc(const InteractionBatch& b, const Vec3d& xi, double eps2,
              Vec3d& acc, double& pot);

// Evaluate every Biot-Savart source against the sink at `xi` carrying
// strength `alpha_i`: accumulates induced velocity `u` and the vortex
// stretching term `dalpha`, exactly like vortex_kernel with both outputs.
// The self term vanishes identically (d = 0), so no skip slot is needed.
void batch_biot_savart(const BiotSavartBatch& b, const Vec3d& xi,
                       const Vec3d& alpha_i, double sigma2, Vec3d& u,
                       Vec3d& dalpha);

// The scalar Biot-Savart pair kernel: velocity induced at xi by a vortex
// particle at xj with strength alpha_j, Gaussian-core-regularised with
// sigma^2, plus (when alpha_i/dalpha are given) the classical stretching
// term with the analytic velocity gradient. Shared by vortex::vortex_kernel
// and the scalar batch path so the two are bit-identical by construction.
inline void biot_savart_accumulate(const Vec3d& xi, const Vec3d& xj,
                                   const Vec3d& alpha_j, double sigma2, Vec3d& u,
                                   const Vec3d* alpha_i, Vec3d* dalpha) {
  const Vec3d d = xi - xj;
  const double r2 = norm2(d) + sigma2;
  const double rinv = karp_rsqrt(r2);
  const double s = rinv * rinv * rinv;  // (r^2+sigma^2)^{-3/2}
  const double t = s * rinv * rinv;     // (r^2+sigma^2)^{-5/2}
  const Vec3d dxa = cross(d, alpha_j);
  u += (-detail::kQuarterInvPi * s) * dxa;
  if (alpha_i != nullptr && dalpha != nullptr) {
    // (alpha_i . grad) u, classical stretching with the analytic gradient:
    //   -1/(4pi) [ s (alpha_i x alpha_j) - 3 t (d.alpha_i) (d x alpha_j) ].
    *dalpha += (-detail::kQuarterInvPi) *
               (s * cross(*alpha_i, alpha_j) - (3.0 * t * dot(d, *alpha_i)) * dxa);
  }
}

}  // namespace hotlib::gravity
