// batch_avx2.cpp — AVX2 batch kernels, four double-precision sources per
// instruction.
//
// This TU is compiled with -mavx2 -ffp-contract=off and nothing else in the
// build links against its intrinsics; batch.cpp reaches it through the
// dispatch table only after cpu_has_avx2() confirms the instruction set.
//
// Contraction is off and the kernels use only mul/add/sub intrinsics so each
// lane performs exactly the scalar kernel's operation sequence; the only
// difference from the scalar path is accumulation order (four partial sums,
// a horizontal reduction, then the remainder tail), which is what bounds the
// cross-path disagreement to a couple of ulps of the accumulated magnitude.
#include "gravity/batch.hpp"

#include <immintrin.h>

#include <cstdint>
#include <limits>

namespace hotlib::gravity::detail {

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

namespace {

// Karp seed + 4 Newton steps, per lane identical to karp_rsqrt's fast path.
// Lanes outside the positive normal range (zeros, denormals, inf, NaN —
// possible for coincident unsoftened particles) are recomputed through the
// scalar karp_rsqrt, which owns the IEEE edge-case handling.
inline __m256d rsqrt4(__m256d r2) {
  const __m256i bits = _mm256_castpd_si256(r2);
  __m256d y = _mm256_castsi256_pd(_mm256_sub_epi64(
      _mm256_set1_epi64x(static_cast<long long>(0x5FE6EB50C7B537A9ULL)),
      _mm256_srli_epi64(bits, 1)));
  const __m256d xh = _mm256_mul_pd(_mm256_set1_pd(0.5), r2);
  const __m256d c15 = _mm256_set1_pd(1.5);
  for (int it = 0; it < 4; ++it)
    y = _mm256_mul_pd(
        y, _mm256_sub_pd(c15, _mm256_mul_pd(_mm256_mul_pd(xh, y), y)));
  const __m256d ok = _mm256_and_pd(
      _mm256_cmp_pd(r2, _mm256_set1_pd(std::numeric_limits<double>::min()),
                    _CMP_GE_OQ),
      _mm256_cmp_pd(r2, _mm256_set1_pd(std::numeric_limits<double>::max()),
                    _CMP_LE_OQ));
  const int mask = _mm256_movemask_pd(ok);
  if (mask != 0xF) [[unlikely]] {
    alignas(32) double rv[4];
    alignas(32) double yv[4];
    _mm256_store_pd(rv, r2);
    _mm256_store_pd(yv, y);
    for (int lane = 0; lane < 4; ++lane)
      if (((mask >> lane) & 1) == 0) yv[lane] = karp_rsqrt(rv[lane]);
    y = _mm256_load_pd(yv);
  }
  return y;
}

// ((v0 + v1) + (v2 + v3)) — one fixed reduction order for all kernels.
inline double hsum(__m256d v) {
  alignas(32) double t[4];
  _mm256_store_pd(t, v);
  return (t[0] + t[1]) + (t[2] + t[3]);
}

}  // namespace

void pp_avx2(const InteractionBatch& b, const Vec3d& xi, double eps2,
             std::size_t self_slot, Vec3d& acc, double& pot) {
  const std::size_t n = b.body_count();
  const __m256d xix = _mm256_set1_pd(xi.x);
  const __m256d xiy = _mm256_set1_pd(xi.y);
  const __m256d xiz = _mm256_set1_pd(xi.z);
  const __m256d e2 = _mm256_set1_pd(eps2);
  __m256d ax = _mm256_setzero_pd();
  __m256d ay = _mm256_setzero_pd();
  __m256d az = _mm256_setzero_pd();
  __m256d pv = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(b.px.data() + j), xix);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(b.py.data() + j), xiy);
    const __m256d dz = _mm256_sub_pd(_mm256_loadu_pd(b.pz.data() + j), xiz);
    const __m256d m = _mm256_loadu_pd(b.pm.data() + j);
    const __m256d r2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                      _mm256_mul_pd(dz, dz)),
        e2);
    __m256d rinv = rsqrt4(r2);
    if (self_slot >= j && self_slot < j + 4) [[unlikely]] {
      // Zero the self lane's rinv via a bit mask (a multiply would turn the
      // eps2 == 0 lane's inf into NaN); both its contributions then vanish.
      alignas(32) std::uint64_t mv[4] = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
      mv[self_slot - j] = 0;
      rinv = _mm256_and_pd(rinv,
                           _mm256_load_pd(reinterpret_cast<const double*>(mv)));
    }
    const __m256d rinv3 = _mm256_mul_pd(_mm256_mul_pd(rinv, rinv), rinv);
    const __m256d t = _mm256_mul_pd(m, rinv3);
    ax = _mm256_add_pd(ax, _mm256_mul_pd(dx, t));
    ay = _mm256_add_pd(ay, _mm256_mul_pd(dy, t));
    az = _mm256_add_pd(az, _mm256_mul_pd(dz, t));
    pv = _mm256_sub_pd(pv, _mm256_mul_pd(m, rinv));
  }
  acc.x += hsum(ax);
  acc.y += hsum(ay);
  acc.z += hsum(az);
  pot += hsum(pv);
  for (; j < n; ++j) {
    if (j == self_slot) continue;
    pp_accumulate(xi, Vec3d{b.px[j], b.py[j], b.pz[j]}, b.pm[j], eps2, acc, pot);
  }
}

void pc_avx2(const InteractionBatch& b, const Vec3d& xi, double eps2, Vec3d& acc,
             double& pot) {
  const std::size_t n = b.cell_count();
  const __m256d xix = _mm256_set1_pd(xi.x);
  const __m256d xiy = _mm256_set1_pd(xi.y);
  const __m256d xiz = _mm256_set1_pd(xi.z);
  const __m256d e2 = _mm256_set1_pd(eps2);
  const __m256d c25 = _mm256_set1_pd(2.5);
  const __m256d c05 = _mm256_set1_pd(0.5);
  __m256d ax = _mm256_setzero_pd();
  __m256d ay = _mm256_setzero_pd();
  __m256d az = _mm256_setzero_pd();
  __m256d pv = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(b.cx.data() + j), xix);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(b.cy.data() + j), xiy);
    const __m256d dz = _mm256_sub_pd(_mm256_loadu_pd(b.cz.data() + j), xiz);
    const __m256d m = _mm256_loadu_pd(b.cm.data() + j);
    const __m256d r2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                      _mm256_mul_pd(dz, dz)),
        e2);
    const __m256d rinv = rsqrt4(r2);
    const __m256d rinv2 = _mm256_mul_pd(rinv, rinv);
    const __m256d rinv3 = _mm256_mul_pd(rinv, rinv2);
    const __m256d t = _mm256_mul_pd(m, rinv3);
    ax = _mm256_add_pd(ax, _mm256_mul_pd(dx, t));
    ay = _mm256_add_pd(ay, _mm256_mul_pd(dy, t));
    az = _mm256_add_pd(az, _mm256_mul_pd(dz, t));
    pv = _mm256_sub_pd(pv, _mm256_mul_pd(m, rinv));
    if (!b.use_quad) continue;
    const __m256d rinv5 = _mm256_mul_pd(rinv3, rinv2);
    const __m256d rinv7 = _mm256_mul_pd(rinv5, rinv2);
    const __m256d q0 = _mm256_loadu_pd(b.cq[0].data() + j);
    const __m256d q1 = _mm256_loadu_pd(b.cq[1].data() + j);
    const __m256d q2 = _mm256_loadu_pd(b.cq[2].data() + j);
    const __m256d q3 = _mm256_loadu_pd(b.cq[3].data() + j);
    const __m256d q4 = _mm256_loadu_pd(b.cq[4].data() + j);
    const __m256d q5 = _mm256_loadu_pd(b.cq[5].data() + j);
    const __m256d qdx = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(q0, dx), _mm256_mul_pd(q1, dy)),
        _mm256_mul_pd(q2, dz));
    const __m256d qdy = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(q1, dx), _mm256_mul_pd(q3, dy)),
        _mm256_mul_pd(q4, dz));
    const __m256d qdz = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(q2, dx), _mm256_mul_pd(q4, dy)),
        _mm256_mul_pd(q5, dz));
    const __m256d dqd = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, qdx), _mm256_mul_pd(dy, qdy)),
        _mm256_mul_pd(dz, qdz));
    const __m256d s = _mm256_mul_pd(_mm256_mul_pd(c25, dqd), rinv7);
    ax = _mm256_add_pd(
        ax, _mm256_sub_pd(_mm256_mul_pd(dx, s), _mm256_mul_pd(qdx, rinv5)));
    ay = _mm256_add_pd(
        ay, _mm256_sub_pd(_mm256_mul_pd(dy, s), _mm256_mul_pd(qdy, rinv5)));
    az = _mm256_add_pd(
        az, _mm256_sub_pd(_mm256_mul_pd(dz, s), _mm256_mul_pd(qdz, rinv5)));
    pv = _mm256_sub_pd(pv,
                       _mm256_mul_pd(_mm256_mul_pd(c05, dqd), rinv5));
  }
  acc.x += hsum(ax);
  acc.y += hsum(ay);
  acc.z += hsum(az);
  pot += hsum(pv);
  std::array<double, 6> quad{};
  for (; j < n; ++j) {
    if (b.use_quad)
      for (std::size_t k = 0; k < 6; ++k) quad[k] = b.cq[k][j];
    pc_accumulate(xi, Vec3d{b.cx[j], b.cy[j], b.cz[j]}, b.cm[j], quad, b.use_quad,
                  eps2, acc, pot);
  }
}

void bs_avx2(const BiotSavartBatch& b, const Vec3d& xi, const Vec3d& alpha_i,
             double sigma2, Vec3d& u, Vec3d& dalpha) {
  const std::size_t n = b.size();
  const __m256d xix = _mm256_set1_pd(xi.x);
  const __m256d xiy = _mm256_set1_pd(xi.y);
  const __m256d xiz = _mm256_set1_pd(xi.z);
  const __m256d aix = _mm256_set1_pd(alpha_i.x);
  const __m256d aiy = _mm256_set1_pd(alpha_i.y);
  const __m256d aiz = _mm256_set1_pd(alpha_i.z);
  const __m256d s2 = _mm256_set1_pd(sigma2);
  const __m256d nqip = _mm256_set1_pd(-kQuarterInvPi);
  const __m256d c3 = _mm256_set1_pd(3.0);
  __m256d ux = _mm256_setzero_pd();
  __m256d uy = _mm256_setzero_pd();
  __m256d uz = _mm256_setzero_pd();
  __m256d wx = _mm256_setzero_pd();
  __m256d wy = _mm256_setzero_pd();
  __m256d wz = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(xix, _mm256_loadu_pd(b.x.data() + j));
    const __m256d dy = _mm256_sub_pd(xiy, _mm256_loadu_pd(b.y.data() + j));
    const __m256d dz = _mm256_sub_pd(xiz, _mm256_loadu_pd(b.z.data() + j));
    const __m256d ajx = _mm256_loadu_pd(b.ax.data() + j);
    const __m256d ajy = _mm256_loadu_pd(b.ay.data() + j);
    const __m256d ajz = _mm256_loadu_pd(b.az.data() + j);
    const __m256d r2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                      _mm256_mul_pd(dz, dz)),
        s2);
    const __m256d rinv = rsqrt4(r2);
    const __m256d s = _mm256_mul_pd(_mm256_mul_pd(rinv, rinv), rinv);
    const __m256d t = _mm256_mul_pd(_mm256_mul_pd(s, rinv), rinv);
    // dxa = cross(d, alpha_j)
    const __m256d dxax =
        _mm256_sub_pd(_mm256_mul_pd(dy, ajz), _mm256_mul_pd(dz, ajy));
    const __m256d dxay =
        _mm256_sub_pd(_mm256_mul_pd(dz, ajx), _mm256_mul_pd(dx, ajz));
    const __m256d dxaz =
        _mm256_sub_pd(_mm256_mul_pd(dx, ajy), _mm256_mul_pd(dy, ajx));
    const __m256d coef = _mm256_mul_pd(nqip, s);
    ux = _mm256_add_pd(ux, _mm256_mul_pd(dxax, coef));
    uy = _mm256_add_pd(uy, _mm256_mul_pd(dxay, coef));
    uz = _mm256_add_pd(uz, _mm256_mul_pd(dxaz, coef));
    // cross(alpha_i, alpha_j)
    const __m256d cxx =
        _mm256_sub_pd(_mm256_mul_pd(aiy, ajz), _mm256_mul_pd(aiz, ajy));
    const __m256d cxy =
        _mm256_sub_pd(_mm256_mul_pd(aiz, ajx), _mm256_mul_pd(aix, ajz));
    const __m256d cxz =
        _mm256_sub_pd(_mm256_mul_pd(aix, ajy), _mm256_mul_pd(aiy, ajx));
    const __m256d dai = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, aix), _mm256_mul_pd(dy, aiy)),
        _mm256_mul_pd(dz, aiz));
    const __m256d w = _mm256_mul_pd(_mm256_mul_pd(c3, t), dai);
    wx = _mm256_add_pd(
        wx, _mm256_mul_pd(
                _mm256_sub_pd(_mm256_mul_pd(cxx, s), _mm256_mul_pd(dxax, w)),
                nqip));
    wy = _mm256_add_pd(
        wy, _mm256_mul_pd(
                _mm256_sub_pd(_mm256_mul_pd(cxy, s), _mm256_mul_pd(dxay, w)),
                nqip));
    wz = _mm256_add_pd(
        wz, _mm256_mul_pd(
                _mm256_sub_pd(_mm256_mul_pd(cxz, s), _mm256_mul_pd(dxaz, w)),
                nqip));
  }
  u.x += hsum(ux);
  u.y += hsum(uy);
  u.z += hsum(uz);
  dalpha.x += hsum(wx);
  dalpha.y += hsum(wy);
  dalpha.z += hsum(wz);
  for (; j < n; ++j)
    biot_savart_accumulate(xi, Vec3d{b.x[j], b.y[j], b.z[j]},
                           Vec3d{b.ax[j], b.ay[j], b.az[j]}, sigma2, u, &alpha_i,
                           &dalpha);
}

}  // namespace hotlib::gravity::detail
