#include "gravity/direct.hpp"

#include <algorithm>
#include <cassert>

#include "gravity/batch.hpp"
#include "telemetry/trace.hpp"
#include "util/task_pool.hpp"

namespace {

// Sink-chunk size for the shared-source loops below: big enough to amortize
// task overhead over the O(chunk * n) kernel work, small enough to balance.
std::size_t sink_grain(std::size_t n, int lanes) {
  return std::max<std::size_t>(64, n / (static_cast<std::size_t>(lanes) * 8));
}

}  // namespace

namespace hotlib::gravity {

InteractionTally direct_forces(std::span<const Vec3d> pos, std::span<const double> mass,
                               double eps, double G, std::span<Vec3d> acc,
                               std::span<double> pot) {
  assert(pos.size() == mass.size() && pos.size() == acc.size() && pos.size() == pot.size());
  telemetry::Span span("direct_forces", telemetry::Phase::kForceEval, pos.size());
  const std::size_t n = pos.size();
  const double eps2 = eps * eps;
  InteractionTally tally;
  // Gather all sources once; every sink sees the same batch and skips its
  // own slot (slot == index because bodies are appended in order).
  InteractionBatch batch;
  batch.reserve_bodies(n);
  for (std::size_t j = 0; j < n; ++j) batch.add_body(pos[j], mass[j]);
  util::TaskPool& pool = util::TaskPool::global();
  pool.parallel_for(n, sink_grain(n, pool.concurrency()),
                    [&](std::size_t lo, std::size_t hi) {
                      telemetry::ensure_worker(util::TaskPool::current_worker());
                      for (std::size_t i = lo; i < hi; ++i) {
                        Vec3d a{};
                        double p = 0;
                        batch_pp(batch, pos[i], eps2, i, a, p);
                        acc[i] = G * a;
                        pot[i] = G * p;
                      }
                    });
  if (n > 0) tally.body_body += n * (n - 1);
  telemetry::count_tally(tally);
  return tally;
}

namespace {
struct Source {
  Vec3d pos;
  double mass;
};
}  // namespace

InteractionTally ring_direct_forces(parc::Rank& rank, std::span<const Vec3d> pos,
                                    std::span<const double> mass, double eps, double G,
                                    std::span<Vec3d> acc, std::span<double> pot) {
  const int p = rank.size();
  telemetry::Span span("ring_direct_forces", telemetry::Phase::kForceEval, pos.size());
  const std::size_t n = pos.size();
  const double eps2 = eps * eps;
  InteractionTally tally;

  std::vector<Vec3d> a(n, Vec3d{});
  std::vector<double> phi(n, 0.0);

  // Travelling source block, initialized to the local block.
  std::vector<Source> travel(n);
  for (std::size_t j = 0; j < n; ++j) travel[j] = {pos[j], mass[j]};

  InteractionBatch batch;
  const int right = (rank.rank() + 1) % p;
  const int left = (rank.rank() - 1 + p) % p;
  for (int s = 0; s < p; ++s) {
    // Interact local sinks with the current travelling block. On the first
    // stage the block is our own: skip the self pair by slot (slot == index
    // because the block is gathered in order).
    const bool self_stage = (s == 0);
    batch.clear();
    batch.reserve_bodies(travel.size());
    for (const Source& src : travel) batch.add_body(src.pos, src.mass);
    util::TaskPool& pool = util::TaskPool::global();
    pool.parallel_for(n, sink_grain(n, pool.concurrency()),
                      [&](std::size_t lo, std::size_t hi) {
                        telemetry::ensure_worker(util::TaskPool::current_worker());
                        for (std::size_t i = lo; i < hi; ++i)
                          batch_pp(batch, pos[i], eps2, self_stage ? i : kNoSelf,
                                   a[i], phi[i]);
                      });
    tally.body_body +=
        static_cast<std::uint64_t>(n) * (travel.size() - (self_stage ? 1 : 0));
    if (s + 1 < p) {
      // Shift the block around the ring. Tag by stage to keep order.
      const int tag = 100 + s;
      rank.send_span<Source>(right, tag, travel);
      travel = rank.recv(left, tag).as_vector<Source>();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = G * a[i];
    pot[i] = G * phi[i];
  }
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
