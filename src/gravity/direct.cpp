#include "gravity/direct.hpp"

#include <cassert>

#include "gravity/batch.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

InteractionTally direct_forces(std::span<const Vec3d> pos, std::span<const double> mass,
                               double eps, double G, std::span<Vec3d> acc,
                               std::span<double> pot) {
  assert(pos.size() == mass.size() && pos.size() == acc.size() && pos.size() == pot.size());
  telemetry::Span span("direct_forces", telemetry::Phase::kForceEval, pos.size());
  const std::size_t n = pos.size();
  const double eps2 = eps * eps;
  InteractionTally tally;
  // Gather all sources once; every sink sees the same batch and skips its
  // own slot (slot == index because bodies are appended in order).
  InteractionBatch batch;
  batch.reserve_bodies(n);
  for (std::size_t j = 0; j < n; ++j) batch.add_body(pos[j], mass[j]);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d a{};
    double p = 0;
    batch_pp(batch, pos[i], eps2, i, a, p);
    acc[i] = G * a;
    pot[i] = G * p;
    tally.body_body += n - 1;
  }
  telemetry::count_tally(tally);
  return tally;
}

namespace {
struct Source {
  Vec3d pos;
  double mass;
};
}  // namespace

InteractionTally ring_direct_forces(parc::Rank& rank, std::span<const Vec3d> pos,
                                    std::span<const double> mass, double eps, double G,
                                    std::span<Vec3d> acc, std::span<double> pot) {
  const int p = rank.size();
  telemetry::Span span("ring_direct_forces", telemetry::Phase::kForceEval, pos.size());
  const std::size_t n = pos.size();
  const double eps2 = eps * eps;
  InteractionTally tally;

  std::vector<Vec3d> a(n, Vec3d{});
  std::vector<double> phi(n, 0.0);

  // Travelling source block, initialized to the local block.
  std::vector<Source> travel(n);
  for (std::size_t j = 0; j < n; ++j) travel[j] = {pos[j], mass[j]};

  InteractionBatch batch;
  const int right = (rank.rank() + 1) % p;
  const int left = (rank.rank() - 1 + p) % p;
  for (int s = 0; s < p; ++s) {
    // Interact local sinks with the current travelling block. On the first
    // stage the block is our own: skip the self pair by slot (slot == index
    // because the block is gathered in order).
    const bool self_stage = (s == 0);
    batch.clear();
    batch.reserve_bodies(travel.size());
    for (const Source& src : travel) batch.add_body(src.pos, src.mass);
    for (std::size_t i = 0; i < n; ++i) {
      batch_pp(batch, pos[i], eps2, self_stage ? i : kNoSelf, a[i], phi[i]);
      tally.body_body += travel.size() - (self_stage ? 1 : 0);
    }
    if (s + 1 < p) {
      // Shift the block around the ring. Tag by stage to keep order.
      const int tag = 100 + s;
      rank.send_span<Source>(right, tag, travel);
      travel = rank.recv(left, tag).as_vector<Source>();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = G * a[i];
    pot[i] = G * phi[i];
  }
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
