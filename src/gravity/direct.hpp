// direct.hpp — the O(N^2) solution of the gravitational N-body problem.
//
// "We are not fans of the trivial O(N^2) solution... the software
// implementation is simply a double loop, and is very easy to parallelize
// using a ring decomposition." This module provides the serial double loop
// (reference for accuracy tests) and the ring-decomposed parallel version
// used by bench_nsquared to reproduce the 1M-body / 635 Gflop benchmark.
#pragma once

#include <span>

#include "parc/rank.hpp"
#include "telemetry/counters.hpp"
#include "util/vec3.hpp"

namespace hotlib::gravity {

// Serial double loop: accelerations and potentials for all bodies, Plummer
// softening eps, gravitational constant G. Counts N*(N-1) interactions.
InteractionTally direct_forces(std::span<const Vec3d> pos, std::span<const double> mass,
                               double eps, double G, std::span<Vec3d> acc,
                               std::span<double> pot);

// Ring-decomposed parallel double loop. Each rank owns a block of sinks
// (pos/mass/acc/pot are the local block); a travelling copy of the source
// block is shifted around the ring P times, overlapping each shift with the
// local block-block interaction. Returns the local interaction tally.
InteractionTally ring_direct_forces(parc::Rank& rank, std::span<const Vec3d> pos,
                                    std::span<const double> mass, double eps, double G,
                                    std::span<Vec3d> acc, std::span<double> pot);

}  // namespace hotlib::gravity
