#include "gravity/evaluator.hpp"

#include <cassert>

#include "gravity/kernels.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

InteractionTally tree_forces(const hot::Tree& tree, std::span<const Vec3d> pos,
                             std::span<const double> mass, const TreeForceConfig& cfg,
                             std::span<Vec3d> acc, std::span<double> pot,
                             std::span<double> work) {
  assert(pos.size() == acc.size() && pos.size() == pot.size());
  telemetry::Span span("tree_forces", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  const auto& cells = tree.cells();
  hot::InteractionLists lists;

  for (std::uint32_t li : hot::leaf_indices(tree)) {
    hot::build_interaction_lists(tree, li, cfg.mac, lists, tally);
    const hot::Cell& group = cells[li];
    for (std::uint32_t t = group.body_begin; t < group.body_begin + group.body_count;
         ++t) {
      const std::uint32_t i = tree.order()[t];
      Vec3d a{};
      double p = 0;
      for (std::uint32_t j : lists.bodies) {
        if (j == i) continue;
        pp_accumulate(pos[i], pos[j], mass[j], eps2, a, p);
      }
      for (std::uint32_t ci : lists.cells)
        pc_accumulate(pos[i], cells[ci], cfg.mac.quadrupole, eps2, a, p);

      acc[i] += cfg.G * a;
      pot[i] += cfg.G * p;
      const std::uint64_t count =
          lists.bodies.size() - 1 + lists.cells.size();  // self term skipped
      tally.body_body += lists.bodies.size() - 1;
      tally.body_cell += lists.cells.size();
      if (!work.empty()) work[i] = static_cast<double>(count);
    }
  }
  telemetry::count_tally(tally);
  return tally;
}

InteractionTally apply_let_import(const hot::LetImport& import,
                                  std::span<const Vec3d> pos, const TreeForceConfig& cfg,
                                  std::span<Vec3d> acc, std::span<double> pot,
                                  std::span<double> work) {
  telemetry::Span span("apply_let_import", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    Vec3d a{};
    double p = 0;
    for (const hot::SourceRecord& s : import.bodies)
      pp_accumulate(pos[i], s.pos, s.mass, eps2, a, p);
    for (const hot::CellRecord& c : import.cells)
      pc_accumulate(pos[i], c.com, c.mass, c.quad, cfg.mac.quadrupole, eps2, a, p);
    acc[i] += cfg.G * a;
    pot[i] += cfg.G * p;
    if (!work.empty())
      work[i] += static_cast<double>(import.bodies.size() + import.cells.size());
  }
  tally.body_body += static_cast<std::uint64_t>(pos.size()) * import.bodies.size();
  tally.body_cell += static_cast<std::uint64_t>(pos.size()) * import.cells.size();
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
