#include "gravity/evaluator.hpp"

#include <cassert>

#include "gravity/batch.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

namespace {

// Gather one sink group's interaction lists into SoA lanes: bodies in list
// order, then the accepted cells' monopoles (and quadrupoles when the MAC
// uses them).
void gather_lists(const hot::Tree& tree, const hot::InteractionLists& lists,
                  std::span<const Vec3d> pos, std::span<const double> mass,
                  bool quadrupole, InteractionBatch& batch) {
  batch.clear();
  batch.use_quad = quadrupole;
  batch.reserve_bodies(lists.bodies.size());
  for (std::uint32_t j : lists.bodies) batch.add_body(pos[j], mass[j]);
  const auto& cells = tree.cells();
  for (std::uint32_t ci : lists.cells)
    batch.add_cell(cells[ci].com, cells[ci].mass, cells[ci].quad);
}

}  // namespace

InteractionTally tree_forces(const hot::Tree& tree, std::span<const Vec3d> pos,
                             std::span<const double> mass, const TreeForceConfig& cfg,
                             std::span<Vec3d> acc, std::span<double> pot,
                             std::span<double> work) {
  assert(pos.size() == acc.size() && pos.size() == pot.size());
  telemetry::Span span("tree_forces", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  const auto& cells = tree.cells();
  hot::InteractionLists lists;
  InteractionBatch batch;

  for (std::uint32_t li : hot::leaf_indices(tree)) {
    hot::build_interaction_lists(tree, li, cfg.mac, lists, tally);
    gather_lists(tree, lists, pos, mass, cfg.mac.quadrupole, batch);
    const hot::Cell& group = cells[li];
    for (std::uint32_t t = group.body_begin; t < group.body_begin + group.body_count;
         ++t) {
      const std::uint32_t i = tree.order()[t];
      Vec3d a{};
      double p = 0;
      // The group's own members occupy contiguous slots in tree order.
      const std::size_t self = lists.self_begin + (t - group.body_begin);
      batch_pp(batch, pos[i], eps2, self, a, p);
      batch_pc(batch, pos[i], eps2, a, p);

      acc[i] += cfg.G * a;
      pot[i] += cfg.G * p;
      const std::uint64_t count =
          lists.bodies.size() - 1 + lists.cells.size();  // self term skipped
      tally.body_body += lists.bodies.size() - 1;
      tally.body_cell += lists.cells.size();
      if (!work.empty()) work[i] = static_cast<double>(count);
    }
  }
  telemetry::count_tally(tally);
  return tally;
}

InteractionTally apply_let_import(const hot::LetImport& import,
                                  std::span<const Vec3d> pos, const TreeForceConfig& cfg,
                                  std::span<Vec3d> acc, std::span<double> pot,
                                  std::span<double> work) {
  telemetry::Span span("apply_let_import", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  InteractionBatch batch;
  batch.use_quad = cfg.mac.quadrupole;
  batch.reserve_bodies(import.bodies.size());
  for (const hot::SourceRecord& s : import.bodies) batch.add_body(s.pos, s.mass);
  for (const hot::CellRecord& c : import.cells) batch.add_cell(c.com, c.mass, c.quad);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    Vec3d a{};
    double p = 0;
    batch_pp(batch, pos[i], eps2, kNoSelf, a, p);
    batch_pc(batch, pos[i], eps2, a, p);
    acc[i] += cfg.G * a;
    pot[i] += cfg.G * p;
    if (!work.empty())
      work[i] += static_cast<double>(import.bodies.size() + import.cells.size());
  }
  tally.body_body += static_cast<std::uint64_t>(pos.size()) * import.bodies.size();
  tally.body_cell += static_cast<std::uint64_t>(pos.size()) * import.cells.size();
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
