#include "gravity/evaluator.hpp"

#include <cassert>
#include <memory>

#include "gravity/batch.hpp"
#include "telemetry/trace.hpp"
#include "util/scratch_pool.hpp"
#include "util/task_pool.hpp"

namespace hotlib::gravity {

namespace {

// Gather one sink group's interaction lists into SoA lanes: bodies in list
// order, then the accepted cells' monopoles (and quadrupoles when the MAC
// uses them).
void gather_lists(const hot::Tree& tree, const hot::InteractionLists& lists,
                  std::span<const Vec3d> pos, std::span<const double> mass,
                  bool quadrupole, InteractionBatch& batch) {
  batch.clear();
  batch.use_quad = quadrupole;
  batch.reserve_bodies(lists.bodies.size());
  for (std::uint32_t j : lists.bodies) batch.add_body(pos[j], mass[j]);
  const auto& cells = tree.cells();
  for (std::uint32_t ci : lists.cells)
    batch.add_cell(cells[ci].com, cells[ci].mass, cells[ci].quad);
}

}  // namespace

InteractionTally tree_forces(const hot::Tree& tree, std::span<const Vec3d> pos,
                             std::span<const double> mass, const TreeForceConfig& cfg,
                             std::span<Vec3d> acc, std::span<double> pot,
                             std::span<double> work) {
  assert(pos.size() == acc.size() && pos.size() == pot.size());
  telemetry::Span span("tree_forces", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  const auto& cells = tree.cells();
  const std::vector<std::uint32_t> leaves = hot::leaf_indices(tree);

  // One sink group start to finish: the walk, the gather and the per-body
  // kernel order are all fixed by the group, and every output this writes
  // (acc/pot/work of the group's members) is disjoint from every other
  // group's — the unit of work the determinism contract is built on.
  const auto do_group = [&](std::uint32_t li, hot::InteractionLists& lists,
                            InteractionBatch& batch, InteractionTally& t) {
    hot::build_interaction_lists(tree, li, cfg.mac, lists, t);
    gather_lists(tree, lists, pos, mass, cfg.mac.quadrupole, batch);
    const hot::Cell& group = cells[li];
    for (std::uint32_t s = group.body_begin; s < group.body_begin + group.body_count;
         ++s) {
      const std::uint32_t i = tree.order()[s];
      Vec3d a{};
      double p = 0;
      // The group's own members occupy contiguous slots in tree order.
      const std::size_t self = lists.self_begin + (s - group.body_begin);
      batch_pp(batch, pos[i], eps2, self, a, p);
      batch_pc(batch, pos[i], eps2, a, p);

      acc[i] += cfg.G * a;
      pot[i] += cfg.G * p;
      const std::uint64_t count =
          lists.bodies.size() - 1 + lists.cells.size();  // self term skipped
      t.body_body += lists.bodies.size() - 1;
      t.body_cell += lists.cells.size();
      if (!work.empty()) work[i] = static_cast<double>(count);
    }
  };

  util::TaskPool& pool = util::TaskPool::global();
  if (pool.concurrency() == 1 || leaves.size() < 2) {
    hot::InteractionLists lists;
    InteractionBatch batch;
    for (std::uint32_t li : leaves) do_group(li, lists, batch, tally);
  } else {
    struct Scratch {
      hot::InteractionLists lists;
      InteractionBatch batch;
      InteractionTally tally;
    };
    // Partial tallies are summed by the caller after the join — uint64 sums
    // are associative, so the accumulation order (which varies with steal
    // order) cannot change the total.
    util::ScratchPool<Scratch> scratch;
    const std::size_t grain =
        std::max<std::size_t>(1, leaves.size() / (static_cast<std::size_t>(pool.concurrency()) * 8));
    pool.parallel_for(leaves.size(), grain, [&](std::size_t lo, std::size_t hi) {
      telemetry::ensure_worker(util::TaskPool::current_worker());
      telemetry::Span walk("force_walk", telemetry::Phase::kOther, hi - lo);
      std::unique_ptr<Scratch> s = scratch.acquire();
      for (std::size_t g = lo; g < hi; ++g)
        do_group(leaves[g], s->lists, s->batch, s->tally);
      scratch.release(std::move(s));
    });
    scratch.for_each([&](Scratch& s) { tally += s.tally; });
  }
  telemetry::count_tally(tally);
  return tally;
}

InteractionTally apply_let_import(const hot::LetImport& import,
                                  std::span<const Vec3d> pos, const TreeForceConfig& cfg,
                                  std::span<Vec3d> acc, std::span<double> pot,
                                  std::span<double> work) {
  telemetry::Span span("apply_let_import", telemetry::Phase::kForceEval, pos.size());
  InteractionTally tally;
  const double eps2 = cfg.softening * cfg.softening;
  InteractionBatch batch;
  batch.use_quad = cfg.mac.quadrupole;
  batch.reserve_bodies(import.bodies.size());
  for (const hot::SourceRecord& s : import.bodies) batch.add_body(s.pos, s.mass);
  for (const hot::CellRecord& c : import.cells) batch.add_cell(c.com, c.mass, c.quad);
  // Sinks are independent over a shared read-only batch; each chunk writes
  // a disjoint slice of acc/pot/work.
  util::TaskPool& pool = util::TaskPool::global();
  const std::size_t grain = std::max<std::size_t>(
      256, pos.size() / (static_cast<std::size_t>(pool.concurrency()) * 8));
  pool.parallel_for(pos.size(), grain, [&](std::size_t lo, std::size_t hi) {
    telemetry::ensure_worker(util::TaskPool::current_worker());
    for (std::size_t i = lo; i < hi; ++i) {
      Vec3d a{};
      double p = 0;
      batch_pp(batch, pos[i], eps2, kNoSelf, a, p);
      batch_pc(batch, pos[i], eps2, a, p);
      acc[i] += cfg.G * a;
      pot[i] += cfg.G * p;
      if (!work.empty())
        work[i] += static_cast<double>(import.bodies.size() + import.cells.size());
    }
  });
  tally.body_body += static_cast<std::uint64_t>(pos.size()) * import.bodies.size();
  tally.body_cell += static_cast<std::uint64_t>(pos.size()) * import.cells.size();
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
