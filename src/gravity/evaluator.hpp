// evaluator.hpp — treecode force evaluation (the flop-counted inner stage).
#pragma once

#include <span>

#include "hot/let.hpp"
#include "hot/mac.hpp"
#include "hot/traverse.hpp"
#include "hot/tree.hpp"
#include "telemetry/counters.hpp"
#include "util/vec3.hpp"

namespace hotlib::gravity {

struct TreeForceConfig {
  hot::Mac mac{};          // acceptance criterion (theta / error bound / quad flag)
  double softening = 0.0;  // Plummer softening length
  double G = 1.0;
};

// Evaluate accelerations and potentials for every body of the tree from the
// tree's own (local) sources. `pos`/`mass`/`acc`/`pot` use original body
// indexing (the arrays the tree was built from). When `work` is non-empty,
// each body's interaction count is written there for the next weighted
// domain decomposition.
InteractionTally tree_forces(const hot::Tree& tree, std::span<const Vec3d> pos,
                             std::span<const double> mass, const TreeForceConfig& cfg,
                             std::span<Vec3d> acc, std::span<double> pot,
                             std::span<double> work = {});

// Apply a LET import (remote multipoles + remote direct bodies) to every
// local body. Import cells were MAC-accepted against this rank's whole
// domain, so no re-traversal is needed.
InteractionTally apply_let_import(const hot::LetImport& import,
                                  std::span<const Vec3d> pos, const TreeForceConfig& cfg,
                                  std::span<Vec3d> acc, std::span<double> pot,
                                  std::span<double> work = {});

}  // namespace hotlib::gravity
