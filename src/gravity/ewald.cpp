#include "gravity/ewald.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "gravity/kernels.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::gravity {

namespace {
constexpr int kRealCutoff = 4;  // real-space image range
constexpr int kFourierCutoff = 4;  // k-space mode range
}  // namespace

EwaldTable::EwaldTable(double box_size, int n) : box_(box_size), n_(n) {
  assert(box_size > 0 && n >= 2);
  cell_ = 0.5 * box_ / n_;
  table_.resize(static_cast<std::size_t>(n_ + 1) * (n_ + 1) * (n_ + 1));
  for (int k = 0; k <= n_; ++k)
    for (int j = 0; j <= n_; ++j)
      for (int i = 0; i <= n_; ++i)
        table_[at(i, j, k)] = exact_correction({i * cell_, j * cell_, k * cell_});
}

Vec3d EwaldTable::minimum_image(Vec3d d) const {
  for (int a = 0; a < 3; ++a) {
    double& c = d[static_cast<std::size_t>(a)];
    c -= box_ * std::nearbyint(c / box_);
  }
  return d;
}

Vec3d EwaldTable::exact_correction(const Vec3d& d) const {
  // Acceleration on a sink at separation d from a unit-mass source at the
  // origin, from the infinite lattice of images, minus the bare Newtonian
  // attraction of the nearest image:  a_N = -d / |d|^3.
  const double alpha = 2.0 / box_;
  Vec3d acc{};

  // Real-space (short-range, erfc-screened) lattice sum.
  for (int nx = -kRealCutoff; nx <= kRealCutoff; ++nx)
    for (int ny = -kRealCutoff; ny <= kRealCutoff; ++ny)
      for (int nz = -kRealCutoff; nz <= kRealCutoff; ++nz) {
        const Vec3d r{d.x - nx * box_, d.y - ny * box_, d.z - nz * box_};
        const double u = norm(r);
        if (u < 1e-12) continue;  // self image: no force by symmetry
        const double au = alpha * u;
        const double screen =
            std::erfc(au) + (2.0 * au / std::sqrt(std::numbers::pi)) *
                                std::exp(-au * au);
        acc -= (screen / (u * u * u)) * r;
      }

  // k-space (long-range) sum: + (4 pi / L^3) sum_k (k/k^2) e^{-k^2/4a^2} sin(k.d)
  const double kf = 2.0 * std::numbers::pi / box_;
  for (int mx = -kFourierCutoff; mx <= kFourierCutoff; ++mx)
    for (int my = -kFourierCutoff; my <= kFourierCutoff; ++my)
      for (int mz = -kFourierCutoff; mz <= kFourierCutoff; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        const Vec3d k{kf * mx, kf * my, kf * mz};
        const double k2 = norm2(k);
        const double factor = (4.0 * std::numbers::pi / (box_ * box_ * box_)) *
                              std::exp(-k2 / (4.0 * alpha * alpha)) / k2;
        acc -= factor * std::sin(dot(k, d)) * k;
      }

  // Subtract the bare Newtonian attraction of the nearest image.
  const double u = norm(d);
  if (u > 1e-12) acc += d / (u * u * u);
  return acc;
}

Vec3d EwaldTable::correction(const Vec3d& d) const {
  // Fold into the positive octant; component i of the correction is odd
  // under d_i -> -d_i (lattice symmetry).
  Vec3d q = d;
  double sign[3] = {1, 1, 1};
  for (int a = 0; a < 3; ++a) {
    if (q[static_cast<std::size_t>(a)] < 0) {
      q[static_cast<std::size_t>(a)] = -q[static_cast<std::size_t>(a)];
      sign[a] = -1;
    }
  }
  // Trilinear interpolation on the (n+1)^3 grid over [0, L/2]^3.
  auto clamp_idx = [&](double x, int& i0, double& f) {
    const double t = x / cell_;
    i0 = static_cast<int>(t);
    if (i0 >= n_) i0 = n_ - 1;
    f = t - i0;
    if (f < 0) f = 0;
    if (f > 1) f = 1;
  };
  int i0, j0, k0;
  double fx, fy, fz;
  clamp_idx(q.x, i0, fx);
  clamp_idx(q.y, j0, fy);
  clamp_idx(q.z, k0, fz);
  Vec3d out{};
  for (int dk = 0; dk < 2; ++dk)
    for (int dj = 0; dj < 2; ++dj)
      for (int di = 0; di < 2; ++di) {
        const double w = (di ? fx : 1 - fx) * (dj ? fy : 1 - fy) * (dk ? fz : 1 - fz);
        out += w * table_[at(i0 + di, j0 + dj, k0 + dk)];
      }
  return {sign[0] * out.x, sign[1] * out.y, sign[2] * out.z};
}

InteractionTally periodic_direct_forces(std::span<const Vec3d> pos,
                                        std::span<const double> mass,
                                        const EwaldTable& ewald, double softening,
                                        double G, std::span<Vec3d> acc,
                                        std::span<double> pot) {
  const std::size_t n = pos.size();
  telemetry::Span span("periodic_direct_forces", telemetry::Phase::kForceEval, n);
  const double eps2 = softening * softening;
  InteractionTally tally;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3d a{};
    double p = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      // Minimum-image Newtonian part (softened)...
      const Vec3d d = ewald.minimum_image(pos[j] - pos[i]);
      const double r2 = norm2(d) + eps2;
      const double rinv = karp_rsqrt(r2);
      const double rinv3 = rinv * rinv * rinv;
      a += (mass[j] * rinv3) * d;
      p -= mass[j] * rinv;
      // ...plus the tabulated lattice correction. Note the correction is
      // defined for a sink at separation (sink - source) = -d.
      a += mass[j] * ewald.correction(-1.0 * d);
    }
    acc[i] = G * a;
    pot[i] = G * p;  // potential: minimum image only (diagnostic use)
    tally.body_body += n - 1;
  }
  telemetry::count_tally(tally);
  return tally;
}

}  // namespace hotlib::gravity
