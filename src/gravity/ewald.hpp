// ewald.hpp — periodic gravity via Ewald summation.
//
// The paper's Figure 1 shows "the periodic computational volume": the
// 322M-body initial conditions come from a periodic 1024^3 realization, and
// fully periodic treecode cosmology (as in the group's later production
// runs) needs the force of an infinite lattice of images. The classic
// solution (Hernquist, Bouchet & Suto 1991) splits the lattice sum into a
// short-range real-space part and a smooth k-space part:
//
//   f(x) = f_newton(x_min_image) + f_correction(x_min_image)
//
// where the correction — the lattice sum minus the single nearest image —
// is a smooth, bounded function tabulated once on a grid over the
// fundamental domain and interpolated at runtime.
//
// EwaldTable evaluates the correction exactly (erfc real-space sum plus
// k-space sum) for table construction, and by trilinear interpolation in
// force evaluation. The convention is the standard "tinfoil" (zero surface
// term) Ewald sum used by cosmological codes; a cube-truncated bare lattice
// sum differs by the conditional-convergence dipole term (4 pi / 3 L^3) d
// (exercised by the tests). periodic_direct_forces is the O(N^2) periodic reference
// solver used by the cosmology tests.
#pragma once

#include <span>
#include <vector>

#include "telemetry/counters.hpp"
#include "util/vec3.hpp"

namespace hotlib::gravity {

class EwaldTable {
 public:
  // Tabulate the correction on an (n+1)^3 grid over [0, L/2]^3 for a
  // periodic box of side L. n = 16..32 gives force errors ~1e-3 or better.
  explicit EwaldTable(double box_size, int n = 24);

  double box() const { return box_; }
  int resolution() const { return n_; }

  // Exact correction acceleration at separation d (|components| <= L/2),
  // for unit G and unit source mass: the infinite-lattice force minus the
  // bare Newtonian force of the nearest image. Used to build the table and
  // by the tests.
  Vec3d exact_correction(const Vec3d& d) const;

  // Interpolated correction (fast path).
  Vec3d correction(const Vec3d& d) const;

  // Wrap a separation vector into the minimum image (|components| <= L/2).
  Vec3d minimum_image(Vec3d d) const;

 private:
  double box_;
  int n_;
  double cell_;
  std::vector<Vec3d> table_;  // (n+1)^3 grid over the positive octant

  std::size_t at(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * (n_ + 1) + j) * (n_ + 1) + i;
  }
};

// Periodic O(N^2) solver: minimum-image Newtonian force plus the Ewald
// correction for every pair. Positions must lie in [0, L)^3.
InteractionTally periodic_direct_forces(std::span<const Vec3d> pos,
                                        std::span<const double> mass,
                                        const EwaldTable& ewald, double softening,
                                        double G, std::span<Vec3d> acc,
                                        std::span<double> pot);

}  // namespace hotlib::gravity
