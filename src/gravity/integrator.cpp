#include "gravity/integrator.hpp"

namespace hotlib::gravity {

void kick(hot::Bodies& b, double dt) {
  for (std::size_t i = 0; i < b.size(); ++i) b.vel[i] += dt * b.acc[i];
}

void drift(hot::Bodies& b, double dt) {
  for (std::size_t i = 0; i < b.size(); ++i) b.pos[i] += dt * b.vel[i];
}

double kinetic_energy(const hot::Bodies& b) {
  double e = 0;
  for (std::size_t i = 0; i < b.size(); ++i) e += 0.5 * b.mass[i] * norm2(b.vel[i]);
  return e;
}

double potential_energy(const hot::Bodies& b) {
  double e = 0;
  for (std::size_t i = 0; i < b.size(); ++i) e += 0.5 * b.mass[i] * b.pot[i];
  return e;
}

Vec3d total_momentum(const hot::Bodies& b) {
  Vec3d p{};
  for (std::size_t i = 0; i < b.size(); ++i) p += b.mass[i] * b.vel[i];
  return p;
}

Vec3d total_angular_momentum(const hot::Bodies& b) {
  Vec3d l{};
  for (std::size_t i = 0; i < b.size(); ++i)
    l += b.mass[i] * cross(b.pos[i], b.vel[i]);
  return l;
}

Vec3d center_of_mass(const hot::Bodies& b) {
  Vec3d c{};
  double m = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    c += b.mass[i] * b.pos[i];
    m += b.mass[i];
  }
  return m > 0 ? c / m : c;
}

}  // namespace hotlib::gravity
