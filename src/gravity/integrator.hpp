// integrator.hpp — leapfrog (kick-drift-kick) time integration and energy
// diagnostics. The force errors of the treecode "are exceeded by or are
// comparable to the time integration error"; the energy checks in the test
// suite quantify both.
#pragma once

#include "hot/bodies.hpp"

namespace hotlib::gravity {

// v += a * dt
void kick(hot::Bodies& b, double dt);
// x += v * dt
void drift(hot::Bodies& b, double dt);

double kinetic_energy(const hot::Bodies& b);
// Potential energy from the per-body potentials already stored in b.pot
// (each pair counted twice by the solvers, hence the factor 1/2).
double potential_energy(const hot::Bodies& b);

// Total momentum and angular momentum (conservation diagnostics).
Vec3d total_momentum(const hot::Bodies& b);
Vec3d total_angular_momentum(const hot::Bodies& b);
Vec3d center_of_mass(const hot::Bodies& b);

}  // namespace hotlib::gravity
