#include "gravity/kernels.hpp"

#include <cmath>
#include <limits>

namespace hotlib::gravity {

namespace detail {

double rsqrt_special(double x) {
  if (std::isnan(x)) return x;
  // 1/sqrt(±0) = 1/(±0) = ±inf, matching 1.0 / std::sqrt(x).
  if (x == 0.0) return 1.0 / x;
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 0.0;  // +inf
}

}  // namespace detail

KarpRsqrtTable::KarpRsqrtTable() {
  // For every (exponent parity, leading 7 mantissa bits) class, store the
  // mantissa of 1/sqrt(x) evaluated at the class midpoint. The stored seed
  // contributes ~11 correct bits, letting the Newton iterations converge in
  // three steps instead of four.
  for (std::uint32_t idx = 0; idx < 256; ++idx) {
    // Reconstruct a representative x in [1, 4): exponent parity is the top
    // bit of the index, the mantissa bits follow.
    const std::uint32_t parity = idx >> 7;
    const std::uint32_t mant = idx & 0x7F;
    const double frac = 1.0 + (static_cast<double>(mant) + 0.5) / 128.0;
    const double x = parity ? 2.0 * frac : frac;
    const double y = 1.0 / std::sqrt(x);
    table_[idx] = std::bit_cast<std::uint64_t>(y);
  }
}

}  // namespace hotlib::gravity
