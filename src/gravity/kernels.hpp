// kernels.hpp — gravitational interaction kernels.
//
// "We obtain optimal performance on the Pentium Pro processor by decomposing
// the reciprocal square root function required for a gravitational
// interaction into a table lookup, Chebychev polynomial interpolation, and
// Newton-Raphson iteration, using the algorithm of Karp. This algorithm uses
// only adds and multiplies, and requires 38 floating point operations per
// interaction."
//
// karp_rsqrt() reproduces that structure: a seed from an exponent-halving
// table lookup (with a quadratic mantissa correction standing in for the
// Chebyshev interpolation) refined by Newton-Raphson steps — adds and
// multiplies only, no sqrt/div instructions. The per-interaction flop count
// used for all reported rates is kFlopsPerGravityInteraction = 38, exactly
// as in the paper.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "hot/tree.hpp"
#include "util/vec3.hpp"

namespace hotlib::gravity {

namespace detail {

// Bit patterns of the positive normal range [DBL_MIN, DBL_MAX]. Everything
// outside it — zeros, denormals, infinities, NaNs, negatives — takes the
// cold edge path so the Newton iterations below only ever see inputs they
// converge on.
inline constexpr std::uint64_t kMinNormalBits = 0x0010000000000000ULL;
inline constexpr std::uint64_t kNormalSpanBits = 0x7FE0000000000000ULL;

// IEEE-correct 1/sqrt(x) for ±0, +inf, NaN and negative x (cold, never
// called for positive normals or denormals).
double rsqrt_special(double x);

}  // namespace detail

// Fast reciprocal square root: bit-level seed + 4 Newton iterations.
// Relative error < 3e-16 over the positive normal range (tested); zeros,
// denormals, infinities and negatives agree with 1.0 / std::sqrt(x).
inline double karp_rsqrt(double x) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  if (bits - detail::kMinNormalBits >= detail::kNormalSpanBits) [[unlikely]] {
    // Positive denormal: renormalise by an even power of two (exact), seed
    // and iterate in the normal range, undo with the exact half power.
    if (bits != 0 && bits < detail::kMinNormalBits)
      return karp_rsqrt(x * 0x1p128) * 0x1p64;
    return detail::rsqrt_special(x);
  }
  double y = std::bit_cast<double>(0x5FE6EB50C7B537A9ULL - (bits >> 1));
  const double xh = 0.5 * x;
  y = y * (1.5 - xh * y * y);
  y = y * (1.5 - xh * y * y);
  y = y * (1.5 - xh * y * y);
  y = y * (1.5 - xh * y * y);
  return y;
}

// Table-seeded variant following Karp's decomposition more literally:
// a 256-entry table indexed by exponent parity + leading mantissa bits
// provides ~11 correct bits, one polynomial correction and two Newton steps
// finish to double precision. Used by bench_kernels to compare seeds.
class KarpRsqrtTable {
 public:
  KarpRsqrtTable();
  double operator()(double x) const {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    if (bits - detail::kMinNormalBits >= detail::kNormalSpanBits) [[unlikely]] {
      // Denormals have a zero exponent field, which would make both the
      // table index and the halved-exponent scale meaningless: renormalise
      // exactly and recurse, like karp_rsqrt.
      if (bits != 0 && bits < detail::kMinNormalBits)
        return (*this)(x * 0x1p128) * 0x1p64;
      return detail::rsqrt_special(x);
    }
    // Decompose x = f * 2^e with f in [1,2); fold the exponent's parity into
    // the table class x' = f * 2^(e&1) in [1,4), so 1/sqrt(x) =
    // table(x') * 2^(-(e - (e&1))/2) with an exactly-even halved exponent.
    const int e = static_cast<int>((bits >> 52) & 0x7FF) - 1023;
    const int parity = e & 1;
    const std::uint32_t idx = (static_cast<std::uint32_t>(parity) << 7) |
                              static_cast<std::uint32_t>((bits >> 45) & 0x7F);
    const int k = -(e - parity) / 2;
    const double scale =
        std::bit_cast<double>(static_cast<std::uint64_t>(1023 + k) << 52);
    double y = std::bit_cast<double>(table_[idx]) * scale;
    const double xh = 0.5 * x;
    y = y * (1.5 - xh * y * y);
    y = y * (1.5 - xh * y * y);
    y = y * (1.5 - xh * y * y);
    return y;
  }

 private:
  std::array<std::uint64_t, 256> table_{};
};

// Particle-particle interaction with Plummer softening eps^2. Accumulates
// acceleration (without G) and potential (without G, negative).
inline void pp_accumulate(const Vec3d& xi, const Vec3d& xj, double mj, double eps2,
                          Vec3d& acc, double& pot) {
  const Vec3d d = xj - xi;
  const double r2 = norm2(d) + eps2;
  const double rinv = karp_rsqrt(r2);
  const double rinv3 = rinv * rinv * rinv;
  acc += (mj * rinv3) * d;
  pot -= mj * rinv;
}

// Particle-cell interaction: monopole plus (optionally) the trace-free
// quadrupole stored in the cell.
inline void pc_accumulate(const Vec3d& xi, const Vec3d& com, double m,
                          const std::array<double, 6>& quad, bool use_quad, double eps2,
                          Vec3d& acc, double& pot) {
  const Vec3d d = com - xi;
  const double r2 = norm2(d) + eps2;
  const double rinv = karp_rsqrt(r2);
  const double rinv2 = rinv * rinv;
  const double rinv3 = rinv * rinv2;
  acc += (m * rinv3) * d;
  pot -= m * rinv;
  if (!use_quad) return;
  const double rinv5 = rinv3 * rinv2;
  const double rinv7 = rinv5 * rinv2;
  const Vec3d qd{quad[0] * d.x + quad[1] * d.y + quad[2] * d.z,
                 quad[1] * d.x + quad[3] * d.y + quad[4] * d.z,
                 quad[2] * d.x + quad[4] * d.y + quad[5] * d.z};
  const double dqd = dot(d, qd);
  acc += (2.5 * dqd * rinv7) * d - rinv5 * qd;
  pot -= 0.5 * dqd * rinv5;
}

inline void pc_accumulate(const Vec3d& xi, const hot::Cell& c, bool use_quad, double eps2,
                          Vec3d& acc, double& pot) {
  pc_accumulate(xi, c.com, c.mass, c.quad, use_quad, eps2, acc, pot);
}

}  // namespace hotlib::gravity
