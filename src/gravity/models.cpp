#include "gravity/models.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace hotlib::gravity {

hot::Bodies plummer_sphere(std::size_t n, std::uint64_t seed, double clip_radius) {
  hot::Bodies b;
  Xoshiro256ss rng(seed);
  const double m = 1.0 / static_cast<double>(n);
  while (b.size() < n) {
    // Radius from the cumulative mass profile M(r) = r^3 (1+r^2)^{-3/2}.
    const double u = rng.uniform(1e-10, 1.0);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    if (r > clip_radius) continue;
    const Vec3d dir = [&rng] {
      for (;;) {
        Vec3d v{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const double d2 = norm2(v);
        if (d2 > 1e-12 && d2 <= 1.0) return v / std::sqrt(d2);
      }
    }();
    // Velocity: von Neumann rejection on g(q) = q^2 (1-q^2)^{7/2}.
    double q, g;
    do {
      q = rng.uniform();
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double v = q * vesc;
    const Vec3d vdir = [&rng] {
      for (;;) {
        Vec3d w{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const double d2 = norm2(w);
        if (d2 > 1e-12 && d2 <= 1.0) return w / std::sqrt(d2);
      }
    }();
    b.push_back(r * dir, v * vdir, m, b.size());
  }
  return b;
}

hot::Bodies cold_sphere(std::size_t n, std::uint64_t seed, double radius,
                        double total_mass) {
  hot::Bodies b;
  Xoshiro256ss rng(seed);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    b.push_back(rng.in_sphere(radius), Vec3d{}, m, i);
  return b;
}

hot::Bodies uniform_cube(std::size_t n, std::uint64_t seed, double total_mass) {
  hot::Bodies b;
  Xoshiro256ss rng(seed);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) b.push_back(rng.in_cube(), Vec3d{}, m, i);
  return b;
}

hot::Bodies two_body_circular(double m1, double m2, double separation) {
  hot::Bodies b;
  const double mtot = m1 + m2;
  // Circular orbital speed about the barycenter: omega^2 d^3 = G mtot.
  const double omega = std::sqrt(mtot / (separation * separation * separation));
  const double r1 = separation * m2 / mtot;
  const double r2 = separation * m1 / mtot;
  b.push_back({-r1, 0, 0}, {0, -r1 * omega, 0}, m1, 0);
  b.push_back({r2, 0, 0}, {0, r2 * omega, 0}, m2, 1);
  return b;
}

hot::Bodies plummer_collision(std::size_t n_per_galaxy, std::uint64_t seed,
                              double separation, double approach_speed) {
  hot::Bodies a = plummer_sphere(n_per_galaxy, seed);
  hot::Bodies c = plummer_sphere(n_per_galaxy, seed + 1);
  hot::Bodies b;
  const Vec3d offset{separation / 2, 0.3, 0};  // small impact parameter
  for (std::size_t i = 0; i < a.size(); ++i) {
    b.push_back(a.pos[i] - offset, a.vel[i] + Vec3d{approach_speed, 0, 0},
                0.5 * a.mass[i], b.size());
  }
  for (std::size_t i = 0; i < c.size(); ++i) {
    b.push_back(c.pos[i] + offset, c.vel[i] - Vec3d{approach_speed, 0, 0},
                0.5 * c.mass[i], b.size());
  }
  return b;
}

morton::Domain fit_domain(const hot::Bodies& b, double pad_fraction) {
  return morton::bounding_domain(b.pos.data(), b.size(), pad_fraction);
}

}  // namespace hotlib::gravity
