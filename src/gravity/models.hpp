// models.hpp — analytic initial-condition generators for tests, examples and
// benchmarks (cosmological initial conditions live in src/cosmo/).
#pragma once

#include <cstdint>

#include "hot/bodies.hpp"
#include "morton/key.hpp"

namespace hotlib::gravity {

// Plummer (1911) sphere in virial equilibrium; G = M = a = 1 units
// (standard Aarseth/Henon/Wielen sampling). Positions are clipped at
// r < clip_radius to keep the bounding domain compact.
hot::Bodies plummer_sphere(std::size_t n, std::uint64_t seed, double clip_radius = 10.0);

// Cold uniform sphere of radius r with zero velocities (collapse test).
hot::Bodies cold_sphere(std::size_t n, std::uint64_t seed, double radius = 1.0,
                        double total_mass = 1.0);

// Uniform random cube in [0,1)^3, equal masses summing to total_mass.
hot::Bodies uniform_cube(std::size_t n, std::uint64_t seed, double total_mass = 1.0);

// Two-body circular orbit (masses m1, m2, separation d, G = 1); the exact
// solution used by the integrator tests.
hot::Bodies two_body_circular(double m1, double m2, double separation);

// Two Plummer spheres on a collision course (galaxy merger toy problem).
hot::Bodies plummer_collision(std::size_t n_per_galaxy, std::uint64_t seed,
                              double separation = 6.0, double approach_speed = 0.3);

// Domain comfortably containing the bodies (cubical, padded).
morton::Domain fit_domain(const hot::Bodies& b, double pad_fraction = 0.05);

}  // namespace hotlib::gravity
