#include "gravity/parallel.hpp"

namespace hotlib::gravity {

ParallelForceResult parallel_tree_forces(parc::Rank& rank, hot::Bodies& local,
                                         const morton::Domain& domain,
                                         const TreeForceConfig& cfg,
                                         hot::Tree* tree_out, bool redecompose) {
  ParallelForceResult result;

  if (redecompose) {
    hot::decompose(rank, local, domain, &result.decomp);
  }

  hot::Tree scratch;
  hot::Tree& tree = tree_out != nullptr ? *tree_out : scratch;
  tree.build(local.pos, local.mass, domain);

  const std::vector<hot::Aabb> boxes = rank.allgather(hot::local_aabb(local));
  hot::LetImport import =
      hot::exchange_let(rank, tree, local.pos, local.mass, boxes, cfg.mac);
  result.let_cells = import.cells.size();
  result.let_bodies = import.bodies.size();
  result.let_bytes_sent = import.bytes_sent;

  local.clear_forces();
  result.tally += tree_forces(tree, local.pos, local.mass, cfg, local.acc, local.pot,
                              local.work);
  result.tally += apply_let_import(import, local.pos, cfg, local.acc, local.pot,
                                   local.work);
  return result;
}

}  // namespace hotlib::gravity
