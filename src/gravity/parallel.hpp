// parallel.hpp — one parallel treecode force computation, end to end:
// weighted decomposition -> local tree build -> LET exchange -> evaluation.
// This is the per-timestep pipeline of the paper's production code.
#pragma once

#include "gravity/evaluator.hpp"
#include "hot/bodies.hpp"
#include "hot/decompose.hpp"
#include "hot/let.hpp"
#include "hot/tree.hpp"
#include "parc/rank.hpp"

namespace hotlib::gravity {

struct ParallelForceResult {
  InteractionTally tally;         // this rank's interactions
  hot::DecomposeStats decomp;     // balance and migration statistics
  std::size_t let_cells = 0;      // imported multipoles
  std::size_t let_bodies = 0;     // imported direct bodies
  std::size_t let_bytes_sent = 0; // outgoing LET volume
};

// Compute forces into local.acc / local.pot (overwritten). Bodies may
// migrate between ranks (the decomposition step). Work weights are refreshed
// from the interaction counts for the next call. When `tree_out` is non-null
// the local tree is left there for reuse (e.g. imaging or neighbour search).
ParallelForceResult parallel_tree_forces(parc::Rank& rank, hot::Bodies& local,
                                         const morton::Domain& domain,
                                         const TreeForceConfig& cfg,
                                         hot::Tree* tree_out = nullptr,
                                         bool redecompose = true);

}  // namespace hotlib::gravity
