// bodies.hpp — structure-of-arrays particle container shared by all of the
// applications (gravity, vortex, SPH) built on the hashed oct-tree library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace hotlib::hot {

struct Bodies {
  std::vector<Vec3d> pos;
  std::vector<Vec3d> vel;
  std::vector<Vec3d> acc;
  std::vector<double> mass;
  std::vector<double> pot;
  // Work weight from the previous timestep, used by the weighted domain
  // decomposition ("the amount of data that ends up in each processor is
  // weighted by the work associated with each item").
  std::vector<double> work;
  std::vector<std::uint64_t> id;

  std::size_t size() const { return pos.size(); }
  bool empty() const { return pos.empty(); }

  void resize(std::size_t n) {
    pos.resize(n);
    vel.resize(n);
    acc.resize(n);
    mass.resize(n, 0.0);
    pot.resize(n, 0.0);
    work.resize(n, 1.0);
    id.resize(n, 0);
  }

  void clear_forces() {
    for (auto& a : acc) a = {};
    for (auto& p : pot) p = 0.0;
  }

  void push_back(const Vec3d& x, const Vec3d& v, double m, std::uint64_t ident) {
    pos.push_back(x);
    vel.push_back(v);
    acc.push_back({});
    mass.push_back(m);
    pot.push_back(0.0);
    work.push_back(1.0);
    id.push_back(ident);
  }

  // Append body i of `other`.
  void append_from(const Bodies& other, std::size_t i) {
    pos.push_back(other.pos[i]);
    vel.push_back(other.vel[i]);
    acc.push_back(other.acc[i]);
    mass.push_back(other.mass[i]);
    pot.push_back(other.pot[i]);
    work.push_back(other.work[i]);
    id.push_back(other.id[i]);
  }
};

}  // namespace hotlib::hot
