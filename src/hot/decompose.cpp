#include "hot/decompose.hpp"

#include <algorithm>
#include <numeric>

#include "morton/parallel.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::hot {

using morton::Key;

namespace {

// Flat wire format for one body.
struct BodyRecord {
  Vec3d pos;
  Vec3d vel;
  double mass;
  double work;
  std::uint64_t id;
};

BodyRecord pack(const Bodies& b, std::size_t i) {
  return {b.pos[i], b.vel[i], b.mass[i], b.work[i], b.id[i]};
}

void unpack(const BodyRecord& r, Bodies& b) {
  b.pos.push_back(r.pos);
  b.vel.push_back(r.vel);
  b.acc.push_back({});
  b.mass.push_back(r.mass);
  b.pot.push_back(0.0);
  b.work.push_back(r.work);
  b.id.push_back(r.id);
}

struct Sample {
  Key key;
  double weight;
};

}  // namespace

std::vector<Key> sort_bodies_by_key(Bodies& b, const morton::Domain& domain) {
  const std::size_t n = b.size();
  std::vector<Key> keys(n);
  morton::parallel_morton_keys(b.pos, domain, keys);
  std::vector<std::uint32_t> perm(n);
  morton::parallel_sort_by_key(keys, perm);

  Bodies sorted;
  sorted.pos.reserve(n);
  std::vector<Key> sorted_keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted.append_from(b, perm[i]);
    sorted_keys[i] = keys[perm[i]];
  }
  b = std::move(sorted);
  return sorted_keys;
}

std::vector<KeyRange> decompose(parc::Rank& rank, Bodies& local,
                                const morton::Domain& domain, DecomposeStats* stats,
                                int samples_per_rank) {
  const int p = rank.size();
  telemetry::Span span("decompose", telemetry::Phase::kDecompose, local.size());
  std::vector<Key> keys = sort_bodies_by_key(local, domain);
  const std::size_t n = local.size();

  // Local cumulative work.
  std::vector<double> cum(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) cum[i + 1] = cum[i] + local.work[i];
  const double w_local = cum[n];
  const double w_total = rank.allreduce(w_local, parc::Sum{});

  // Weight-quantile samples: key at every (s+0.5)/S of local work, each
  // representing w_local/S units of work.
  std::vector<Sample> my_samples;
  const int s_count = std::max(1, samples_per_rank);
  if (n > 0 && w_local > 0) {
    for (int s = 0; s < s_count; ++s) {
      const double target = w_local * (s + 0.5) / s_count;
      const auto it = std::upper_bound(cum.begin() + 1, cum.end(), target);
      const std::size_t idx = std::min<std::size_t>(
          static_cast<std::size_t>(it - cum.begin() - 1), n - 1);
      my_samples.push_back({keys[idx], w_local / s_count});
    }
  }
  auto gathered = rank.allgather_vector<Sample>(my_samples);
  std::vector<Sample> samples;
  for (auto& g : gathered) samples.insert(samples.end(), g.begin(), g.end());
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.key < b.key; });

  // Splitters at equal global work.
  std::vector<Key> split(static_cast<std::size_t>(p) + 1);
  split.front() = 0;
  split.back() = ~Key{0};
  {
    double acc = 0;
    int next = 1;
    for (const Sample& s : samples) {
      acc += s.weight;
      while (next < p && acc >= w_total * next / p) {
        split[static_cast<std::size_t>(next)] = s.key + 1;  // end after this sample
        ++next;
      }
    }
    while (next < p) split[static_cast<std::size_t>(next++)] = ~Key{0};
    // Splitters must be nondecreasing (they are, since samples were sorted).
  }

  // Route bodies.
  std::vector<std::vector<BodyRecord>> outgoing(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = std::upper_bound(split.begin() + 1, split.end() - 1, keys[i]);
    const int dest = static_cast<int>(it - (split.begin() + 1));
    outgoing[static_cast<std::size_t>(dest)].push_back(pack(local, i));
  }
  std::size_t sent = 0;
  for (int d = 0; d < p; ++d)
    if (d != rank.rank()) sent += outgoing[static_cast<std::size_t>(d)].size();

  auto incoming = rank.alltoallv_typed<BodyRecord>(outgoing);
  Bodies merged;
  std::size_t received = 0;
  for (int s = 0; s < p; ++s) {
    for (const BodyRecord& r : incoming[static_cast<std::size_t>(s)]) unpack(r, merged);
    if (s != rank.rank()) received += incoming[static_cast<std::size_t>(s)].size();
  }
  local = std::move(merged);
  sort_bodies_by_key(local, domain);

  std::vector<KeyRange> ranges(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    ranges[static_cast<std::size_t>(r)] = {split[static_cast<std::size_t>(r)],
                                           split[static_cast<std::size_t>(r) + 1]};

  if (stats != nullptr) {
    stats->sent = sent;
    stats->received = received;
    stats->local_work = std::accumulate(local.work.begin(), local.work.end(), 0.0);
    stats->max_work = rank.allreduce(stats->local_work, parc::Max{});
    stats->mean_work = w_total / p;
  }
  return ranges;
}

}  // namespace hotlib::hot
