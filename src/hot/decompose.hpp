// decompose.hpp — work-weighted domain decomposition by parallel key sort.
//
// "The domain decomposition is obtained by splitting this list into Np
// pieces. The implementation of the domain decomposition is practically
// identical to a parallel sorting algorithm, with the modification that the
// amount of data that ends up in each processor is weighted by the work
// associated with each item."
//
// Implemented as a weighted sample sort over full-depth Morton keys: each
// rank sorts its bodies, contributes weight-quantile samples, the union of
// samples determines P-1 splitter keys at equal global work, and an
// all-to-all moves every body to the rank owning its key interval.
#pragma once

#include <cstdint>
#include <vector>

#include "hot/bodies.hpp"
#include "morton/key.hpp"
#include "parc/rank.hpp"

namespace hotlib::hot {

struct KeyRange {
  morton::Key lo = 0;  // inclusive
  morton::Key hi = 0;  // exclusive
  bool contains(morton::Key k) const { return k >= lo && k < hi; }
};

struct DecomposeStats {
  std::size_t sent = 0;      // bodies shipped off this rank
  std::size_t received = 0;  // bodies received
  double local_work = 0.0;   // post-exchange work on this rank
  double max_work = 0.0;     // max over ranks (load balance numerator)
  double mean_work = 0.0;    // average over ranks
  double imbalance() const { return mean_work > 0 ? max_work / mean_work : 1.0; }
};

// Redistribute `local` so rank r owns the r-th contiguous key interval with
// (approximately) equal total work. Bodies come back sorted by key. Returns
// the key range of every rank (identical on all ranks).
std::vector<KeyRange> decompose(parc::Rank& rank, Bodies& local,
                                const morton::Domain& domain,
                                DecomposeStats* stats = nullptr,
                                int samples_per_rank = 64);

// Sort a Bodies container in place by Morton key; returns the sorted keys.
std::vector<morton::Key> sort_bodies_by_key(Bodies& b, const morton::Domain& domain);

}  // namespace hotlib::hot
