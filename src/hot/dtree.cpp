#include "hot/dtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <deque>
#include <unordered_set>

#include "telemetry/sample.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::hot {

using morton::Key;

namespace {

// Wire formats (POD, packed manually into AM payloads).
struct CrownMsg {
  Key key;
  double mass;
  Vec3d weighted_pos;
  std::array<double, 6> second;
  std::uint32_t child_mask;
};

struct ReplyHeader {
  Key key;
  CellRecord rec;
  std::uint32_t child_mask;
  std::uint32_t leaf;
  std::uint64_t nbodies;
};

// Recover origin-centered raw moments from a finalized cell (inverse of
// finalize_moments): S_com = (quad + b2 * I) / 3, S_origin = S_com + m c c^T.
RawMoments raw_from_cell(const Cell& c) {
  RawMoments raw;
  raw.mass = c.mass;
  raw.weighted_pos = c.mass * c.com;
  const auto& q = c.quad;
  const double b2 = c.b2;
  std::array<double, 6> s{(q[0] + b2) / 3.0, q[1] / 3.0,        q[2] / 3.0,
                          (q[3] + b2) / 3.0, q[4] / 3.0,        (q[5] + b2) / 3.0};
  const Vec3d& cm = c.com;
  s[0] += c.mass * cm.x * cm.x;
  s[1] += c.mass * cm.x * cm.y;
  s[2] += c.mass * cm.x * cm.z;
  s[3] += c.mass * cm.y * cm.y;
  s[4] += c.mass * cm.y * cm.z;
  s[5] += c.mass * cm.z * cm.z;
  raw.second = s;
  return raw;
}

bool accept_record(const Mac& mac, const CellRecord& rec, double dist,
                   InteractionTally& tally) {
  ++tally.mac_tests;
  Cell tmp;
  tmp.b2 = rec.b2;
  tmp.bmax = rec.bmax;
  return mac.accept(tmp, dist);
}

}  // namespace

DistributedTree::DistributedTree(parc::Rank& rank, const Tree& tree,
                                 std::span<const Vec3d> pos,
                                 std::span<const double> mass,
                                 std::vector<KeyRange> ranges,
                                 const morton::Domain& domain)
    : rank_(rank), tree_(tree), pos_(pos), mass_(mass), ranges_(std::move(ranges)),
      domain_(domain) {
  assert(static_cast<int>(ranges_.size()) == rank_.size());

  // AM handlers: requests are single keys; replies carry the cell payload.
  am_reply_ = rank_.am_register([this](parc::Rank&, int, std::span<const std::uint8_t> b) {
    ReplyHeader h;
    std::memcpy(&h, b.data(), sizeof h);
    RemoteCell rc;
    rc.rec = h.rec;
    rc.child_mask = static_cast<std::uint8_t>(h.child_mask);
    rc.leaf = h.leaf != 0;
    rc.bodies.resize(h.nbodies);
    std::memcpy(rc.bodies.data(), b.data() + sizeof h,
                h.nbodies * sizeof(SourceRecord));
    cache_[h.key] = std::move(rc);
    arrived_keys_.push_back(h.key);
  });
  am_request_ = rank_.am_register(
      [this](parc::Rank&, int source, std::span<const std::uint8_t> b) {
        Key k;
        std::memcpy(&k, b.data(), sizeof k);
        serve_request(source, k);
      });

  setup_crown(tree);
}

int DistributedTree::owner_of(Key key) const {
  const int lv = morton::level(key);
  const Key lo = key << (3 * (morton::kMaxLevel - lv));
  // Ranges partition the key space; find the one containing lo.
  int r = 0;
  while (r + 1 < static_cast<int>(ranges_.size()) &&
         lo >= ranges_[static_cast<std::size_t>(r)].hi)
    ++r;
  return r;
}

bool DistributedTree::crosses(Key key) const {
  const int lv = morton::level(key);
  const int shift = 3 * (morton::kMaxLevel - lv);
  const Key lo = key << shift;
  const Key span = shift >= 64 ? ~Key{0} : ((Key{1} << shift) - 1);
  const Key hi = lo + span;  // inclusive
  const int lo_owner = owner_of(key);
  int hi_owner = lo_owner;
  while (hi_owner + 1 < static_cast<int>(ranges_.size()) &&
         hi >= ranges_[static_cast<std::size_t>(hi_owner)].hi)
    ++hi_owner;
  return lo_owner != hi_owner;
}

void DistributedTree::setup_crown(const Tree& tree) {
  // The crown is the set of keys whose interval spans a splitter boundary —
  // at most kMaxLevel cells per internal splitter (the ancestors common to
  // the last key below and the first key above the boundary). Every rank
  // contributes the raw moments of *its bodies* inside each crossing key's
  // interval (independent of its local tree depth there, so no mass is ever
  // dropped when a rank's tree is shallow near a boundary), plus the octant
  // mask of where its bodies sit; masks are unioned in the merge.
  std::vector<CrownMsg> mine;
  const int p = rank_.size();
  if (p > 1) {
    std::unordered_set<Key> crossing;
    for (int r = 1; r < p; ++r) {
      const Key s = ranges_[static_cast<std::size_t>(r)].lo;
      if (s == 0) continue;
      const Key a = s - 1, b = s;
      for (int lv = 0; lv < morton::kMaxLevel; ++lv) {
        const int shift = 3 * (morton::kMaxLevel - lv);
        const Key ka = a >> shift, kb = b >> shift;
        if (ka == kb && ka >= morton::kRootKey) crossing.insert(ka);
      }
    }
    const auto keys = tree.sorted_keys();
    for (Key k : crossing) {
      const int lv = morton::level(k);
      const int shift = 3 * (morton::kMaxLevel - lv);
      const Key lo = k << shift;
      const Key span = (Key{1} << shift) - 1;
      const Key hi = lo + span;  // inclusive
      const auto first = std::lower_bound(keys.begin(), keys.end(), lo);
      const auto last = hi == ~Key{0} ? keys.end()
                                      : std::upper_bound(keys.begin(), keys.end(), hi);
      if (first == last) continue;
      CrownMsg m{};
      m.key = k;
      RawMoments raw;
      const int cshift = 3 * (morton::kMaxLevel - (lv + 1));
      for (auto it = first; it != last; ++it) {
        const auto t = static_cast<std::size_t>(it - keys.begin());
        const std::uint32_t orig = tree.order()[t];
        raw.accumulate(pos_[orig], mass_[orig]);
        m.child_mask |= 1u << ((*it >> cshift) & 7);
      }
      m.mass = raw.mass;
      m.weighted_pos = raw.weighted_pos;
      m.second = raw.second;
      mine.push_back(m);
    }
  }

  const auto all = rank_.allgather_vector<CrownMsg>(mine);
  std::unordered_map<Key, std::pair<RawMoments, std::uint32_t>> merged;
  for (const auto& block : all)
    for (const CrownMsg& m : block) {
      auto& slot = merged[m.key];
      slot.first.mass += m.mass;
      slot.first.weighted_pos += m.weighted_pos;
      for (int i = 0; i < 6; ++i) slot.first.second[static_cast<std::size_t>(i)] +=
          m.second[static_cast<std::size_t>(i)];
      slot.second |= m.child_mask;
    }
  crown_.clear();
  for (const auto& [key, data] : merged) {
    Cell tmp;
    const morton::CellBox box = morton::cell_box(key, domain_);
    finalize_moments(data.first, box.half * std::sqrt(3.0), tmp);
    CrownCell cc;
    cc.rec = {tmp.com, tmp.mass, tmp.quad, tmp.b2, tmp.bmax};
    cc.child_mask = static_cast<std::uint8_t>(data.second);
    crown_[key] = cc;
  }
}

void DistributedTree::serve_request(int requester, Key key) {
  ReplyHeader h{};
  h.key = key;
  h.leaf = 1;  // default: empty leaf (walker drops it)
  std::vector<SourceRecord> bodies;

  // The requested key may sit *below* a local leaf (the requester descended
  // a crown mask deeper than this rank's tree). Walk up to the deepest
  // existing ancestor: if it is a leaf, answer with its bodies filtered to
  // the requested interval; if it is internal, the region is empty.
  Key probe = key;
  std::uint32_t idx = tree_.find_index(probe);
  while (idx == KeyHashTable::kNotFound && probe > morton::kRootKey) {
    probe = morton::parent(probe);
    idx = tree_.find_index(probe);
  }
  if (idx != KeyHashTable::kNotFound) {
    const Cell& c = tree_.cells()[idx];
    if (probe == key) {
      h.rec = {c.com, c.mass, c.quad, c.b2, c.bmax};
      h.leaf = c.is_leaf() ? 1 : 0;
      for (std::uint32_t k = 0; k < c.nchildren; ++k)
        h.child_mask |= 1u << morton::octant(tree_.cells()[c.first_child + k].key);
      if (c.is_leaf()) {
        for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t) {
          const std::uint32_t orig = tree_.order()[t];
          bodies.push_back({pos_[orig], mass_[orig]});
        }
      }
    } else if (c.is_leaf()) {
      const int shift = 3 * (morton::kMaxLevel - morton::level(key));
      const Key lo = key << shift;
      const Key hi = lo + ((Key{1} << shift) - 1);
      const auto keys = tree_.sorted_keys();
      RawMoments raw;
      double bmax = 0;
      std::vector<std::uint32_t> members;
      for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t) {
        const Key bk = keys[t];
        if (bk < lo || bk > hi) continue;
        const std::uint32_t orig = tree_.order()[t];
        members.push_back(orig);
        raw.accumulate(pos_[orig], mass_[orig]);
        bodies.push_back({pos_[orig], mass_[orig]});
      }
      if (!members.empty()) {
        Cell tmp;
        finalize_moments(raw, 0.0, tmp);
        for (std::uint32_t orig : members)
          bmax = std::max(bmax, norm(pos_[orig] - tmp.com));
        tmp.bmax = bmax;
        h.rec = {tmp.com, tmp.mass, tmp.quad, tmp.b2, tmp.bmax};
      }
      h.leaf = 1;
    }
    // else: internal ancestor without the requested child => empty region.
  }
  h.nbodies = bodies.size();
  parc::Bytes payload(sizeof h + bodies.size() * sizeof(SourceRecord));
  std::memcpy(payload.data(), &h, sizeof h);
  std::memcpy(payload.data() + sizeof h, bodies.data(),
              bodies.size() * sizeof(SourceRecord));
  rank_.am_post(requester, am_reply_, payload);
  telemetry::count(telemetry::Counter::kDtreeRepliesServed);
  if (active_stats_ != nullptr) ++active_stats_->replies_served;
}

Key DistributedTree::advance(Walk& w, const Mac& mac, Stats& stats) {
  const auto& cells = tree_.cells();
  const Cell& group = cells[w.leaf_index];
  const Vec3d gc = group.com;
  const double gr = group.bmax;

  while (!w.stack.empty()) {
    const Entry e = w.stack.back();
    w.stack.pop_back();

    if (e.local_index >= 0) {
      const std::uint32_t ci = static_cast<std::uint32_t>(e.local_index);
      const Cell& c = cells[ci];
      if (c.body_count == 0) continue;
      if (ci == w.leaf_index) {
        w.local.self_begin = w.local.bodies.size();
        for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t)
          w.local.bodies.push_back(tree_.order()[t]);
        continue;
      }
      const double dist = norm(c.com - gc) - gr;
      ++stats.tally.mac_tests;
      if (mac.accept(c, dist)) {
        w.local.cells.push_back(ci);
        continue;
      }
      if (c.is_leaf()) {
        for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t)
          w.local.bodies.push_back(tree_.order()[t]);
        continue;
      }
      ++stats.tally.cells_opened;
      for (std::uint32_t k = 0; k < c.nchildren; ++k)
        w.stack.push_back({0, static_cast<std::int32_t>(c.first_child + k)});
      continue;
    }

    const Key k = e.key;
    // Crown (replicated shared cells)?
    if (const auto it = crown_.find(k); it != crown_.end()) {
      const CrownCell& cc = it->second;
      if (cc.rec.mass <= 0) continue;
      const double dist = norm(cc.rec.com - gc) - gr;
      if (accept_record(mac, cc.rec, dist, stats.tally)) {
        w.remote.cells.push_back(cc.rec);
        continue;
      }
      ++stats.tally.cells_opened;
      for (int o = 0; o < 8; ++o)
        if (cc.child_mask & (1u << o)) w.stack.push_back({morton::child(k, o), -1});
      continue;
    }
    // Locally owned?
    if (owner_of(k) == rank_.rank()) {
      const std::uint32_t idx = tree_.find_index(k);
      if (idx != KeyHashTable::kNotFound) {
        w.stack.push_back({0, static_cast<std::int32_t>(idx)});
        continue;
      }
      // Below a local leaf (a crown mask descended past our tree depth):
      // take the leaf ancestor's bodies inside the interval directly.
      Key probe = k;
      std::uint32_t aidx = KeyHashTable::kNotFound;
      while (aidx == KeyHashTable::kNotFound && probe > morton::kRootKey) {
        probe = morton::parent(probe);
        aidx = tree_.find_index(probe);
      }
      if (aidx != KeyHashTable::kNotFound && tree_.cells()[aidx].is_leaf()) {
        const Cell& leaf = tree_.cells()[aidx];
        const int shift = 3 * (morton::kMaxLevel - morton::level(k));
        const Key lo = k << shift;
        const Key hi = lo + ((Key{1} << shift) - 1);
        const auto keys = tree_.sorted_keys();
        for (std::uint32_t t = leaf.body_begin; t < leaf.body_begin + leaf.body_count;
             ++t)
          if (keys[t] >= lo && keys[t] <= hi) w.local.bodies.push_back(tree_.order()[t]);
      }
      continue;
    }
    // Remote: cache or request.
    const auto it = cache_.find(k);
    if (it == cache_.end()) {
      w.stack.push_back(e);  // retry after the reply arrives
      return k;
    }
    ++stats.cache_hits;
    const RemoteCell& rc = it->second;
    if (rc.rec.mass <= 0 && rc.bodies.empty()) continue;
    const double dist = norm(rc.rec.com - gc) - gr;
    if (accept_record(mac, rc.rec, dist, stats.tally)) {
      w.remote.cells.push_back(rc.rec);
      continue;
    }
    if (rc.leaf) {
      w.remote.bodies.insert(w.remote.bodies.end(), rc.bodies.begin(), rc.bodies.end());
      continue;
    }
    ++stats.tally.cells_opened;
    for (int o = 0; o < 8; ++o)
      if (rc.child_mask & (1u << o)) w.stack.push_back({morton::child(k, o), -1});
  }
  return 0;
}

DistributedTree::Stats DistributedTree::traverse(const Mac& mac, const GroupEval& eval) {
  telemetry::Span span("dtree_traverse", telemetry::Phase::kTraverse);
  Stats stats;
  stats.crown_cells = crown_.size();
  active_stats_ = &stats;

  std::vector<Walk> walks;
  for (std::uint32_t li : leaf_indices(tree_)) {
    Walk w;
    w.leaf_index = li;
    w.stack.push_back({morton::kRootKey, -1});
    walks.push_back(std::move(w));
  }
  std::deque<std::size_t> runnable;
  for (std::size_t i = 0; i < walks.size(); ++i) runnable.push_back(i);
  std::unordered_map<Key, std::vector<std::size_t>> waiting;
  std::unordered_set<Key> pending;
  std::size_t completed = 0;

  auto drain_arrivals = [&] {
    for (Key k : arrived_keys_) {
      pending.erase(k);
      const auto it = waiting.find(k);
      if (it == waiting.end()) continue;
      for (std::size_t id : it->second) runnable.push_back(id);
      waiting.erase(it);
    }
    arrived_keys_.clear();
  };

  // Liveness under a faulty fabric: if this rank sits idle with outstanding
  // key requests for many synchronization rounds (no reply can take that
  // long unless traffic was lost beyond what the retry layer recovered),
  // re-request the pending keys; after a bounded number of such sweeps the
  // keys are declared lost and their regions treated as empty, so the
  // traversal terminates with stats.lost_keys set instead of hanging.
  constexpr std::uint64_t kIdleRoundsBeforeRerequest = 64;
  constexpr std::uint64_t kMaxRerequestRounds = 4;
  std::uint64_t idle_rounds = 0;

  for (;;) {
    while (!runnable.empty()) {
      const std::size_t id = runnable.front();
      runnable.pop_front();
      const Key missing = advance(walks[id], mac, stats);
      if (missing == 0) {
        eval(walks[id].leaf_index, walks[id].local, walks[id].remote);
        walks[id].local = {};
        walks[id].remote = {};
        ++completed;
        continue;
      }
      ++stats.suspensions;
      waiting[missing].push_back(id);
      if (pending.insert(missing).second) {
        rank_.am_post_value(owner_of(missing), am_request_, missing);
        ++stats.requests_sent;
      }
    }
    rank_.am_flush();
    rank_.am_poll();
    rank_.am_flush();  // ship replies generated while polling
    drain_arrivals();
    if (!runnable.empty()) {
      idle_rounds = 0;
      continue;
    }

    // Locally idle: either all groups finished or we are waiting on replies.
    // Synchronize; keep serving remote requests until everyone is done.
    const std::uint64_t done = completed == walks.size() ? 1 : 0;
    if (rank_.allreduce(done, parc::Min{}) == 1) break;
    rank_.am_poll();
    rank_.am_flush();
    drain_arrivals();
    if (!runnable.empty() || pending.empty()) {
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kIdleRoundsBeforeRerequest) continue;
    idle_rounds = 0;
    if (stats.rerequest_rounds < kMaxRerequestRounds) {
      ++stats.rerequest_rounds;
      for (Key k : pending) {
        rank_.am_post_value(owner_of(k), am_request_, k);
        ++stats.requests_sent;
      }
      rank_.am_flush();
    } else {
      // Give up: synthesize empty regions so every waiting walk completes.
      for (Key k : pending) {
        RemoteCell empty;
        empty.leaf = true;
        cache_[k] = std::move(empty);
        arrived_keys_.push_back(k);
        ++stats.lost_keys;
      }
      drain_arrivals();
    }
  }
  active_stats_ = nullptr;
  // A cache lookup that finds the key is a hash hit; every miss is exactly
  // what turned into a remote key request.
  telemetry::count(telemetry::Counter::kHashHits, stats.cache_hits);
  telemetry::count(telemetry::Counter::kHashMisses, stats.requests_sent);
  // Resident remote-cell cache after this traversal — together with the
  // local-tree gauges this is the rank's whole tree memory footprint.
  telemetry::gauge_set(telemetry::Gauge::kDtreeCacheCells,
                       static_cast<double>(cache_.size()));
  telemetry::gauge_set(telemetry::Gauge::kHashMeanProbe, tree_.hash().mean_probe());
  span.set_arg(stats.requests_sent);
  return stats;
}

}  // namespace hotlib::hot
