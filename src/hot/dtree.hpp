// dtree.hpp — request-driven distributed tree traversal over ABM.
//
// This is the paper's signature mechanism: "This level of indirection
// through a hash table can also be used to catch accesses to non-local
// data, and allows us to request and receive data from other processors
// using the global key name space. An efficient mechanism for latency
// hiding in the tree traversal phase of the algorithm is critical. To avoid
// stalls during non-local data access, we effectively do explicit 'context
// switching'. In order to manage the complexities of the required
// asynchronous message traffic, we have developed a paradigm called
// 'asynchronous batched messages (ABM)'."
//
// Structure:
//   * Ranks own disjoint Morton-key intervals (from hot::decompose); a cell
//     is *owned* by a rank when its whole key interval fits in that rank's
//     range. Cells that straddle a splitter form the replicated "crown":
//     their global moments are merged from per-rank partial moments in one
//     allgather at setup.
//   * Each sink group (local leaf) walks the global tree: crown cells and
//     local cells resolve immediately; a missing remote cell suspends the
//     walk, posts a batched key request to the owner, and the engine
//     switches to another group. Owners answer requests with the cell's
//     moments, child mask, and (for leaves) its bodies; replies are cached
//     in the key->cell hash so later groups hit locally.
//   * Termination: rounds of flush/poll plus an allreduce barrier over
//     "all groups complete" — a rank that finishes early keeps serving
//     remote requests until everyone is done.
//
// Compare hot::exchange_let (the sender-push alternative); bench_abm
// measures both against each other.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "hot/decompose.hpp"
#include "hot/let.hpp"
#include "hot/mac.hpp"
#include "hot/traverse.hpp"
#include "hot/tree.hpp"
#include "parc/rank.hpp"

namespace hotlib::hot {

class DistributedTree {
 public:
  // `ranges` are the per-rank key intervals from decompose(); `tree` is this
  // rank's local tree over `pos`/`mass` (original indexing), built on the
  // shared global `domain`.
  DistributedTree(parc::Rank& rank, const Tree& tree, std::span<const Vec3d> pos,
                  std::span<const double> mass, std::vector<KeyRange> ranges,
                  const morton::Domain& domain);

  // Remote data accepted for one sink group.
  struct RemoteLists {
    std::vector<CellRecord> cells;
    std::vector<SourceRecord> bodies;
  };

  // Called once per local sink group when its walk completes.
  using GroupEval = std::function<void(std::uint32_t leaf_index,
                                       const InteractionLists& local,
                                       const RemoteLists& remote)>;

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t replies_served = 0;   // requests this rank answered
    std::uint64_t cache_hits = 0;       // remote lookups satisfied locally
    std::uint64_t suspensions = 0;      // context switches
    std::uint64_t crown_cells = 0;      // replicated shared cells
    // Degradation bookkeeping (non-zero only when the fabric loses traffic
    // beyond what the ABM retry layer recovers):
    std::uint64_t rerequest_rounds = 0; // idle-timeout key re-request sweeps
    std::uint64_t lost_keys = 0;        // keys given up on (region treated empty)
    InteractionTally tally;             // MAC bookkeeping

    // Some remote data never arrived: forces are incomplete and the caller
    // must treat the result as a health report, not an answer.
    bool degraded() const { return lost_keys > 0; }
  };

  // Walk every local sink group to completion; eval() fires per group.
  Stats traverse(const Mac& mac, const GroupEval& eval);

 private:
  struct CrownCell {
    CellRecord rec{};
    std::uint8_t child_mask = 0;
  };
  struct RemoteCell {
    CellRecord rec{};
    std::uint8_t child_mask = 0;
    bool leaf = false;
    int owner = -1;
    std::vector<SourceRecord> bodies;  // filled for leaves
  };

  // Walk-stack entry: a global key, or (local_index >= 0) a cell of the
  // local tree reached on the fast path.
  struct Entry {
    morton::Key key = 0;
    std::int32_t local_index = -1;
  };

  struct Walk {
    std::uint32_t leaf_index = 0;
    std::vector<Entry> stack;
    InteractionLists local;
    RemoteLists remote;
  };

  int owner_of(morton::Key key) const;
  bool crosses(morton::Key key) const;
  void setup_crown(const Tree& tree);

  // Advance one walk until it suspends (returns the missing key) or
  // completes (returns 0).
  morton::Key advance(Walk& w, const Mac& mac, Stats& stats);

  void serve_request(int requester, morton::Key key);

  parc::Rank& rank_;
  const Tree& tree_;
  std::span<const Vec3d> pos_;
  std::span<const double> mass_;
  std::vector<KeyRange> ranges_;
  morton::Domain domain_;

  std::unordered_map<morton::Key, CrownCell> crown_;
  std::unordered_map<morton::Key, RemoteCell> cache_;
  int am_request_ = -1;
  int am_reply_ = -1;
  Stats* active_stats_ = nullptr;
  std::vector<morton::Key> arrived_keys_;  // replies since last drain
};

}  // namespace hotlib::hot
