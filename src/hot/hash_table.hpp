// hash_table.hpp — open-addressing hash table mapping Morton keys to cell
// indices.
//
// "A hash table is used in order to translate the key into a pointer to the
// location where the cell data are stored. This level of indirection through
// a hash table can also be used to catch accesses to non-local data..."
//
// Keys are never 0 (the root key is 1 and all keys carry a placeholder bit),
// so 0 marks an empty slot. Linear probing with a multiplicative (Fibonacci)
// hash; the table grows at 0.7 load factor. Probe counts are tracked so the
// benchmarks can report hashing overhead.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace hotlib::hot {

class KeyHashTable {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  explicit KeyHashTable(std::size_t expected = 64) { rehash(capacity_for(expected)); }

  void clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t operations() const { return ops_; }
  // Occupied fraction and probes per operation — the health-sampler gauges
  // (1.0 mean probe = every lookup hit its home slot).
  double load_factor() const {
    return slots_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(slots_.size());
  }
  double mean_probe() const {
    return ops_ > 0 ? static_cast<double>(probes_) / static_cast<double>(ops_) : 0.0;
  }

  // Insert key -> value; key must be nonzero and not already present
  // (duplicate insert overwrites, matching how a rebuilt cell replaces the
  // cached copy from a previous traversal).
  void insert(std::uint64_t key, std::uint32_t value) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    ++ops_;
    std::size_t i = index_of(key);
    for (;;) {
      ++probes_;
      Slot& s = slots_[i];
      if (s.key == 0) {
        s.key = key;
        s.value = value;
        ++size_;
        return;
      }
      if (s.key == key) {
        s.value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  // Returns kNotFound when absent.
  std::uint32_t find(std::uint64_t key) const {
    ++ops_;
    std::size_t i = index_of(key);
    for (;;) {
      ++probes_;
      const Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) return kNotFound;
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const { return find(key) != kNotFound; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
  };

  static std::size_t capacity_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 7 < expected * 10) cap <<= 1;
    return cap;
  }

  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> shift_) & mask_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    shift_ = 64 - std::countr_zero(new_cap);
    size_ = 0;
    for (const Slot& s : old)
      if (s.key != 0) insert(s.key, s.value);
  }

  void grow() { rehash(slots_.size() * 2); }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  int shift_ = 64;
  std::size_t size_ = 0;
  mutable std::uint64_t probes_ = 0;
  mutable std::uint64_t ops_ = 0;
};

}  // namespace hotlib::hot
