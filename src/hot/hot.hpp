// hot.hpp — umbrella header for the Hashed Oct-Tree library, the paper's
// primary contribution. See DESIGN.md for the module map.
#pragma once

#include "hot/bodies.hpp"      // IWYU pragma: export
#include "hot/decompose.hpp"   // IWYU pragma: export
#include "hot/hash_table.hpp"  // IWYU pragma: export
#include "hot/let.hpp"         // IWYU pragma: export
#include "hot/mac.hpp"         // IWYU pragma: export
#include "hot/traverse.hpp"    // IWYU pragma: export
#include "hot/tree.hpp"        // IWYU pragma: export
