#include "hot/let.hpp"

#include <cstring>

#include "telemetry/trace.hpp"

namespace hotlib::hot {

Aabb local_aabb(const Bodies& b) {
  Aabb box;
  if (b.empty()) return box;
  box.lo = box.hi = b.pos[0];
  for (const Vec3d& x : b.pos) {
    for (int a = 0; a < 3; ++a) {
      box.lo[a] = std::min(box.lo[a], x[a]);
      box.hi[a] = std::max(box.hi[a], x[a]);
    }
  }
  return box;
}

namespace {

// Walk the local tree against a remote box, appending what that rank needs.
void collect_for_box(const Tree& tree, std::span<const Vec3d> pos,
                     std::span<const double> mass, const Aabb& box, const Mac& mac,
                     std::vector<CellRecord>& cells, std::vector<SourceRecord>& bodies) {
  if (tree.empty() || tree.root().body_count == 0) return;
  std::vector<std::uint32_t> stack{0};
  const auto& all = tree.cells();
  while (!stack.empty()) {
    const Cell& c = all[stack.back()];
    stack.pop_back();
    if (c.body_count == 0) continue;
    const double dist = box.distance(c.com);  // closest possible remote sink
    if (mac.accept(c, dist)) {
      cells.push_back({c.com, c.mass, c.quad, c.b2, c.bmax});
      continue;
    }
    if (c.is_leaf()) {
      for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i) {
        const std::uint32_t orig = tree.order()[i];
        bodies.push_back({pos[orig], mass[orig]});
      }
      continue;
    }
    for (std::uint32_t k = 0; k < c.nchildren; ++k) stack.push_back(c.first_child + k);
  }
}

}  // namespace

LetImport exchange_let(parc::Rank& rank, const Tree& local_tree,
                       std::span<const Vec3d> local_pos,
                       std::span<const double> local_mass,
                       const std::vector<Aabb>& boxes, const Mac& mac) {
  const int p = rank.size();
  telemetry::Span span("let_exchange", telemetry::Phase::kLetExchange);

  // Wire format per destination: [u64 ncells][u64 nbodies][cells][bodies].
  std::vector<parc::Bytes> out(static_cast<std::size_t>(p));
  std::size_t bytes_sent = 0;
  for (int d = 0; d < p; ++d) {
    if (d == rank.rank()) continue;
    std::vector<CellRecord> cells;
    std::vector<SourceRecord> bodies;
    collect_for_box(local_tree, local_pos, local_mass, boxes[static_cast<std::size_t>(d)],
                    mac, cells, bodies);
    parc::Bytes& buf = out[static_cast<std::size_t>(d)];
    const std::uint64_t nc = cells.size(), nb = bodies.size();
    buf.resize(16 + nc * sizeof(CellRecord) + nb * sizeof(SourceRecord));
    std::memcpy(buf.data(), &nc, 8);
    std::memcpy(buf.data() + 8, &nb, 8);
    std::memcpy(buf.data() + 16, cells.data(), nc * sizeof(CellRecord));
    std::memcpy(buf.data() + 16 + nc * sizeof(CellRecord), bodies.data(),
                nb * sizeof(SourceRecord));
    bytes_sent += buf.size();
  }

  std::vector<parc::Bytes> in = rank.alltoallv(std::move(out));

  LetImport import;
  import.bytes_sent = bytes_sent;
  for (int s = 0; s < p; ++s) {
    if (s == rank.rank()) continue;
    const parc::Bytes& buf = in[static_cast<std::size_t>(s)];
    if (buf.size() < 16) continue;
    std::uint64_t nc = 0, nb = 0;
    std::memcpy(&nc, buf.data(), 8);
    std::memcpy(&nb, buf.data() + 8, 8);
    const std::size_t cells_at = 16;
    const std::size_t bodies_at = cells_at + nc * sizeof(CellRecord);
    const std::size_t old_c = import.cells.size(), old_b = import.bodies.size();
    import.cells.resize(old_c + nc);
    import.bodies.resize(old_b + nb);
    std::memcpy(import.cells.data() + old_c, buf.data() + cells_at,
                nc * sizeof(CellRecord));
    std::memcpy(import.bodies.data() + old_b, buf.data() + bodies_at,
                nb * sizeof(SourceRecord));
  }
  span.set_arg(bytes_sent);
  telemetry::count(telemetry::Counter::kLetCellsImported, import.cells.size());
  telemetry::count(telemetry::Counter::kLetBodiesImported, import.bodies.size());
  return import;
}

}  // namespace hotlib::hot
