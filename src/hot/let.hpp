// let.hpp — locally essential tree (LET) exchange.
//
// After decomposition, each rank holds a contiguous Morton interval and
// builds a local tree over its own bodies. To evaluate forces it also needs
// the *locally essential* remote data: for every other rank, the cells of
// that rank's tree that pass the MAC with respect to our entire domain, and
// the raw bodies where the MAC fails all the way to a remote leaf.
//
// We use the "push" formulation (Salmon's original LET construction): the
// *owner* of the data walks its tree against each remote rank's bounding box
// and ships what that rank will need, in one all-to-all. Because the MAC is
// applied against the closest possible sink in the remote box, every shipped
// multipole is valid for every sink on the receiving rank, so imports can be
// applied directly without re-traversal. (The request-driven ABM traversal —
// the paper's latency-hiding alternative — lives in abm_tree.hpp; the two
// paths are compared by bench_treecode.)
#pragma once

#include <vector>

#include "hot/bodies.hpp"
#include "hot/mac.hpp"
#include "hot/tree.hpp"
#include "parc/rank.hpp"
#include "telemetry/counters.hpp"

namespace hotlib::hot {

struct Aabb {
  Vec3d lo{};
  Vec3d hi{};

  // Minimum distance from point q to this box (0 when inside).
  double distance(const Vec3d& q) const {
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
      const double below = lo[a] - q[a];
      const double above = q[a] - hi[a];
      const double ex = below > 0 ? below : (above > 0 ? above : 0.0);
      d2 += ex * ex;
    }
    return std::sqrt(d2);
  }
};

// Bounding box of the local bodies (degenerate when empty).
Aabb local_aabb(const Bodies& b);

// Multipole record shipped between ranks.
struct CellRecord {
  Vec3d com;
  double mass;
  std::array<double, 6> quad;
  double b2;
  double bmax;
};

// Raw body record shipped when a leaf must be resolved directly.
struct SourceRecord {
  Vec3d pos;
  double mass;
};

struct LetImport {
  std::vector<CellRecord> cells;
  std::vector<SourceRecord> bodies;
  std::size_t bytes_sent = 0;  // this rank's outgoing LET volume
};

// Exchange locally essential data among all ranks. `boxes` are the per-rank
// bounding boxes (from allgathering local_aabb). Every shipped cell was
// accepted by `mac` against the receiving rank's whole box.
LetImport exchange_let(parc::Rank& rank, const Tree& local_tree,
                       std::span<const Vec3d> local_pos,
                       std::span<const double> local_mass,
                       const std::vector<Aabb>& boxes, const Mac& mac);

}  // namespace hotlib::hot
