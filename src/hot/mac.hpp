// mac.hpp — multipole acceptance criteria.
//
// "Effectively managing the errors introduced by this approximation is the
// subject of an entire paper of ours" — Salmon & Warren, "Skeletons from the
// treecode closet" (JCP 111:136, 1994). We implement two criteria:
//
//   * BarnesHut: the classic geometric opening angle test, accept when
//     b_max / d < theta. This is the criterion of Barnes & Hut (1986).
//   * SalmonWarren: an absolute-error criterion derived from the truncation
//     error of the multipole expansion. For a monopole-only interaction the
//     leading error term scales like G * B2 / (d - b_max)^4 * d^0 (B2 is the
//     scalar second moment sum m |x-com|^2), giving
//         r_crit = b_max + (3 G B2 / eps)^(1/4);
//     with quadrupoles retained the error is driven by the third moment,
//     bounded by B2 * b_max, giving
//         r_crit = b_max + (2 G B2 b_max / eps)^(1/5).
//     A cell is accepted when the sink is beyond r_crit, so the per-
//     interaction acceleration error is bounded by eps (verified empirically
//     by bench_accuracy).
//
// Both are expressed as a critical radius r_crit(cell); traversal code works
// entirely in terms of dist > r_crit, where dist already accounts for the
// sink group's own radius.
#pragma once

#include <cmath>

#include "hot/tree.hpp"

namespace hotlib::hot {

enum class MacType { BarnesHut, SalmonWarren };

struct Mac {
  MacType type = MacType::BarnesHut;
  double theta = 0.6;       // BarnesHut opening angle
  double eps_abs = 1e-4;    // SalmonWarren absolute acceleration error bound
  double G = 1.0;           // gravitational constant (enters the error bound)
  bool quadrupole = true;   // whether evaluation keeps quadrupole terms

  // Distance from the sink beyond which the cell's multipole expansion may be
  // used. Point-mass cells (b2 == 0) are always acceptable beyond b_max.
  double r_crit(const Cell& c) const {
    switch (type) {
      case MacType::BarnesHut:
        return theta > 0 ? c.bmax / theta : c.bmax * 1e30;
      case MacType::SalmonWarren: {
        if (c.b2 <= 0) return c.bmax;
        if (quadrupole)
          return c.bmax + std::pow(2.0 * G * c.b2 * c.bmax / eps_abs, 0.2);
        return c.bmax + std::pow(3.0 * G * c.b2 / eps_abs, 0.25);
      }
    }
    return c.bmax;
  }

  bool accept(const Cell& c, double dist) const { return dist > 0 && dist >= r_crit(c); }
};

}  // namespace hotlib::hot
