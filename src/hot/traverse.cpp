#include "hot/traverse.hpp"

namespace hotlib::hot {

void build_interaction_lists(const Tree& tree, std::uint32_t leaf_index, const Mac& mac,
                             InteractionLists& lists, InteractionTally& tally) {
  lists.cells.clear();
  lists.bodies.clear();
  const auto& cells = tree.cells();
  const Cell& group = cells[leaf_index];
  const Vec3d gc = group.com;
  const double gr = group.bmax;

  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t ci = stack.back();
    stack.pop_back();
    const Cell& c = cells[ci];
    if (c.body_count == 0) continue;

    if (ci == leaf_index) {
      // The group interacts with itself directly.
      lists.self_begin = lists.bodies.size();
      for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
        lists.bodies.push_back(tree.order()[i]);
      continue;
    }

    const double dist = norm(c.com - gc) - gr;  // worst-case sink distance
    ++tally.mac_tests;
    if (mac.accept(c, dist)) {
      lists.cells.push_back(ci);
      continue;
    }
    if (c.is_leaf()) {
      for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
        lists.bodies.push_back(tree.order()[i]);
      continue;
    }
    ++tally.cells_opened;
    for (std::uint32_t k = 0; k < c.nchildren; ++k) stack.push_back(c.first_child + k);
  }
}

std::vector<std::uint32_t> leaf_indices(const Tree& tree) {
  std::vector<std::uint32_t> out;
  const auto& cells = tree.cells();
  for (std::uint32_t i = 0; i < cells.size(); ++i)
    if (cells[i].is_leaf() && cells[i].body_count > 0) out.push_back(i);
  return out;
}

}  // namespace hotlib::hot
