// traverse.hpp — kernel-agnostic tree traversal with interaction lists.
//
// "In the main stage of the algorithm, this tree is traversed independently
// in each processor..." Sinks are processed a leaf bucket at a time: the
// walk starts at the root and, for every cell, either accepts its multipole
// (MAC passes for the whole sink group), opens it, or — for leaves — spills
// its bodies onto the direct (particle-particle) list. The resulting lists
// are evaluated by the application's kernel (gravity, vortex, ...), which is
// where all counted flops happen.
#pragma once

#include <cstdint>
#include <vector>

#include "hot/mac.hpp"
#include "hot/tree.hpp"
#include "telemetry/counters.hpp"

namespace hotlib::hot {

struct InteractionLists {
  // Indices into tree.cells() whose multipoles act on the whole sink group.
  std::vector<std::uint32_t> cells;
  // Original body indices interacting directly (includes the group's own
  // members; evaluators skip the self term by index equality).
  std::vector<std::uint32_t> bodies;
  // Offset in `bodies` where the group's own members start. They are pushed
  // contiguously in tree order, so the sink at tree.order()[t] sits at slot
  // self_begin + (t - group.body_begin) — batched evaluators use this to
  // skip the self term in O(1).
  std::size_t self_begin = 0;
};

// Build interaction lists for the sink group `leaf_index` (must be a leaf
// cell of `tree`). Appends to `lists` (call lists.cells.clear() between
// groups); updates the traversal tally (MAC tests, opened cells).
void build_interaction_lists(const Tree& tree, std::uint32_t leaf_index, const Mac& mac,
                             InteractionLists& lists, InteractionTally& tally);

// Enumerate the indices of all leaf cells (sink groups) of the tree.
std::vector<std::uint32_t> leaf_indices(const Tree& tree);

}  // namespace hotlib::hot
