#include "hot/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "telemetry/sample.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::hot {

using morton::Key;

void RawMoments::accumulate(const Vec3d& x, double m) {
  mass += m;
  weighted_pos += m * x;
  second[0] += m * x.x * x.x;
  second[1] += m * x.x * x.y;
  second[2] += m * x.x * x.z;
  second[3] += m * x.y * x.y;
  second[4] += m * x.y * x.z;
  second[5] += m * x.z * x.z;
}

RawMoments& RawMoments::operator+=(const RawMoments& o) {
  mass += o.mass;
  weighted_pos += o.weighted_pos;
  for (int i = 0; i < 6; ++i) second[i] += o.second[i];
  return *this;
}

void finalize_moments(const RawMoments& raw, double bmax_bound, Cell& out) {
  out.mass = raw.mass;
  out.com = raw.mass > 0 ? raw.weighted_pos / raw.mass : raw.weighted_pos;
  const Vec3d& c = out.com;
  // Second moment about the com: S_com = S_origin - m * c c^T.
  std::array<double, 6> s = raw.second;
  s[0] -= raw.mass * c.x * c.x;
  s[1] -= raw.mass * c.x * c.y;
  s[2] -= raw.mass * c.x * c.z;
  s[3] -= raw.mass * c.y * c.y;
  s[4] -= raw.mass * c.y * c.z;
  s[5] -= raw.mass * c.z * c.z;
  const double tr = s[0] + s[3] + s[5];
  out.quad = {3 * s[0] - tr, 3 * s[1], 3 * s[2], 3 * s[3] - tr, 3 * s[4], 3 * s[5] - tr};
  out.b2 = tr;
  out.bmax = bmax_bound;
}

void Tree::build(std::span<const Vec3d> pos, std::span<const double> mass,
                 const morton::Domain& domain, Config cfg) {
  assert(pos.size() == mass.size());
  telemetry::Span span("tree_build", telemetry::Phase::kTreeBuild, pos.size());
  domain_ = domain;
  cells_.clear();
  hash_.clear();
  max_depth_ = 0;

  const std::uint32_t n = static_cast<std::uint32_t>(pos.size());
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  std::vector<Key> raw_keys(n);
  for (std::uint32_t i = 0; i < n; ++i)
    raw_keys[i] = morton::key_from_position(pos[i], domain_);
  std::sort(order_.begin(), order_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return raw_keys[a] < raw_keys[b]; });
  keys_.resize(n);
  std::vector<Vec3d> sorted_pos(n);
  std::vector<double> sorted_mass(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    keys_[i] = raw_keys[order_[i]];
    sorted_pos[i] = pos[order_[i]];
    sorted_mass[i] = mass[order_[i]];
  }

  cells_.reserve(n == 0 ? 1 : 2 * (n / std::max(1, cfg.bucket_size)) + 64);
  Cell root;
  root.key = morton::kRootKey;
  root.body_begin = 0;
  root.body_count = n;
  cells_.push_back(root);
  if (n > 0) build_range(0, 0, n, 0, sorted_pos, sorted_mass, cfg);

  // Bottom-up moments: children are stored after their parent.
  for (std::size_t i = cells_.size(); i-- > 0;)
    compute_moments(static_cast<std::uint32_t>(i), sorted_pos, sorted_mass);

  for (std::size_t i = 0; i < cells_.size(); ++i)
    hash_.insert(cells_[i].key, static_cast<std::uint32_t>(i));

  // Health gauges: resident tree size and hash-table shape of the build this
  // rank now holds (the sampler snapshots them on the parc tick).
  telemetry::gauge_set(telemetry::Gauge::kTreeCells, static_cast<double>(cells_.size()));
  telemetry::gauge_set(telemetry::Gauge::kTreeBodies, static_cast<double>(n));
  telemetry::gauge_set(telemetry::Gauge::kHashEntries, static_cast<double>(hash_.size()));
  telemetry::gauge_set(telemetry::Gauge::kHashSlots, static_cast<double>(hash_.capacity()));
  telemetry::gauge_set(telemetry::Gauge::kHashMeanProbe, hash_.mean_probe());
}

// Splits the already-created cell `ci` covering keys_[lo, hi) at `level`.
std::uint32_t Tree::build_range(std::uint32_t ci, std::uint32_t lo, std::uint32_t hi,
                                int level, const std::vector<Vec3d>& sorted_pos,
                                const std::vector<double>& sorted_mass, Config cfg) {
  const Key key = cells_[ci].key;
  max_depth_ = std::max(max_depth_, level);

  if (hi - lo <= static_cast<std::uint32_t>(cfg.bucket_size) || level >= morton::kMaxLevel)
    return ci;  // leaf

  // Partition [lo, hi) into the 8 octant sub-ranges using the 3-bit key
  // digit at depth level+1. Keys are sorted, so each octant is contiguous.
  const int shift = 3 * (morton::kMaxLevel - (level + 1));
  auto digit = [&](Key k) { return static_cast<int>((k >> shift) & 7); };

  std::array<std::uint32_t, 9> bound{};
  bound[0] = lo;
  for (int o = 0; o < 8; ++o) {
    const auto first = keys_.begin() + bound[o];
    const auto last = keys_.begin() + hi;
    bound[o + 1] = static_cast<std::uint32_t>(
        std::upper_bound(first, last, o, [&](int val, Key k) { return val < digit(k); }) -
        keys_.begin());
  }
  assert(bound[8] == hi);

  const std::uint32_t first_child = static_cast<std::uint32_t>(cells_.size());
  std::uint32_t nchildren = 0;
  for (int o = 0; o < 8; ++o) {
    if (bound[o + 1] == bound[o]) continue;
    Cell c;
    c.key = morton::child(key, o);
    c.body_begin = bound[o];
    c.body_count = bound[o + 1] - bound[o];
    cells_.push_back(c);
    ++nchildren;
  }
  cells_[ci].first_child = first_child;
  cells_[ci].nchildren = nchildren;

  // Recurse after all siblings exist so they stay contiguous.
  std::uint32_t j = first_child;
  for (int o = 0; o < 8; ++o) {
    if (bound[o + 1] == bound[o]) continue;
    build_range(j, bound[o], bound[o + 1], level + 1, sorted_pos, sorted_mass, cfg);
    ++j;
  }
  return ci;
}

void Tree::compute_moments(std::uint32_t ci, const std::vector<Vec3d>& sorted_pos,
                           const std::vector<double>& sorted_mass) {
  Cell& c = cells_[ci];
  if (c.body_count == 0) {
    c.mass = 0;
    return;
  }
  if (c.is_leaf()) {
    RawMoments raw;
    for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
      raw.accumulate(sorted_pos[i], sorted_mass[i]);
    double bmax = 0.0;
    const Vec3d com = raw.mass > 0 ? raw.weighted_pos / raw.mass : raw.weighted_pos;
    for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
      bmax = std::max(bmax, norm(sorted_pos[i] - com));
    finalize_moments(raw, bmax, c);
    return;
  }
  // Internal: combine children (already finalized — reverse-order pass).
  double mass = 0;
  Vec3d weighted{};
  for (std::uint32_t k = 0; k < c.nchildren; ++k) {
    const Cell& ch = cells_[c.first_child + k];
    mass += ch.mass;
    weighted += ch.mass * ch.com;
  }
  c.mass = mass;
  c.com = mass > 0 ? weighted / mass : weighted;
  c.quad = {};
  c.b2 = 0;
  c.bmax = 0;
  for (std::uint32_t k = 0; k < c.nchildren; ++k) {
    const Cell& ch = cells_[c.first_child + k];
    const Vec3d d = ch.com - c.com;
    const double d2 = norm2(d);
    c.quad[0] += ch.quad[0] + ch.mass * (3 * d.x * d.x - d2);
    c.quad[1] += ch.quad[1] + ch.mass * (3 * d.x * d.y);
    c.quad[2] += ch.quad[2] + ch.mass * (3 * d.x * d.z);
    c.quad[3] += ch.quad[3] + ch.mass * (3 * d.y * d.y - d2);
    c.quad[4] += ch.quad[4] + ch.mass * (3 * d.y * d.z);
    c.quad[5] += ch.quad[5] + ch.mass * (3 * d.z * d.z - d2);
    c.b2 += ch.b2 + ch.mass * d2;
    c.bmax = std::max(c.bmax, norm(d) + ch.bmax);
  }
}

void Tree::find_within(const Vec3d& center, double radius,
                       std::vector<std::uint32_t>& out) const {
  out.clear();
  if (cells_.empty() || cells_[0].body_count == 0) return;
  const double r2 = radius * radius;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const Cell& c = cells_[stack.back()];
    stack.pop_back();
    const morton::CellBox b = box(c);
    // Min distance from center to the cell cube.
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
      const double excess = std::abs(center[a] - b.center[a]) - b.half;
      if (excess > 0) d2 += excess * excess;
    }
    if (d2 > r2) continue;
    if (c.is_leaf()) {
      for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
        out.push_back(order_[i]);
    } else {
      for (std::uint32_t k = 0; k < c.nchildren; ++k) stack.push_back(c.first_child + k);
    }
  }
}

}  // namespace hotlib::hot
