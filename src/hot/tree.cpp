#include "hot/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "morton/parallel.hpp"
#include "telemetry/sample.hpp"
#include "telemetry/trace.hpp"
#include "util/task_pool.hpp"

namespace hotlib::hot {

using morton::Key;

void RawMoments::accumulate(const Vec3d& x, double m) {
  mass += m;
  weighted_pos += m * x;
  second[0] += m * x.x * x.x;
  second[1] += m * x.x * x.y;
  second[2] += m * x.x * x.z;
  second[3] += m * x.y * x.y;
  second[4] += m * x.y * x.z;
  second[5] += m * x.z * x.z;
}

RawMoments& RawMoments::operator+=(const RawMoments& o) {
  mass += o.mass;
  weighted_pos += o.weighted_pos;
  for (int i = 0; i < 6; ++i) second[i] += o.second[i];
  return *this;
}

void finalize_moments(const RawMoments& raw, double bmax_bound, Cell& out) {
  out.mass = raw.mass;
  out.com = raw.mass > 0 ? raw.weighted_pos / raw.mass : raw.weighted_pos;
  const Vec3d& c = out.com;
  // Second moment about the com: S_com = S_origin - m * c c^T.
  std::array<double, 6> s = raw.second;
  s[0] -= raw.mass * c.x * c.x;
  s[1] -= raw.mass * c.x * c.y;
  s[2] -= raw.mass * c.x * c.z;
  s[3] -= raw.mass * c.y * c.y;
  s[4] -= raw.mass * c.y * c.z;
  s[5] -= raw.mass * c.z * c.z;
  const double tr = s[0] + s[3] + s[5];
  out.quad = {3 * s[0] - tr, 3 * s[1], 3 * s[2], 3 * s[3] - tr, 3 * s[4], 3 * s[5] - tr};
  out.b2 = tr;
  out.bmax = bmax_bound;
}

void Tree::build(std::span<const Vec3d> pos, std::span<const double> mass,
                 const morton::Domain& domain, Config cfg) {
  assert(pos.size() == mass.size());
  telemetry::Span span("tree_build", telemetry::Phase::kTreeBuild, pos.size());
  domain_ = domain;
  cells_.clear();
  hash_.clear();
  max_depth_ = 0;

  const std::uint32_t n = static_cast<std::uint32_t>(pos.size());
  order_.resize(n);
  std::vector<Key> raw_keys(n);
  morton::parallel_morton_keys(pos, domain_, raw_keys);
  // (key, index) total order: the unique sorted permutation, whatever the
  // thread count (see morton/parallel.hpp).
  morton::parallel_sort_by_key(raw_keys, order_);
  keys_.resize(n);
  std::vector<Vec3d> sorted_pos(n);
  std::vector<double> sorted_mass(n);
  util::TaskPool::global().parallel_for(n, 8192, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      keys_[i] = raw_keys[order_[i]];
      sorted_pos[i] = pos[order_[i]];
      sorted_mass[i] = mass[order_[i]];
    }
  });

  cells_.reserve(n == 0 ? 1 : 2 * (n / std::max(1, cfg.bucket_size)) + 64);
  Cell root;
  root.key = morton::kRootKey;
  root.body_begin = 0;
  root.body_count = n;
  cells_.push_back(root);
  if (n > 0) {
    DescBlock blk = build_desc(morton::kRootKey, 0, n, 0, cfg);
    max_depth_ = blk.max_depth;
    if (blk.nchildren > 0) {
      cells_[0].first_child = 1;
      cells_[0].nchildren = blk.nchildren;
    }
    cells_.resize(1 + blk.cells.size());
    for (std::size_t i = 0; i < blk.cells.size(); ++i) {
      Cell c = blk.cells[i];
      if (c.first_child != kNullIndex) c.first_child += 1;  // rebase after root
      cells_[1 + i] = c;
    }
  }

  // Bottom-up moments: children are stored after their parent.
  compute_all_moments(sorted_pos, sorted_mass);

  for (std::size_t i = 0; i < cells_.size(); ++i)
    hash_.insert(cells_[i].key, static_cast<std::uint32_t>(i));

  // Health gauges: resident tree size and hash-table shape of the build this
  // rank now holds (the sampler snapshots them on the parc tick).
  telemetry::gauge_set(telemetry::Gauge::kTreeCells, static_cast<double>(cells_.size()));
  telemetry::gauge_set(telemetry::Gauge::kTreeBodies, static_cast<double>(n));
  telemetry::gauge_set(telemetry::Gauge::kHashEntries, static_cast<double>(hash_.size()));
  telemetry::gauge_set(telemetry::Gauge::kHashSlots, static_cast<double>(hash_.capacity()));
  telemetry::gauge_set(telemetry::Gauge::kHashMeanProbe, hash_.mean_probe());
}

namespace {

// Octant sub-ranges of the sorted keys_[lo, hi) at depth level+1: the 3-bit
// key digit selects the octant, and sorted keys make each octant contiguous.
std::array<std::uint32_t, 9> octant_bounds(const std::vector<Key>& keys,
                                           std::uint32_t lo, std::uint32_t hi,
                                           int level) {
  const int shift = 3 * (morton::kMaxLevel - (level + 1));
  auto digit = [shift](Key k) { return static_cast<int>((k >> shift) & 7); };
  std::array<std::uint32_t, 9> bound{};
  bound[0] = lo;
  for (int o = 0; o < 8; ++o) {
    const auto first = keys.begin() + bound[o];
    const auto last = keys.begin() + hi;
    bound[o + 1] = static_cast<std::uint32_t>(
        std::upper_bound(first, last, o,
                         [&](int val, Key k) { return val < digit(k); }) -
        keys.begin());
  }
  assert(bound[8] == hi);
  return bound;
}

// Bodies below which a subtree is built serially instead of spawning tasks
// per octant. Coarse enough that task overhead vanishes, fine enough that
// eight top-level subtrees don't leave lanes idle on clustered inputs.
constexpr std::uint32_t kBuildGrain = 4096;

}  // namespace

// Appends the descendants of cell (key, [lo, hi), level) to `out` in the
// depth-first layout and returns the cell's direct-child count.
std::uint32_t Tree::build_desc_serial(Key key, std::uint32_t lo, std::uint32_t hi,
                                      int level, Config cfg, std::vector<Cell>& out,
                                      int& max_depth) const {
  max_depth = std::max(max_depth, level);
  if (hi - lo <= static_cast<std::uint32_t>(cfg.bucket_size) || level >= morton::kMaxLevel)
    return 0;  // leaf

  const std::array<std::uint32_t, 9> bound = octant_bounds(keys_, lo, hi, level);
  const std::uint32_t first = static_cast<std::uint32_t>(out.size());
  std::uint32_t nchildren = 0;
  for (int o = 0; o < 8; ++o) {
    if (bound[o + 1] == bound[o]) continue;
    Cell c;
    c.key = morton::child(key, o);
    c.body_begin = bound[o];
    c.body_count = bound[o + 1] - bound[o];
    out.push_back(c);
    ++nchildren;
  }

  // Recurse after all siblings exist so they stay contiguous.
  std::uint32_t j = first;
  for (int o = 0; o < 8; ++o) {
    if (bound[o + 1] == bound[o]) continue;
    const std::uint32_t sub_begin = static_cast<std::uint32_t>(out.size());
    const std::uint32_t sub_n = build_desc_serial(out[j].key, bound[o], bound[o + 1],
                                                  level + 1, cfg, out, max_depth);
    out[j].nchildren = sub_n;
    out[j].first_child = sub_n > 0 ? sub_begin : kNullIndex;
    ++j;
  }
  return nchildren;
}

Tree::DescBlock Tree::build_desc(Key key, std::uint32_t lo, std::uint32_t hi,
                                 int level, Config cfg) const {
  DescBlock b;
  b.max_depth = level;
  util::TaskPool& pool = util::TaskPool::global();
  if (pool.concurrency() == 1 || hi - lo <= kBuildGrain || level >= morton::kMaxLevel ||
      hi - lo <= static_cast<std::uint32_t>(cfg.bucket_size)) {
    b.nchildren = build_desc_serial(key, lo, hi, level, cfg, b.cells, b.max_depth);
    return b;
  }

  // Recursive decompose: one task per nonempty octant builds its subtree as
  // an independent block; the merge splices the blocks in octant order and
  // rebases their block-local first_child indices. The splice order is
  // data-determined, so the final layout equals the serial one exactly.
  const std::array<std::uint32_t, 9> bound = octant_bounds(keys_, lo, hi, level);
  struct Octant {
    std::uint32_t lo, hi;
  };
  std::vector<Octant> octs;
  octs.reserve(8);
  for (int o = 0; o < 8; ++o) {
    if (bound[o + 1] == bound[o]) continue;
    Cell c;
    c.key = morton::child(key, o);
    c.body_begin = bound[o];
    c.body_count = bound[o + 1] - bound[o];
    b.cells.push_back(c);
    octs.push_back({bound[o], bound[o + 1]});
  }
  b.nchildren = static_cast<std::uint32_t>(octs.size());

  std::vector<DescBlock> sub(octs.size());
  {
    util::TaskPool::Group g(pool);
    for (std::size_t j = 0; j < octs.size(); ++j) {
      g.spawn([this, &sub, &octs, &b, j, level, cfg] {
        sub[j] = build_desc(b.cells[j].key, octs[j].lo, octs[j].hi, level + 1, cfg);
      });
    }
    g.wait();
  }

  for (std::size_t j = 0; j < sub.size(); ++j) {
    const std::uint32_t off = static_cast<std::uint32_t>(b.cells.size());
    b.cells[j].nchildren = sub[j].nchildren;
    b.cells[j].first_child = sub[j].nchildren > 0 ? off : kNullIndex;
    for (const Cell& c : sub[j].cells) {
      b.cells.push_back(c);
      if (b.cells.back().first_child != kNullIndex) b.cells.back().first_child += off;
    }
    b.max_depth = std::max(b.max_depth, sub[j].max_depth);
  }
  return b;
}

void Tree::compute_all_moments(const std::vector<Vec3d>& sorted_pos,
                               const std::vector<double>& sorted_mass) {
  util::TaskPool& pool = util::TaskPool::global();
  const std::size_t nc = cells_.size();
  if (pool.concurrency() == 1 || nc < 4096) {
    for (std::size_t i = nc; i-- > 0;)
      compute_moments(static_cast<std::uint32_t>(i), sorted_pos, sorted_mass);
    return;
  }
  // Level-synchronous sweep, deepest first: cells of one depth only read
  // their children (strictly deeper, already finalized), so each level is a
  // parallel_for. Per-cell arithmetic is untouched — bitwise identical to
  // the serial reverse sweep.
  std::vector<std::vector<std::uint32_t>> by_level(
      static_cast<std::size_t>(max_depth_) + 1);
  for (std::size_t i = 0; i < nc; ++i)
    by_level[static_cast<std::size_t>(morton::level(cells_[i].key))].push_back(
        static_cast<std::uint32_t>(i));
  for (std::size_t lv = by_level.size(); lv-- > 0;) {
    const std::vector<std::uint32_t>& idx = by_level[lv];
    pool.parallel_for(idx.size(), 256, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t t = lo; t < hi; ++t)
        compute_moments(idx[t], sorted_pos, sorted_mass);
    });
  }
}

void Tree::compute_moments(std::uint32_t ci, const std::vector<Vec3d>& sorted_pos,
                           const std::vector<double>& sorted_mass) {
  Cell& c = cells_[ci];
  if (c.body_count == 0) {
    c.mass = 0;
    return;
  }
  if (c.is_leaf()) {
    RawMoments raw;
    for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
      raw.accumulate(sorted_pos[i], sorted_mass[i]);
    double bmax = 0.0;
    const Vec3d com = raw.mass > 0 ? raw.weighted_pos / raw.mass : raw.weighted_pos;
    for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
      bmax = std::max(bmax, norm(sorted_pos[i] - com));
    finalize_moments(raw, bmax, c);
    return;
  }
  // Internal: combine children (already finalized — reverse-order pass).
  double mass = 0;
  Vec3d weighted{};
  for (std::uint32_t k = 0; k < c.nchildren; ++k) {
    const Cell& ch = cells_[c.first_child + k];
    mass += ch.mass;
    weighted += ch.mass * ch.com;
  }
  c.mass = mass;
  c.com = mass > 0 ? weighted / mass : weighted;
  c.quad = {};
  c.b2 = 0;
  c.bmax = 0;
  for (std::uint32_t k = 0; k < c.nchildren; ++k) {
    const Cell& ch = cells_[c.first_child + k];
    const Vec3d d = ch.com - c.com;
    const double d2 = norm2(d);
    c.quad[0] += ch.quad[0] + ch.mass * (3 * d.x * d.x - d2);
    c.quad[1] += ch.quad[1] + ch.mass * (3 * d.x * d.y);
    c.quad[2] += ch.quad[2] + ch.mass * (3 * d.x * d.z);
    c.quad[3] += ch.quad[3] + ch.mass * (3 * d.y * d.y - d2);
    c.quad[4] += ch.quad[4] + ch.mass * (3 * d.y * d.z);
    c.quad[5] += ch.quad[5] + ch.mass * (3 * d.z * d.z - d2);
    c.b2 += ch.b2 + ch.mass * d2;
    c.bmax = std::max(c.bmax, norm(d) + ch.bmax);
  }
}

void Tree::find_within(const Vec3d& center, double radius,
                       std::vector<std::uint32_t>& out) const {
  out.clear();
  if (cells_.empty() || cells_[0].body_count == 0) return;
  const double r2 = radius * radius;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const Cell& c = cells_[stack.back()];
    stack.pop_back();
    const morton::CellBox b = box(c);
    // Min distance from center to the cell cube.
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
      const double excess = std::abs(center[a] - b.center[a]) - b.half;
      if (excess > 0) d2 += excess * excess;
    }
    if (d2 > r2) continue;
    if (c.is_leaf()) {
      for (std::uint32_t i = c.body_begin; i < c.body_begin + c.body_count; ++i)
        out.push_back(order_[i]);
    } else {
      for (std::uint32_t k = 0; k < c.nchildren; ++k) stack.push_back(c.first_child + k);
    }
  }
}

}  // namespace hotlib::hot
