// tree.hpp — the hashed oct-tree data structure.
//
// Particles get Morton keys; sorting the keys makes every tree cell a
// contiguous range of the particle order, and the tree is built top-down by
// splitting ranges on the 3-bit key digits. Cells carry multipole moments
// (mass, center of mass, trace-free quadrupole), the scalar second moment B2
// and the enclosing radius b_max used by the multipole acceptance criteria.
// Every cell is registered in a key->index hash table: the hashed name space
// is what lets the parallel code address remote cells by key alone.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "hot/hash_table.hpp"
#include "morton/key.hpp"
#include "util/vec3.hpp"

namespace hotlib::hot {

inline constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

// Raw (origin-centered) moment sums; the merge-friendly representation used
// while combining partial cells across ranks, finalized into Cell moments.
struct RawMoments {
  double mass = 0.0;
  Vec3d weighted_pos{};                  // sum of m*x
  std::array<double, 6> second{};        // sum of m*x_a*x_b (xx,xy,xz,yy,yz,zz)

  void accumulate(const Vec3d& x, double m);
  RawMoments& operator+=(const RawMoments& o);
};

struct Cell {
  morton::Key key = 0;
  std::uint32_t first_child = kNullIndex;  // children stored contiguously
  std::uint32_t nchildren = 0;
  std::uint32_t body_begin = 0;  // range into the tree-ordered particle list
  std::uint32_t body_count = 0;

  double mass = 0.0;
  Vec3d com{};                       // center of mass
  std::array<double, 6> quad{};      // trace-free quadrupole about com
  double b2 = 0.0;                   // sum m |x-com|^2 (for the error MAC)
  double bmax = 0.0;                 // radius of smallest com-centered sphere
                                     // containing all member particles

  bool is_leaf() const { return nchildren == 0; }
};

class Tree {
 public:
  struct Config {
    int bucket_size = 16;  // max particles in a leaf (paper uses small buckets)
  };

  // Build over `pos` (masses parallel to pos) inside `domain`. All positions
  // must lie inside the domain.
  void build(std::span<const Vec3d> pos, std::span<const double> mass,
             const morton::Domain& domain, Config cfg);
  void build(std::span<const Vec3d> pos, std::span<const double> mass,
             const morton::Domain& domain) {
    build(pos, mass, domain, Config{});
  }

  const morton::Domain& domain() const { return domain_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& root() const { return cells_.front(); }
  bool empty() const { return cells_.empty(); }
  std::size_t body_count() const { return order_.size(); }

  // Tree-order permutation: order()[i] is the original index of the i-th
  // body in tree (Morton) order.
  std::span<const std::uint32_t> order() const { return order_; }
  // Morton key of the i-th body in tree order.
  std::span<const morton::Key> sorted_keys() const { return keys_; }

  // Hash lookup by global key; returns nullptr when the cell does not exist
  // in this (local) tree — exactly the signal the parallel code uses to
  // detect non-local data.
  const Cell* find(morton::Key key) const {
    const std::uint32_t idx = hash_.find(key);
    return idx == KeyHashTable::kNotFound ? nullptr : &cells_[idx];
  }
  std::uint32_t find_index(morton::Key key) const { return hash_.find(key); }

  const KeyHashTable& hash() const { return hash_; }

  // Visit cells bottom-up (children strictly before parents); used by the
  // vortex/SPH modules to attach their own per-cell payloads.
  template <class F>
  void postorder(F&& f) const {
    // Children are always stored after their parent, so reverse iteration
    // visits children first.
    for (std::size_t i = cells_.size(); i-- > 0;) f(cells_[i], static_cast<std::uint32_t>(i));
  }

  // Candidate neighbour search: original indices of all bodies in leaf cells
  // whose box overlaps the sphere (center, radius). The tree does not store
  // positions, so callers apply the exact radius test; no candidate within
  // the radius is ever missed.
  void find_within(const Vec3d& center, double radius,
                   std::vector<std::uint32_t>& out) const;

  // Geometric box of a cell.
  morton::CellBox box(const Cell& c) const { return morton::cell_box(c.key, domain_); }

  // Maximum depth and cell count diagnostics.
  int max_depth() const { return max_depth_; }

 private:
  // One subtree's descendants in the serial depth-first layout (children of
  // a cell contiguous, then each child's descendants in octant order).
  // `first_child` indices are block-local; the parent splices sub-blocks
  // together and rebases them, which is what makes the recursive-decompose
  // build reproduce the serial cell layout bit-for-bit at any thread count.
  struct DescBlock {
    std::vector<Cell> cells;
    std::uint32_t nchildren = 0;  // direct children of the block's root cell
    int max_depth = 0;
  };

  // Descendants of the cell (key, keys_[lo, hi), level): task-recursive
  // above the grain size, serial below it.
  DescBlock build_desc(morton::Key key, std::uint32_t lo, std::uint32_t hi,
                       int level, Config cfg) const;
  // Serial appender used at the leaves of the task recursion; returns the
  // cell's direct-child count.
  std::uint32_t build_desc_serial(morton::Key key, std::uint32_t lo,
                                  std::uint32_t hi, int level, Config cfg,
                                  std::vector<Cell>& out, int& max_depth) const;
  // Bottom-up moments: serial reverse sweep, or level-synchronous parallel
  // sweep (all cells of one depth are independent) — bitwise identical.
  void compute_all_moments(const std::vector<Vec3d>& sorted_pos,
                           const std::vector<double>& sorted_mass);
  void compute_moments(std::uint32_t ci, const std::vector<Vec3d>& sorted_pos,
                       const std::vector<double>& sorted_mass);

  morton::Domain domain_;
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> order_;
  std::vector<morton::Key> keys_;
  KeyHashTable hash_;
  int max_depth_ = 0;
};

// Finalize raw origin-centered moments into com-centered Cell moments
// (quadrupole, b2). bmax cannot be recovered from raw sums; callers supply a
// bound (e.g. the cell box circumradius).
void finalize_moments(const RawMoments& raw, double bmax_bound, Cell& out);

}  // namespace hotlib::hot
