#include "machine/prices.hpp"

namespace hotlib::machine {

std::vector<PriceLine> loki_parts_sept1996() {
  // Verbatim from Table 1 of the paper.
  return {
      {16, 595, "Intel Pentium Pro 200 Mhz CPU/256k cache"},
      {16, 15, "Heat Sink and Fan"},
      {16, 295, "Intel VS440FX (Venus) motherboard"},
      {64, 235, "8x36 60ns parity FPM SIMMS (128 Mb per node)"},
      {16, 359, "Quantum Fireball 3240 Mbyte IDE Hard Drive"},
      {16, 85, "D-Link DFE-500TX 100 Mb Fast Ethernet PCI Card"},
      {16, 129, "SMC EtherPower 10/100 Fast Ethernet PCI Card"},
      {16, 59, "S3 Trio-64 1Mb PCI Video Card"},
      {16, 119, "ATX Case"},
      {2, 4794, "3Com SuperStack II Switch 3000, 8-port Fast Ethernet"},
      {1, 255, "Ethernet cables"},
  };
}

std::vector<PriceLine> spot_prices_aug1997() {
  // Verbatim from Table 2 of the paper (unit prices).
  return {
      {1, 220, "ASUS P/I-XP6NP5 motherboard"},
      {1, 467, "Pentium Pro 200 MHz, 256k L2"},
      {1, 204, "Pentium Pro 150 MHz, 256k L2"},
      {1, 112, "SIMM FPM 8x36x60, 32 Mbyte"},
      {1, 215, "Disk Quantum Fireball 3.2GB EIDE"},
      {1, 53, "Fast Ethernet DFE-500TX 21140 PCI"},
      {1, 150, "Misc. Case, Floppy, Heat Sink"},
      {1, 2500, "BayStack 350T 16 port 10/100 Mbit switch"},
  };
}

std::vector<PriceLine> system_aug1997() {
  // 16 nodes at the Table 2 spot prices: 200 MHz CPUs, 128 MB (4 x 32 MB
  // SIMMs) per node, one disk, one NIC, one switch.
  return {
      {16, 220, "ASUS P/I-XP6NP5 motherboard"},
      {16, 467, "Pentium Pro 200 MHz, 256k L2"},
      {64, 112, "SIMM FPM 8x36x60, 32 Mbyte (128 MB/node)"},
      {16, 215, "Disk Quantum Fireball 3.2GB EIDE"},
      {16, 53, "Fast Ethernet DFE-500TX 21140 PCI"},
      {16, 150, "Misc. Case, Floppy, Heat Sink"},
      {1, 2500, "BayStack 350T 16 port 10/100 Mbit switch"},
  };
}

double total_price(const std::vector<PriceLine>& lines) {
  double t = 0;
  for (const auto& l : lines) t += l.extended();
  return t;
}

double dollars_per_mflop(double system_cost_usd, double sustained_flops) {
  return sustained_flops > 0 ? system_cost_usd / (sustained_flops / 1e6) : 0.0;
}

double gflops_per_million_dollars(double system_cost_usd, double sustained_flops) {
  return system_cost_usd > 0 ? (sustained_flops / 1e9) / (system_cost_usd / 1e6) : 0.0;
}

}  // namespace hotlib::machine
