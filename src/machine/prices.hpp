// prices.hpp — the paper's cost data: Table 1 (Loki parts list, September
// 1996) and Table 2 (spot prices, August 1997), plus the price/performance
// arithmetic of the Gordon Bell price/performance entry.
#pragma once

#include <string>
#include <vector>

namespace hotlib::machine {

struct PriceLine {
  int quantity = 0;
  double unit_price = 0.0;  // USD
  std::string description;

  double extended() const { return quantity * unit_price; }
};

// Table 1: Loki architecture and price (September 1996). Total $51,379.
std::vector<PriceLine> loki_parts_sept1996();

// Table 2: spot prices for August 1997.
std::vector<PriceLine> spot_prices_aug1997();

// A 16-processor system assembled from the August-1997 spot prices
// ("A 16 processor 200Mhz-2 Gbyte memory-50 Gbyte disk system with BayStack
// switch would be $28k").
std::vector<PriceLine> system_aug1997();

double total_price(const std::vector<PriceLine>& lines);

// Price/performance in dollars per Mflop.
double dollars_per_mflop(double system_cost_usd, double sustained_flops);

// "Gflops per million dollars" (the paper quotes 21 for the SC'96 system).
double gflops_per_million_dollars(double system_cost_usd, double sustained_flops);

}  // namespace hotlib::machine
