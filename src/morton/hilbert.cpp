#include "morton/hilbert.hpp"

#include <algorithm>
#include <cmath>

namespace hotlib::morton {

namespace {

constexpr int kBits = kMaxLevel;  // 21 bits per axis

// Skilling: axes -> transposed Hilbert representation (in place).
void axes_to_transpose(std::uint32_t x[3]) {
  const std::uint32_t m = 1u << (kBits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < 3; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[2] & q) t ^= q - 1;
  for (int i = 0; i < 3; ++i) x[i] ^= t;
}

// Skilling: transposed Hilbert representation -> axes (in place).
void transpose_to_axes(std::uint32_t x[3]) {
  const std::uint32_t m = 2u << (kBits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[2] >> 1;
  for (int i = 2; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 2; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

Key hilbert_from_coords(std::uint32_t xi, std::uint32_t yi, std::uint32_t zi) {
  std::uint32_t x[3] = {xi & 0x1FFFFF, yi & 0x1FFFFF, zi & 0x1FFFFF};
  axes_to_transpose(x);
  // The transposed form holds the Hilbert index bit-interleaved across the
  // three words, most significant first: exactly the Morton interleave.
  return (Key{1} << 63) | (expand_bits(x[0]) << 2) | (expand_bits(x[1]) << 1) |
         expand_bits(x[2]);
}

Coords coords_from_hilbert(Key k) {
  std::uint32_t x[3] = {compact_bits(k >> 2), compact_bits(k >> 1), compact_bits(k)};
  transpose_to_axes(x);
  return {x[0], x[1], x[2]};
}

Key hilbert_from_position(const Vec3d& p, const Domain& d) {
  const double scale = static_cast<double>(kCoordRange) / d.size;
  auto to_lattice = [&](double v, double lo) {
    const auto i = static_cast<std::int64_t>(std::floor((v - lo) * scale));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(kCoordRange) - 1));
  };
  return hilbert_from_coords(to_lattice(p.x, d.lo.x), to_lattice(p.y, d.lo.y),
                             to_lattice(p.z, d.lo.z));
}

}  // namespace hotlib::morton
