// hilbert.hpp — 3-D Hilbert-curve keys, the locality-optimal alternative to
// Morton order.
//
// The paper chose Morton order because it "maintains as much spatial
// locality as possible" while keeping parent/child arithmetic trivial; the
// group's later production codes switched to Peano-Hilbert ordering, whose
// successive keys are always face-adjacent lattice cells (better
// decomposition surfaces at the cost of key algebra). We implement both so
// bench_keys can quantify the trade (jump distance, segment surface area).
//
// Algorithm: Skilling's transpose method (AIP Conf. Proc. 707, 2004) —
// convert axes to the "transposed" Hilbert representation and interleave;
// the inverse recovers coordinates, making the mapping a tested bijection.
#pragma once

#include <cstdint>

#include "morton/key.hpp"

namespace hotlib::morton {

// Hilbert index of a lattice point (21 bits per axis), with the same
// placeholder-bit layout as Morton keys (bit 63 set, 3 bits per level).
Key hilbert_from_coords(std::uint32_t x, std::uint32_t y, std::uint32_t z);

// Inverse: lattice coordinates of a full-depth Hilbert key.
Coords coords_from_hilbert(Key k);

// Hilbert key of a position in a domain (same clamping as Morton).
Key hilbert_from_position(const Vec3d& p, const Domain& d);

}  // namespace hotlib::morton
