#include "morton/key.hpp"

#include <algorithm>
#include <cmath>

namespace hotlib::morton {

Key key_from_position(const Vec3d& p, const Domain& d) {
  const double scale = static_cast<double>(kCoordRange) / d.size;
  auto to_lattice = [&](double x, double lo) {
    const double u = (x - lo) * scale;
    const auto i = static_cast<std::int64_t>(std::floor(u));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(kCoordRange) - 1));
  };
  return key_from_coords(to_lattice(p.x, d.lo.x), to_lattice(p.y, d.lo.y),
                         to_lattice(p.z, d.lo.z));
}

CellBox cell_box(Key k, const Domain& d) {
  const int lv = level(k);
  // Promote to a full-depth key of the cell's lower corner; the placeholder
  // bit lands exactly on bit 63, mask it off before compacting coordinates.
  const Key corner_key = k << (3 * (kMaxLevel - lv));
  const Key payload = corner_key & ~(Key{1} << 63);
  const Coords cc = {compact_bits(payload >> 2), compact_bits(payload >> 1),
                     compact_bits(payload)};
  const double cell = d.size / static_cast<double>(Key{1} << lv);
  const double lattice = d.size / static_cast<double>(kCoordRange);
  CellBox box;
  box.half = cell * 0.5;
  box.center = {d.lo.x + cc.x * lattice + box.half, d.lo.y + cc.y * lattice + box.half,
                d.lo.z + cc.z * lattice + box.half};
  return box;
}

Domain bounding_domain(const Vec3d* points, std::size_t n, double pad_fraction) {
  if (n == 0) return {};
  Vec3d lo = points[0], hi = points[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo.x = std::min(lo.x, points[i].x);
    lo.y = std::min(lo.y, points[i].y);
    lo.z = std::min(lo.z, points[i].z);
    hi.x = std::max(hi.x, points[i].x);
    hi.y = std::max(hi.y, points[i].y);
    hi.z = std::max(hi.z, points[i].z);
  }
  double size = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
  if (size <= 0) size = 1.0;
  const double pad = size * pad_fraction;
  return {.lo = lo - Vec3d::all(pad), .size = size + 2 * pad + pad};
}

}  // namespace hotlib::morton
