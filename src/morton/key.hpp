// key.hpp — Morton (Z-order) key algebra for the hashed oct-tree.
//
// "In our implementation, we assign a Key to each particle, which is based on
// Morton ordering. This maps the points in 3-dimensional space to a
// 1-dimensional list, which maintains as much spatial locality as possible...
// The Morton ordered key labeling scheme implicitly defines the topology of
// the tree, and makes it possible to easily compute the key of a parent,
// daughter, or boundary cell for a given key."
//
// Layout (Warren & Salmon 1993): a key is a 64-bit integer consisting of a
// placeholder 1-bit followed by 3 bits per tree level. The root is key 1;
// a particle key carries all kMaxLevel = 21 levels and has bit 63 set. The
// placeholder makes keys self-describing: the position of the leading 1 bit
// encodes the level, so every cell in the oct-tree has a unique integer name
// usable across processor boundaries (the "global key name space").
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "util/vec3.hpp"

namespace hotlib::morton {

using Key = std::uint64_t;

inline constexpr int kMaxLevel = 21;          // 3*21 = 63 payload bits
inline constexpr Key kRootKey = 1;            // placeholder bit only
inline constexpr std::uint32_t kCoordRange = 1u << kMaxLevel;

// Spread the low 21 bits of v so consecutive bits land 3 apart
// (…b2 b1 b0 -> …b2 0 0 b1 0 0 b0).
constexpr std::uint64_t expand_bits(std::uint32_t v) {
  std::uint64_t x = v & 0x1FFFFF;  // 21 bits
  x = (x | (x << 32)) & 0x1F00000000FFFFULL;
  x = (x | (x << 16)) & 0x1F0000FF0000FFULL;
  x = (x | (x << 8)) & 0x100F00F00F00F00FULL;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

// Inverse of expand_bits.
constexpr std::uint32_t compact_bits(std::uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x ^ (x >> 8)) & 0x1F0000FF0000FFULL;
  x = (x ^ (x >> 16)) & 0x1F00000000FFFFULL;
  x = (x ^ (x >> 32)) & 0x1FFFFFULL;
  return static_cast<std::uint32_t>(x);
}

// Full-depth particle key from integer lattice coordinates in [0, 2^21).
constexpr Key key_from_coords(std::uint32_t ix, std::uint32_t iy, std::uint32_t iz) {
  return (Key{1} << 63) | (expand_bits(ix) << 2) | (expand_bits(iy) << 1) |
         expand_bits(iz);
}

struct Coords {
  std::uint32_t x = 0, y = 0, z = 0;
};

// Lattice coordinates of a full-depth key.
constexpr Coords coords_from_key(Key k) {
  return {compact_bits(k >> 2), compact_bits(k >> 1), compact_bits(k)};
}

// Tree level encoded by the placeholder bit (root = 0, particles = 21).
constexpr int level(Key k) {
  assert(k != 0);
  const int msb = 63 - std::countl_zero(k);
  assert(msb % 3 == 0);
  return msb / 3;
}

constexpr Key parent(Key k) {
  assert(k > kRootKey);
  return k >> 3;
}

// Octant of k within its parent (0..7).
constexpr int octant(Key k) { return static_cast<int>(k & 7); }

constexpr Key child(Key k, int oct) {
  assert(oct >= 0 && oct < 8);
  assert(level(k) < kMaxLevel);
  return (k << 3) | static_cast<unsigned>(oct);
}

// Ancestor of k at level lv (lv <= level(k)).
constexpr Key ancestor_at_level(Key k, int lv) {
  const int drop = level(k) - lv;
  assert(drop >= 0);
  return k >> (3 * drop);
}

constexpr bool is_ancestor_of(Key a, Key b) {
  const int la = level(a), lb = level(b);
  return la <= lb && ancestor_at_level(b, la) == a;
}

// Deepest common ancestor of two keys.
constexpr Key common_ancestor(Key a, Key b) {
  int la = level(a), lb = level(b);
  if (la > lb) a >>= 3 * (la - lb);
  if (lb > la) b >>= 3 * (lb - la);
  while (a != b) {
    a >>= 3;
    b >>= 3;
  }
  return a;
}

// ---- domain geometry -------------------------------------------------------

// Cubical root domain; all keys refer to positions inside it.
struct Domain {
  Vec3d lo{0, 0, 0};
  double size = 1.0;

  bool contains(const Vec3d& p) const {
    return p.x >= lo.x && p.x < lo.x + size && p.y >= lo.y && p.y < lo.y + size &&
           p.z >= lo.z && p.z < lo.z + size;
  }
};

// Axis-aligned cube of a tree cell.
struct CellBox {
  Vec3d center;
  double half = 0.0;
};

// Full-depth key of a position (positions exactly on the upper boundary are
// clamped into the last lattice cell).
Key key_from_position(const Vec3d& p, const Domain& d);

// Geometric cube of the cell named by `k` inside domain `d`.
CellBox cell_box(Key k, const Domain& d);

// Smallest cubical Domain (with margin) covering all of `points`.
Domain bounding_domain(const Vec3d* points, std::size_t n, double pad_fraction = 1e-3);

}  // namespace hotlib::morton
