#include "morton/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "morton/hilbert.hpp"
#include "util/task_pool.hpp"

namespace hotlib::morton {

namespace {

constexpr std::size_t kEncodeGrain = 4096;
// Below this the serial sort wins outright; above it the chunked merge sort
// amortizes its extra copy.
constexpr std::size_t kParallelSortMin = 8192;

}  // namespace

void parallel_morton_keys(std::span<const Vec3d> pos, const Domain& d,
                          std::span<Key> out) {
  assert(pos.size() == out.size());
  util::TaskPool::global().parallel_for(
      pos.size(), kEncodeGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          out[i] = key_from_position(pos[i], d);
      });
}

void parallel_hilbert_keys(std::span<const Vec3d> pos, const Domain& d,
                           std::span<Key> out) {
  assert(pos.size() == out.size());
  util::TaskPool::global().parallel_for(
      pos.size(), kEncodeGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          out[i] = hilbert_from_position(pos[i], d);
      });
}

void parallel_sort_by_key(std::span<const Key> keys,
                          std::span<std::uint32_t> order) {
  assert(keys.size() == order.size());
  const std::size_t n = keys.size();
  std::iota(order.begin(), order.end(), 0u);
  const auto less = [&keys](std::uint32_t a, std::uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  };

  util::TaskPool& pool = util::TaskPool::global();
  const int lanes = pool.concurrency();
  if (lanes == 1 || n < kParallelSortMin) {
    std::sort(order.begin(), order.end(), less);
    return;
  }

  // Chunked merge sort: sort a power-of-two number of equal slices in
  // parallel, then merge pairs bottom-up. Slice boundaries depend only on
  // (n, nchunks) and nchunks only on the lane count — but the OUTPUT does
  // not: the (key, index) order is total, so every path (including the
  // serial one above) lands on the same unique permutation.
  std::size_t nchunks = 1;
  while (nchunks < static_cast<std::size_t>(lanes)) nchunks <<= 1;
  nchunks = std::min(nchunks, std::size_t{256});
  std::vector<std::size_t> bound(nchunks + 1);
  for (std::size_t c = 0; c <= nchunks; ++c) bound[c] = n * c / nchunks;

  {
    util::TaskPool::Group g(pool);
    for (std::size_t c = 0; c < nchunks; ++c) {
      g.spawn([&, c] {
        std::sort(order.begin() + static_cast<std::ptrdiff_t>(bound[c]),
                  order.begin() + static_cast<std::ptrdiff_t>(bound[c + 1]), less);
      });
    }
    g.wait();
  }

  std::vector<std::uint32_t> scratch(n);
  std::uint32_t* src = order.data();
  std::uint32_t* dst = scratch.data();
  for (std::size_t width = 1; width < nchunks; width <<= 1) {
    util::TaskPool::Group g(pool);
    for (std::size_t c = 0; c < nchunks; c += 2 * width) {
      const std::size_t lo = bound[c];
      const std::size_t mid = bound[std::min(c + width, nchunks)];
      const std::size_t hi = bound[std::min(c + 2 * width, nchunks)];
      g.spawn([src, dst, lo, mid, hi, &less] {
        std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, less);
      });
    }
    g.wait();
    std::swap(src, dst);
  }
  if (src != order.data())
    std::copy(src, src + n, order.data());
}

}  // namespace hotlib::morton
