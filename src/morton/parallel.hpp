// parallel.hpp — task-parallel key encoding and the deterministic
// sort-by-key used by every tree build.
//
// Encoding is embarrassingly parallel (each key is a pure function of one
// position). Sorting is where determinism has to be engineered: a plain
// key comparator leaves the relative order of equal keys up to the sort
// algorithm, and a parallel merge sort visits elements in a thread-count-
// dependent order. Sorting by the pair (key, original index) instead makes
// the comparator a strict total order, so there is exactly ONE sorted
// permutation — whatever algorithm or thread count produces it. That is the
// root of the tree-build half of the determinism contract (the traversal
// half lives in docs/parallelism.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "morton/key.hpp"

namespace hotlib::morton {

// out[i] = key_from_position(pos[i], d), chunked over the global task pool.
void parallel_morton_keys(std::span<const Vec3d> pos, const Domain& d,
                          std::span<Key> out);

// out[i] = hilbert_from_position(pos[i], d), chunked over the global pool.
void parallel_hilbert_keys(std::span<const Vec3d> pos, const Domain& d,
                           std::span<Key> out);

// Fill `order` (size == keys.size()) with the permutation that sorts `keys`
// ascending, ties broken by original index. The (key, index) pair order is
// total, so the result is the unique sorted permutation — bit-identical for
// any thread count, including the serial std::sort taken when the global
// pool has one lane or n is small.
void parallel_sort_by_key(std::span<const Key> keys,
                          std::span<std::uint32_t> order);

}  // namespace hotlib::morton
