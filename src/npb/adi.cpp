#include "npb/adi.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hotlib::npb {

namespace {

constexpr double kLambda = 0.8;  // implicit diffusion number

// ---- small dense 3x3 helpers for the BT block solves -----------------------

using Mat3 = std::array<double, 9>;
using Vec3a = std::array<double, 3>;

Mat3 mat_identity() { return {1, 0, 0, 0, 1, 0, 0, 0, 1}; }

Mat3 mat_mul(const Mat3& a, const Mat3& b) {
  Mat3 c{};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k) c[3 * i + j] += a[3 * i + k] * b[3 * k + j];
  return c;
}

Vec3a mat_vec(const Mat3& a, const Vec3a& x) {
  Vec3a y{};
  for (int i = 0; i < 3; ++i)
    for (int k = 0; k < 3; ++k) y[i] += a[3 * i + k] * x[k];
  return y;
}

Mat3 mat_scale(const Mat3& a, double s) {
  Mat3 c = a;
  for (double& v : c) v *= s;
  return c;
}

Mat3 mat_sub(const Mat3& a, const Mat3& b) {
  Mat3 c;
  for (int i = 0; i < 9; ++i) c[i] = a[i] - b[i];
  return c;
}

Mat3 mat_inverse(const Mat3& a) {
  const double det = a[0] * (a[4] * a[8] - a[5] * a[7]) -
                     a[1] * (a[3] * a[8] - a[5] * a[6]) +
                     a[2] * (a[3] * a[7] - a[4] * a[6]);
  const double inv = 1.0 / det;
  return {(a[4] * a[8] - a[5] * a[7]) * inv, (a[2] * a[7] - a[1] * a[8]) * inv,
          (a[1] * a[5] - a[2] * a[4]) * inv, (a[5] * a[6] - a[3] * a[8]) * inv,
          (a[0] * a[8] - a[2] * a[6]) * inv, (a[2] * a[3] - a[0] * a[5]) * inv,
          (a[3] * a[7] - a[4] * a[6]) * inv, (a[1] * a[6] - a[0] * a[7]) * inv,
          (a[0] * a[4] - a[1] * a[3]) * inv};
}

// Constant inter-component coupling for BT: diagonally dominant, asymmetric.
const Mat3 kCoupling{1.0, 0.2, 0.1, 0.1, 1.0, 0.2, 0.2, 0.1, 1.0};

// ---- scalar tridiagonal (Thomas) -------------------------------------------
// System: -lam u_{i-1} + (1+2 lam) u_i - lam u_{i+1} = rhs_i, Dirichlet.
void solve_tridiag(std::vector<double>& x, int n, double lam) {
  static thread_local std::vector<double> c, d;
  c.assign(static_cast<std::size_t>(n), 0.0);
  d.assign(static_cast<std::size_t>(n), 0.0);
  const double b = 1.0 + 2.0 * lam, a = -lam;
  double beta = b;
  c[0] = a / beta;
  d[0] = x[0] / beta;
  for (int i = 1; i < n; ++i) {
    beta = b - a * c[static_cast<std::size_t>(i - 1)];
    c[static_cast<std::size_t>(i)] = a / beta;
    d[static_cast<std::size_t>(i)] =
        (x[static_cast<std::size_t>(i)] - a * d[static_cast<std::size_t>(i - 1)]) / beta;
  }
  x[static_cast<std::size_t>(n - 1)] = d[static_cast<std::size_t>(n - 1)];
  for (int i = n - 2; i >= 0; --i)
    x[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] -
                                     c[static_cast<std::size_t>(i)] *
                                         x[static_cast<std::size_t>(i + 1)];
}

// ---- scalar pentadiagonal --------------------------------------------------
// Bands (e, a, b, a, e) from the 4th-order stencil of (I - lam D4):
// D4 u ~ (-u_{i-2} + 16 u_{i-1} - 30 u_i + 16 u_{i+1} - u_{i+2}) / 12.
struct PentaBands {
  double e, a, b;
};
PentaBands penta_bands(double lam) {
  return {lam / 12.0, -16.0 * lam / 12.0, 1.0 + 30.0 * lam / 12.0};
}

// In-place pentadiagonal solve (LU without pivoting; diagonally dominant).
void solve_penta(std::vector<double>& x, int n, const PentaBands& bd) {
  static thread_local std::vector<double> d, u1, u2;
  d.assign(static_cast<std::size_t>(n), 0.0);
  u1.assign(static_cast<std::size_t>(n), 0.0);
  u2.assign(static_cast<std::size_t>(n), 0.0);
  // Row i: e x_{i-2} + a x_{i-1} + b x_i + a x_{i+1} + e x_{i+2} = rhs.
  // Forward elimination with two subdiagonals.
  std::vector<double>& rhs = x;
  static thread_local std::vector<double> l1, l2;
  l1.assign(static_cast<std::size_t>(n), 0.0);
  l2.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double diag = bd.b, low1 = bd.a, low2 = bd.e;
    double up1 = (i + 1 < n) ? bd.a : 0.0, up2 = (i + 2 < n) ? bd.e : 0.0;
    double r = rhs[static_cast<std::size_t>(i)];
    if (i >= 1) {
      // Eliminate the first subdiagonal with (reduced) row i-1.
      const double f = low1 / d[static_cast<std::size_t>(i - 1)];
      l1[static_cast<std::size_t>(i)] = f;
      diag -= f * u1[static_cast<std::size_t>(i - 1)];
      up1 -= f * u2[static_cast<std::size_t>(i - 1)];
      r -= f * rhs[static_cast<std::size_t>(i - 1)];
    }
    if (i >= 2) {
      const double f = low2 / d[static_cast<std::size_t>(i - 2)];
      l2[static_cast<std::size_t>(i)] = f;
      // Row i-2's u1 hits column i-1 (already eliminated above via the
      // updated low1), its u2 hits column i.
      diag -= f * u2[static_cast<std::size_t>(i - 2)];
      r -= f * rhs[static_cast<std::size_t>(i - 2)];
      // And the contribution to column i-1 must fold into the first
      // elimination; handle by re-eliminating:
      const double extra = -f * u1[static_cast<std::size_t>(i - 2)];
      const double f2 = extra / d[static_cast<std::size_t>(i - 1)];
      diag -= f2 * u1[static_cast<std::size_t>(i - 1)];
      up1 -= f2 * u2[static_cast<std::size_t>(i - 1)];
      r -= f2 * rhs[static_cast<std::size_t>(i - 1)];
    }
    d[static_cast<std::size_t>(i)] = diag;
    u1[static_cast<std::size_t>(i)] = up1;
    u2[static_cast<std::size_t>(i)] = up2;
    rhs[static_cast<std::size_t>(i)] = r;
  }
  // Back substitution.
  for (int i = n - 1; i >= 0; --i) {
    double r = rhs[static_cast<std::size_t>(i)];
    if (i + 1 < n) r -= u1[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i + 1)];
    if (i + 2 < n) r -= u2[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i + 2)];
    x[static_cast<std::size_t>(i)] = r / d[static_cast<std::size_t>(i)];
  }
}

// Residual of the pentadiagonal system for verification.
double penta_residual(const std::vector<double>& x, const std::vector<double>& rhs,
                      int n, const PentaBands& bd) {
  double num = 0, den = 0;
  for (int i = 0; i < n; ++i) {
    double ax = bd.b * x[static_cast<std::size_t>(i)];
    if (i >= 1) ax += bd.a * x[static_cast<std::size_t>(i - 1)];
    if (i >= 2) ax += bd.e * x[static_cast<std::size_t>(i - 2)];
    if (i + 1 < n) ax += bd.a * x[static_cast<std::size_t>(i + 1)];
    if (i + 2 < n) ax += bd.e * x[static_cast<std::size_t>(i + 2)];
    num += (ax - rhs[static_cast<std::size_t>(i)]) * (ax - rhs[static_cast<std::size_t>(i)]);
    den += rhs[static_cast<std::size_t>(i)] * rhs[static_cast<std::size_t>(i)];
  }
  return den > 0 ? std::sqrt(num / den) : 0.0;
}

// Block tridiagonal (3x3 blocks) Thomas; x holds n consecutive 3-vectors.
void solve_block_tridiag(std::vector<double>& x, int n, double lam) {
  static thread_local std::vector<Mat3> cprime;
  static thread_local std::vector<Vec3a> dprime;
  cprime.assign(static_cast<std::size_t>(n), Mat3{});
  dprime.assign(static_cast<std::size_t>(n), Vec3a{});

  const Mat3 off = mat_scale(kCoupling, -lam);  // -lam * B
  const Mat3 diag =
      mat_sub(mat_identity(), mat_scale(kCoupling, -2.0 * lam));  // I + 2 lam B

  auto rhs_at = [&](int i) {
    return Vec3a{x[static_cast<std::size_t>(3 * i)], x[static_cast<std::size_t>(3 * i + 1)],
                 x[static_cast<std::size_t>(3 * i + 2)]};
  };
  auto store = [&](int i, const Vec3a& v) {
    x[static_cast<std::size_t>(3 * i)] = v[0];
    x[static_cast<std::size_t>(3 * i + 1)] = v[1];
    x[static_cast<std::size_t>(3 * i + 2)] = v[2];
  };

  Mat3 beta_inv = mat_inverse(diag);
  cprime[0] = mat_mul(beta_inv, off);
  dprime[0] = mat_vec(beta_inv, rhs_at(0));
  for (int i = 1; i < n; ++i) {
    const Mat3 beta = mat_sub(diag, mat_mul(off, cprime[static_cast<std::size_t>(i - 1)]));
    beta_inv = mat_inverse(beta);
    cprime[static_cast<std::size_t>(i)] = mat_mul(beta_inv, off);
    Vec3a r = rhs_at(i);
    const Vec3a prev = mat_vec(off, dprime[static_cast<std::size_t>(i - 1)]);
    for (int k = 0; k < 3; ++k) r[k] -= prev[k];
    dprime[static_cast<std::size_t>(i)] = mat_vec(beta_inv, r);
  }
  store(n - 1, dprime[static_cast<std::size_t>(n - 1)]);
  for (int i = n - 2; i >= 0; --i) {
    const Vec3a nxt = mat_vec(cprime[static_cast<std::size_t>(i)], rhs_at(i + 1));
    Vec3a v = dprime[static_cast<std::size_t>(i)];
    for (int k = 0; k < 3; ++k) v[k] -= nxt[k];
    store(i, v);
  }
}

double block_tridiag_residual(const std::vector<double>& x,
                              const std::vector<double>& rhs, int n, double lam) {
  const Mat3 off = mat_scale(kCoupling, -lam);
  const Mat3 diag = mat_sub(mat_identity(), mat_scale(kCoupling, -2.0 * lam));
  double num = 0, den = 0;
  for (int i = 0; i < n; ++i) {
    Vec3a xi{x[static_cast<std::size_t>(3 * i)], x[static_cast<std::size_t>(3 * i + 1)],
             x[static_cast<std::size_t>(3 * i + 2)]};
    Vec3a ax = mat_vec(diag, xi);
    if (i >= 1) {
      Vec3a xm{x[static_cast<std::size_t>(3 * i - 3)], x[static_cast<std::size_t>(3 * i - 2)],
               x[static_cast<std::size_t>(3 * i - 1)]};
      const Vec3a t = mat_vec(off, xm);
      for (int k = 0; k < 3; ++k) ax[k] += t[k];
    }
    if (i + 1 < n) {
      Vec3a xp{x[static_cast<std::size_t>(3 * i + 3)], x[static_cast<std::size_t>(3 * i + 4)],
               x[static_cast<std::size_t>(3 * i + 5)]};
      const Vec3a t = mat_vec(off, xp);
      for (int k = 0; k < 3; ++k) ax[k] += t[k];
    }
    for (int k = 0; k < 3; ++k) {
      const double r = ax[k] - rhs[static_cast<std::size_t>(3 * i + k)];
      num += r * r;
      den += rhs[static_cast<std::size_t>(3 * i + k)] * rhs[static_cast<std::size_t>(3 * i + k)];
    }
  }
  return den > 0 ? std::sqrt(num / den) : 0.0;
}

// ---- distributed field ------------------------------------------------------

// z-slab field with `comp` components per point; layout [zl][y][x][comp].
struct Field {
  int n = 0, nz = 0, comp = 1;
  std::vector<double> data;
  std::size_t at(int z, int y, int x) const {
    return ((static_cast<std::size_t>(z) * n + y) * n + x) * comp;
  }
};

double global_norm(parc::Rank& rank, const Field& f) {
  double s = 0;
  for (double v : f.data) s += v * v;
  return std::sqrt(rank.allreduce(s, parc::Sum{}));
}

// Transpose z-slabs <-> x-slabs: in[zl][y][x][c] -> out[xl][y][z][c].
Field transpose_zx(parc::Rank& rank, const Field& in) {
  const int p = rank.size();
  const int chunk = in.n / p;
  std::vector<std::vector<double>> out_bufs(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    auto& buf = out_bufs[static_cast<std::size_t>(d)];
    buf.reserve(static_cast<std::size_t>(in.nz) * in.n * chunk * in.comp);
    for (int zl = 0; zl < in.nz; ++zl)
      for (int y = 0; y < in.n; ++y)
        for (int x = d * chunk; x < (d + 1) * chunk; ++x)
          for (int c = 0; c < in.comp; ++c)
            buf.push_back(in.data[in.at(zl, y, x) + static_cast<std::size_t>(c)]);
  }
  auto in_bufs = rank.alltoallv_typed<double>(out_bufs);

  Field out;
  out.n = in.n;
  out.nz = chunk;  // now "nz" counts local x planes
  out.comp = in.comp;
  out.data.assign(static_cast<std::size_t>(chunk) * in.n * in.n * in.comp, 0.0);
  for (int src = 0; src < p; ++src) {
    const auto& buf = in_bufs[static_cast<std::size_t>(src)];
    std::size_t pos = 0;
    const int z_base = src * in.nz;
    for (int zl = 0; zl < in.nz; ++zl)
      for (int y = 0; y < in.n; ++y)
        for (int xl = 0; xl < chunk; ++xl)
          for (int c = 0; c < in.comp; ++c) {
            // out[xl][y][z_global][c]
            out.data[((static_cast<std::size_t>(xl) * in.n + y) * in.n +
                      (z_base + zl)) *
                         in.comp +
                     static_cast<std::size_t>(c)] = buf[pos++];
          }
  }
  return out;
}

}  // namespace

AdiResult run_adi(parc::Rank& rank, AdiVariant variant, int n, int steps) {
  const int p = rank.size();
  if (n % p != 0) throw std::invalid_argument("run_adi: n must be divisible by ranks");

  const int comp = variant == AdiVariant::BT ? 3 : 1;
  Field f;
  f.n = n;
  f.nz = n / p;
  f.comp = comp;
  f.data.assign(static_cast<std::size_t>(f.nz) * n * n * comp, 0.0);

  // Smooth deterministic initial field.
  {
    const int z0 = rank.rank() * f.nz;
    for (int zl = 0; zl < f.nz; ++zl)
      for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
          for (int c = 0; c < comp; ++c) {
            const double fx = std::sin(2.0 * (x + 1) * (c + 1) / n);
            const double fy = std::cos(3.0 * (y + 1) / n);
            const double fz = std::sin(1.0 + 5.0 * (z0 + zl) / n);
            f.data[f.at(zl, y, x) + static_cast<std::size_t>(c)] = fx * fy * fz;
          }
  }

  const std::uint64_t bytes_before = rank.fabric().bytes_delivered();
  AdiResult result;
  result.steps = steps;
  result.initial_norm = global_norm(rank, f);

  const PentaBands bands = penta_bands(kLambda);
  double worst = 0.0;
  double ops = 0.0;

  // Solve all lines along the x-index of a field in [*][y][x][c] layout.
  auto solve_lines_x = [&](Field& g, bool check) {
    std::vector<double> line(static_cast<std::size_t>(g.n) * g.comp);
    std::vector<double> rhs_copy;
    for (int zl = 0; zl < g.nz; ++zl)
      for (int y = 0; y < g.n; ++y) {
        for (int x = 0; x < g.n; ++x)
          for (int c = 0; c < g.comp; ++c)
            line[static_cast<std::size_t>(x) * g.comp + static_cast<std::size_t>(c)] =
                g.data[g.at(zl, y, x) + static_cast<std::size_t>(c)];
        if (check) rhs_copy = line;
        if (variant == AdiVariant::BT) {
          solve_block_tridiag(line, g.n, kLambda);
          ops += 60.0 * g.n;
          if (check)
            worst = std::max(worst, block_tridiag_residual(line, rhs_copy, g.n, kLambda));
        } else {
          solve_penta(line, g.n, bands);
          ops += 14.0 * g.n;
          if (check) worst = std::max(worst, penta_residual(line, rhs_copy, g.n, bands));
        }
        for (int x = 0; x < g.n; ++x)
          for (int c = 0; c < g.comp; ++c)
            g.data[g.at(zl, y, x) + static_cast<std::size_t>(c)] =
                line[static_cast<std::size_t>(x) * g.comp + static_cast<std::size_t>(c)];
        check = false;  // sample the first line only
      }
  };

  // Swap the roles of x and y in the local layout (pure local transpose).
  auto transpose_xy_local = [&](Field& g) {
    std::vector<double> tmp(g.data.size());
    for (int zl = 0; zl < g.nz; ++zl)
      for (int y = 0; y < g.n; ++y)
        for (int x = 0; x < g.n; ++x)
          for (int c = 0; c < g.comp; ++c)
            tmp[g.at(zl, x, y) + static_cast<std::size_t>(c)] =
                g.data[g.at(zl, y, x) + static_cast<std::size_t>(c)];
    g.data = std::move(tmp);
  };

  if (variant == AdiVariant::LU) {
    // SSOR with pipelined wavefront sweeps on (I - lam Laplacian) u = rhs.
    const double omega = 1.2;
    const double diag = 1.0 + 6.0 * kLambda;
    for (int s = 0; s < steps; ++s) {
      const std::vector<double> rhs = f.data;
      // SSOR with red-black *plane* coloring: each half-sweep updates the
      // planes of one global z-parity using Gauss-Seidel within the plane and
      // the other color's values across planes. Every half-sweep exchanges
      // one ghost plane with each neighbour (nearest-neighbour communication,
      // the dominant pattern of the original pseudo-app), and the iteration
      // is bitwise independent of the rank count. Enough iterations are run
      // that the inner solve converges to the unique solution of
      // (I - lam L) u = rhs, so the overall result is decomposition-
      // independent to the solve tolerance.
      const std::size_t plane = static_cast<std::size_t>(n) * n;
      const int z0 = rank.rank() * f.nz;
      for (int it = 0; it < 12; ++it) {
        for (int color = 0; color < 2; ++color) {
          // Exchange ghost planes (current u) with both neighbours.
          std::vector<double> lower(plane, 0.0), upper(plane, 0.0);
          if (p > 1) {
            if (rank.rank() + 1 < p)
              rank.send_span<double>(rank.rank() + 1, 700 + color,
                                     {&f.data[f.at(f.nz - 1, 0, 0)], plane});
            if (rank.rank() > 0)
              rank.send_span<double>(rank.rank() - 1, 710 + color,
                                     {&f.data[f.at(0, 0, 0)], plane});
            if (rank.rank() > 0)
              lower = rank.recv(rank.rank() - 1, 700 + color).as_vector<double>();
            if (rank.rank() + 1 < p)
              upper = rank.recv(rank.rank() + 1, 710 + color).as_vector<double>();
          }
          auto cell = [&](int z, int y, int x) -> double& {
            return f.data[f.at(z, y, x)];
          };
          for (int zl = 0; zl < f.nz; ++zl) {
            if (((z0 + zl) & 1) != color) continue;
            for (int y = 0; y < n; ++y)
              for (int x = 0; x < n; ++x) {
                double nb = 0;
                if (x > 0) nb += cell(zl, y, x - 1);
                if (x + 1 < n) nb += cell(zl, y, x + 1);
                if (y > 0) nb += cell(zl, y - 1, x);
                if (y + 1 < n) nb += cell(zl, y + 1, x);
                if (zl > 0)
                  nb += cell(zl - 1, y, x);
                else if (rank.rank() > 0)
                  nb += lower[static_cast<std::size_t>(y) * n + x];
                if (zl + 1 < f.nz)
                  nb += cell(zl + 1, y, x);
                else if (rank.rank() + 1 < p)
                  nb += upper[static_cast<std::size_t>(y) * n + x];
                const double gs = (rhs[f.at(zl, y, x)] + kLambda * nb) / diag;
                cell(zl, y, x) = (1 - omega) * cell(zl, y, x) + omega * gs;
              }
            ops += 12.0 * static_cast<double>(n) * n;
          }
        }
      }
      // SSOR residual check: ||(I - lam L) u - rhs|| / ||rhs|| after the
      // sweeps, with a proper two-sided halo exchange of u.
      {
        std::vector<double> lower(plane, 0.0), upper(plane, 0.0);
        if (p > 1) {
          if (rank.rank() + 1 < p)
            rank.send_span<double>(rank.rank() + 1, 720,
                                   {&f.data[f.at(f.nz - 1, 0, 0)], plane});
          if (rank.rank() > 0)
            rank.send_span<double>(rank.rank() - 1, 721, {&f.data[f.at(0, 0, 0)], plane});
          if (rank.rank() > 0) lower = rank.recv(rank.rank() - 1, 720).as_vector<double>();
          if (rank.rank() + 1 < p)
            upper = rank.recv(rank.rank() + 1, 721).as_vector<double>();
        }
        double num = 0, den = 0;
        for (int zl = 0; zl < f.nz; ++zl)
          for (int y = 0; y < n; ++y)
            for (int x = 0; x < n; ++x) {
              double nb = 0;
              if (x > 0) nb += f.data[f.at(zl, y, x - 1)];
              if (x + 1 < n) nb += f.data[f.at(zl, y, x + 1)];
              if (y > 0) nb += f.data[f.at(zl, y - 1, x)];
              if (y + 1 < n) nb += f.data[f.at(zl, y + 1, x)];
              if (zl > 0)
                nb += f.data[f.at(zl - 1, y, x)];
              else if (rank.rank() > 0)
                nb += lower[static_cast<std::size_t>(y) * n + x];
              if (zl + 1 < f.nz)
                nb += f.data[f.at(zl + 1, y, x)];
              else if (rank.rank() + 1 < p)
                nb += upper[static_cast<std::size_t>(y) * n + x];
              const double au = diag * f.data[f.at(zl, y, x)] - kLambda * nb;
              const double res = au - rhs[f.at(zl, y, x)];
              num += res * res;
              den += rhs[f.at(zl, y, x)] * rhs[f.at(zl, y, x)];
            }
        num = rank.allreduce(num, parc::Sum{});
        den = rank.allreduce(den, parc::Sum{});
        worst = std::max(worst, den > 0 ? std::sqrt(num / den) : 0.0);
      }
    }
  } else {
    for (int s = 0; s < steps; ++s) {
      const bool check = s == 0;
      solve_lines_x(f, check);       // x lines
      transpose_xy_local(f);
      solve_lines_x(f, check);       // y lines
      transpose_xy_local(f);
      Field t = transpose_zx(rank, f);
      solve_lines_x(t, check);       // z lines (now the fast index)
      Field back = transpose_zx(rank, t);
      f = std::move(back);
    }
  }

  rank.charge_flops(ops);
  result.ops = rank.allreduce(ops, parc::Sum{});
  result.final_norm = global_norm(rank, f);
  result.max_solve_residual = rank.allreduce(worst, parc::Max{});
  result.comm_bytes =
      static_cast<double>(rank.fabric().bytes_delivered() - bytes_before);
  // Direct line solves (BT/SP) verify to roundoff; the iterative SSOR solve
  // of LU verifies to its sweep-count-limited tolerance.
  const double tol = variant == AdiVariant::LU ? 1e-4 : 1e-9;
  result.verified =
      result.final_norm < result.initial_norm && result.max_solve_residual < tol;
  return result;
}

}  // namespace hotlib::npb
