// adi.hpp — structural reductions of the NPB pseudo-applications BT, SP, LU.
//
// The three NPB pseudo-apps factor an implicit 3-D operator into directional
// solves over a structured grid; what distinguishes them is the *shape* of
// the per-line system and the communication it forces:
//
//   * BT ("block tridiagonal"): 3x3-block tridiagonal line solves in each of
//     the three directions (block Thomas algorithm). Our state has 3
//     components per point (the original has 5).
//   * SP ("scalar pentadiagonal"): scalar 5-band line solves from a
//     fourth-order implicit stencil.
//   * LU: no line solves at all — successive over-relaxation with red-black
//     plane coloring standing in for the original's lower/upper triangular
//     wavefront sweeps (a structural reduction: the colored ordering keeps
//     the per-iteration nearest-neighbour ghost-plane exchange of the
//     pseudo-app while staying decomposition-independent).
//
// All three advance (I - lambda Dxx)(I - lambda Dyy)(I - lambda Dzz) u = u^n
// (Dirichlet walls) — for LU via SSOR on the unfactored operator. The grid
// is z-slab distributed; BT/SP solve x and y lines locally and reach z lines
// through a global transpose (all-to-all), the "transpose" strategy of the
// parallel NPB codes.
//
// Verification is exact algebra: every direct line solve is checked by
// multiplying back (||T x - rhs|| / ||rhs|| < 1e-10 on sampled lines), SSOR
// is checked by its residual reduction, and the diffusion operator must be
// dissipative (final norm < initial norm).
#pragma once

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

enum class AdiVariant { BT, SP, LU };

inline const char* variant_name(AdiVariant v) {
  switch (v) {
    case AdiVariant::BT: return "BT";
    case AdiVariant::SP: return "SP";
    case AdiVariant::LU: return "LU";
  }
  return "?";
}

struct AdiResult {
  double initial_norm = 0.0;
  double final_norm = 0.0;
  double max_solve_residual = 0.0;  // worst sampled ||Tx - rhs|| / ||rhs||
  int steps = 0;
  bool verified = false;
  double ops = 0.0;
  double comm_bytes = 0.0;
};

// n points per side (divisible by ranks), `steps` implicit timesteps.
AdiResult run_adi(parc::Rank& rank, AdiVariant variant, int n, int steps = 4);

}  // namespace hotlib::npb
