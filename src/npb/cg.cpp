#include "npb/cg.hpp"

#include <cmath>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace hotlib::npb {

namespace {

// Deterministic sparse symmetric diagonally-dominant matrix. Every rank
// builds the rows it owns; symmetry comes from generating each (i, j) pair
// from the hash of the unordered pair, so both owners agree on the value.
struct SparseRows {
  int n = 0;
  int row0 = 0;
  std::vector<std::vector<std::pair<int, double>>> rows;  // (col, value)

  void matvec(const std::vector<double>& x_full, std::vector<double>& y) const {
    y.assign(rows.size(), 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double acc = 0;
      for (const auto& [c, v] : rows[r]) acc += v * x_full[static_cast<std::size_t>(c)];
      y[r] = acc;
    }
  }
  double nnz() const {
    double t = 0;
    for (const auto& r : rows) t += static_cast<double>(r.size());
    return t;
  }
};

SparseRows build_matrix(parc::Rank& rank, int n, int nnz_per_row) {
  const int p = rank.size();
  const int local_n = n / p;
  SparseRows m;
  m.n = n;
  m.row0 = rank.rank() * local_n;
  m.rows.resize(static_cast<std::size_t>(local_n));

  // Off-diagonal pattern: for each row i, nnz_per_row pseudo-random partners
  // j(i,k); include entry (i,j) and, by symmetry, (j,i). Each rank scans the
  // whole pattern (O(n * nnz) integer work) and keeps entries whose row it
  // owns — deterministic and identical across ranks.
  std::vector<std::map<int, double>> acc(static_cast<std::size_t>(local_n));
  auto add = [&](int i, int j, double v) {
    if (i >= m.row0 && i < m.row0 + local_n)
      acc[static_cast<std::size_t>(i - m.row0)][j] += v;
  };
  for (int i = 0; i < n; ++i) {
    SplitMix64 h(static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 12345);
    for (int k = 0; k < nnz_per_row; ++k) {
      const int j = static_cast<int>(h.next() % static_cast<std::uint64_t>(n));
      if (j == i) continue;
      const double v =
          -0.5 * (static_cast<double>(h.next() >> 11) * 0x1.0p-53);  // in (-0.5, 0]
      add(i, j, v);
      add(j, i, v);
    }
  }
  // Diagonal: strict dominance => SPD.
  for (int r = 0; r < local_n; ++r) {
    double offsum = 0;
    for (const auto& [c, v] : acc[static_cast<std::size_t>(r)]) offsum += std::fabs(v);
    acc[static_cast<std::size_t>(r)][m.row0 + r] = offsum + 1.0;
    m.rows[static_cast<std::size_t>(r)].assign(acc[static_cast<std::size_t>(r)].begin(),
                                               acc[static_cast<std::size_t>(r)].end());
  }
  return m;
}

}  // namespace

CgResult run_cg(parc::Rank& rank, int n, int nnz_per_row, int outer, int inner) {
  const int p = rank.size();
  if (n % p != 0) throw std::invalid_argument("run_cg: n must be divisible by ranks");
  const int local_n = n / p;
  const SparseRows a = build_matrix(rank, n, nnz_per_row);

  const std::uint64_t bytes_before = rank.fabric().bytes_delivered();
  CgResult result;

  auto dot = [&](const std::vector<double>& x, const std::vector<double>& y) {
    double d = 0;
    for (std::size_t i = 0; i < x.size(); ++i) d += x[i] * y[i];
    result.ops += 2.0 * static_cast<double>(x.size()) * p;
    return rank.allreduce(d, parc::Sum{});
  };
  auto gather = [&](const std::vector<double>& x_local) {
    const auto blocks = rank.allgather_vector<double>(x_local);
    std::vector<double> full;
    full.reserve(static_cast<std::size_t>(n));
    for (const auto& b : blocks) full.insert(full.end(), b.begin(), b.end());
    return full;
  };

  std::vector<double> x(static_cast<std::size_t>(local_n), 1.0);
  std::vector<double> z, r, pdir, q;
  double zeta_prev = 0, zeta = 0;
  double rnorm_final = 0;
  bool converged = false;

  for (int it = 0; it < outer; ++it) {
    // CG solve A z = x.
    z.assign(static_cast<std::size_t>(local_n), 0.0);
    r = x;
    pdir = r;
    double rho = dot(r, r);
    for (int cg = 0; cg < inner; ++cg) {
      a.matvec(gather(pdir), q);
      result.ops += 2.0 * a.nnz() * p;
      rank.charge_flops(2.0 * a.nnz());
      const double alpha = rho / dot(pdir, q);
      for (int i = 0; i < local_n; ++i) {
        z[static_cast<std::size_t>(i)] += alpha * pdir[static_cast<std::size_t>(i)];
        r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
      }
      result.ops += 4.0 * local_n * p;
      const double rho_new = dot(r, r);
      const double beta = rho_new / rho;
      rho = rho_new;
      for (int i = 0; i < local_n; ++i)
        pdir[static_cast<std::size_t>(i)] =
            r[static_cast<std::size_t>(i)] + beta * pdir[static_cast<std::size_t>(i)];
      result.ops += 2.0 * local_n * p;
    }
    rnorm_final = std::sqrt(rho) / std::sqrt(dot(x, x));

    // zeta = shift + 1 / (x . z), then x = z / ||z||.
    const double xz = dot(x, z);
    zeta_prev = zeta;
    zeta = 1.0 + 1.0 / xz;
    const double znorm = std::sqrt(dot(z, z));
    for (int i = 0; i < local_n; ++i)
      x[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] / znorm;
    if (it == outer - 1)
      converged = std::fabs(zeta - zeta_prev) < 1e-4 * std::fabs(zeta);
  }

  result.zeta = zeta;
  result.final_residual = rnorm_final;
  result.comm_bytes = static_cast<double>(rank.fabric().bytes_delivered() - bytes_before);
  result.verified = converged && rnorm_final < 1e-3;
  return result;
}

}  // namespace hotlib::npb
