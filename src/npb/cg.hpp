// cg.hpp — the NPB "CG" kernel (structural reproduction).
//
// Estimates the largest eigenvalue shift of a random sparse symmetric
// positive-definite matrix by inverse power iteration, each outer iteration
// solving A z = x with a fixed number of conjugate-gradient steps. The
// matrix is row-block distributed; the matvec gathers the full vector
// (allgather) and dot products are allreduced — the irregular-communication
// signature of the original. Verification is self-consistent: the zeta
// estimate must converge (relative change below tolerance) and the final CG
// residual must be small.
#pragma once

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

struct CgResult {
  double zeta = 0.0;
  double final_residual = 0.0;
  bool verified = false;
  double ops = 0.0;
  double comm_bytes = 0.0;
};

// n rows (divisible by ranks), ~nnz_per_row off-diagonals per row,
// `outer` power iterations of `inner` CG steps each.
CgResult run_cg(parc::Rank& rank, int n, int nnz_per_row = 8, int outer = 8,
                int inner = 15);

}  // namespace hotlib::npb
