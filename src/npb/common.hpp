// common.hpp — shared definitions for the mini NAS Parallel Benchmark suite.
//
// Table 3 and Table 4 / Figure 3 of the paper report NPB 2.2 Class B / A
// results on Loki, ASCI Red and an SGI Origin. We implement structural
// C++ reproductions of the kernels on the parc runtime (see DESIGN.md for
// exactly which are bit-exact — EP — and which are reduced). Problem classes
// are scaled so the whole suite runs in seconds on one core; the benchmark
// harness maps measured operation counts through the simnet machine model to
// regenerate the paper's tables.
#pragma once

#include <string>

namespace hotlib::npb {

enum class NpbClass { S, W, A };

inline const char* class_name(NpbClass c) {
  switch (c) {
    case NpbClass::S: return "S";
    case NpbClass::W: return "W";
    case NpbClass::A: return "A";
  }
  return "?";
}

struct KernelResult {
  std::string name;
  NpbClass klass = NpbClass::S;
  double ops = 0.0;           // counted floating-point (or key) operations
  double seconds_real = 0.0;  // wall-clock on this host
  double seconds_model = 0.0; // virtual time under the machine model (0 if unused)
  double comm_bytes = 0.0;    // total message volume
  bool verified = false;

  double mops_real() const { return seconds_real > 0 ? ops / seconds_real / 1e6 : 0.0; }
  double mops_model() const {
    return seconds_model > 0 ? ops / seconds_model / 1e6 : 0.0;
  }
};

}  // namespace hotlib::npb
