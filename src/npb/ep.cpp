#include "npb/ep.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace hotlib::npb {

namespace {

constexpr std::uint64_t kEpSeed = 271828183ULL;
constexpr int kBlockLog = 16;  // pairs per block (NPB uses 2^16)

struct Accum {
  double sx = 0, sy = 0;
  std::array<std::uint64_t, 10> counts{};
  std::uint64_t pairs = 0;

  Accum operator+(const Accum& o) const {
    Accum r = *this;
    r.sx += o.sx;
    r.sy += o.sy;
    for (int i = 0; i < 10; ++i) r.counts[static_cast<std::size_t>(i)] +=
        o.counts[static_cast<std::size_t>(i)];
    r.pairs += o.pairs;
    return r;
  }
};

// Process one block of `count` pairs whose first uniform is at sequence
// position 2*first_pair.
void run_block(std::uint64_t first_pair, std::uint64_t count, Accum& acc) {
  NpbLcg gen(kEpSeed);
  gen.skip(2 * first_pair);
  for (std::uint64_t k = 0; k < count; ++k) {
    const double x1 = 2.0 * gen.next() - 1.0;
    const double x2 = 2.0 * gen.next() - 1.0;
    const double t1 = x1 * x1 + x2 * x2;
    if (t1 > 1.0) continue;
    const double t2 = std::sqrt(-2.0 * std::log(t1) / t1);
    const double gx = x1 * t2;
    const double gy = x2 * t2;
    acc.sx += gx;
    acc.sy += gy;
    const auto bin = static_cast<std::size_t>(std::max(std::fabs(gx), std::fabs(gy)));
    if (bin < 10) ++acc.counts[bin];
    ++acc.pairs;
  }
}

bool verify(int m, double sx, double sy) {
  double ref_sx = 0, ref_sy = 0;
  switch (m) {
    case 24:  // Class S
      ref_sx = -3.247834652034740e+3;
      ref_sy = -6.958407078382297e+3;
      break;
    case 25:  // Class W
      ref_sx = -2.863319731645753e+3;
      ref_sy = -6.320053679109499e+3;
      break;
    case 28:  // Class A
      ref_sx = -4.295875165629892e+3;
      ref_sy = -1.580732573678431e+4;
      break;
    default:
      return false;
  }
  const double ex = std::fabs((sx - ref_sx) / ref_sx);
  const double ey = std::fabs((sy - ref_sy) / ref_sy);
  return ex <= 1e-8 && ey <= 1e-8;
}

EpResult finish(int m, const Accum& acc) {
  EpResult r;
  r.sx = acc.sx;
  r.sy = acc.sy;
  r.counts = acc.counts;
  r.pairs = acc.pairs;
  r.verified = verify(m, acc.sx, acc.sy);
  // NPB-style op estimate: each candidate pair costs the LCG updates, the
  // radius test and (for accepted pairs) log/sqrt — about 30 flops/pair.
  r.ops = 30.0 * static_cast<double>(std::uint64_t{1} << m);
  return r;
}

}  // namespace

EpResult run_ep_serial(int m) {
  const std::uint64_t total = std::uint64_t{1} << m;
  const std::uint64_t block = std::uint64_t{1} << kBlockLog;
  Accum acc;
  for (std::uint64_t first = 0; first < total; first += block)
    run_block(first, std::min(block, total - first), acc);
  return finish(m, acc);
}

EpResult run_ep(parc::Rank& rank, int m) {
  const std::uint64_t total = std::uint64_t{1} << m;
  const std::uint64_t block = std::uint64_t{1} << kBlockLog;
  const std::uint64_t nblocks = (total + block - 1) / block;

  Accum acc;
  for (std::uint64_t b = static_cast<std::uint64_t>(rank.rank()); b < nblocks;
       b += static_cast<std::uint64_t>(rank.size())) {
    const std::uint64_t first = b * block;
    run_block(first, std::min(block, total - first), acc);
  }
  rank.charge_flops(30.0 * static_cast<double>(total) / rank.size());
  const Accum global = rank.allreduce(acc, parc::Sum{});
  return finish(m, global);
}

}  // namespace hotlib::npb
