// ep.hpp — the NPB "Embarrassingly Parallel" kernel, bit-exact.
//
// Generates 2^m pairs of uniforms from the NPB linear congruential generator
// (seed 271828183, a = 5^13, modulus 2^46), converts accepted pairs to
// Gaussian deviates by the Marsaglia polar method, and accumulates the sums
// of the deviates plus counts in ten concentric square annuli. The sums are
// verified against the published NPB reference values for classes S (m=24),
// W (m=25) and A (m=28); ranks split the pair space in blocks, using the
// O(log n) LCG jump to seed each block independently.
#pragma once

#include <array>
#include <cstdint>

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::array<std::uint64_t, 10> counts{};  // gaussians per annulus
  std::uint64_t pairs = 0;                 // accepted gaussian pairs
  bool verified = false;                   // reference check (m 24/25/28 only)
  double ops = 0.0;                        // counted flops
};

// Run EP for 2^m pairs distributed over the ranks; result is identical on
// every rank (allreduced). Charges modelled compute via rank.charge_flops.
EpResult run_ep(parc::Rank& rank, int m);

// Serial reference (equivalent to run_ep on one rank).
EpResult run_ep_serial(int m);

}  // namespace hotlib::npb
