#include "npb/ft.hpp"

#include <cmath>
#include <numbers>

#include "fft/slab_fft.hpp"
#include "util/rng.hpp"

namespace hotlib::npb {

namespace {
int freq(int i, int n) { return i <= n / 2 ? i : i - n; }
}  // namespace

FtResult run_ft(parc::Rank& rank, int n_log2, int steps) {
  const int n = 1 << n_log2;
  const double alpha = 1e-6;
  fft::SlabFft3D plan(rank, n);
  const int nz = plan.local_planes();
  const int z0 = plan.z_offset();

  // LCG-initialized complex field; each rank jumps to its slab (2 uniforms
  // per point, x-fastest global order).
  std::vector<fft::Complex> u0(plan.local_size());
  {
    NpbLcg gen(314159265ULL);
    gen.skip(2ULL * static_cast<std::uint64_t>(z0) * n * n);
    for (auto& c : u0) c = {gen.next(), gen.next()};
  }

  const std::uint64_t before = rank.fabric().bytes_delivered();

  // One forward transform; evolution and checksum happen in spectral space's
  // transposed layout out[yl][z][x] (y local).
  std::vector<fft::Complex> uhat = plan.forward(u0);
  const int y0 = rank.rank() * nz;

  FtResult result;
  const double pi2 = std::numbers::pi * std::numbers::pi;
  double prev_energy = 0;
  bool energy_monotone = true;

  for (int t = 1; t <= steps; ++t) {
    // Evolve: multiply by exp(-4 alpha pi^2 |kbar|^2 t); applying the
    // incremental factor (t vs t-1 difference of exponents is one unit).
    std::vector<fft::Complex> evolved(uhat.size());
    for (int yl = 0; yl < nz; ++yl)
      for (int z = 0; z < n; ++z)
        for (int x = 0; x < n; ++x) {
          const double k2 =
              static_cast<double>(freq(x, n)) * freq(x, n) +
              static_cast<double>(freq(y0 + yl, n)) * freq(y0 + yl, n) +
              static_cast<double>(freq(z, n)) * freq(z, n);
          const double damp = std::exp(-4.0 * alpha * pi2 * k2 * t);
          evolved[(static_cast<std::size_t>(yl) * n + z) * n + x] =
              uhat[(static_cast<std::size_t>(yl) * n + z) * n + x] * damp;
        }
    rank.charge_flops(8.0 * static_cast<double>(evolved.size()));
    result.ops += 8.0 * static_cast<double>(evolved.size()) * rank.size();

    std::vector<fft::Complex> x_space = plan.inverse(std::move(evolved));

    // Checksum: sum over 1024 strided sites (global indices
    // (j mod n, 3j mod n, 5j mod n)); sites owned by whoever holds the plane.
    fft::Complex local_sum{0, 0};
    for (int j = 1; j <= 1024; ++j) {
      const int x = j % n, y = (3 * j) % n, z = (5 * j) % n;
      if (z >= z0 && z < z0 + nz)
        local_sum += x_space[plan.local_index(z - z0, y, x)];
    }
    struct C2 {
      double re, im;
      C2 operator+(const C2& o) const { return {re + o.re, im + o.im}; }
    };
    const C2 total = rank.allreduce(C2{local_sum.real(), local_sum.imag()}, parc::Sum{});
    result.checksums.push_back({total.re, total.im});

    double energy_local = 0;
    for (const auto& c : x_space) energy_local += std::norm(c);
    const double energy = rank.allreduce(energy_local, parc::Sum{});
    if (t > 1 && energy > prev_energy * (1 + 1e-12)) energy_monotone = false;
    prev_energy = energy;
  }

  // Standard FFT op count: 5 N log2 N per 3-D transform, 1 forward +
  // `steps` inverses.
  const double n3 = static_cast<double>(n) * n * n;
  const double fft_ops = 5.0 * n3 * (3 * n_log2);
  result.ops += fft_ops * (1 + steps);
  rank.charge_flops(fft_ops * (1 + steps) / rank.size());

  result.comm_bytes =
      static_cast<double>(rank.fabric().bytes_delivered() - before);
  result.verified = energy_monotone && result.checksums.size() ==
                                           static_cast<std::size_t>(steps);
  return result;
}

}  // namespace hotlib::npb
