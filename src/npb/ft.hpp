// ft.hpp — the NPB "FT" kernel: 3-D FFT-based spectral evolution.
//
// The forward transform of an LCG-initialized complex field is evolved by
// multiplying with exp(-4 alpha pi^2 |kbar|^2 t) for t = 1..T (the exact
// solution of a diffusion equation), inverse-transforming each step and
// accumulating a 1024-point checksum. Built on the slab-parallel 3-D FFT
// (fft/slab_fft.hpp) whose global transpose is the all-to-all that dominates
// FT communication. Verification is self-consistent: checksums must be
// identical for any rank count (the test suite pins serial == parallel) and
// the field's energy must decay monotonically (diffusion).
#pragma once

#include <complex>
#include <vector>

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

struct FtResult {
  std::vector<std::complex<double>> checksums;  // one per evolution step
  bool verified = false;
  double ops = 0.0;
  double comm_bytes = 0.0;
};

// n = 2^n_log2 per side (divisible by ranks), `steps` evolution steps.
FtResult run_ft(parc::Rank& rank, int n_log2, int steps = 6);

}  // namespace hotlib::npb
