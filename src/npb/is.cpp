#include "npb/is.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace hotlib::npb {

IsResult run_is(parc::Rank& rank, int total_log2, int max_key_log2) {
  const int p = rank.size();
  const std::uint64_t total = std::uint64_t{1} << total_log2;
  const std::uint32_t max_key = std::uint32_t{1} << max_key_log2;
  const std::uint64_t local_n = total / static_cast<std::uint64_t>(p) +
                                (static_cast<std::uint64_t>(rank.rank()) <
                                         total % static_cast<std::uint64_t>(p)
                                     ? 1
                                     : 0);

  // NPB key generation: k = max_key/4 * (u1 + u2 + u3 + u4). Each rank
  // jumps the sequence to its own block (4 uniforms per key).
  std::uint64_t first_key = rank.exscan(local_n, parc::Sum{}, std::uint64_t{0});
  NpbLcg gen(314159265ULL);
  gen.skip(4 * first_key);
  std::vector<std::uint32_t> keys(local_n);
  for (auto& k : keys) {
    const double u = gen.next() + gen.next() + gen.next() + gen.next();
    k = std::min<std::uint32_t>(static_cast<std::uint32_t>(u * (max_key / 4)),
                                max_key - 1);
  }

  // Invariants for verification.
  const std::uint64_t sum_before =
      rank.allreduce(std::accumulate(keys.begin(), keys.end(), std::uint64_t{0}),
                     parc::Sum{});

  // Range buckets: bucket d owns keys in [d, d+1) * max_key / p.
  const std::uint32_t bucket_width = (max_key + p - 1) / static_cast<std::uint32_t>(p);
  std::vector<std::vector<std::uint32_t>> outgoing(static_cast<std::size_t>(p));
  for (std::uint32_t k : keys)
    outgoing[std::min<std::size_t>(k / bucket_width, static_cast<std::size_t>(p) - 1)]
        .push_back(k);
  double comm_bytes = 0;
  for (int d = 0; d < p; ++d)
    if (d != rank.rank())
      comm_bytes += outgoing[static_cast<std::size_t>(d)].size() * sizeof(std::uint32_t);

  auto incoming = rank.alltoallv_typed<std::uint32_t>(outgoing);

  // Local counting sort over this rank's key range.
  const std::uint32_t lo = bucket_width * static_cast<std::uint32_t>(rank.rank());
  std::vector<std::uint32_t> hist(bucket_width, 0);
  std::uint64_t local_count = 0;
  for (const auto& block : incoming)
    for (std::uint32_t k : block) {
      ++hist[k - lo];
      ++local_count;
    }
  std::vector<std::uint32_t> sorted;
  sorted.reserve(local_count);
  for (std::uint32_t v = 0; v < bucket_width; ++v)
    sorted.insert(sorted.end(), hist[v], lo + v);

  // ---- verification ----
  bool ok = std::is_sorted(sorted.begin(), sorted.end());
  // Rank boundaries ordered: my max <= right neighbour's min.
  struct Edge {
    std::uint32_t min_key, max_key;
    std::uint8_t has;
  };
  const Edge mine{sorted.empty() ? 0u : sorted.front(),
                  sorted.empty() ? 0u : sorted.back(),
                  static_cast<std::uint8_t>(sorted.empty() ? 0 : 1)};
  const auto edges = rank.allgather(mine);
  std::uint32_t prev_max = 0;
  bool prev_set = false;
  for (const Edge& e : edges) {
    if (e.has == 0) continue;
    if (prev_set && e.min_key < prev_max) ok = false;
    prev_max = e.max_key;
    prev_set = true;
  }
  // Multiset conserved (count and sum).
  const std::uint64_t count_after = rank.allreduce(local_count, parc::Sum{});
  const std::uint64_t sum_after = rank.allreduce(
      std::accumulate(sorted.begin(), sorted.end(), std::uint64_t{0}), parc::Sum{});
  ok = ok && count_after == total && sum_after == sum_before;

  // Model: charge one "op" per key, matching the NPB convention that IS
  // Mops are keys ranked per second (the machine-model rate for IS is
  // calibrated in the same unit).
  rank.charge_flops(static_cast<double>(total) / p);

  IsResult r;
  r.total_keys = total;
  r.verified = ok;
  r.ops = static_cast<double>(total);  // NPB IS counts keys ranked
  r.comm_bytes = rank.allreduce(comm_bytes, parc::Sum{});
  return r;
}

}  // namespace hotlib::npb
