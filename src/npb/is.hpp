// is.hpp — the NPB "Integer Sort" kernel (bucketed key ranking).
//
// Keys follow the NPB recipe (average of four LCG uniforms scaled to the key
// range, giving a binomial-like distribution); ranks histogram their local
// keys into P range buckets, exchange bucket contents with an all-to-all
// (the bandwidth-hungry step that makes IS the one benchmark where Loki's
// fast ethernet clearly loses to ASCI Red in Table 3), then counting-sort
// locally. Verification checks global sortedness across rank boundaries and
// conservation of the key multiset (count and sum).
#pragma once

#include <cstdint>

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

struct IsResult {
  std::uint64_t total_keys = 0;
  bool verified = false;
  double ops = 0.0;         // keys ranked (the NPB "Mop" unit for IS)
  double comm_bytes = 0.0;  // bytes through the all-to-all
};

// Sort 2^total_log2 keys in [0, 2^max_key_log2) distributed over ranks.
IsResult run_is(parc::Rank& rank, int total_log2, int max_key_log2);

}  // namespace hotlib::npb
