#include "npb/mg.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hotlib::npb {

namespace {

// One multigrid level: z-slab distributed n^3 periodic grid with one ghost
// plane on each side. Layout: plane z (0..nz+1) * n * n, x fastest; plane 0
// and nz+1 are ghosts.
struct Level {
  int n = 0;        // global points per side
  int nz = 0;       // owned planes
  double h2inv = 0; // 1/h^2
  std::vector<double> u, v, r;

  std::size_t at(int z, int y, int x) const {
    return (static_cast<std::size_t>(z) * n + y) * n + x;
  }
  std::size_t plane() const { return static_cast<std::size_t>(n) * n; }
};

struct MgContext {
  parc::Rank* rank = nullptr;
  double ops = 0.0;
  double comm_bytes = 0.0;

  // Fill the ghost planes of `f` from the periodic neighbours.
  void exchange_halo(Level& lv, std::vector<double>& f, int tag) {
    const int p = rank->size();
    const std::size_t bytes = lv.plane() * sizeof(double);
    if (p == 1) {
      // Periodic self-wrap.
      std::copy_n(&f[lv.at(lv.nz, 0, 0)], lv.plane(), &f[lv.at(0, 0, 0)]);
      std::copy_n(&f[lv.at(1, 0, 0)], lv.plane(), &f[lv.at(lv.nz + 1, 0, 0)]);
      return;
    }
    const int up = (rank->rank() + 1) % p;
    const int down = (rank->rank() - 1 + p) % p;
    rank->send_span<double>(up, tag, {&f[lv.at(lv.nz, 0, 0)], lv.plane()});
    rank->send_span<double>(down, tag + 1, {&f[lv.at(1, 0, 0)], lv.plane()});
    const auto lower = rank->recv(down, tag).as_vector<double>();
    const auto upper = rank->recv(up, tag + 1).as_vector<double>();
    std::copy(lower.begin(), lower.end(), &f[lv.at(0, 0, 0)]);
    std::copy(upper.begin(), upper.end(), &f[lv.at(lv.nz + 1, 0, 0)]);
    comm_bytes += 2.0 * static_cast<double>(bytes);
  }

  // Damped Jacobi sweep: u <- u + omega * (v - A u) / (6 h2inv).
  void smooth(Level& lv, double omega) {
    exchange_halo(lv, lv.u, 50);
    std::vector<double> unew(lv.u.size());
    const double diag = 6.0 * lv.h2inv;
    for (int z = 1; z <= lv.nz; ++z)
      for (int y = 0; y < lv.n; ++y)
        for (int x = 0; x < lv.n; ++x) {
          const int ym = (y - 1 + lv.n) % lv.n, yp = (y + 1) % lv.n;
          const int xm = (x - 1 + lv.n) % lv.n, xp = (x + 1) % lv.n;
          const double au =
              lv.h2inv * (lv.u[lv.at(z, y, xm)] + lv.u[lv.at(z, y, xp)] +
                          lv.u[lv.at(z, ym, x)] + lv.u[lv.at(z, yp, x)] +
                          lv.u[lv.at(z - 1, y, x)] + lv.u[lv.at(z + 1, y, x)] -
                          6.0 * lv.u[lv.at(z, y, x)]);
          unew[lv.at(z, y, x)] =
              lv.u[lv.at(z, y, x)] - omega * (lv.v[lv.at(z, y, x)] - au) / diag;
        }
    for (int z = 1; z <= lv.nz; ++z)
      std::copy_n(&unew[lv.at(z, 0, 0)], lv.plane(), &lv.u[lv.at(z, 0, 0)]);
    ops += 11.0 * lv.plane() * lv.nz;
    rank->charge_flops(11.0 * static_cast<double>(lv.plane()) * lv.nz);
  }

  // r = v - A u; returns the global L2 norm of r.
  double residual(Level& lv) {
    exchange_halo(lv, lv.u, 60);
    double norm2 = 0;
    for (int z = 1; z <= lv.nz; ++z)
      for (int y = 0; y < lv.n; ++y)
        for (int x = 0; x < lv.n; ++x) {
          const int ym = (y - 1 + lv.n) % lv.n, yp = (y + 1) % lv.n;
          const int xm = (x - 1 + lv.n) % lv.n, xp = (x + 1) % lv.n;
          const double au =
              lv.h2inv * (lv.u[lv.at(z, y, xm)] + lv.u[lv.at(z, y, xp)] +
                          lv.u[lv.at(z, ym, x)] + lv.u[lv.at(z, yp, x)] +
                          lv.u[lv.at(z - 1, y, x)] + lv.u[lv.at(z + 1, y, x)] -
                          6.0 * lv.u[lv.at(z, y, x)]);
          const double res = lv.v[lv.at(z, y, x)] - au;
          lv.r[lv.at(z, y, x)] = res;
          norm2 += res * res;
        }
    ops += 13.0 * lv.plane() * lv.nz;
    rank->charge_flops(13.0 * static_cast<double>(lv.plane()) * lv.nz);
    return std::sqrt(rank->allreduce(norm2, parc::Sum{}));
  }

  // Full-weighting restriction of fine.r into coarse.v (2x in each dim; the
  // z pairs are always local because nz is even whenever we coarsen).
  void restrict_residual(const Level& fine, Level& coarse) {
    for (int z = 1; z <= coarse.nz; ++z)
      for (int y = 0; y < coarse.n; ++y)
        for (int x = 0; x < coarse.n; ++x) {
          double sum = 0;
          for (int dz = 0; dz < 2; ++dz)
            for (int dy = 0; dy < 2; ++dy)
              for (int dx = 0; dx < 2; ++dx)
                sum += fine.r[fine.at(2 * z - 1 + dz, 2 * y + dy, 2 * x + dx)];
          coarse.v[coarse.at(z, y, x)] = sum / 8.0;
        }
    ops += 9.0 * coarse.plane() * coarse.nz;
  }

  // Piecewise-constant prolongation: fine.u += coarse.u of the parent cell.
  void prolong(const Level& coarse, Level& fine) {
    for (int z = 1; z <= fine.nz; ++z)
      for (int y = 0; y < fine.n; ++y)
        for (int x = 0; x < fine.n; ++x)
          fine.u[fine.at(z, y, x)] +=
              coarse.u[coarse.at((z + 1) / 2, y / 2, x / 2)];
    ops += 1.0 * fine.plane() * fine.nz;
  }

  void vcycle(std::vector<Level>& levels, std::size_t l) {
    Level& lv = levels[l];
    if (l + 1 == levels.size()) {
      for (int s = 0; s < 20; ++s) smooth(lv, 0.8);
      return;
    }
    smooth(lv, 0.8);
    smooth(lv, 0.8);
    residual(lv);
    Level& coarse = levels[l + 1];
    std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
    restrict_residual(lv, coarse);
    vcycle(levels, l + 1);
    prolong(coarse, lv);
    smooth(lv, 0.8);
    smooth(lv, 0.8);
  }
};

}  // namespace

MgResult run_mg(parc::Rank& rank, int n_log2, int cycles) {
  const int n = 1 << n_log2;
  const int p = rank.size();
  if (n % p != 0) throw std::invalid_argument("run_mg: n must be divisible by ranks");

  // Build the level hierarchy: coarsen while the grid stays divisible among
  // ranks with at least 2 planes each and at least 4 points per side.
  std::vector<Level> levels;
  for (int nl = n; nl >= 4 && nl % p == 0 && nl / p >= 2; nl /= 2) {
    Level lv;
    lv.n = nl;
    lv.nz = nl / p;
    lv.h2inv = static_cast<double>(nl) * nl;
    const std::size_t total = static_cast<std::size_t>(lv.nz + 2) * nl * nl;
    lv.u.assign(total, 0.0);
    lv.v.assign(total, 0.0);
    lv.r.assign(total, 0.0);
    levels.push_back(std::move(lv));
  }

  // NPB-style source: +1 at 10 LCG points, -1 at 10 others.
  Level& fine = levels.front();
  {
    NpbLcg gen(314159265ULL);
    const int z0 = rank.rank() * fine.nz;
    for (int k = 0; k < 20; ++k) {
      const int x = static_cast<int>(gen.next() * n);
      const int y = static_cast<int>(gen.next() * n);
      const int z = static_cast<int>(gen.next() * n);
      if (z >= z0 && z < z0 + fine.nz)
        fine.v[fine.at(z - z0 + 1, std::min(y, n - 1), std::min(x, n - 1))] +=
            (k < 10) ? 1.0 : -1.0;
    }
  }

  MgContext ctx;
  ctx.rank = &rank;
  MgResult result;
  result.cycles = cycles;
  result.initial_residual = ctx.residual(fine);
  for (int c = 0; c < cycles; ++c) ctx.vcycle(levels, 0);
  result.final_residual = ctx.residual(fine);
  result.ops = rank.allreduce(ctx.ops, parc::Sum{});
  result.comm_bytes = rank.allreduce(ctx.comm_bytes, parc::Sum{});
  // Self-consistent verification: with >= 4 cycles the V-cycle must cut the
  // residual by well over an order of magnitude.
  result.verified = result.final_residual < 0.1 * result.initial_residual;
  return result;
}

}  // namespace hotlib::npb
