// mg.hpp — the NPB "MultiGrid" kernel (structural reproduction).
//
// V-cycle multigrid for the 3-D periodic Poisson problem A u = v, where v is
// a sparse field of +1/-1 impulses at LCG-chosen points (the NPB setup).
// The grid is z-slab distributed; every smoothing sweep exchanges one ghost
// plane with each neighbour — the nearest-neighbour communication pattern of
// the original benchmark. Reduction: damped Jacobi (2 pre + 2 post sweeps),
// full-weighting restriction, piecewise-constant prolongation. Verification:
// the residual norm after the configured number of V-cycles must drop below
// a documented fraction of the initial norm (the original verifies a
// reference residual; ours is self-consistent).
#pragma once

#include "npb/common.hpp"
#include "parc/rank.hpp"

namespace hotlib::npb {

struct MgResult {
  double initial_residual = 0.0;
  double final_residual = 0.0;
  int cycles = 0;
  bool verified = false;
  double ops = 0.0;
  double comm_bytes = 0.0;
};

// n = 2^n_log2 grid points per side; n must be divisible by rank.size() on
// the finest level. Runs `cycles` V-cycles.
MgResult run_mg(parc::Rank& rank, int n_log2, int cycles = 8);

}  // namespace hotlib::npb
