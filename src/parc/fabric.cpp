#include "parc/fabric.hpp"

#include <atomic>

#include "telemetry/trace.hpp"

namespace hotlib::parc {

namespace tel = telemetry;

Fabric::Fabric(int nranks, NetworkParams net, FaultPlan faults)
    : net_(net), faults_(faults) {
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  chan_seq_.assign(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks),
                   0);
}

void Fabric::release_deferred(Mailbox& box, bool force) {
  if (box.deferred.empty()) return;
  for (auto it = box.deferred.begin(); it != box.deferred.end();) {
    if (force || --it->ttl <= 0) {
      box.queue.push_back(std::move(it->msg));
      it = box.deferred.erase(it);
    } else {
      ++it;
    }
  }
}

void Fabric::enqueue(Mailbox& box, Message msg, bool front) {
  if (front)
    box.queue.push_front(std::move(msg));
  else
    box.queue.push_back(std::move(msg));
}

void Fabric::deliver(int dst, Message msg) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(dst));

  FaultDraw d;
  if (faults_.applies(msg.tag) && msg.source >= 0) {
    const std::size_t chan = static_cast<std::size_t>(msg.source) *
                                 static_cast<std::size_t>(size()) +
                             static_cast<std::size_t>(dst);
    d = faults_.draw(msg.source, dst, chan_seq_[chan]++, msg.payload.size());
  }

  // Fault markers land in the *sender's* trace channel (deliver runs on the
  // sending thread), tagging exactly which wire events were injected.
  if (d.drop) {
    fault_counters_.dropped.fetch_add(1, std::memory_order_relaxed);
    tel::count(tel::Counter::kFaultsInjected);
    tel::instant("fault_drop", tel::Phase::kComm, msg.payload.size());
    return;
  }
  if (d.truncated) {
    fault_counters_.truncated.fetch_add(1, std::memory_order_relaxed);
    tel::count(tel::Counter::kFaultsInjected);
    tel::instant("fault_truncate", tel::Phase::kComm, d.truncate_to);
    msg.payload.resize(d.truncate_to);
  }
  if (d.reorder) {
    fault_counters_.reordered.fetch_add(1, std::memory_order_relaxed);
    tel::count(tel::Counter::kFaultsInjected);
    tel::instant("fault_reorder", tel::Phase::kComm, msg.payload.size());
  }
  {
    std::lock_guard lock(box.mu);
    release_deferred(box, /*force=*/false);
    if (d.duplicate) {
      fault_counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
      tel::count(tel::Counter::kFaultsInjected);
      tel::instant("fault_duplicate", tel::Phase::kComm, msg.payload.size());
      enqueue(box, msg, /*front=*/d.reorder);  // copy; original may be delayed
    }
    if (d.delay_deliveries > 0) {
      fault_counters_.delayed.fetch_add(1, std::memory_order_relaxed);
      tel::count(tel::Counter::kFaultsInjected);
      tel::instant("fault_delay", tel::Phase::kComm,
                   static_cast<std::uint64_t>(d.delay_deliveries));
      msg.depart_time += d.extra_latency_s;
      box.deferred.push_back({d.delay_deliveries, std::move(msg)});
    } else {
      enqueue(box, std::move(msg), /*front=*/d.reorder);
    }
  }
  box.cv.notify_all();
}

Message Fabric::recv(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::unique_lock lock(box.mu);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    // About to block: a delayed message must not be able to deadlock us.
    if (!box.deferred.empty()) {
      release_deferred(box, /*force=*/true);
      continue;
    }
    box.cv.wait(lock);
  }
}

std::optional<Message> Fabric::try_recv(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::lock_guard lock(box.mu);
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    // A failed poll ages delayed messages; rescan if any were released.
    if (box.deferred.empty()) break;
    const std::size_t before = box.queue.size();
    release_deferred(box, /*force=*/false);
    if (box.queue.size() == before) break;
  }
  return std::nullopt;
}

std::size_t Fabric::pending(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::lock_guard lock(box.mu);
  std::size_t n = 0;
  for (const auto& m : box.queue)
    if (matches(m, source, tag)) ++n;
  return n;
}

}  // namespace hotlib::parc
