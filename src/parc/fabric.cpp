#include "parc/fabric.hpp"

#include <atomic>

namespace hotlib::parc {

Fabric::Fabric(int nranks, NetworkParams net) : net_(net) {
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void Fabric::deliver(int dst, Message msg) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(dst));
  {
    std::lock_guard lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message Fabric::recv(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::unique_lock lock(box.mu);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    box.cv.wait(lock);
  }
}

std::optional<Message> Fabric::try_recv(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::lock_guard lock(box.mu);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matches(*it, source, tag)) {
      Message m = std::move(*it);
      box.queue.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::size_t Fabric::pending(int me, int source, int tag) {
  Mailbox& box = *boxes_.at(static_cast<std::size_t>(me));
  std::lock_guard lock(box.mu);
  std::size_t n = 0;
  for (const auto& m : box.queue)
    if (matches(m, source, tag)) ++n;
  return n;
}

}  // namespace hotlib::parc
