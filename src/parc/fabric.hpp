// fabric.hpp — shared mailbox fabric connecting parc ranks.
//
// Each rank owns a mailbox (mutex + condition variable + deque). send() is a
// non-blocking push into the destination mailbox, recv() blocks until a
// matching message arrives. Because sends never block, naive exchange
// patterns (everyone sends then everyone receives) cannot deadlock — the same
// property the paper relies on from its buffered asynchronous primitives.
//
// An optional FaultPlan (fault.hpp) makes delivery adversarial: per-message
// seeded drop/duplicate/delay/reorder/truncate decisions are applied inside
// deliver(), modelling the commodity networks (fast ethernet, the SC'96
// wide-area join) under which the ABM retry layer must stay correct.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "parc/fault.hpp"
#include "parc/message.hpp"

namespace hotlib::parc {

// Per-message cost parameters of the modelled machine network. When
// bandwidth is +inf and latency 0, virtual time degenerates to zero cost and
// the runtime is a pure correctness vehicle.
struct NetworkParams {
  double latency_s = 0.0;          // one-way wire latency (seconds)
  double bandwidth_Bps = 0.0;      // per-link bandwidth (bytes/s); 0 => infinite
  double flops_per_s = 0.0;        // per-rank compute rate; 0 => compute is free
  // Per-message CPU occupancy (the LogP "o"): charged to the sender at send
  // and to the receiver at receive. This is what makes many small messages
  // expensive and ABM batching worthwhile; on Loki it is dominated by the
  // kernel TCP stack ("copies of data from the kernel to user space").
  double overhead_s = 0.0;

  double transfer_time(std::size_t bytes) const {
    double t = latency_s;
    if (bandwidth_Bps > 0.0) t += static_cast<double>(bytes) / bandwidth_Bps;
    return t;
  }
  // Full software-to-software one-way latency of a small message.
  double effective_latency() const { return latency_s + 2.0 * overhead_s; }
  double compute_time(double flops) const {
    return flops_per_s > 0.0 ? flops / flops_per_s : 0.0;
  }
};

class Fabric {
 public:
  explicit Fabric(int nranks, NetworkParams net = {}, FaultPlan faults = {});

  int size() const { return static_cast<int>(boxes_.size()); }
  const NetworkParams& net() const { return net_; }
  const FaultPlan& fault_plan() const { return faults_; }

  // Deliver a message to dst's mailbox (thread-safe, non-blocking). Subject
  // to the fault plan when one is active and the tag is in scope.
  void deliver(int dst, Message msg);

  // Blocking receive with (source, tag) matching; wildcards allowed.
  Message recv(int me, int source, int tag);

  // Non-blocking receive; returns nullopt when no matching message is queued.
  std::optional<Message> try_recv(int me, int source, int tag);

  // Count of queued messages matching (source, tag); diagnostic only.
  std::size_t pending(int me, int source, int tag);

  // Total messages / bytes pushed through the fabric (for the comm bench).
  // Faulted attempts count too: they occupied the wire.
  std::uint64_t messages_delivered() const { return messages_.load(); }
  std::uint64_t bytes_delivered() const { return bytes_.load(); }

  FaultStats fault_stats() const {
    return {fault_counters_.dropped.load(),   fault_counters_.duplicated.load(),
            fault_counters_.delayed.load(),   fault_counters_.reordered.load(),
            fault_counters_.truncated.load()};
  }

 private:
  // A delayed message: released into the queue after `ttl` later deliveries
  // or matching scans of this mailbox (and unconditionally before a receiver
  // blocks, so delay can never deadlock a blocking recv).
  struct Deferred {
    int ttl = 0;
    Message msg;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::deque<Deferred> deferred;
  };

  static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  // Requires box.mu held: age deferred messages by one event and move the
  // expired ones (ttl <= 0, or everything when force is set) into the queue.
  static void release_deferred(Mailbox& box, bool force);

  void enqueue(Mailbox& box, Message msg, bool front);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  NetworkParams net_;
  FaultPlan faults_;
  // Delivery-attempt counters per (source, dst) channel; the fault draw for
  // an attempt depends only on these coordinates, which makes fault decisions
  // independent of thread interleaving. Each slot is written only by the
  // source rank's thread.
  std::vector<std::uint64_t> chan_seq_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  FaultCounters fault_counters_;
};

}  // namespace hotlib::parc
