#include "parc/fault.hpp"

#include <cstdio>

namespace hotlib::parc {

namespace {

// SplitMix64 finalizer (same constants as util/rng.hpp); good avalanche so
// consecutive channel sequence numbers give independent-looking draws.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

}  // namespace

FaultDraw FaultPlan::draw(int src, int dst, std::uint64_t chan_seq,
                          std::size_t payload_bytes) const {
  // One hash per fault dimension, all derived from the channel coordinates so
  // the draw is independent of wall clock and thread interleaving.
  const std::uint64_t base =
      mix(seed ^ mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                     static_cast<std::uint32_t>(dst)) ^
          mix(chan_seq + 0x6a09e667f3bcc909ULL));

  FaultDraw d;
  if (unit(mix(base ^ 0x01)) < drop_prob) {
    d.drop = true;
    return d;
  }
  d.duplicate = unit(mix(base ^ 0x02)) < duplicate_prob;
  d.reorder = unit(mix(base ^ 0x03)) < reorder_prob;
  if (unit(mix(base ^ 0x04)) < delay_prob) {
    const int span = max_delay_deliveries > 0 ? max_delay_deliveries : 1;
    d.delay_deliveries = 1 + static_cast<int>(mix(base ^ 0x05) % static_cast<std::uint64_t>(span));
    d.extra_latency_s = delay_latency_s;
  }
  if (payload_bytes > 0 && unit(mix(base ^ 0x06)) < truncate_prob) {
    d.truncated = true;
    // Keep 0..90% of the payload: always an observable corruption.
    d.truncate_to = static_cast<std::size_t>(
        static_cast<double>(payload_bytes) * 0.9 * unit(mix(base ^ 0x07)));
  }
  return d;
}

std::string FaultPlan::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "seed=%llu drop=%.3f dup=%.3f delay=%.3f reorder=%.3f trunc=%.3f",
                static_cast<unsigned long long>(seed), drop_prob, duplicate_prob,
                delay_prob, reorder_prob, truncate_prob);
  return buf;
}

}  // namespace hotlib::parc
