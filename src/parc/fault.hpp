// fault.hpp — deterministic fault injection for the parc fabric.
//
// The paper's ABM traversal assumes buffered non-blocking delivery surviving
// a commodity network (Loki's fast ethernet, the SC'96 wide-area join) where
// packets are delayed, reordered, duplicated or lost below the message layer.
// A FaultPlan makes the in-process fabric just as hostile: every delivery
// attempt draws its fate from a hash of (seed, source, destination, channel
// sequence number), so a given plan perturbs a run the same way regardless
// of thread scheduling, and two fabrics with the same plan agree on which
// delivery attempts are faulted.
//
// Faults apply only to the ABM tags (data batches and acks) by default:
// collective traffic is the control plane the retry layer itself relies on,
// exactly as the paper's global combines ran over the reliable primitives.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "parc/message.hpp"

namespace hotlib::parc {

// What a single delivery attempt should suffer. `drop` excludes the others.
struct FaultDraw {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;     // jump the mailbox queue instead of joining it
  int delay_deliveries = 0; // held back until this many later deliveries/polls
  double extra_latency_s = 0.0;  // virtual-time penalty of the delay
  std::size_t truncate_to = 0;   // payload bytes kept; only when truncated
  bool truncated = false;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  double reorder_prob = 0.0;
  double truncate_prob = 0.0;
  // Delayed messages are held for 1..max_delay_deliveries subsequent
  // deliveries/polls of the destination mailbox and charged this much extra
  // virtual latency.
  int max_delay_deliveries = 4;
  double delay_latency_s = 0.0;
  // When false (default) only ABM traffic (kAmTag / kAmAckTag) is faulted;
  // when true every sub-collective tag is fair game. Collective tags are
  // always exempt: they have no retry layer and faulting them can only hang.
  bool include_user_tags = false;

  bool active() const {
    return drop_prob > 0 || duplicate_prob > 0 || delay_prob > 0 ||
           reorder_prob > 0 || truncate_prob > 0;
  }

  bool applies(int tag) const {
    if (!active()) return false;
    if (tag == kAmTag || tag == kAmAckTag) return true;
    return include_user_tags && tag >= 0 && tag < kUserTagLimit;
  }

  // Deterministic fate of delivery attempt number `chan_seq` on the
  // (src, dst) channel.
  FaultDraw draw(int src, int dst, std::uint64_t chan_seq,
                 std::size_t payload_bytes) const;

  std::string describe() const;
};

// Running totals of injected faults (one counter set per Fabric).
struct FaultCounters {
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> reordered{0};
  std::atomic<std::uint64_t> truncated{0};
};

// Plain-value snapshot of FaultCounters (copyable, for RunStats).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;

  std::uint64_t total() const {
    return dropped + duplicated + delayed + reordered + truncated;
  }
};

}  // namespace hotlib::parc
