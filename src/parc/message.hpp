// message.hpp — wire-level message representation for the parc runtime.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace hotlib::parc {

using Bytes = std::vector<std::uint8_t>;

// Wildcards for receive matching (mirrors MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

// User tags must stay below kUserTagLimit; higher tag values are reserved for
// the runtime's own collective and active-message traffic.
inline constexpr int kUserTagLimit = 1 << 24;

// Reserved tags of the ABM active-message layer: data batches and the
// acknowledgements of the reliable (retry/timeout) mode. Collective tags set
// bit 30 (see Rank::next_collective_tag) and stay disjoint from both.
inline constexpr int kAmTag = 1 << 29;
inline constexpr int kAmAckTag = (1 << 29) | 1;

struct Message {
  int source = -1;
  int tag = 0;
  // Virtual time at which the message left the sender (seconds); used by the
  // LogP-style performance model. Zero when modelling is disabled.
  double depart_time = 0.0;
  Bytes payload;

  template <class T>
  T as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  template <class T>
  std::vector<T> as_vector() const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), out.size() * sizeof(T));
    return out;
  }
};

template <class T>
Bytes to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes b(sizeof(T));
  std::memcpy(b.data(), &value, sizeof(T));
  return b;
}

template <class T>
Bytes to_bytes(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  Bytes b(values.size_bytes());
  std::memcpy(b.data(), values.data(), values.size_bytes());
  return b;
}

}  // namespace hotlib::parc
