// parc.hpp — umbrella header for the parc message-passing runtime.
//
// parc ("PARallel Cluster") is hotlib's substitute for MPI on the paper's
// machines: ranks are threads with mailboxes, collectives are built on
// point-to-point messages, the ABM layer reproduces the paper's
// "asynchronous batched messages", and a LogP-style virtual clock lets the
// benchmark harnesses model the paper's networks (ASCI Red mesh, Loki/Hyglac
// fast ethernet) without the hardware. See DESIGN.md, "Hardware substitution".
#pragma once

#include "parc/fabric.hpp"    // IWYU pragma: export
#include "parc/fault.hpp"     // IWYU pragma: export
#include "parc/message.hpp"   // IWYU pragma: export
#include "parc/rank.hpp"      // IWYU pragma: export
#include "parc/runtime.hpp"   // IWYU pragma: export
