#include "parc/rank.hpp"

#include <cstring>

#include "telemetry/sample.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::parc {

namespace tel = telemetry;

namespace {

// Wire header of a reliable ABM batch. `checksum` (FNV-1a over the record
// bytes) plus `nbytes` catch truncation; `seq` orders and dedupes batches on
// the (source, destination) channel; `ack` piggybacks the cumulative ack for
// the reverse channel, so bidirectional traffic rarely needs standalone ack
// messages. A retransmitted wire image carries a stale `ack` — harmless,
// cumulative acks only ever retire batches below the acked sequence.
struct AmWireHeader {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t checksum = 0;
  std::uint32_t nbytes = 0;
  std::uint32_t nrecords = 0;
};

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint32_t count_records(std::span<const std::uint8_t> records) {
  std::uint32_t n = 0;
  std::size_t pos = 0;
  while (pos + 8 <= records.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, records.data() + pos + 4, sizeof(len));
    pos += 8 + len;
    if (pos > records.size()) break;
    ++n;
  }
  return n;
}

}  // namespace

Rank::Rank(Fabric& fabric, int rank) : fabric_(fabric), rank_(rank) {
  am_batches_.resize(static_cast<std::size_t>(fabric.size()));
  am_out_.resize(static_cast<std::size_t>(fabric.size()));
  am_in_.resize(static_cast<std::size_t>(fabric.size()));
  // An adversarial fabric without the retry layer would simply lose data;
  // couple them so a fault plan implies reliability.
  am_reliable_ = fabric.fault_plan().active();
}

void Rank::send(int dst, int tag, std::span<const std::uint8_t> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("parc::send: bad destination");
  tel::count(tel::Counter::kMessagesSent);
  tel::count(tel::Counter::kBytesSent, payload.size());
  vclock_ += fabric_.net().overhead_s;  // sender-side per-message CPU cost
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.depart_time = vclock_;
  m.payload.assign(payload.begin(), payload.end());
  fabric_.deliver(dst, std::move(m));
}

Message Rank::recv(int source, int tag) {
  Message m = fabric_.recv(rank_, source, tag);
  if (m.source != rank_) {
    const double arrival = m.depart_time + fabric_.net().transfer_time(m.payload.size());
    vclock_ = std::max(vclock_, arrival) + fabric_.net().overhead_s;
  }
  tel::count(tel::Counter::kMessagesReceived);
  tel::count(tel::Counter::kBytesReceived, m.payload.size());
  return m;
}

bool Rank::try_recv(Message& out, int source, int tag) {
  auto m = fabric_.try_recv(rank_, source, tag);
  if (!m) return false;
  if (m->source != rank_) {
    const double arrival = m->depart_time + fabric_.net().transfer_time(m->payload.size());
    vclock_ = std::max(vclock_, arrival) + fabric_.net().overhead_s;
  }
  tel::count(tel::Counter::kMessagesReceived);
  tel::count(tel::Counter::kBytesReceived, m->payload.size());
  out = std::move(*m);
  return true;
}

void Rank::barrier() {
  // Dissemination barrier: log2(p) rounds of token exchange.
  const int p = size();
  if (p == 1) return;
  tel::Span span("barrier", tel::Phase::kComm);
  const int seq = coll_seq_++ & 0xFFFFF;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int tag = (1 << 30) | (seq << 4) | (round & 0xF);
    const std::uint8_t token = 0;
    send((rank_ + k) % p, tag, std::span<const std::uint8_t>(&token, 1));
    (void)recv((rank_ - k + p) % p, tag);
  }
}

Bytes Rank::broadcast_bytes(Bytes value, int root) {
  const int p = size();
  if (p == 1) return value;
  tel::Span span("broadcast", tel::Phase::kComm, value.size());
  const int me = relabel(rank_, root, p);
  const int tag = next_collective_tag(0);
  for (int k = 1; k < p; k <<= 1) {
    if (me < k) {
      if (me + k < p) send(unlabel(me + k, root, p), tag, value);
    } else if (me < 2 * k) {
      value = recv(unlabel(me - k, root, p), tag).payload;
    }
  }
  return value;
}

std::vector<Bytes> Rank::allgather_bytes(Bytes mine) {
  // Ring allgather: p-1 steps; block b originates at rank b and travels
  // around the ring, so step s forwards block (me - s) mod p.
  const int p = size();
  std::vector<Bytes> blocks(static_cast<std::size_t>(p));
  blocks[static_cast<std::size_t>(rank_)] = std::move(mine);
  if (p == 1) return blocks;
  tel::Span span("allgather", tel::Phase::kComm,
                 blocks[static_cast<std::size_t>(rank_)].size());

  const int seq = coll_seq_++ & 0xFFFFF;
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int tag = (1 << 30) | (seq << 4) | 0x8;  // single slot; seq+source disambiguate
    const int out_block = (rank_ - s + p) % p;
    const int in_block = (rank_ - s - 1 + 2 * p) % p;
    send(right, tag, blocks[static_cast<std::size_t>(out_block)]);
    blocks[static_cast<std::size_t>(in_block)] = recv(left, tag).payload;
  }
  return blocks;
}

std::vector<Bytes> Rank::alltoallv(std::vector<Bytes> out) {
  const int p = size();
  if (static_cast<int>(out.size()) != p)
    throw std::invalid_argument("parc::alltoallv: need one payload per rank");
  tel::Span span("alltoallv", tel::Phase::kComm);
  const int tag = next_collective_tag(0);
  std::vector<Bytes> in(static_cast<std::size_t>(p));
  in[static_cast<std::size_t>(rank_)] = std::move(out[static_cast<std::size_t>(rank_)]);
  for (int d = 0; d < p; ++d) {
    if (d == rank_) continue;
    send(d, tag, out[static_cast<std::size_t>(d)]);
  }
  for (int i = 0; i < p - 1; ++i) {
    Message m = recv(kAnySource, tag);
    in[static_cast<std::size_t>(m.source)] = std::move(m.payload);
  }
  return in;
}

int Rank::am_register(AmHandler handler) {
  am_handlers_.push_back(std::move(handler));
  return static_cast<int>(am_handlers_.size()) - 1;
}

void Rank::am_post(int dst, int handler, std::span<const std::uint8_t> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("parc::am_post: bad destination");
  if (handler < 0 || handler >= static_cast<int>(am_handlers_.size()))
    throw std::out_of_range("parc::am_post: unregistered handler");
  Bytes& buf = am_batches_[static_cast<std::size_t>(dst)];
  const std::uint32_t h = static_cast<std::uint32_t>(handler);
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const std::size_t pos = buf.size();
  buf.resize(pos + sizeof(h) + sizeof(n) + payload.size());
  std::memcpy(buf.data() + pos, &h, sizeof(h));
  std::memcpy(buf.data() + pos + sizeof(h), &n, sizeof(n));
  std::memcpy(buf.data() + pos + sizeof(h) + sizeof(n), payload.data(), payload.size());
  ++am_posted_;
  tel::count(tel::Counter::kAbmRecordsPosted);
  if (buf.size() >= am_batch_limit_) am_ship_batch(dst);
}

void Rank::am_ship_batch(int dst) {
  Bytes& buf = am_batches_[static_cast<std::size_t>(dst)];
  if (buf.empty()) return;
  if (!am_reliable_) {
    tel::count(tel::Counter::kAbmBatchesSent);
    send(dst, kAmTag, buf);
    buf.clear();
    return;
  }
  AmOutChannel& oc = am_out_[static_cast<std::size_t>(dst)];
  const std::uint32_t nrecords = count_records(buf);
  if (oc.dead) {
    // Bounded retries already gave up on this peer: account the records as
    // lost instead of queueing unbounded retransmission state.
    ++oc.abandoned_batches;
    oc.abandoned_records += nrecords;
    am_abandoned_ += nrecords;
    tel::count(tel::Counter::kAbmAbandonedRecords, nrecords);
    buf.clear();
    return;
  }
  AmWireHeader h;
  h.seq = oc.next_seq++;
  h.ack = am_in_[static_cast<std::size_t>(dst)].expected;
  am_in_[static_cast<std::size_t>(dst)].ack_pending = false;  // piggybacked
  h.checksum = fnv1a64(buf);
  h.nbytes = static_cast<std::uint32_t>(buf.size());
  h.nrecords = nrecords;
  Bytes wire(sizeof h + buf.size());
  std::memcpy(wire.data(), &h, sizeof h);
  std::memcpy(wire.data() + sizeof h, buf.data(), buf.size());
  buf.clear();
  tel::count(tel::Counter::kAbmBatchesSent);
  send(dst, kAmTag, wire);
  oc.unacked.push_back({h.seq, std::move(wire), nrecords, 0,
                        am_tick_ + static_cast<std::uint64_t>(am_retry_.base_timeout_ticks)});
}

void Rank::am_flush() {
  for (int d = 0; d < size(); ++d) am_ship_batch(d);
}

std::size_t Rank::am_dispatch_records(int source, std::span<const std::uint8_t> records) {
  std::size_t dispatched = 0;
  std::size_t pos = 0;
  while (pos + 8 <= records.size()) {
    std::uint32_t h = 0, n = 0;
    std::memcpy(&h, records.data() + pos, sizeof(h));
    std::memcpy(&n, records.data() + pos + 4, sizeof(n));
    pos += 8;
    if (pos + n > records.size()) break;  // truncated tail: drop, don't overread
    std::span<const std::uint8_t> body(records.data() + pos, n);
    pos += n;
    am_handlers_.at(h)(*this, source, body);
    ++am_dispatched_;
    ++dispatched;
  }
  tel::count(tel::Counter::kAbmRecordsDispatched, dispatched);
  return dispatched;
}

void Rank::am_send_ack(int src) {
  // Cumulative ack: "I have dispatched every batch below `expected`".
  const std::uint64_t ack = am_in_[static_cast<std::size_t>(src)].expected;
  send_value(src, kAmAckTag, ack);
  ++am_acks_sent_;
  tel::count(tel::Counter::kAbmAcksSent);
  am_in_[static_cast<std::size_t>(src)].ack_pending = false;
}

void Rank::am_abandon_channel(int dst) {
  AmOutChannel& oc = am_out_[static_cast<std::size_t>(dst)];
  // Everything queued behind the failed batch is stuck behind its sequence
  // gap at the receiver and can never be dispatched in order: give it all up
  // at once and refuse future traffic so memory stays bounded.
  for (const auto& u : oc.unacked) {
    ++oc.abandoned_batches;
    oc.abandoned_records += u.nrecords;
    am_abandoned_ += u.nrecords;
    tel::count(tel::Counter::kAbmAbandonedRecords, u.nrecords);
  }
  oc.unacked.clear();
  oc.dead = true;
  tel::instant("abm_channel_dead", tel::Phase::kComm, static_cast<std::uint64_t>(dst));
}

void Rank::am_progress() {
  ++am_tick_;
  // Acks first: they retire retransmission state before timers are checked.
  Message m;
  while (try_recv(m, kAnySource, kAmAckTag)) {
    if (m.payload.size() != sizeof(std::uint64_t)) {
      ++am_corrupt_batches_;  // truncated ack: ignore, a later one supersedes it
      tel::count(tel::Counter::kAbmCorruptBatches);
      continue;
    }
    const std::uint64_t ack = m.as<std::uint64_t>();
    AmOutChannel& oc = am_out_[static_cast<std::size_t>(m.source)];
    while (!oc.unacked.empty() && oc.unacked.front().seq < ack) oc.unacked.pop_front();
  }
  // Retransmit the oldest unacked batch per channel once its deadline passes
  // (go-back-one: the cumulative ack scheme re-fills exactly the gap).
  for (int d = 0; d < size(); ++d) {
    AmOutChannel& oc = am_out_[static_cast<std::size_t>(d)];
    if (oc.unacked.empty() || oc.unacked.front().retry_at_tick > am_tick_) continue;
    auto& u = oc.unacked.front();
    if (u.attempts >= am_retry_.max_attempts) {
      am_abandon_channel(d);
      continue;
    }
    ++u.attempts;
    ++oc.retransmits;
    tel::count(tel::Counter::kAbmRetransmits);
    tel::instant("abm_retransmit", tel::Phase::kComm, u.seq);
    send(d, kAmTag, u.wire);
    const int shift = std::min(u.attempts, am_retry_.max_backoff_shift);
    u.retry_at_tick =
        am_tick_ + (static_cast<std::uint64_t>(am_retry_.base_timeout_ticks) << shift);
  }
}

std::size_t Rank::am_poll() {
  std::size_t dispatched = 0;
  if (am_reliable_) am_progress();
  const auto mark_ack_due = [this](AmInChannel& ic) {
    if (!ic.ack_pending) {
      ic.ack_pending = true;
      ic.ack_pending_since = am_tick_;
    }
  };
  Message m;
  while (try_recv(m, kAnySource, kAmTag)) {
    if (!am_reliable_) {
      dispatched += am_dispatch_records(m.source, m.payload);
      continue;
    }
    AmInChannel& ic = am_in_[static_cast<std::size_t>(m.source)];
    AmWireHeader h;
    if (m.payload.size() < sizeof h) {
      ++am_corrupt_batches_;
      tel::count(tel::Counter::kAbmCorruptBatches);
      continue;
    }
    std::memcpy(&h, m.payload.data(), sizeof h);
    std::span<const std::uint8_t> records(m.payload.data() + sizeof h,
                                          m.payload.size() - sizeof h);
    if (records.size() != h.nbytes || fnv1a64(records) != h.checksum) {
      ++am_corrupt_batches_;  // truncated or corrupted: sender will retransmit
      tel::count(tel::Counter::kAbmCorruptBatches);
      continue;
    }
    // A validated batch carries the reverse channel's cumulative ack for free.
    AmOutChannel& oc = am_out_[static_cast<std::size_t>(m.source)];
    while (!oc.unacked.empty() && oc.unacked.front().seq < h.ack) oc.unacked.pop_front();
    if (h.seq < ic.expected) {
      // Already dispatched (retransmit raced the ack, or duplication fault).
      ++am_dup_batches_;
      tel::count(tel::Counter::kAbmDuplicateBatches);
      mark_ack_due(ic);
      continue;
    }
    if (h.seq > ic.expected) {
      ++am_ooo_batches_;
      tel::count(tel::Counter::kAbmOutOfOrderBatches);
      if (ic.out_of_order.size() < am_retry_.max_ooo_batches)
        ic.out_of_order.emplace(h.seq, Bytes(records.begin(), records.end()));
      mark_ack_due(ic);  // duplicate cumulative ack: tells sender the gap
      continue;
    }
    dispatched += am_dispatch_records(m.source, records);
    ++ic.expected;
    // Drain whatever the gap was hiding.
    for (auto it = ic.out_of_order.begin();
         it != ic.out_of_order.end() && it->first == ic.expected;) {
      dispatched += am_dispatch_records(m.source, it->second);
      ++ic.expected;
      it = ic.out_of_order.erase(it);
    }
    // Discard stale buffered batches a retransmission already covered.
    ic.out_of_order.erase(ic.out_of_order.begin(),
                          ic.out_of_order.lower_bound(ic.expected));
    mark_ack_due(ic);
  }
  if (am_reliable_) {
    // Standalone acks go out only once they have aged past ack_delay_ticks
    // without a reverse-direction batch piggybacking them first.
    for (int s = 0; s < size(); ++s) {
      const AmInChannel& ic = am_in_[static_cast<std::size_t>(s)];
      if (ic.ack_pending &&
          am_tick_ >= ic.ack_pending_since + static_cast<std::uint64_t>(am_retry_.ack_delay_ticks))
        am_send_ack(s);
    }
  }
  // Health sampling rides the poll loop: every rank polls while it waits, so
  // snapshots land exactly where congestion happens (deterministic in ticks,
  // not wall time). sample_tick() is a relaxed-load no-op when disabled.
  if (tel::sample_tick()) am_sample_health();
  return dispatched;
}

void Rank::am_sample_health() {
  std::uint64_t backlog_batches = 0, backlog_bytes = 0, retry_batches = 0;
  for (const AmOutChannel& oc : am_out_) {
    backlog_batches += oc.unacked.size();
    for (const auto& u : oc.unacked) {
      backlog_bytes += u.wire.size();
      if (u.attempts > 0) ++retry_batches;
    }
  }
  std::uint64_t ooo_batches = 0;
  for (const AmInChannel& ic : am_in_) ooo_batches += ic.out_of_order.size();
  std::uint64_t pending_bytes = 0;
  for (const Bytes& b : am_batches_) pending_bytes += b.size();
  tel::gauge_set(tel::Gauge::kAbmSendBacklogBatches, static_cast<double>(backlog_batches));
  tel::gauge_set(tel::Gauge::kAbmSendBacklogBytes, static_cast<double>(backlog_bytes));
  tel::gauge_set(tel::Gauge::kAbmRetryBacklogBatches, static_cast<double>(retry_batches));
  tel::gauge_set(tel::Gauge::kAbmRecvOooBatches, static_cast<double>(ooo_batches));
  tel::gauge_set(tel::Gauge::kAbmPendingPostBytes, static_cast<double>(pending_bytes));
  tel::sample_now();
}

void Rank::am_quiesce() {
  struct Counts {
    std::uint64_t posted;
    std::uint64_t settled;  // dispatched at the receiver or abandoned at the sender
    Counts operator+(const Counts& o) const {
      return {posted + o.posted, settled + o.settled};
    }
  };
  for (;;) {
    am_flush();
    while (am_poll() > 0) am_flush();
    am_flush();
    const Counts totals =
        allreduce(Counts{am_posted_, am_dispatched_ + am_abandoned_}, Sum{});
    // A record can be *both* dispatched and abandoned (delivered, but every
    // ack was lost): >= rather than == keeps that case terminating.
    if (totals.settled >= totals.posted) return;
  }
}

AmHealthReport Rank::am_health() const {
  AmHealthReport r;
  r.acks_sent = am_acks_sent_;
  r.duplicate_batches = am_dup_batches_;
  r.corrupt_batches = am_corrupt_batches_;
  r.out_of_order_batches = am_ooo_batches_;
  for (int d = 0; d < size(); ++d) {
    const AmOutChannel& oc = am_out_[static_cast<std::size_t>(d)];
    r.retransmits += oc.retransmits;
    r.abandoned_batches += oc.abandoned_batches;
    r.abandoned_records += oc.abandoned_records;
    if (oc.retransmits > 0 || oc.abandoned_batches > 0 || oc.dead)
      r.peers.push_back({d, oc.retransmits, oc.abandoned_batches,
                         oc.abandoned_records, oc.dead});
  }
  return r;
}

}  // namespace hotlib::parc
