#include "parc/rank.hpp"

#include <cstring>

namespace hotlib::parc {

Rank::Rank(Fabric& fabric, int rank) : fabric_(fabric), rank_(rank) {
  am_batches_.resize(static_cast<std::size_t>(fabric.size()));
}

void Rank::send(int dst, int tag, std::span<const std::uint8_t> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("parc::send: bad destination");
  vclock_ += fabric_.net().overhead_s;  // sender-side per-message CPU cost
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.depart_time = vclock_;
  m.payload.assign(payload.begin(), payload.end());
  fabric_.deliver(dst, std::move(m));
}

Message Rank::recv(int source, int tag) {
  Message m = fabric_.recv(rank_, source, tag);
  if (m.source != rank_) {
    const double arrival = m.depart_time + fabric_.net().transfer_time(m.payload.size());
    vclock_ = std::max(vclock_, arrival) + fabric_.net().overhead_s;
  }
  return m;
}

bool Rank::try_recv(Message& out, int source, int tag) {
  auto m = fabric_.try_recv(rank_, source, tag);
  if (!m) return false;
  if (m->source != rank_) {
    const double arrival = m->depart_time + fabric_.net().transfer_time(m->payload.size());
    vclock_ = std::max(vclock_, arrival) + fabric_.net().overhead_s;
  }
  out = std::move(*m);
  return true;
}

void Rank::barrier() {
  // Dissemination barrier: log2(p) rounds of token exchange.
  const int p = size();
  if (p == 1) return;
  const int seq = coll_seq_++ & 0xFFFFF;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int tag = (1 << 30) | (seq << 4) | (round & 0xF);
    const std::uint8_t token = 0;
    send((rank_ + k) % p, tag, std::span<const std::uint8_t>(&token, 1));
    (void)recv((rank_ - k + p) % p, tag);
  }
}

Bytes Rank::broadcast_bytes(Bytes value, int root) {
  const int p = size();
  if (p == 1) return value;
  const int me = relabel(rank_, root, p);
  const int tag = next_collective_tag(0);
  for (int k = 1; k < p; k <<= 1) {
    if (me < k) {
      if (me + k < p) send(unlabel(me + k, root, p), tag, value);
    } else if (me < 2 * k) {
      value = recv(unlabel(me - k, root, p), tag).payload;
    }
  }
  return value;
}

std::vector<Bytes> Rank::allgather_bytes(Bytes mine) {
  // Ring allgather: p-1 steps; block b originates at rank b and travels
  // around the ring, so step s forwards block (me - s) mod p.
  const int p = size();
  std::vector<Bytes> blocks(static_cast<std::size_t>(p));
  blocks[static_cast<std::size_t>(rank_)] = std::move(mine);
  if (p == 1) return blocks;

  const int seq = coll_seq_++ & 0xFFFFF;
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int tag = (1 << 30) | (seq << 4) | 0x8;  // single slot; seq+source disambiguate
    const int out_block = (rank_ - s + p) % p;
    const int in_block = (rank_ - s - 1 + 2 * p) % p;
    send(right, tag, blocks[static_cast<std::size_t>(out_block)]);
    blocks[static_cast<std::size_t>(in_block)] = recv(left, tag).payload;
  }
  return blocks;
}

std::vector<Bytes> Rank::alltoallv(std::vector<Bytes> out) {
  const int p = size();
  if (static_cast<int>(out.size()) != p)
    throw std::invalid_argument("parc::alltoallv: need one payload per rank");
  const int tag = next_collective_tag(0);
  std::vector<Bytes> in(static_cast<std::size_t>(p));
  in[static_cast<std::size_t>(rank_)] = std::move(out[static_cast<std::size_t>(rank_)]);
  for (int d = 0; d < p; ++d) {
    if (d == rank_) continue;
    send(d, tag, out[static_cast<std::size_t>(d)]);
  }
  for (int i = 0; i < p - 1; ++i) {
    Message m = recv(kAnySource, tag);
    in[static_cast<std::size_t>(m.source)] = std::move(m.payload);
  }
  return in;
}

int Rank::am_register(AmHandler handler) {
  am_handlers_.push_back(std::move(handler));
  return static_cast<int>(am_handlers_.size()) - 1;
}

void Rank::am_post(int dst, int handler, std::span<const std::uint8_t> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("parc::am_post: bad destination");
  if (handler < 0 || handler >= static_cast<int>(am_handlers_.size()))
    throw std::out_of_range("parc::am_post: unregistered handler");
  Bytes& buf = am_batches_[static_cast<std::size_t>(dst)];
  const std::uint32_t h = static_cast<std::uint32_t>(handler);
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const std::size_t pos = buf.size();
  buf.resize(pos + sizeof(h) + sizeof(n) + payload.size());
  std::memcpy(buf.data() + pos, &h, sizeof(h));
  std::memcpy(buf.data() + pos + sizeof(h), &n, sizeof(n));
  std::memcpy(buf.data() + pos + sizeof(h) + sizeof(n), payload.data(), payload.size());
  ++am_posted_;
  if (buf.size() >= am_batch_limit_) {
    send(dst, kAmTag, buf);
    buf.clear();
  }
}

void Rank::am_flush() {
  for (int d = 0; d < size(); ++d) {
    Bytes& buf = am_batches_[static_cast<std::size_t>(d)];
    if (!buf.empty()) {
      send(d, kAmTag, buf);
      buf.clear();
    }
  }
}

std::size_t Rank::am_poll() {
  std::size_t dispatched = 0;
  Message m;
  while (try_recv(m, kAnySource, kAmTag)) {
    std::size_t pos = 0;
    while (pos + 8 <= m.payload.size()) {
      std::uint32_t h = 0, n = 0;
      std::memcpy(&h, m.payload.data() + pos, sizeof(h));
      std::memcpy(&n, m.payload.data() + pos + 4, sizeof(n));
      pos += 8;
      std::span<const std::uint8_t> body(m.payload.data() + pos, n);
      pos += n;
      am_handlers_.at(h)(*this, m.source, body);
      ++am_dispatched_;
      ++dispatched;
    }
  }
  return dispatched;
}

void Rank::am_quiesce() {
  struct Counts {
    std::uint64_t posted;
    std::uint64_t dispatched;
    Counts operator+(const Counts& o) const {
      return {posted + o.posted, dispatched + o.dispatched};
    }
  };
  for (;;) {
    am_flush();
    while (am_poll() > 0) am_flush();
    am_flush();
    const Counts totals = allreduce(Counts{am_posted_, am_dispatched_}, Sum{});
    if (totals.posted == totals.dispatched) return;
  }
}

}  // namespace hotlib::parc
