// rank.hpp — the per-process view of the parc runtime.
//
// A Rank is what MPI would call a process: it can send/recv point-to-point
// messages, participate in collectives (all built on top of point-to-point,
// as on a real distributed-memory machine), and use the paper's
// "asynchronous batched messages" (ABM) active-message layer for
// latency-hiding request/response traffic during tree traversal.
//
// Every rank also carries a *virtual clock* for the LogP-style machine model:
// compute work is charged via charge_flops()/charge_seconds(), and message
// arrival times are max(local clock, sender departure + latency + bytes/bw).
// With default NetworkParams the clock stays at zero and parc is a pure
// correctness vehicle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

#include "parc/fabric.hpp"
#include "parc/message.hpp"

namespace hotlib::parc {

// Retry/timeout knobs of the reliable ABM mode. Timeouts are measured in
// *progress ticks* (one per am_poll call), not wall or virtual time: ticks
// are the only clock every rank is guaranteed to advance while it makes
// progress, so retransmission behaviour cannot depend on host scheduling.
struct AmRetryParams {
  int base_timeout_ticks = 8;   // first retransmit after this many ticks
  int max_backoff_shift = 5;    // exponential backoff capped at base << shift
  int max_attempts = 12;        // then the batch is abandoned, never hung on
  std::size_t max_ooo_batches = 64;  // receiver-side out-of-order buffer bound
  // Standalone acks are delayed this many ticks so a reverse-direction data
  // batch can piggyback the cumulative ack for free first; only one-sided
  // traffic pays for dedicated ack messages.
  int ack_delay_ticks = 2;
};

// Per-peer entry of the health report (only non-clean peers are listed).
struct AmPeerHealth {
  int peer = -1;
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned_batches = 0;
  std::uint64_t abandoned_records = 0;
  bool dead = false;  // channel gave up: bounded retries exhausted
};

// What the reliable ABM layer did to survive the fabric. degraded() means
// data was lost for good (bounded retries exhausted) and the caller must not
// trust completeness — the graceful alternative to hanging.
struct AmHealthReport {
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicate_batches = 0;   // received again after dispatch
  std::uint64_t corrupt_batches = 0;     // checksum/length mismatch (truncation)
  std::uint64_t out_of_order_batches = 0;  // buffered past a sequence gap
  std::uint64_t abandoned_batches = 0;
  std::uint64_t abandoned_records = 0;
  std::vector<AmPeerHealth> peers;

  bool degraded() const { return abandoned_records > 0; }
};

// Reduction operators for the typed collectives.
struct Sum {
  template <class T> T operator()(const T& a, const T& b) const { return a + b; }
};
struct Min {
  template <class T> T operator()(const T& a, const T& b) const { return std::min(a, b); }
};
struct Max {
  template <class T> T operator()(const T& a, const T& b) const { return std::max(a, b); }
};

class Rank {
 public:
  using AmHandler = std::function<void(Rank&, int source, std::span<const std::uint8_t>)>;

  Rank(Fabric& fabric, int rank);

  int rank() const { return rank_; }
  int size() const { return fabric_.size(); }
  Fabric& fabric() { return fabric_; }

  // ---- virtual time (machine model) ----
  double vclock() const { return vclock_; }
  // Stable address of the clock, for the telemetry rank channel (spans
  // record virtual time through it; read only by the owning thread).
  const double* vclock_ptr() const { return &vclock_; }
  void charge_flops(double flops) { vclock_ += fabric_.net().compute_time(flops); }
  void charge_seconds(double s) { vclock_ += s; }

  // ---- point-to-point ----
  void send(int dst, int tag, std::span<const std::uint8_t> payload);
  template <class T>
  void send_value(int dst, int tag, const T& v) {
    Bytes b = to_bytes(v);
    send(dst, tag, b);
  }
  template <class T>
  void send_span(int dst, int tag, std::span<const T> v) {
    Bytes b = to_bytes(v);
    send(dst, tag, b);
  }

  Message recv(int source = kAnySource, int tag = kAnyTag);
  bool try_recv(Message& out, int source = kAnySource, int tag = kAnyTag);
  template <class T>
  T recv_value(int source, int tag) {
    return recv(source, tag).as<T>();
  }

  // ---- collectives (p2p-based; call in the same order on every rank) ----
  void barrier();

  template <class T>
  T broadcast(T value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes b = to_bytes(value);
    b = broadcast_bytes(std::move(b), root);
    Message m;
    m.payload = std::move(b);
    return m.as<T>();
  }

  template <class T>
  std::vector<T> broadcast_vector(std::vector<T> value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes b = to_bytes(std::span<const T>(value));
    b = broadcast_bytes(std::move(b), root);
    Message m;
    m.payload = std::move(b);
    return m.as_vector<T>();
  }

  template <class T, class Op>
  T reduce(T value, Op op, int root) {
    // Binomial-tree reduction rooted at `root` (rank relabelling r' = r-root).
    const int p = size();
    const int me = relabel(rank_, root, p);
    const int tag = next_collective_tag(0);
    T acc = value;
    for (int k = 1; k < p; k <<= 1) {
      if ((me & k) != 0) {
        send_value(unlabel(me & ~k, root, p), tag, acc);
        return acc;  // non-root partial; value only meaningful on root
      }
      if (me + k < p) {
        T other = recv_value<T>(unlabel(me + k, root, p), tag);
        acc = op(acc, other);
      }
    }
    return acc;
  }

  template <class T, class Op>
  T allreduce(T value, Op op) {
    T r = reduce(value, op, /*root=*/0);
    return broadcast(r, 0);
  }

  template <class T>
  std::vector<T> allgather(const T& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<Bytes> blocks = allgather_bytes(to_bytes(mine));
    std::vector<T> out;
    out.reserve(blocks.size());
    for (auto& b : blocks) {
      Message m;
      m.payload = std::move(b);
      out.push_back(m.as<T>());
    }
    return out;
  }

  template <class T>
  std::vector<std::vector<T>> allgather_vector(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<Bytes> blocks = allgather_bytes(to_bytes(mine));
    std::vector<std::vector<T>> out;
    out.reserve(blocks.size());
    for (auto& b : blocks) {
      Message m;
      m.payload = std::move(b);
      out.push_back(m.as_vector<T>());
    }
    return out;
  }

  // Exclusive prefix sum: rank r receives op-fold of values from ranks < r
  // (identity value on rank 0).
  template <class T, class Op>
  T exscan(const T& mine, Op op, T identity) {
    std::vector<T> all = allgather(mine);
    T acc = identity;
    for (int r = 0; r < rank_; ++r) acc = op(acc, all[static_cast<std::size_t>(r)]);
    return acc;
  }

  // Personalised all-to-all with per-destination variable payloads.
  // out[d] is the payload for rank d (out[rank()] is copied locally).
  std::vector<Bytes> alltoallv(std::vector<Bytes> out);

  template <class T>
  std::vector<std::vector<T>> alltoallv_typed(const std::vector<std::vector<T>>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<Bytes> raw(out.size());
    for (std::size_t d = 0; d < out.size(); ++d)
      raw[d] = to_bytes(std::span<const T>(out[d]));
    std::vector<Bytes> in = alltoallv(std::move(raw));
    std::vector<std::vector<T>> typed(in.size());
    for (std::size_t s = 0; s < in.size(); ++s) {
      Message m;
      m.payload = std::move(in[s]);
      typed[s] = m.as_vector<T>();
    }
    return typed;
  }

  // ---- ABM: asynchronous batched messages (active-message style) ----
  //
  // Handlers must be registered in the same order on every rank before any
  // am_post. A posted record is buffered per destination and shipped either
  // when the batch exceeds the batch limit or on am_flush(). am_poll()
  // dispatches incoming records (handlers may post replies). am_quiesce()
  // runs flush/poll rounds plus global termination detection until no AM
  // traffic is in flight anywhere.
  //
  // Reliable mode (automatic when the fabric carries an active FaultPlan,
  // or forced via am_set_reliable): batches carry per-channel sequence
  // numbers and a checksum, receivers acknowledge cumulatively, dedupe
  // duplicates, buffer past gaps, and senders retransmit on tick timeouts
  // with exponential backoff. After AmRetryParams::max_attempts a batch is
  // *abandoned* — counted in the health report and in quiescence accounting
  // — so a dead peer/link degrades the answer instead of hanging the run.
  // The mode must be uniform across ranks and set before any AM traffic.
  int am_register(AmHandler handler);
  void am_post(int dst, int handler, std::span<const std::uint8_t> payload);
  template <class T>
  void am_post_value(int dst, int handler, const T& v) {
    Bytes b = to_bytes(v);
    am_post(dst, handler, b);
  }
  void am_flush();
  // Dispatch queued AM batches; returns number of records dispatched. In
  // reliable mode this also advances the retry clock, processes acks and
  // retransmits timed-out batches.
  std::size_t am_poll();
  void am_quiesce();
  std::uint64_t am_posted() const { return am_posted_; }
  std::uint64_t am_dispatched() const { return am_dispatched_; }
  std::uint64_t am_abandoned() const { return am_abandoned_; }
  void am_set_batch_limit(std::size_t bytes) { am_batch_limit_ = bytes; }

  bool am_reliable() const { return am_reliable_; }
  void am_set_reliable(bool on) { am_reliable_ = on; }
  void am_set_retry_params(const AmRetryParams& p) { am_retry_ = p; }
  AmHealthReport am_health() const;

 private:
  // Sender side of one reliable channel (this rank -> peer).
  struct AmOutChannel {
    struct Unacked {
      std::uint64_t seq = 0;
      Bytes wire;             // header + records, resent verbatim
      std::uint32_t nrecords = 0;
      int attempts = 0;
      std::uint64_t retry_at_tick = 0;
    };
    std::uint64_t next_seq = 0;
    std::deque<Unacked> unacked;
    std::uint64_t retransmits = 0;
    std::uint64_t abandoned_batches = 0;
    std::uint64_t abandoned_records = 0;
    bool dead = false;
  };
  // Receiver side of one reliable channel (peer -> this rank).
  struct AmInChannel {
    std::uint64_t expected = 0;  // next in-order batch sequence number
    std::map<std::uint64_t, Bytes> out_of_order;  // record bytes past a gap
    bool ack_pending = false;
    std::uint64_t ack_pending_since = 0;  // tick the oldest unsent ack was due
  };

  void am_ship_batch(int dst);
  std::size_t am_dispatch_records(int source, std::span<const std::uint8_t> records);
  void am_progress();
  void am_sample_health();  // refresh queue-depth gauges + commit a snapshot
  void am_abandon_channel(int dst);
  void am_send_ack(int src);
  Bytes broadcast_bytes(Bytes value, int root);
  std::vector<Bytes> allgather_bytes(Bytes mine);

  // Collective tags: bit 30 set, per-rank sequence number (consistent across
  // ranks because collectives execute in program order), plus a small slot
  // for multi-round algorithms.
  int next_collective_tag(int round) {
    const int seq = coll_seq_++ & 0xFFFFF;
    return (1 << 30) | (seq << 4) | (round & 0xF);
  }

  static int relabel(int r, int root, int p) { return (r - root + p) % p; }
  static int unlabel(int r, int root, int p) { return (r + root) % p; }

  Fabric& fabric_;
  int rank_;
  double vclock_ = 0.0;
  int coll_seq_ = 0;

  std::vector<AmHandler> am_handlers_;
  std::vector<Bytes> am_batches_;  // one buffer per destination
  std::size_t am_batch_limit_ = 1 << 16;
  std::uint64_t am_posted_ = 0;
  std::uint64_t am_dispatched_ = 0;
  std::uint64_t am_abandoned_ = 0;

  bool am_reliable_ = false;
  AmRetryParams am_retry_;
  std::uint64_t am_tick_ = 0;  // advances once per am_poll
  std::vector<AmOutChannel> am_out_;  // one per destination
  std::vector<AmInChannel> am_in_;    // one per source
  std::uint64_t am_acks_sent_ = 0;
  std::uint64_t am_dup_batches_ = 0;
  std::uint64_t am_corrupt_batches_ = 0;
  std::uint64_t am_ooo_batches_ = 0;
};

}  // namespace hotlib::parc
