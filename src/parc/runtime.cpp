#include "parc/runtime.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "telemetry/trace.hpp"

namespace hotlib::parc {

RunStats Runtime::run(int nranks, const std::function<void(Rank&)>& body,
                      NetworkParams net, FaultPlan faults) {
  if (nranks <= 0) throw std::invalid_argument("parc::Runtime: nranks must be positive");

  Fabric fabric(nranks, net, faults);
  std::vector<double> clocks(static_cast<std::size_t>(nranks), 0.0);
  std::vector<std::uint64_t> retransmits(static_cast<std::size_t>(nranks), 0);
  std::vector<std::uint64_t> abandoned(static_cast<std::size_t>(nranks), 0);
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Rank rank(fabric, r);
      // Telemetry: each rank thread records into its own channel; spans get
      // the rank's LogP clock alongside wall time. No-op while disabled.
      telemetry::RankScope telemetry_scope(r, rank.vclock_ptr());
      try {
        body(rank);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      clocks[static_cast<std::size_t>(r)] = rank.vclock();
      const AmHealthReport health = rank.am_health();
      retransmits[static_cast<std::size_t>(r)] = health.retransmits;
      abandoned[static_cast<std::size_t>(r)] = health.abandoned_records;
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  RunStats stats;
  for (double c : clocks) stats.max_vclock = std::max(stats.max_vclock, c);
  stats.messages = fabric.messages_delivered();
  stats.bytes = fabric.bytes_delivered();
  stats.faults = fabric.fault_stats();
  for (std::uint64_t v : retransmits) stats.retransmits += v;
  for (std::uint64_t v : abandoned) stats.abandoned_records += v;
  return stats;
}

}  // namespace hotlib::parc
