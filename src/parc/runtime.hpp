// runtime.hpp — spawning and joining a parc "machine".
//
// Runtime::run(nranks, body) plays the role of mpirun: it creates the mailbox
// fabric, launches one std::thread per rank, executes `body(rank)` on each,
// and propagates the first exception thrown by any rank. run_collect()
// additionally gathers a per-rank result. The optional NetworkParams engage
// the virtual-time machine model (see fabric.hpp).
#pragma once

#include <functional>
#include <vector>

#include "parc/fabric.hpp"
#include "parc/rank.hpp"

namespace hotlib::parc {

// Statistics of a completed run, for the benchmark harnesses.
struct RunStats {
  double max_vclock = 0.0;   // modelled makespan (seconds of virtual time)
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  FaultStats faults;              // injected-fault totals (zero without a plan)
  std::uint64_t retransmits = 0;  // reliable-ABM retries summed over ranks
  std::uint64_t abandoned_records = 0;  // lost for good after bounded retries
  bool degraded() const { return abandoned_records > 0; }
};

class Runtime {
 public:
  // Execute body on nranks concurrent ranks; rethrows the first rank failure.
  // An active FaultPlan makes the fabric adversarial (and switches every
  // rank's ABM layer to reliable mode).
  static RunStats run(int nranks, const std::function<void(Rank&)>& body,
                      NetworkParams net = {}, FaultPlan faults = {});

  // As run(), but collects body's return value per rank into `results`.
  template <class T>
  static RunStats run_collect(int nranks, const std::function<T(Rank&)>& body,
                              std::vector<T>& results, NetworkParams net = {},
                              FaultPlan faults = {}) {
    results.assign(static_cast<std::size_t>(nranks), T{});
    return run(
        nranks,
        [&](Rank& r) { results[static_cast<std::size_t>(r.rank())] = body(r); }, net,
        faults);
  }
};

}  // namespace hotlib::parc
