#include "simnet/machine.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/counters.hpp"

namespace hotlib::simnet {

namespace {
// One-way latencies derived from the paper's round-trip measurements.
parc::NetworkParams red_net() {
  return {.latency_s = 10.5e-6, .bandwidth_Bps = 290e6, .overhead_s = 5e-6};
}
parc::NetworkParams janus_net() {
  return {.latency_s = 20e-6, .bandwidth_Bps = 160e6, .overhead_s = 5e-6};
}
parc::NetworkParams ethernet_net() {
  // 208 us MPI round trip = 2 x (overhead + 24 us wire + overhead); the
  // paper measured 55 us RT at hardware level, so ~40 us/message is TCP.
  return {.latency_s = 24e-6, .bandwidth_Bps = 11.5e6, .overhead_s = 40e-6};
}
}  // namespace

MachineSpec asci_red_full() {
  MachineSpec m;
  m.name = "ASCI Red (full)";
  m.nodes = 4536;
  m.procs_per_node = 2;
  m.net = red_net();
  m.cost_usd = 55e6;  // announced contract value, for context only
  return m;
}

MachineSpec asci_red_april97() {
  MachineSpec m = asci_red_full();
  m.name = "ASCI Red (3400 nodes, Apr 1997)";
  m.nodes = 3400;
  return m;
}

MachineSpec asci_red_2048() {
  MachineSpec m = asci_red_full();
  m.name = "ASCI Red (2048 nodes)";
  m.nodes = 2048;
  return m;
}

MachineSpec asci_red_16() {
  MachineSpec m = asci_red_full();
  m.name = "ASCI Red 16-proc slice (Janus)";
  m.nodes = 8;
  m.net = janus_net();
  return m;
}

MachineSpec loki() {
  MachineSpec m;
  m.name = "Loki";
  m.nodes = 16;
  m.procs_per_node = 1;
  m.net = ethernet_net();
  // Loki's sustained rates from the paper: 1.19 Gflops / 16 procs early,
  // 879 Mflops / 16 procs over the whole clustered run.
  m.tree_flops_per_proc = 74.4e6;
  m.tree_flops_per_proc_clustered = 54.9e6;
  m.memory_bytes_per_node = 128e6;
  m.cost_usd = 51379.0;
  return m;
}

MachineSpec hyglac() {
  MachineSpec m = loki();
  m.name = "Hyglac";
  // Single 16-way switch: same per-port figures at MPI level.
  m.cost_usd = 50498.0;
  // Vortex kernel sustains "somewhat over 65 Mflops per processor".
  m.tree_flops_per_proc = 65e6;
  m.tree_flops_per_proc_clustered = 59e6;
  return m;
}

MachineSpec sc96_cluster() {
  MachineSpec m = loki();
  m.name = "Loki+Hyglac (SC'96)";
  m.nodes = 32;
  // The joined system adds switch-to-switch hops; reflect that as extra
  // latency on the (shared) inter-cluster links.
  m.net.latency_s = 50e-6;  // extra switch-to-switch hops
  // 2.19 Gflops / 32 procs measured on the joint treecode benchmark.
  m.tree_flops_per_proc = 68.4e6;
  m.cost_usd = 103000.0;  // both machines + $3k of interconnect hardware
  return m;
}

MachineSpec origin2000_16() {
  MachineSpec m;
  m.name = "SGI Origin 2000 (16p)";
  m.nodes = 16;
  m.procs_per_node = 1;
  m.clock_hz = 195e6;
  m.peak_flops_per_proc = 390e6;  // R10000: 2 flops/cycle
  // Table 3 shows the Origin 2.6x-4x faster than Loki on NPB Class B.
  m.nsq_flops_per_proc = 240e6;
  m.tree_flops_per_proc = 170e6;
  m.tree_flops_per_proc_clustered = 120e6;
  m.net = {.latency_s = 5e-6, .bandwidth_Bps = 600e6, .overhead_s = 2.5e-6};
  m.memory_bytes_per_node = 128e6;
  // Vendor price Nov 1996 for a 24-proc Origin 2000 was $960k (paper);
  // prorated to the 16-proc configuration compared in Table 3.
  m.cost_usd = 640000.0;
  return m;
}

MachineSpec grape4_like() {
  MachineSpec m;
  m.name = "GRAPE-4-like pipeline";
  m.nodes = 1;
  m.procs_per_node = 1;
  // Modelled as a single device evaluating softened O(N^2) interactions at a
  // fixed pipeline rate equivalent to ~1.1 Tflops at 38 flops/interaction.
  m.peak_flops_per_proc = 1.1e12;
  m.nsq_flops_per_proc = 1.1e12;
  m.tree_flops_per_proc = 0.0;  // cannot run a treecode at all
  m.net = {};
  m.cost_usd = 2.0e6;
  return m;
}

std::vector<MachineSpec> catalog() {
  return {asci_red_full(), asci_red_april97(), asci_red_2048(), asci_red_16(),
          loki(),          hyglac(),           sc96_cluster(),  origin2000_16(),
          grape4_like()};
}

Projection project_interactions(const MachineSpec& m, double interactions,
                                double comm_bytes_per_proc, int messages_per_proc,
                                bool clustered, bool nsq_kernel) {
  const double rate = nsq_kernel ? m.nsq_flops_per_proc
                     : clustered ? m.tree_flops_per_proc_clustered
                                 : m.tree_flops_per_proc;
  Projection p;
  p.flops = interactions * kFlopsPerGravityInteraction;
  const double compute = p.flops / (rate * m.procs());
  double comm = messages_per_proc * m.net.effective_latency();
  if (m.net.bandwidth_Bps > 0) comm += comm_bytes_per_proc / m.net.bandwidth_Bps;
  // The treecode hides latency behind computation (ABM context switching);
  // the ring N^2 algorithm likewise overlaps the block shift with the double
  // loop. Communication therefore only matters when it exceeds compute.
  p.seconds = std::max(compute, comm);
  return p;
}

Projection project_nsq_run(const MachineSpec& m, double n_particles, int steps) {
  // The paper counts N^2 interactions per step (1e6 x 1e6 x 38 x 4 flops).
  const double interactions = n_particles * n_particles * steps;
  const int p = m.procs();
  // Ring decomposition: each proc forwards its N/P block P times per step,
  // 32 bytes per particle ("38 floating point operations ... on each 32
  // bytes of data").
  const double bytes_per_proc = n_particles * 32.0 * steps;
  const int msgs_per_proc = p * steps;
  return project_interactions(m, interactions, bytes_per_proc, msgs_per_proc,
                              /*clustered=*/false, /*nsq_kernel=*/true);
}

Projection project_tree_run(const MachineSpec& m, double n_particles, int steps,
                            double interactions_per_particle, bool clustered) {
  const double interactions = n_particles * interactions_per_particle * steps;
  const int p = m.procs();
  // Locally-essential-tree exchange: import volume scales like the domain
  // surface, modelled as 8% of local particle data (80 bytes/particle of
  // position+moment traffic) per step, plus O(log P) latency-bound messages.
  const double bytes_per_proc = 0.08 * (n_particles / p) * 80.0 * steps;
  const int msgs_per_proc =
      steps * (2 * static_cast<int>(std::ceil(std::log2(std::max(2, p)))) + 16);
  return project_interactions(m, interactions, bytes_per_proc, msgs_per_proc, clustered,
                              /*nsq_kernel=*/false);
}

double particles_per_second(const Projection& p, double n_particles, int steps) {
  return p.seconds > 0 ? n_particles * steps / p.seconds : 0.0;
}

double grape_particles_per_second(const MachineSpec& grape, double n_particles) {
  const double interactions_per_s =
      grape.peak_flops() / kFlopsPerGravityInteraction;
  return interactions_per_s / n_particles;
}

}  // namespace hotlib::simnet
