// machine.hpp — catalog of the paper's machines and a projection model.
//
// Parameters are the *measured* values the paper reports:
//   * ASCI Red: 4536 nodes x 2 Pentium Pro 200 MHz; MPI uni-directional
//     bandwidth 290 MB/s out of a node, round-trip latency 41 us (with the
//     second CPU as comm co-processor) or 68 us; April-1997 partition had
//     3400 nodes (6800 processors), 1.36 Tflops peak.
//   * Loki: 16 Pentium Pro 200 MHz; switched fast ethernet, 11.5 MB/s
//     uni-directional per port, 208 us round-trip at MPI level.
//   * Hyglac: as Loki with a single 16-way switch.
//   * SC'96 joined system: Loki+Hyglac, 32 processors.
//   * GRAPE-4 style device: modelled as a fixed-rate O(N^2) interaction
//     pipeline (the paper uses it only for a particles-updated/s comparison).
//
// The sustained per-processor rate for the gravity kernel comes from the
// paper's own numbers: 635 Gflops / 6800 procs = 93 Mflops/proc for the
// O(N^2) loop; the treecode sustains 431/6.8k = 63 Mflops/proc early and
// 170/4.1k = 41 Mflops/proc clustered; Loki sustained 1.19 Gflops/16 =
// 74 Mflops/proc early. We carry the 200 MHz Pentium Pro peak (200 Mflops:
// one FP op per cycle) and express sustained rates as fractions of peak.
#pragma once

#include <string>
#include <vector>

#include "parc/fabric.hpp"

namespace hotlib::simnet {

struct MachineSpec {
  std::string name;
  int nodes = 1;
  int procs_per_node = 1;
  double clock_hz = 200e6;
  double peak_flops_per_proc = 200e6;     // Pentium Pro: 1 flop/cycle
  double nsq_flops_per_proc = 93.4e6;     // sustained, double-loop kernel
  double tree_flops_per_proc = 63.4e6;    // sustained, treecode (unclustered)
  double tree_flops_per_proc_clustered = 41.5e6;
  parc::NetworkParams net;                // one-way latency + per-link bandwidth
  double memory_bytes_per_node = 128e6;
  double cost_usd = 0.0;                  // machine price (for $/Mflop)

  int procs() const { return nodes * procs_per_node; }
  double peak_flops() const { return procs() * peak_flops_per_proc; }
};

// Catalog entries (see header comment for provenance).
MachineSpec asci_red_full();        // 4536 nodes (9072 procs)
MachineSpec asci_red_april97();     // 3400-node partition used for the 430 Gflop run
MachineSpec asci_red_2048();        // 2048-node partition of the 9.4 h sustained run
MachineSpec asci_red_16();          // "Janus" 16-proc slice used in Table 3
MachineSpec loki();                 // 16-proc Beowulf, $51,379 (Sept 1996)
MachineSpec hyglac();               // 16-proc Beowulf, $50,498
MachineSpec sc96_cluster();         // Loki+Hyglac joined at SC'96, $103k
MachineSpec origin2000_16();        // SGI Origin comparison column of Table 3
MachineSpec grape4_like();          // special-purpose N^2 pipeline comparator

std::vector<MachineSpec> catalog();

// ---- analytic projections -------------------------------------------------
//
// These convert interaction counts measured by the real laptop-scale runs
// into paper-scale throughput figures. They deliberately use only the same
// accounting the paper uses: flops = interactions x 38, time = compute at the
// sustained per-proc rate + communication volume / network parameters.

struct Projection {
  double seconds = 0.0;
  double flops = 0.0;
  double gflops() const { return seconds > 0 ? flops / seconds / 1e9 : 0.0; }
};

// Time to evaluate `interactions` pair interactions (38 flops each) spread
// over all processors, plus `comm_bytes_per_proc` of message traffic.
Projection project_interactions(const MachineSpec& m, double interactions,
                                double comm_bytes_per_proc = 0.0,
                                int messages_per_proc = 0, bool clustered = false,
                                bool nsq_kernel = false);

// O(N^2) ring benchmark: each of the `steps` timesteps computes N^2
// interactions, communicating N/P particle blocks around the ring P times.
Projection project_nsq_run(const MachineSpec& m, double n_particles, int steps);

// Treecode step: interactions_per_particle measured from a real run at the
// same accuracy; LET exchange volume modelled as surface/volume traffic.
Projection project_tree_run(const MachineSpec& m, double n_particles, int steps,
                            double interactions_per_particle, bool clustered);

// Particles updated per second — the paper's "real metric".
double particles_per_second(const Projection& p, double n_particles, int steps);

// GRAPE-style device on an N-body problem of size n (O(N^2), fixed pipeline).
double grape_particles_per_second(const MachineSpec& grape, double n_particles);

}  // namespace hotlib::simnet
