#include "sph/sph.hpp"

#include <cmath>
#include <numbers>

namespace hotlib::sph {

double kernel_w(double r, double h) {
  const double q = r / h;
  const double sigma = 1.0 / (std::numbers::pi * h * h * h);
  if (q >= 2.0) return 0.0;
  if (q >= 1.0) {
    const double t = 2.0 - q;
    return sigma * 0.25 * t * t * t;
  }
  return sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q);
}

double kernel_dw(double r, double h) {
  const double q = r / h;
  const double sigma = 1.0 / (std::numbers::pi * h * h * h * h);
  if (q >= 2.0) return 0.0;
  if (q >= 1.0) {
    const double t = 2.0 - q;
    return -sigma * 0.75 * t * t;
  }
  return sigma * (-3.0 * q + 2.25 * q * q);
}

namespace {

hot::Tree build_search_tree(const SphParticles& p) {
  hot::Tree tree;
  const morton::Domain domain = morton::bounding_domain(p.pos.data(), p.size(), 0.05);
  tree.build(p.pos, p.mass, domain, {.bucket_size = 16});
  return tree;
}

}  // namespace

void compute_density(SphParticles& p, const SphConfig& cfg) {
  const hot::Tree tree = build_search_tree(p);
  std::vector<std::uint32_t> cand;
  for (std::size_t i = 0; i < p.size(); ++i) {
    tree.find_within(p.pos[i], 2.0 * p.h[i], cand);
    double rho = 0;
    for (std::uint32_t j : cand) {
      const double r = norm(p.pos[i] - p.pos[j]);
      rho += p.mass[j] * kernel_w(r, p.h[i]);
    }
    p.rho[i] = rho;
    p.press[i] = (cfg.gamma - 1.0) * rho * p.u[i];
  }
}

std::size_t compute_forces(SphParticles& p, const SphConfig& cfg) {
  const hot::Tree tree = build_search_tree(p);
  std::vector<std::uint32_t> cand;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.acc[i] = {};
    p.du[i] = 0;
  }
  // The pair cutoff is 2*max(h_i, h_j); searching with the global max h
  // keeps the candidate sets symmetric (exact Newton-pair antisymmetry, so
  // momentum is conserved to roundoff even with varying smoothing lengths).
  double hmax = 0;
  for (double hi : p.h) hmax = std::max(hmax, hi);
  for (std::size_t i = 0; i < p.size(); ++i) {
    tree.find_within(p.pos[i], 2.0 * hmax, cand);
    const double ci = std::sqrt(cfg.gamma * p.press[i] / p.rho[i]);
    for (std::uint32_t j : cand) {
      if (j == i) continue;
      const Vec3d dx = p.pos[i] - p.pos[j];
      const double r = norm(dx);
      const double hm = 0.5 * (p.h[i] + p.h[j]);
      if (r >= 2.0 * std::max(p.h[i], p.h[j]) || r == 0.0) continue;
      ++pairs;
      // Symmetrized gradient: mean of the two kernels.
      const double dw = 0.5 * (kernel_dw(r, p.h[i]) + kernel_dw(r, p.h[j]));
      const Vec3d grad = (dw / r) * dx;

      // Monaghan artificial viscosity.
      const Vec3d dv = p.vel[i] - p.vel[j];
      const double vdotx = dot(dv, dx);
      double visc = 0.0;
      if (vdotx < 0) {
        const double cj = std::sqrt(cfg.gamma * p.press[j] / p.rho[j]);
        const double mu = hm * vdotx / (r * r + cfg.eta_visc * hm * hm);
        const double cmean = 0.5 * (ci + cj);
        const double rhomean = 0.5 * (p.rho[i] + p.rho[j]);
        visc = (-cfg.alpha_visc * cmean * mu + cfg.beta_visc * mu * mu) / rhomean;
      }

      const double pterm = p.press[i] / (p.rho[i] * p.rho[i]) +
                           p.press[j] / (p.rho[j] * p.rho[j]) + visc;
      p.acc[i] -= (p.mass[j] * pterm) * grad;
      p.du[i] += 0.5 * p.mass[j] * pterm * dot(dv, grad);
    }
  }
  return pairs;
}

void step(SphParticles& p, double dt, const SphConfig& cfg) {
  compute_density(p, cfg);
  compute_forces(p, cfg);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.vel[i] += (0.5 * dt) * p.acc[i];
    p.u[i] += 0.5 * dt * p.du[i];
    p.pos[i] += dt * p.vel[i];
  }
  compute_density(p, cfg);
  compute_forces(p, cfg);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.vel[i] += (0.5 * dt) * p.acc[i];
    p.u[i] += 0.5 * dt * p.du[i];
  }
}

SphParticles make_sod_tube(int nx_left, double length, double width) {
  SphParticles p;
  const double gamma = 5.0 / 3.0;
  // Equal-mass particles: the right (low-density) side uses 2x spacing.
  const double dx_l = 0.5 * length / nx_left;
  const double dx_r = dx_l * 2.0;  // rho ratio 8 in 3-D lattice terms
  const int ny = std::max(2, static_cast<int>(width / dx_l));

  auto add_lattice = [&](double x0, double x1, double dx, double rho, double press) {
    const double m = rho * dx * dx * dx;
    for (double x = x0 + dx / 2; x < x1; x += dx)
      for (int iy = 0; iy < ny; ++iy)
        for (int iz = 0; iz < ny; ++iz) {
          // Keep the transverse lattice pitch equal to dx so the local
          // density is isotropic.
          const double y = (iy + 0.5) * dx;
          const double z = (iz + 0.5) * dx;
          if (y >= width || z >= width) continue;
          p.pos.push_back({x, y, z});
          p.vel.push_back({});
          p.acc.push_back({});
          p.mass.push_back(m);
          p.h.push_back(1.3 * dx);
          p.rho.push_back(rho);
          p.press.push_back(press);
          p.u.push_back(press / ((gamma - 1.0) * rho));
          p.du.push_back(0.0);
        }
  };
  add_lattice(0.0, 0.5 * length, dx_l, 1.0, 1.0);
  add_lattice(0.5 * length, length, dx_r, 0.125, 0.1);
  return p;
}

double total_energy(const SphParticles& p) {
  double e = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    e += p.mass[i] * (0.5 * norm2(p.vel[i]) + p.u[i]);
  return e;
}

Vec3d total_momentum(const SphParticles& p) {
  Vec3d mom{};
  for (std::size_t i = 0; i < p.size(); ++i) mom += p.mass[i] * p.vel[i];
  return mom;
}

}  // namespace hotlib::sph
