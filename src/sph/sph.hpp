// sph.hpp — smoothed particle hydrodynamics on the hashed oct-tree.
//
// "Smoothed Particle Hydrodynamics is implemented with 3000 lines interfaced
// to exactly the same library." This module is the corresponding hotlib
// application: cubic-spline kernel, tree-accelerated neighbour search
// (Tree::find_within), summation density, Monaghan momentum/energy equations
// with artificial viscosity, and an ideal-gas EOS — enough to run the
// standard Sod shock-tube validation in examples/tests.
#pragma once

#include <span>
#include <vector>

#include "hot/tree.hpp"
#include "util/vec3.hpp"

namespace hotlib::sph {

// Cubic spline kernel (Monaghan & Lattanzio 1985), 3-D normalization
// sigma = 1/(pi h^3), compact support 2h.
double kernel_w(double r, double h);
// dW/dr (scalar radial derivative; the vector gradient is (dW/dr) rhat).
double kernel_dw(double r, double h);

struct SphConfig {
  double gamma = 5.0 / 3.0;  // adiabatic index
  double alpha_visc = 1.0;   // Monaghan artificial viscosity
  double beta_visc = 2.0;
  double eta_visc = 0.01;    // singularity guard (in units of h^2)
};

struct SphParticles {
  std::vector<Vec3d> pos;
  std::vector<Vec3d> vel;
  std::vector<Vec3d> acc;
  std::vector<double> mass;
  std::vector<double> h;     // smoothing length
  std::vector<double> rho;   // density (computed)
  std::vector<double> press; // pressure (computed)
  std::vector<double> u;     // specific internal energy
  std::vector<double> du;    // du/dt (computed)

  std::size_t size() const { return pos.size(); }
  void resize(std::size_t n) {
    pos.resize(n);
    vel.resize(n);
    acc.resize(n);
    mass.resize(n, 0.0);
    h.resize(n, 0.0);
    rho.resize(n, 0.0);
    press.resize(n, 0.0);
    u.resize(n, 0.0);
    du.resize(n, 0.0);
  }
};

// Summation density + EOS, neighbours via the oct-tree.
void compute_density(SphParticles& p, const SphConfig& cfg);

// Momentum and energy equations (symmetrized pressure + artificial
// viscosity). Requires compute_density first. Returns neighbour-pair count.
std::size_t compute_forces(SphParticles& p, const SphConfig& cfg);

// One KDK step (density+forces recomputed inside).
void step(SphParticles& p, double dt, const SphConfig& cfg);

// Sod shock tube: a 3-D slab of lattice particles, left state
// (rho=1, P=1), right state (rho=0.125, P=0.1), interface at x = 0.5.
SphParticles make_sod_tube(int nx_left, double length = 1.0, double width = 0.1);

// Conservation diagnostics.
double total_energy(const SphParticles& p);   // kinetic + internal
Vec3d total_momentum(const SphParticles& p);

}  // namespace hotlib::sph
