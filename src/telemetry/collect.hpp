// collect.hpp — cross-rank counter aggregation over the parc collectives.
//
// Header-only on purpose: the telemetry library stays a leaf (parc links
// *it*), while ranks that want a global rollup at run end pull this header
// and pay one allreduce — the same path the paper's diagnostics used
// ("statistics are based on internal diagnostics compiled by our program").
#pragma once

#include "parc/rank.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::telemetry {

// This rank's counter block (zeros when the thread is not attached).
inline CounterBlock local_counters() {
  const RankChannel* ch = channel();
  return ch != nullptr ? ch->counters() : CounterBlock{};
}

// Sum of every rank's counters, identical on all ranks. Collective: must be
// called by all ranks of the runtime in the same program order.
inline CounterBlock allreduce_counters(parc::Rank& rank) {
  return rank.allreduce(local_counters(), parc::Sum{});
}

}  // namespace hotlib::telemetry
