// counters.hpp — interaction/flop accounting and the unified counter
// registry.
//
// Two layers live here:
//
//  1. The paper-accounting primitives (InteractionTally, Throughput,
//     kFlopsPerGravityInteraction), moved verbatim from util/counters.hpp.
//     "We keep track of the number of interactions computed": interactions
//     are tallied where they are evaluated, flops are derived as
//     interactions x flops-per-interaction (38 for a Karp gravitational
//     monopole interaction), and no flops are credited to tree construction,
//     decomposition or other parallel constructs.
//
//  2. The telemetry counter registry: one fixed enum of every quantity the
//     subsystems tally — interactions, message/byte traffic, ABM batches and
//     retransmissions, hash-table hits/misses, LET import volumes, injected
//     faults — accumulated per rank (see trace.hpp for the per-rank channel)
//     and rolled up into the RunReport at run end. Hot loops keep their
//     local InteractionTally and flush it once per call via count_tally(),
//     so registry totals match the paper accounting exactly.
#pragma once

#include <array>
#include <cstdint>

namespace hotlib {

// Flop cost of one softened gravitational interaction using Karp's
// reciprocal-sqrt decomposition (table lookup + Chebyshev + Newton-Raphson):
// the count reported by the paper.
inline constexpr int kFlopsPerGravityInteraction = 38;

// Per-rank (or per-thread) tally of the work a solver actually performed.
struct InteractionTally {
  std::uint64_t body_body = 0;    // particle-particle (direct) interactions
  std::uint64_t body_cell = 0;    // particle-multipole interactions
  std::uint64_t cells_opened = 0; // MAC failures during traversal (overhead, no flops)
  std::uint64_t mac_tests = 0;    // MAC evaluations (overhead, no flops)

  std::uint64_t interactions() const { return body_body + body_cell; }

  // Flops at a given per-interaction cost (38 for gravity monopole).
  double flops(int flops_per_interaction = kFlopsPerGravityInteraction) const {
    return static_cast<double>(interactions()) * flops_per_interaction;
  }

  InteractionTally& operator+=(const InteractionTally& o) {
    body_body += o.body_body;
    body_cell += o.body_cell;
    cells_opened += o.cells_opened;
    mac_tests += o.mac_tests;
    return *this;
  }
  friend InteractionTally operator+(InteractionTally a, const InteractionTally& b) {
    return a += b;
  }
};

// Throughput report helper: interactions & elapsed time -> flops/sec.
struct Throughput {
  double flops = 0.0;
  double seconds = 0.0;
  double flops_per_second() const { return seconds > 0 ? flops / seconds : 0.0; }
  double mflops() const { return flops_per_second() / 1e6; }
  double gflops() const { return flops_per_second() / 1e9; }
};

}  // namespace hotlib

namespace hotlib::telemetry {

// Every quantity the library tallies, one slot per counter. Adding a counter
// means adding an enumerator and its name below — exporters and rollups
// iterate the enum and need no other change.
enum class Counter : int {
  // Paper flop accounting (fed from InteractionTally via count_tally).
  kBodyBody = 0,      // particle-particle interactions (38 flops each)
  kBodyCell,          // particle-multipole interactions (38 flops each)
  kCellsOpened,       // MAC failures during traversal (overhead, no flops)
  kMacTests,          // MAC evaluations (overhead, no flops)
  // parc point-to-point traffic (every message through the fabric).
  kMessagesSent,
  kMessagesReceived,
  kBytesSent,
  kBytesReceived,
  // ABM active-message layer.
  kAbmBatchesSent,
  kAbmRecordsPosted,
  kAbmRecordsDispatched,
  kAbmRetransmits,        // reliable-mode batch retransmissions
  kAbmAcksSent,           // standalone (non-piggybacked) acks
  kAbmDuplicateBatches,   // received again after dispatch
  kAbmCorruptBatches,     // checksum/length mismatch (truncation faults)
  kAbmOutOfOrderBatches,  // buffered past a sequence gap
  kAbmAbandonedRecords,   // lost for good after bounded retries
  // Fabric fault injection (non-zero only under an active FaultPlan).
  kFaultsInjected,
  // Distributed-traversal hash behaviour: a remote lookup served from the
  // local key cache is a hit; a miss is exactly what becomes a key request.
  kHashHits,
  kHashMisses,
  kDtreeRepliesServed,  // key requests this rank answered for others
  // LET-push import volumes.
  kLetCellsImported,
  kLetBodiesImported,
  kCount
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);

// Stable machine-readable name (RunReport JSON key) of each counter.
const char* counter_name(Counter c);

// Plain aggregatable block of all counters; trivially copyable so it can
// ride the parc collectives (see collect.hpp).
struct CounterBlock {
  std::array<std::uint64_t, kCounterCount> v{};

  std::uint64_t operator[](Counter c) const { return v[static_cast<int>(c)]; }
  std::uint64_t& operator[](Counter c) { return v[static_cast<int>(c)]; }

  std::uint64_t interactions() const {
    return (*this)[Counter::kBodyBody] + (*this)[Counter::kBodyCell];
  }
  double flops(int flops_per_interaction = kFlopsPerGravityInteraction) const {
    return static_cast<double>(interactions()) * flops_per_interaction;
  }

  CounterBlock& operator+=(const CounterBlock& o) {
    for (int i = 0; i < kCounterCount; ++i) v[static_cast<std::size_t>(i)] += o.v[static_cast<std::size_t>(i)];
    return *this;
  }
  friend CounterBlock operator+(CounterBlock a, const CounterBlock& b) { return a += b; }
  // Per-slot difference, for before/after snapshots around one pipeline run.
  friend CounterBlock operator-(CounterBlock a, const CounterBlock& b) {
    for (int i = 0; i < kCounterCount; ++i) a.v[static_cast<std::size_t>(i)] -= b.v[static_cast<std::size_t>(i)];
    return a;
  }
};

// Instantaneous health gauges, one slot per quantity. Where a Counter only
// ever accumulates, a Gauge is a *level* — queue depth, table occupancy,
// resident bytes — whose current value the health sampler (sample.hpp)
// snapshots into the per-rank timeseries ring. Adding a gauge means adding
// an enumerator and its name; the sampler, exporters and hotlib-analyze
// iterate the enum and need no other change.
enum class Gauge : int {
  // ABM reliability-layer queue depths (sampled on the parc tick).
  kAbmSendBacklogBatches = 0,  // sent but unacknowledged batches
  kAbmSendBacklogBytes,        // wire bytes held for possible retransmission
  kAbmRetryBacklogBatches,     // unacked batches already retransmitted >= once
  kAbmRecvOooBatches,          // receiver-side batches buffered past a seq gap
  kAbmPendingPostBytes,        // posted records not yet shipped in a batch
  // Key hash table of the most recently built local tree.
  kHashEntries,
  kHashSlots,
  kHashMeanProbe,  // cumulative probes / operations (1.0 = no collisions)
  // Resident tree size (local cells/bodies of the last build) and the
  // distributed-traversal remote-cell cache.
  kTreeCells,
  kTreeBodies,
  kDtreeCacheCells,
  // Malloc-counting memory gauge (global operator new/delete, see sample.cpp).
  kMemLiveBytes,
  kMemPeakBytes,
  // Shared-memory task pool (util::TaskPool::global(), mirrored by
  // sample_now): worker-thread count and lifetime totals of executed tasks,
  // cross-lane steals and summed busy time — per-thread utilization is
  // pool_busy_seconds / (pool_workers * wall).
  kPoolWorkers,
  kPoolTasksRun,
  kPoolSteals,
  kPoolBusySeconds,
  kCount
};

inline constexpr int kGaugeCount = static_cast<int>(Gauge::kCount);

// Stable machine-readable name (timeseries JSON key) of each gauge.
const char* gauge_name(Gauge g);

// Add to the calling thread's rank channel; no-op when the thread is not
// attached (see trace.hpp) — a single thread-local load and branch.
void count(Counter c, std::uint64_t n = 1);

// Flush a locally-accumulated paper tally into the registry. Hot loops call
// this once per evaluation, so registry flop counts equal the returned
// tallies exactly.
void count_tally(const InteractionTally& t);

// Sum of every attached rank channel's counters (plus detached ones from
// completed runs of the active session).
CounterBlock global_counters();

}  // namespace hotlib::telemetry
