#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hotlib::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers up to 2^53 print exactly without an exponent or trailing ".0".
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest round-trip: the fewest significant digits that strtod maps back
  // to the identical double. 17 digits always suffice (and always succeed),
  // but most values need far fewer — 0.1 prints as "0.1", not
  // "0.10000000000000001" — which keeps reports readable and baseline diffs
  // byte-stable.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) {
      r.error = error_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = fail("trailing characters after top-level value");
      return r;
    }
    r.ok = true;
    r.value = std::move(v);
    return r;
  }

 private:
  std::string fail(const std::string& why) {
    if (error_.empty())
      error_ = "JSON error at byte " + std::to_string(pos_) + ": " + why;
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (depth_ > 256) {
      fail("nesting too deep");
      return false;
    }
    if (eof()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(JsonValue::Storage(std::move(s)));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(JsonValue::Storage(true));
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(JsonValue::Storage(false));
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue(JsonValue::Storage(nullptr));
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    ++depth_;
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      out = JsonValue(JsonValue::Storage(std::move(obj)));
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected string key");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (obj->find(key) != obj->end()) {
        // RFC 8259 only says names "should" be unique, but every document we
        // produce or consume is machine-written with unique keys — a
        // duplicate means a broken writer, and silently keeping one value
        // would corrupt a baseline comparison.
        fail("duplicate object key \"" + key + "\"");
        return false;
      }
      skip_ws();
      if (eof() || peek() != ':') {
        fail("expected ':' after key");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      (*obj)[std::move(key)] = std::move(v);
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        out = JsonValue(JsonValue::Storage(std::move(obj)));
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    ++depth_;
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      out = JsonValue(JsonValue::Storage(std::move(arr)));
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      arr->push_back(std::move(v));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        out = JsonValue(JsonValue::Storage(std::move(arr)));
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("invalid hex digit in \\u escape");
                return false;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs: encode each
            // half independently is wrong, but our writer never emits them;
            // reject to stay strict).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate \\u escapes unsupported");
              return false;
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape character"); return false;
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.
    if (eof() || !is_digit(peek())) {
      fail("invalid number");
      return false;
    }
    if (peek() == '0') {
      ++pos_;
      if (!eof() && is_digit(peek())) {
        fail("leading zero in number");
        return false;
      }
    } else {
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !is_digit(peek())) {
        fail("digit required after decimal point");
        return false;
      }
      while (!eof() && is_digit(peek())) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !is_digit(peek())) {
        fail("digit required in exponent");
        return false;
      }
      while (!eof() && is_digit(peek())) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue(JsonValue::Storage(std::strtod(token.c_str(), nullptr)));
    return true;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace hotlib::telemetry
