// json.hpp — minimal JSON writer and strict validating parser.
//
// The exporters (report.hpp) need a correct writer with full string
// escaping and shortest-round-trip number formatting; the test suite, the
// bench-smoke checker and hotlib-analyze need a *strict* reader that
// rejects anything RFC 8259 rejects (trailing commas, bare values,
// unescaped control characters) plus duplicate object keys, which the RFC
// merely discourages but which would corrupt a baseline comparison. No
// third-party dependency — the whole repo rule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace hotlib::telemetry {

// ---- writer ---------------------------------------------------------------

// Escape and double-quote `s` per RFC 8259.
std::string json_escape(std::string_view s);

// Render a double as a JSON number (never NaN/Inf — those become 0, JSON has
// no spelling for them). Shortest round-trip: the fewest digits whose strtod
// re-parse yields the identical double.
std::string json_number(double v);

// Incremental writer for objects/arrays; keeps comma state so call sites
// stay linear. Usage:
//   JsonWriter w; w.begin_object(); w.key("a"); w.value(1.0); w.end_object();
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    out_ += json_escape(k);
    out_ += ':';
    just_keyed_ = true;
  }
  void value(double v) { atom(json_number(v)); }
  void value(std::uint64_t v) { atom(std::to_string(v)); }
  void value(std::int64_t v) { atom(std::to_string(v)); }
  void value(int v) { atom(std::to_string(v)); }
  void value(bool v) { atom(v ? "true" : "false"); }
  void value(std::string_view s) { atom(json_escape(s)); }
  void value(const char* s) { atom(json_escape(s)); }
  void null() { atom("null"); }

  const std::string& str() const { return out_; }

 private:
  void comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (need_comma_) out_ += ',';
    need_comma_ = true;
  }
  void atom(std::string_view text) {
    comma();
    out_ += text;
  }
  void open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

// ---- strict parser --------------------------------------------------------

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  using Storage = std::variant<std::nullptr_t, bool, double, std::string,
                               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(Storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v_); }
  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const JsonArray& as_array() const { return *std::get<std::shared_ptr<JsonArray>>(v_); }
  const JsonObject& as_object() const { return *std::get<std::shared_ptr<JsonObject>>(v_); }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (!is_object()) return nullptr;
    const auto& obj = as_object();
    auto it = obj.find(key);
    return it != obj.end() ? &it->second : nullptr;
  }

 private:
  Storage v_;
};

// Strict parse of a complete JSON document: exactly one top-level value,
// nothing but whitespace after it. On failure returns nullopt and fills
// `error` with a byte offset + reason.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  // empty on success
};

JsonParseResult json_parse(std::string_view text);

}  // namespace hotlib::telemetry
