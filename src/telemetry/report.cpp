#include "telemetry/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "telemetry/json.hpp"
#include "telemetry/sample.hpp"

namespace hotlib::telemetry {

namespace {

const char* env_or_null(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

std::string report_path(const std::string& file) {
  if (const char* dir = env_or_null("HOTLIB_REPORT_DIR"))
    return std::string(dir) + "/" + file;
  return file;
}

}  // namespace

RunReport build_run_report(const std::string& name, double wall_seconds) {
  RunReport r;
  r.name = name;
  r.wall_seconds = wall_seconds;

  // Merge channels by rank id: a session can span several Runtime::run
  // invocations, each attaching fresh channels for ranks 0..p-1.
  std::map<int, RankReport> ranks;
  std::array<PhaseReport, kPhaseCount> phases;
  std::array<std::map<int, double>, kPhaseCount> per_rank_phase_wall;
  for (int p = 0; p < kPhaseCount; ++p)
    phases[static_cast<std::size_t>(p)].name = phase_name(static_cast<Phase>(p));

  for (const RankChannel* ch : Registry::instance().channels()) {
    r.counters += ch->counters();
    // Task-pool worker channels (rank < 0) contribute to the counter rollup
    // above but stay out of the per-rank accounting: nranks, the phase-sum
    // invariant and the health timeseries all describe ranks, and worker
    // spans are kOther by contract (see docs/parallelism.md).
    if (ch->rank() < 0) continue;
    RankReport& rr = ranks[ch->rank()];
    rr.rank = ch->rank();
    rr.events += ch->size();
    rr.events_dropped += ch->dropped();
    for (int p = 0; p < kPhaseCount; ++p) {
      if (static_cast<Phase>(p) == Phase::kOther) continue;
      const PhaseTotal& t = ch->phase_total(static_cast<Phase>(p));
      if (t.calls == 0) continue;
      PhaseReport& pr = phases[static_cast<std::size_t>(p)];
      pr.wall_seconds += t.wall_seconds;
      pr.virt_seconds += t.virt_seconds;
      pr.calls += t.calls;
      per_rank_phase_wall[static_cast<std::size_t>(p)][ch->rank()] += t.wall_seconds;
      rr.wall_seconds += t.wall_seconds;
      rr.virt_seconds += t.virt_seconds;
    }
  }

  for (int p = 0; p < kPhaseCount; ++p) {
    PhaseReport& pr = phases[static_cast<std::size_t>(p)];
    const auto& by_rank = per_rank_phase_wall[static_cast<std::size_t>(p)];
    if (pr.calls == 0) continue;
    for (const auto& [rank, wall] : by_rank)
      pr.max_rank_wall = std::max(pr.max_rank_wall, wall);
    pr.mean_rank_wall =
        by_rank.empty() ? 0.0 : pr.wall_seconds / static_cast<double>(by_rank.size());
    r.phases.push_back(pr);
  }

  r.nranks = static_cast<int>(ranks.size());
  for (const auto& [rank, rr] : ranks) r.ranks.push_back(rr);

  // Health-sampler series, rank-ordered. A session spanning several
  // Runtime::run invocations yields one series per channel; same-rank
  // channels stay separate entries (their tick clocks are independent).
  for (const RankChannel* ch : Registry::instance().channels()) {
    if (ch->rank() < 0 || ch->samples().empty()) continue;
    RankSeries s;
    s.rank = ch->rank();
    s.stride_ticks = ch->sample_stride();
    s.samples = ch->samples();
    r.timeseries.push_back(std::move(s));
  }
  std::stable_sort(r.timeseries.begin(), r.timeseries.end(),
                   [](const RankSeries& a, const RankSeries& b) { return a.rank < b.rank; });
  return r;
}

std::string run_report_json(const RunReport& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("hotlib-run-report-v1");
  w.key("name");
  w.value(r.name);
  w.key("nranks");
  w.value(r.nranks);
  w.key("wall_seconds");
  w.value(r.wall_seconds);
  w.key("modelled_seconds");
  w.value(r.modelled_seconds);
  w.key("interactions");
  w.value(r.interactions());
  w.key("flops");
  w.value(r.flops());
  w.key("gflops_wall");
  w.value(r.gflops_wall());

  w.key("phases");
  w.begin_array();
  for (const PhaseReport& p : r.phases) {
    w.begin_object();
    w.key("name");
    w.value(p.name);
    w.key("wall_seconds");
    w.value(p.wall_seconds);
    w.key("virt_seconds");
    w.value(p.virt_seconds);
    w.key("max_rank_wall");
    w.value(p.max_rank_wall);
    w.key("mean_rank_wall");
    w.value(p.mean_rank_wall);
    w.key("imbalance");
    w.value(p.imbalance());
    w.key("calls");
    w.value(p.calls);
    w.end_object();
  }
  w.end_array();

  w.key("ranks");
  w.begin_array();
  for (const RankReport& rr : r.ranks) {
    w.begin_object();
    w.key("rank");
    w.value(rr.rank);
    w.key("wall_seconds");
    w.value(rr.wall_seconds);
    w.key("virt_seconds");
    w.value(rr.virt_seconds);
    w.key("events");
    w.value(rr.events);
    w.key("events_dropped");
    w.value(rr.events_dropped);
    w.end_object();
  }
  w.end_array();

  // Columnar per-rank health series: parallel arrays keep the section
  // compact and stable-keyed (every gauge track is always present).
  w.key("timeseries");
  w.begin_array();
  for (const RankSeries& s : r.timeseries) {
    w.begin_object();
    w.key("rank");
    w.value(s.rank);
    w.key("stride_ticks");
    w.value(s.stride_ticks);
    w.key("tick");
    w.begin_array();
    for (const HealthSample& h : s.samples) w.value(h.tick);
    w.end_array();
    w.key("wall_s");
    w.begin_array();
    for (const HealthSample& h : s.samples) w.value(h.wall);
    w.end_array();
    w.key("virt_s");
    w.begin_array();
    for (const HealthSample& h : s.samples) w.value(h.virt);
    w.end_array();
    w.key("gauges");
    w.begin_object();
    for (int g = 0; g < kGaugeCount; ++g) {
      w.key(gauge_name(static_cast<Gauge>(g)));
      w.begin_array();
      for (const HealthSample& h : s.samples)
        w.value(h.gauges[static_cast<std::size_t>(g)]);
      w.end_array();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("counters");
  w.begin_object();
  for (int c = 0; c < kCounterCount; ++c) {
    w.key(counter_name(static_cast<Counter>(c)));
    w.value(r.counters.v[static_cast<std::size_t>(c)]);
  }
  w.end_object();

  w.key("metrics");
  w.begin_object();
  for (const auto& [k, v] : r.metrics) {
    w.key(k);
    w.value(v);
  }
  w.end_object();

  w.end_object();
  return w.str();
}

std::string chrome_trace_json() {
  // trace_event "JSON Object Format": {"traceEvents": [...]} with 'X'
  // (complete) and 'i' (instant) events; ts/dur in microseconds. pid 0;
  // tid = rank puts each rank on its own timeline row, and task-pool worker
  // channels (rank < 0, tid > 0) get their own rows above the ranks so
  // per-thread utilization is visible next to the rank timelines.
  const auto trace_tid = [](int rank, int tid) -> std::int64_t {
    return rank >= 0 ? static_cast<std::int64_t>(rank)
                     : 10000 + static_cast<std::int64_t>(tid);
  };
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Name the worker rows (metadata events; Perfetto shows them as labels).
  for (const RankChannel* ch : Registry::instance().channels()) {
    if (ch->rank() >= 0) continue;
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(0);
    w.key("tid");
    w.value(trace_tid(ch->rank(), ch->tid()));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value("pool-worker-" + std::to_string(ch->tid() - 1));
    w.end_object();
    w.end_object();
  }
  for (const RankChannel* ch : Registry::instance().channels()) {
    for (const TraceEvent& e : ch->events()) {
      w.begin_object();
      w.key("name");
      w.value(e.name);
      w.key("cat");
      w.value(phase_name(e.phase));
      w.key("ph");
      w.value(std::string_view(&e.type, 1));
      w.key("pid");
      w.value(0);
      w.key("tid");
      w.value(trace_tid(e.rank, e.tid));
      w.key("ts");
      w.value(e.wall_begin * 1e6);
      if (e.type == 'X') {
        w.key("dur");
        w.value(e.wall_dur * 1e6);
      } else {
        w.key("s");
        w.value("t");  // instant scope: thread
      }
      w.key("args");
      w.begin_object();
      w.key("virt_s");
      w.value(e.virt_begin);
      if (e.type == 'X') {
        w.key("virt_dur_s");
        w.value(e.virt_dur);
      }
      w.key("arg");
      w.value(e.arg);
      w.end_object();
      w.end_object();
    }
  }
  // Health samples as 'C' counter events: one "health" track per rank, the
  // gauges as series (Perfetto draws them as stacked counter plots).
  for (const RankChannel* ch : Registry::instance().channels()) {
    for (const HealthSample& h : ch->samples()) {
      w.begin_object();
      w.key("name");
      w.value("health");
      w.key("ph");
      w.value("C");
      w.key("pid");
      w.value(0);
      w.key("tid");
      w.value(trace_tid(ch->rank(), ch->tid()));
      w.key("ts");
      w.value(h.wall * 1e6);
      w.key("args");
      w.begin_object();
      for (int g = 0; g < kGaugeCount; ++g) {
        w.key(gauge_name(static_cast<Gauge>(g)));
        w.value(h.gauges[static_cast<std::size_t>(g)]);
      }
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  return w.str();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "telemetry: short write to %s\n", path.c_str());
  return ok;
}

bool tiny_run() {
  const char* v = env_or_null("HOTLIB_BENCH_TINY");
  return v != nullptr && !(v[0] == '0' && v[1] == '\0');
}

Session::Session(std::string name) : name_(std::move(name)) {
  Registry::instance().reset();
  const char* off = std::getenv("HOTLIB_TELEMETRY");
  set_enabled(!(off != nullptr && off[0] == '0' && off[1] == '\0'));
  mem_gauge_reset();  // memory gauge reads as net allocation since run start
  attach_rank(0);
  wall0_ = Registry::instance().now();
}

Session::~Session() {
  if (!finished_) finish();
  set_enabled(false);
  detach_rank();
}

void Session::metric(const std::string& key, double value) { metrics_[key] = value; }

void Session::set_modelled_seconds(double s) { modelled_seconds_ = s; }

RunReport Session::finish() {
  finished_ = true;
  // Final health snapshot on the harness thread, so even a run that never
  // ticked the sampler (serial, no parc traffic) reports a timeseries.
  sample_now();
  RunReport r = build_run_report(name_, Registry::instance().now() - wall0_);
  r.modelled_seconds = modelled_seconds_;
  r.metrics = metrics_;
  write_text_file(report_path("BENCH_" + name_ + ".json"), run_report_json(r));
  if (const char* trace = env_or_null("HOTLIB_TRACE")) {
    const std::string path = (trace[0] == '1' && trace[1] == '\0')
                                 ? report_path("TRACE_" + name_ + ".json")
                                 : std::string(trace);
    write_text_file(path, chrome_trace_json());
  }
  return r;
}

}  // namespace hotlib::telemetry
