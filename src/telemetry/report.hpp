// report.hpp — machine-readable run artefacts.
//
// Two exporters over the trace registry (trace.hpp):
//
//  * chrome_trace_json(): the Chrome trace_event JSON-array format — open in
//    chrome://tracing or https://ui.perfetto.dev. One timeline row per rank;
//    spans are 'X' complete events, fault/retransmit markers are 'i'
//    instants; every event carries the parc virtual time as args.
//
//  * RunReport / run_report_json(): the per-run summary every bench harness
//    writes as BENCH_<name>.json — per-phase wall/virtual times with
//    across-rank imbalance, the full counter rollup, interaction/flop
//    totals and Gflop rates. Schema id "hotlib-run-report-v1"; the
//    bench-smoke ctest slice validates each file with the strict parser.
//
// Session is the harness entry point: constructing one resets + enables the
// registry and attaches the calling thread; destruction (or finish())
// writes BENCH_<name>.json — and, when HOTLIB_TRACE is set, the Chrome
// trace — into HOTLIB_REPORT_DIR or the working directory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::telemetry {

struct PhaseReport {
  std::string name;
  double wall_seconds = 0.0;   // summed over ranks' top-level spans
  double virt_seconds = 0.0;   // parc virtual time, summed over ranks
  double max_rank_wall = 0.0;  // slowest rank's total for this phase
  double mean_rank_wall = 0.0;
  std::uint64_t calls = 0;
  // Load-balance figure of merit: max/mean over the ranks that ran the
  // phase (1.0 = perfectly balanced, like the paper's efficiency tables).
  double imbalance() const {
    return mean_rank_wall > 0 ? max_rank_wall / mean_rank_wall : 1.0;
  }
};

struct RankReport {
  int rank = 0;
  double wall_seconds = 0.0;  // sum of this rank's top-level phase spans
  double virt_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t events_dropped = 0;
};

// One rank's health-sampler series (sample.hpp): every snapshot the rank's
// channel committed, oldest first, plus the final decimation stride.
struct RankSeries {
  int rank = 0;
  std::uint64_t stride_ticks = 0;
  std::vector<HealthSample> samples;
};

struct RunReport {
  std::string name;          // harness name, e.g. "treecode"
  int nranks = 0;            // distinct rank ids seen
  double wall_seconds = 0.0;      // harness wall time (Session lifetime)
  double modelled_seconds = 0.0;  // harness-supplied virtual makespan (0 = n/a)
  std::vector<PhaseReport> phases;  // only phases that actually ran
  std::vector<RankReport> ranks;
  std::vector<RankSeries> timeseries;  // ranks that committed >= 1 sample
  CounterBlock counters;
  std::map<std::string, double> metrics;  // harness-specific extras

  std::uint64_t interactions() const { return counters.interactions(); }
  double flops() const { return counters.flops(); }
  // Aggregate rate over the harness wall time (0 when nothing was counted).
  double gflops_wall() const {
    return wall_seconds > 0 ? flops() / wall_seconds / 1e9 : 0.0;
  }
};

// Build a report from the current registry contents. `wall_seconds` is the
// harness's own elapsed time (phases may cover only part of it).
RunReport build_run_report(const std::string& name, double wall_seconds);

std::string run_report_json(const RunReport& r);
std::string chrome_trace_json();

// Write `text` to path; returns false (and keeps going) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

// True when HOTLIB_BENCH_TINY is set to a non-empty, non-"0" value: bench
// harnesses shrink to smoke-test problem sizes (the bench-smoke ctest
// slice).
bool tiny_run();

class Session {
 public:
  // Resets the registry, enables collection (unless HOTLIB_TELEMETRY=0) and
  // attaches the calling thread as rank 0.
  explicit Session(std::string name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Attach a harness-specific scalar to the report ("gflops_model", ...).
  void metric(const std::string& key, double value);
  // The modelled (virtual-time) makespan, when the harness ran a machine model.
  void set_modelled_seconds(double s);

  // Build + write BENCH_<name>.json (and the Chrome trace when HOTLIB_TRACE
  // is set); called by the destructor if the harness didn't. Returns the
  // report for harnesses that want to print from it.
  RunReport finish();

 private:
  std::string name_;
  std::map<std::string, double> metrics_;
  double modelled_seconds_ = 0.0;
  double wall0_ = 0.0;
  bool finished_ = false;
};

}  // namespace hotlib::telemetry
