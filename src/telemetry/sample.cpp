#include "telemetry/sample.hpp"

#ifndef HOTLIB_TELEMETRY_DISABLED

#include <atomic>
#include <cstdlib>
#include <new>

#include "util/task_pool.hpp"

#if __has_include(<malloc.h>)
#include <malloc.h>
#define HOTLIB_HAVE_MALLOC_USABLE_SIZE 1
#endif

namespace hotlib::telemetry {

namespace {

// Process-wide memory accounting, maintained by the replaced operator
// new/delete below. Signed: after mem_gauge_reset() a free of a block
// allocated before the reset drives `live` below zero; the gauge clamps.
std::atomic<std::int64_t> g_mem_live{0};
std::atomic<std::int64_t> g_mem_peak{0};

inline void mem_track(std::int64_t bytes) {
  const std::int64_t live =
      g_mem_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (bytes <= 0) return;
  std::int64_t peak = g_mem_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_mem_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

inline std::int64_t block_size(void* p, std::size_t requested) {
#ifdef HOTLIB_HAVE_MALLOC_USABLE_SIZE
  // Usable size is recoverable from the pointer alone, so unsized deletes
  // stay exact; the requested size is only a fallback.
  (void)requested;
  return static_cast<std::int64_t>(malloc_usable_size(p));
#else
  (void)p;
  return static_cast<std::int64_t>(requested);
#endif
}

}  // namespace

void gauge_set(Gauge g, double v) {
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  ch->gauges_[static_cast<std::size_t>(static_cast<int>(g))] = v;
}

void gauge_add(Gauge g, double dv) {
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  ch->gauges_[static_cast<std::size_t>(static_cast<int>(g))] += dv;
}

bool sample_tick() {
  if (!enabled()) return false;
  RankChannel* ch = channel();
  if (ch == nullptr) return false;
  ++ch->tick_;
  return ch->tick_ % ch->sample_stride_ == 0;
}

void sample_now() {
  if (!enabled()) return;
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kMemLiveBytes))] =
      static_cast<double>(mem_live_bytes());
  ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kMemPeakBytes))] =
      static_cast<double>(mem_peak_bytes());
  // Task-pool utilization, only if a pool exists — peeking must not spawn
  // worker threads as a side effect of being sampled.
  if (const util::TaskPool* pool = util::TaskPool::global_if_created()) {
    const util::TaskPool::Stats ps = pool->stats();
    ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kPoolWorkers))] =
        static_cast<double>(pool->concurrency() - 1);
    ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kPoolTasksRun))] =
        static_cast<double>(ps.tasks_executed);
    ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kPoolSteals))] =
        static_cast<double>(ps.steals);
    ch->gauges_[static_cast<std::size_t>(static_cast<int>(Gauge::kPoolBusySeconds))] =
        ps.busy_seconds;
  }
  HealthSample s;
  s.tick = ch->tick_;
  s.wall = Registry::instance().now();
  s.virt = ch->vclock();
  s.gauges = ch->gauges_;
  if (ch->samples_.size() >= ch->sample_capacity_ && ch->sample_capacity_ >= 2) {
    // Ring full: decimate (keep every other sample) and double the stride so
    // the remaining budget still covers the rest of the run uniformly.
    std::size_t w = 0;
    for (std::size_t r = 0; r < ch->samples_.size(); r += 2)
      ch->samples_[w++] = ch->samples_[r];
    ch->samples_.resize(w);
    ch->sample_stride_ *= 2;
  }
  ch->samples_.push_back(s);
}

void mem_gauge_reset() {
  g_mem_live.store(0, std::memory_order_relaxed);
  g_mem_peak.store(0, std::memory_order_relaxed);
}

std::uint64_t mem_live_bytes() {
  const std::int64_t v = g_mem_live.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

std::uint64_t mem_peak_bytes() {
  const std::int64_t v = g_mem_peak.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace hotlib::telemetry

// ---- replaced global allocation functions ----------------------------------
//
// Linked into every binary that uses the telemetry library. The accounting
// is two relaxed atomic adds on top of the allocator's own cost; the
// alignment-taking overloads are left to the default implementation (their
// traffic goes uncounted, which a health gauge can afford).

namespace {

void* counted_new(std::size_t n) {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  hotlib::telemetry::mem_track(hotlib::telemetry::block_size(p, n));
  return p;
}

void* counted_new_nothrow(std::size_t n) noexcept {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p != nullptr)
    hotlib::telemetry::mem_track(hotlib::telemetry::block_size(p, n));
  return p;
}

void counted_delete(void* p, std::size_t requested) noexcept {
  if (p == nullptr) return;
  hotlib::telemetry::mem_track(-hotlib::telemetry::block_size(p, requested));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) { return counted_new(n); }
void* operator new[](std::size_t n) { return counted_new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_new_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_new_nothrow(n);
}
void operator delete(void* p) noexcept { counted_delete(p, 0); }
void operator delete[](void* p) noexcept { counted_delete(p, 0); }
void operator delete(void* p, std::size_t n) noexcept { counted_delete(p, n); }
void operator delete[](void* p, std::size_t n) noexcept { counted_delete(p, n); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_delete(p, 0); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_delete(p, 0); }

#endif  // HOTLIB_TELEMETRY_DISABLED
