// sample.hpp — the runtime health sampler.
//
// Counters say how much work a run did; gauges say what state it was *in*
// while doing it. The sampler periodically snapshots every gauge of the
// calling rank — ABM send/receive queue depths and retransmit backlog, hash
// table occupancy and probe lengths, resident tree cell/body counts, the
// malloc-counting memory gauge — into a per-rank ring of HealthSamples.
//
// Sampling is driven by the *parc progress tick* (one sample_tick() per
// Rank::am_poll), the same scheduling-independent clock the reliable ABM
// layer retries on, so a sample sequence is meaningful in virtual time. The
// ring is adaptive: when it fills, every other sample is dropped and the
// stride doubles, so any run — a millisecond smoke test or an hour-long
// sweep — ends with a bounded series that covers the whole run.
//
// Serial harnesses (no parc ranks) call sample_now() at section boundaries;
// Session::finish() always takes one last snapshot, so every run report
// carries a non-empty `timeseries` section.
//
// Everything here is a thread-local load and a branch when telemetry is
// disabled, and compiles out entirely under HOTLIB_TELEMETRY_DISABLED —
// including the global operator new/delete instrumentation behind the
// memory gauge.
#pragma once

#include <cstdint>

#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace hotlib::telemetry {

#ifndef HOTLIB_TELEMETRY_DISABLED

// Set / bump a gauge on the calling rank's channel; no-op when unattached.
void gauge_set(Gauge g, double v);
void gauge_add(Gauge g, double dv);

// Advance the calling rank's progress tick. Returns true when a snapshot is
// due this tick — the caller then refreshes whatever gauges it owns (queue
// depths are cheapest to compute only on demand) and calls sample_now().
bool sample_tick();

// Snapshot the current gauges into the rank's sample ring immediately.
void sample_now();

// ---- malloc-counting memory gauge ----
//
// Global operator new/delete (sample.cpp) maintain process-wide live/peak
// byte counts; sample_now() mirrors them into kMemLiveBytes/kMemPeakBytes.
// Session construction calls mem_gauge_reset(), so the gauge reads as net
// allocation since the run started (clamped at zero: frees of pre-run
// blocks cannot drive it negative).
void mem_gauge_reset();
std::uint64_t mem_live_bytes();
std::uint64_t mem_peak_bytes();

#else  // HOTLIB_TELEMETRY_DISABLED: the sampler compiles to nothing.

inline void gauge_set(Gauge, double) {}
inline void gauge_add(Gauge, double) {}
inline bool sample_tick() { return false; }
inline void sample_now() {}
inline void mem_gauge_reset() {}
inline std::uint64_t mem_live_bytes() { return 0; }
inline std::uint64_t mem_peak_bytes() { return 0; }

#endif

}  // namespace hotlib::telemetry
