// telemetry.hpp — umbrella header for the telemetry subsystem.
//
// Per-rank tracing (ring buffer + RAII spans over wall and parc virtual
// time), the unified counter registry, and the machine-readable exporters
// (Chrome trace_event timelines, BENCH_*.json run reports). See
// docs/telemetry.md.
#pragma once

#include "telemetry/counters.hpp"  // IWYU pragma: export
#include "telemetry/json.hpp"      // IWYU pragma: export
#include "telemetry/report.hpp"    // IWYU pragma: export
#include "telemetry/sample.hpp"    // IWYU pragma: export
#include "telemetry/trace.hpp"     // IWYU pragma: export
