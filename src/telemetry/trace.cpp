#include "telemetry/trace.hpp"

namespace hotlib::telemetry {

namespace {
// The channel pointer is only valid for the registry generation it was
// handed out in: Session construction resets the registry and frees every
// channel, but task-pool worker threads outlive Sessions and would keep a
// dangling pointer. Tagging the cache with the generation turns that stale
// pointer into a nullptr (rank threads re-attach via Session/RankScope,
// workers via ensure_worker).
thread_local RankChannel* t_channel = nullptr;
thread_local std::uint64_t t_generation = 0;
}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kDecompose: return "decompose";
    case Phase::kTreeBuild: return "tree_build";
    case Phase::kLetExchange: return "let_exchange";
    case Phase::kTraverse: return "traverse";
    case Phase::kForceEval: return "force_eval";
    case Phase::kComm: return "comm";
    case Phase::kOther: return "other";
    case Phase::kCount: break;
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kBodyBody: return "body_body";
    case Counter::kBodyCell: return "body_cell";
    case Counter::kCellsOpened: return "cells_opened";
    case Counter::kMacTests: return "mac_tests";
    case Counter::kMessagesSent: return "messages_sent";
    case Counter::kMessagesReceived: return "messages_received";
    case Counter::kBytesSent: return "bytes_sent";
    case Counter::kBytesReceived: return "bytes_received";
    case Counter::kAbmBatchesSent: return "abm_batches_sent";
    case Counter::kAbmRecordsPosted: return "abm_records_posted";
    case Counter::kAbmRecordsDispatched: return "abm_records_dispatched";
    case Counter::kAbmRetransmits: return "abm_retransmits";
    case Counter::kAbmAcksSent: return "abm_acks_sent";
    case Counter::kAbmDuplicateBatches: return "abm_duplicate_batches";
    case Counter::kAbmCorruptBatches: return "abm_corrupt_batches";
    case Counter::kAbmOutOfOrderBatches: return "abm_out_of_order_batches";
    case Counter::kAbmAbandonedRecords: return "abm_abandoned_records";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kHashHits: return "hash_hits";
    case Counter::kHashMisses: return "hash_misses";
    case Counter::kDtreeRepliesServed: return "dtree_replies_served";
    case Counter::kLetCellsImported: return "let_cells_imported";
    case Counter::kLetBodiesImported: return "let_bodies_imported";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::kAbmSendBacklogBatches: return "abm_send_backlog_batches";
    case Gauge::kAbmSendBacklogBytes: return "abm_send_backlog_bytes";
    case Gauge::kAbmRetryBacklogBatches: return "abm_retry_backlog_batches";
    case Gauge::kAbmRecvOooBatches: return "abm_recv_ooo_batches";
    case Gauge::kAbmPendingPostBytes: return "abm_pending_post_bytes";
    case Gauge::kHashEntries: return "hash_entries";
    case Gauge::kHashSlots: return "hash_slots";
    case Gauge::kHashMeanProbe: return "hash_mean_probe";
    case Gauge::kTreeCells: return "tree_cells";
    case Gauge::kTreeBodies: return "tree_bodies";
    case Gauge::kDtreeCacheCells: return "dtree_cache_cells";
    case Gauge::kMemLiveBytes: return "mem_live_bytes";
    case Gauge::kMemPeakBytes: return "mem_peak_bytes";
    case Gauge::kPoolWorkers: return "pool_workers";
    case Gauge::kPoolTasksRun: return "pool_tasks_run";
    case Gauge::kPoolSteals: return "pool_steals";
    case Gauge::kPoolBusySeconds: return "pool_busy_seconds";
    case Gauge::kCount: break;
  }
  return "?";
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Registry& Registry::instance() {
  static Registry r;
  return r;
}

RankChannel* Registry::attach(int rank, const double* vclock, int tid) {
  if (!enabled()) {
    t_channel = nullptr;
    return nullptr;
  }
  std::lock_guard lock(mu_);
  channels_.push_back(
      std::make_unique<RankChannel>(rank, capacity_, sample_capacity_, vclock, tid));
  t_channel = channels_.back().get();
  t_generation = generation_.load(std::memory_order_relaxed);
  return t_channel;
}

void Registry::detach() { t_channel = nullptr; }

void Registry::reset() {
  std::lock_guard lock(mu_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  channels_.clear();
  t_channel = nullptr;
}

std::vector<const RankChannel*> Registry::channels() const {
  std::lock_guard lock(mu_);
  std::vector<const RankChannel*> out;
  out.reserve(channels_.size());
  for (const auto& c : channels_) out.push_back(c.get());
  return out;
}

RankChannel* channel() {
  if (t_channel != nullptr && t_generation != Registry::instance().generation())
    t_channel = nullptr;  // registry was reset since this thread attached
  return t_channel;
}

void ensure_worker(int worker_index) {
  if (worker_index < 0 || !enabled()) return;
  if (channel() != nullptr) return;  // current-generation channel exists
  Registry::instance().attach(kWorkerRank, nullptr, worker_index + 1);
}

#ifndef HOTLIB_TELEMETRY_DISABLED

void count(Counter c, std::uint64_t n) {
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  ch->counters_[c] += n;
}

void count_tally(const InteractionTally& t) {
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  ch->counters_[Counter::kBodyBody] += t.body_body;
  ch->counters_[Counter::kBodyCell] += t.body_cell;
  ch->counters_[Counter::kCellsOpened] += t.cells_opened;
  ch->counters_[Counter::kMacTests] += t.mac_tests;
}

#else

void count(Counter, std::uint64_t) {}
void count_tally(const InteractionTally&) {}

#endif

CounterBlock global_counters() {
  CounterBlock total;
  for (const RankChannel* ch : Registry::instance().channels())
    total += ch->counters();
  return total;
}

}  // namespace hotlib::telemetry
