// trace.hpp — per-rank event tracing with RAII spans.
//
// Every rank (parc thread, or the main thread of a serial harness) owns a
// RankChannel: a fixed-capacity ring buffer of trace events, a block of the
// unified counters (counters.hpp) and per-phase time totals. Channels are
// created when a thread attaches and only ever written by that thread, so
// recording takes no locks; the registry's channel list is mutex-guarded
// for the (cold) attach/export paths.
//
// A Span records one timed scope with both wall-clock and — when the thread
// is a parc rank — LogP virtual time. The disabled path is one relaxed
// atomic load and a branch (measured by bench_faults at ~1 ns/span);
// defining HOTLIB_TELEMETRY_DISABLED compiles spans and counters out
// entirely.
//
// Phase totals are accumulated only by *top-level* spans of each phase
// (nested same-phase spans don't double-count), which is what lets the
// RunReport assert that per-phase times sum to the covered wall time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/counters.hpp"

namespace hotlib::telemetry {

// Pipeline phases of the paper's per-timestep breakdown. Every span carries
// one; kOther spans are traced but excluded from the phase rollup.
enum class Phase : int {
  kDecompose = 0,  // weighted sample-sort domain decomposition
  kTreeBuild,      // local hashed oct-tree construction
  kLetExchange,    // locally-essential-tree push exchange
  kTraverse,       // distributed (ABM request-driven) traversal
  kForceEval,      // flop-counted kernel evaluation
  kComm,           // collectives / point-to-point outside the phases above
  kOther,
  kCount
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

const char* phase_name(Phase p);

struct TraceEvent {
  const char* name = "";      // static string; never freed
  Phase phase = Phase::kOther;
  char type = 'X';            // Chrome trace_event ph: 'X' complete, 'i' instant
  std::int32_t rank = 0;
  std::int32_t tid = 0;       // 0 = the rank thread; >0 = task-pool worker id
  std::int32_t depth = 0;     // span nesting depth at begin
  double wall_begin = 0.0;    // seconds since the registry epoch
  double wall_dur = 0.0;      // seconds ('X' only)
  double virt_begin = 0.0;    // parc virtual time at begin (0 when no rank)
  double virt_dur = 0.0;
  std::uint64_t arg = 0;      // free payload: bytes, counts, ...
};

// Accumulated time of one phase on one rank.
struct PhaseTotal {
  double wall_seconds = 0.0;
  double virt_seconds = 0.0;
  std::uint64_t calls = 0;
};

// One snapshot of every gauge on one rank, taken by the health sampler
// (sample.hpp). `tick` is the rank's progress-tick count at the snapshot —
// the same scheduling-independent clock the reliable ABM layer retries on —
// so a sample sequence is meaningful in virtual time, not just wall time.
struct HealthSample {
  std::uint64_t tick = 0;
  double wall = 0.0;  // seconds since the registry epoch
  double virt = 0.0;  // parc virtual time (0 when the rank has no clock)
  std::array<double, kGaugeCount> gauges{};
};

class RankChannel {
 public:
  RankChannel(int rank, std::size_t capacity, std::size_t sample_capacity,
              const double* vclock, int tid = 0)
      : rank_(rank), tid_(tid), vclock_(vclock), ring_(capacity),
        sample_capacity_(sample_capacity) {
    samples_.reserve(sample_capacity_);
  }

  int rank() const { return rank_; }
  // Thread id within the rank: 0 for the rank thread itself, a positive
  // worker id for task-pool worker channels (whose rank is kWorkerRank).
  int tid() const { return tid_; }
  double vclock() const { return vclock_ != nullptr ? *vclock_ : 0.0; }

  void record(const TraceEvent& e) {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size())
      ++size_;
    else
      ++dropped_;
  }

  // Events oldest-to-newest (a copy; the ring keeps recording).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i)
      out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  std::int32_t depth() const { return depth_; }

  const CounterBlock& counters() const { return counters_; }
  const PhaseTotal& phase_total(Phase p) const {
    return phases_[static_cast<std::size_t>(static_cast<int>(p))];
  }

  // ---- health sampler state (driven by sample.hpp) ----
  double gauge(Gauge g) const { return gauges_[static_cast<std::size_t>(static_cast<int>(g))]; }
  const std::vector<HealthSample>& samples() const { return samples_; }
  // Current decimation stride: a snapshot is committed every stride-th tick.
  // Doubles whenever the sample ring fills (every other sample is dropped),
  // so the series always covers the whole run at bounded memory.
  std::uint64_t sample_stride() const { return sample_stride_; }

 private:
  friend class Span;
  friend void count(Counter, std::uint64_t);
  friend void count_tally(const InteractionTally&);
  friend void gauge_set(Gauge, double);
  friend void gauge_add(Gauge, double);
  friend bool sample_tick();
  friend void sample_now();

  int rank_;
  int tid_;
  const double* vclock_;  // the owning thread's parc virtual clock, if any
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  CounterBlock counters_;
  std::array<PhaseTotal, kPhaseCount> phases_{};
  std::array<double, kGaugeCount> gauges_{};
  std::vector<HealthSample> samples_;
  std::uint64_t tick_ = 0;
  std::uint64_t sample_stride_ = 16;
  std::size_t sample_capacity_;
  std::int32_t depth_ = 0;
  // Open spans with a real phase (!= kOther). Phase totals accumulate only
  // when this is zero at span begin, so nested spans — a comm collective
  // inside the decomposition, say — attribute their time to the outermost
  // phase once and the per-phase times stay disjoint.
  std::int32_t phase_depth_ = 0;
};

// Global collection switch. Relaxed is enough: enabling happens before the
// instrumented work starts (program order on the enabling thread, rank
// spawn provides the cross-thread ordering).
inline std::atomic<bool> g_enabled{false};

inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

class Registry {
 public:
  static Registry& instance();

  // Create a channel for the calling thread. `vclock`, when non-null, must
  // outlive the channel (parc passes the rank's clock; it is read only by
  // the owning thread). No-op returning nullptr while telemetry is disabled,
  // so idle test/bench runs don't grow the registry. `tid` distinguishes
  // task-pool worker channels (see ensure_worker) from rank threads.
  RankChannel* attach(int rank, const double* vclock = nullptr, int tid = 0);
  void detach();  // calling thread's channel stays in the registry for export

  // Drop every channel (start of a fresh Session). Must not race live ranks.
  // Bumps the registry generation: threads that cached a channel pointer
  // from a previous generation (task-pool workers outlive Sessions) see
  // their cache invalidated by channel() instead of dereferencing a freed
  // channel.
  void reset();

  // Monotonic generation counter, bumped by reset().
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  void set_capacity(std::size_t events_per_rank) { capacity_ = events_per_rank; }
  std::size_t capacity() const { return capacity_; }
  void set_sample_capacity(std::size_t samples_per_rank) {
    sample_capacity_ = samples_per_rank;
  }
  std::size_t sample_capacity() const { return sample_capacity_; }

  // Stable snapshot of all channels, attach-ordered. The channels of joined
  // ranks are safe to read; a live rank's channel may still be recording.
  std::vector<const RankChannel*> channels() const;

  // Wall clock shared by every channel: seconds since the registry epoch.
  double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Registry() : epoch_(Clock::now()) {}

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RankChannel>> channels_;
  std::size_t capacity_ = 1 << 14;
  std::size_t sample_capacity_ = 256;
  Clock::time_point epoch_;
  std::atomic<std::uint64_t> generation_{1};
};

// The calling thread's channel (nullptr when unattached, or when the
// registry has been reset since this thread attached).
RankChannel* channel();

// Attach/detach sugar for the registry singleton.
inline RankChannel* attach_rank(int rank, const double* vclock = nullptr) {
  return Registry::instance().attach(rank, vclock);
}
inline void detach_rank() { Registry::instance().detach(); }

// Rank id carried by task-pool worker channels. Negative so exporters can
// keep workers out of the per-rank rollup (nranks, phase sums, timeseries)
// while their trace events still land in the Chrome export on their own
// timeline rows.
inline constexpr int kWorkerRank = -1;

// Attach the calling task-pool worker thread (util::TaskPool worker index
// `worker_index` >= 0) as a worker channel of the current session.
// Idempotent and generation-aware: re-attaches after a Registry reset,
// no-ops when already attached or when telemetry is disabled. Rank threads
// (worker_index < 0) are left untouched.
void ensure_worker(int worker_index);

// Scoped attach for rank threads and harness main threads.
class RankScope {
 public:
  explicit RankScope(int rank, const double* vclock = nullptr) {
    attach_rank(rank, vclock);
  }
  ~RankScope() { detach_rank(); }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;
};

#ifndef HOTLIB_TELEMETRY_DISABLED

// RAII timed scope. Construction snapshots wall + virtual time; destruction
// records one 'X' event and accumulates the phase total (top-level spans of
// a phase only).
class Span {
 public:
  Span(const char* name, Phase phase, std::uint64_t arg = 0) {
    if (!enabled()) return;
    ch_ = channel();
    if (ch_ == nullptr) return;
    name_ = name;
    phase_ = phase;
    arg_ = arg;
    if (phase != Phase::kOther) {
      top_level_ = ch_->phase_depth_ == 0;
      ++ch_->phase_depth_;
    }
    depth_ = ch_->depth_++;
    wall0_ = Registry::instance().now();
    virt0_ = ch_->vclock();
  }

  ~Span() {
    if (ch_ == nullptr) return;
    TraceEvent e;
    e.name = name_;
    e.phase = phase_;
    e.type = 'X';
    e.rank = ch_->rank();
    e.tid = ch_->tid();
    e.depth = depth_;
    e.wall_begin = wall0_;
    e.wall_dur = Registry::instance().now() - wall0_;
    e.virt_begin = virt0_;
    e.virt_dur = ch_->vclock() - virt0_;
    e.arg = arg_;
    ch_->record(e);
    --ch_->depth_;
    if (phase_ != Phase::kOther) --ch_->phase_depth_;
    if (top_level_) {
      PhaseTotal& t = ch_->phases_[static_cast<std::size_t>(static_cast<int>(phase_))];
      t.wall_seconds += e.wall_dur;
      t.virt_seconds += e.virt_dur;
      ++t.calls;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Payload settable after construction (e.g. bytes only known at the end).
  void set_arg(std::uint64_t arg) { arg_ = arg; }

 private:
  RankChannel* ch_ = nullptr;
  const char* name_ = "";
  Phase phase_ = Phase::kOther;
  std::uint64_t arg_ = 0;
  double wall0_ = 0.0;
  double virt0_ = 0.0;
  std::int32_t depth_ = 0;
  bool top_level_ = false;
};

// Zero-duration marker event (fault injections, retransmissions, ...).
inline void instant(const char* name, Phase phase, std::uint64_t arg = 0) {
  if (!enabled()) return;
  RankChannel* ch = channel();
  if (ch == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.phase = phase;
  e.type = 'i';
  e.rank = ch->rank();
  e.tid = ch->tid();
  e.depth = ch->depth();
  e.wall_begin = Registry::instance().now();
  e.virt_begin = ch->vclock();
  e.arg = arg;
  ch->record(e);
}

#else  // HOTLIB_TELEMETRY_DISABLED: spans and markers compile to nothing.

class Span {
 public:
  Span(const char*, Phase, std::uint64_t = 0) {}
  void set_arg(std::uint64_t) {}
};

inline void instant(const char*, Phase, std::uint64_t = 0) {}

#endif

}  // namespace hotlib::telemetry
