// counters.hpp — interaction and flop accounting.
//
// The paper's performance statistics are "based on internal diagnostics
// compiled by our program. Essentially, we keep track of the number of
// interactions computed." We follow that rule exactly: interactions are
// tallied where they are evaluated, flops are derived as
// interactions x flops-per-interaction (38 for a Karp gravitational
// monopole interaction), and no flops are credited to tree construction,
// decomposition or other parallel constructs.
#pragma once

#include <cstdint>

namespace hotlib {

// Flop cost of one softened gravitational interaction using Karp's
// reciprocal-sqrt decomposition (table lookup + Chebyshev + Newton-Raphson):
// the count reported by the paper.
inline constexpr int kFlopsPerGravityInteraction = 38;

// Per-rank (or per-thread) tally of the work a solver actually performed.
struct InteractionTally {
  std::uint64_t body_body = 0;    // particle-particle (direct) interactions
  std::uint64_t body_cell = 0;    // particle-multipole interactions
  std::uint64_t cells_opened = 0; // MAC failures during traversal (overhead, no flops)
  std::uint64_t mac_tests = 0;    // MAC evaluations (overhead, no flops)

  std::uint64_t interactions() const { return body_body + body_cell; }

  // Flops at a given per-interaction cost (38 for gravity monopole).
  double flops(int flops_per_interaction = kFlopsPerGravityInteraction) const {
    return static_cast<double>(interactions()) * flops_per_interaction;
  }

  InteractionTally& operator+=(const InteractionTally& o) {
    body_body += o.body_body;
    body_cell += o.body_cell;
    cells_opened += o.cells_opened;
    mac_tests += o.mac_tests;
    return *this;
  }
  friend InteractionTally operator+(InteractionTally a, const InteractionTally& b) {
    return a += b;
  }
};

// Throughput report helper: interactions & elapsed time -> flops/sec.
struct Throughput {
  double flops = 0.0;
  double seconds = 0.0;
  double flops_per_second() const { return seconds > 0 ? flops / seconds : 0.0; }
  double mflops() const { return flops_per_second() / 1e6; }
  double gflops() const { return flops_per_second() / 1e9; }
};

}  // namespace hotlib
