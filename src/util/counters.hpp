// counters.hpp — compatibility alias.
//
// The interaction/flop accounting (InteractionTally, Throughput,
// kFlopsPerGravityInteraction) moved into the telemetry subsystem, which
// unifies it with the per-rank counter registry and run reports. This shim
// keeps old includes building for one release; include
// "telemetry/counters.hpp" directly in new code.
#pragma once

#include "telemetry/counters.hpp"  // IWYU pragma: export
