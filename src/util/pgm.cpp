#include "util/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hotlib {

bool PgmImage::write(const std::string& path) const { return write_scaled(path, false); }
bool PgmImage::write_log(const std::string& path) const { return write_scaled(path, true); }

bool PgmImage::write_scaled(const std::string& path, bool log_scale) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;

  std::vector<double> scaled(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i)
    scaled[i] = log_scale ? std::log1p(std::max(0.0, data_[i])) : data_[i];

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : scaled) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = (hi > lo) ? (hi - lo) : 1.0;

  std::fprintf(f, "P5\n%zu %zu\n255\n", width_, height_);
  std::vector<unsigned char> row(width_);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      const double v = (scaled[y * width_ + x] - lo) / span;
      row[x] = static_cast<unsigned char>(std::lround(255.0 * std::clamp(v, 0.0, 1.0)));
    }
    if (std::fwrite(row.data(), 1, width_, f) != width_) {
      std::fclose(f);
      return false;
    }
  }
  return std::fclose(f) == 0;
}

}  // namespace hotlib
