// pgm.hpp — grayscale image output for the projected-density figures.
//
// The paper's Figures 1 and 2 are log projected-density images of the
// cosmology runs; cosmo::project_density + PgmImage::write_log regenerate
// that visualization (as portable graymaps rather than GIFs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hotlib {

class PgmImage {
 public:
  PgmImage(std::size_t width, std::size_t height)
      : width_(width), height_(height), data_(width * height, 0.0) {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  double& at(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }
  double at(std::size_t x, std::size_t y) const { return data_[y * width_ + x]; }

  void deposit(std::size_t x, std::size_t y, double w) {
    if (x < width_ && y < height_) data_[y * width_ + x] += w;
  }

  // Write 8-bit PGM with linear mapping of [min,max] of the raw data.
  bool write(const std::string& path) const;

  // Write with logarithmic scaling (pixel = log(1 + v)), the mapping the
  // paper uses ("the color of each pixel represents the logarithm of the
  // projected particle density").
  bool write_log(const std::string& path) const;

 private:
  bool write_scaled(const std::string& path, bool log_scale) const;

  std::size_t width_;
  std::size_t height_;
  std::vector<double> data_;
};

}  // namespace hotlib
