#include "util/rng.hpp"

#include <cmath>

namespace hotlib {

double Xoshiro256ss::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_ = true;
  return u * f;
}

Vec3d Xoshiro256ss::in_sphere(double radius) {
  for (;;) {
    Vec3d p{uniform(-1.0, 1.0), uniform(-1.0, 1.0), uniform(-1.0, 1.0)};
    if (norm2(p) <= 1.0) return p * radius;
  }
}

}  // namespace hotlib
