// rng.hpp — deterministic random number generation for hotlib.
//
// Two families:
//   * SplitMix64 / Xoshiro256ss — fast general-purpose generators used for
//     particle initial conditions and property tests; fully deterministic from
//     a 64-bit seed so every test and benchmark is reproducible.
//   * NpbLcg — the exact linear congruential generator specified by the NAS
//     Parallel Benchmarks (x_{k+1} = a x_k mod 2^46, a = 5^13), required for
//     the bit-exact EP kernel and the IS key sequence.
#pragma once

#include <cstdint>
#include <utility>

#include "util/vec3.hpp"

namespace hotlib {

// SplitMix64: tiny, passes statistical tests, used to seed larger generators.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna; our workhorse PRNG.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Standard normal via Marsaglia polar method (cached pair).
  double normal();

  // Uniform point in the unit cube / in a sphere of given radius.
  Vec3d in_cube() { return {uniform(), uniform(), uniform()}; }
  Vec3d in_sphere(double radius);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_ = false;
};

// The NAS Parallel Benchmarks pseudorandom generator ("randlc"):
//   x_{k+1} = a * x_k mod 2^46, uniform value x_k * 2^-46.
// Implemented with 64-bit integer arithmetic; matches the Fortran original
// bit-for-bit (verified by the EP class-S checksums in the test suite).
class NpbLcg {
 public:
  static constexpr std::uint64_t kModMask = (1ULL << 46) - 1;
  static constexpr std::uint64_t kDefaultA = 1220703125ULL;  // 5^13

  explicit constexpr NpbLcg(std::uint64_t seed = 314159265ULL,
                            std::uint64_t a = kDefaultA)
      : x_(seed & kModMask), a_(a & kModMask) {}

  // Advance once and return uniform in (0,1).
  double next() {
    x_ = mulmod46(a_, x_);
    return static_cast<double>(x_) * 0x1.0p-46;
  }

  std::uint64_t raw() const { return x_; }

  // Jump the sequence ahead by n steps in O(log n): x <- a^n * x mod 2^46.
  void skip(std::uint64_t n) {
    std::uint64_t an = powmod46(a_, n);
    x_ = mulmod46(an, x_);
  }

  // a^n mod 2^46 — exposed for the EP kernel's per-block seeding.
  static constexpr std::uint64_t powmod46(std::uint64_t a, std::uint64_t n) {
    std::uint64_t result = 1, base = a & kModMask;
    while (n != 0) {
      if (n & 1) result = mulmod46(result, base);
      base = mulmod46(base, base);
      n >>= 1;
    }
    return result;
  }

  static constexpr std::uint64_t mulmod46(std::uint64_t a, std::uint64_t b) {
    // 46-bit operands: split a into 23-bit halves so products fit in 64 bits.
    std::uint64_t a_lo = a & ((1ULL << 23) - 1);
    std::uint64_t a_hi = a >> 23;
    std::uint64_t lo = a_lo * b;
    std::uint64_t hi = (a_hi * b) << 23;  // overflow above 2^46 is discarded by mask
    return (lo + hi) & kModMask;
  }

 private:
  std::uint64_t x_;
  std::uint64_t a_;
};

}  // namespace hotlib
