// scratch_pool.hpp — reusable per-task scratch buffers for pool regions.
//
// Parallel regions that need heavy scratch (interaction lists, SoA batches,
// partial tallies) acquire a buffer per task and release it after, instead
// of indexing an array by worker id: a caller helping its own Group::wait
// executes tasks too, and thread-indexed scratch would let two regions on
// the same thread alias. The free-list bounds allocations at the number of
// tasks ever in flight simultaneously (≈ lane count), and acquire/release
// is one uncontended lock each at typical task grain.
//
// Determinism note: for_each visits buffers in an order that depends on
// release timing, so only reduce order-insensitive state through it —
// integer tallies (associative), not floating-point sums.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace hotlib::util {

template <class T>
class ScratchPool {
 public:
  std::unique_ptr<T> acquire() {
    {
      std::lock_guard lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    return std::make_unique<T>();
  }

  void release(std::unique_ptr<T> s) {
    std::lock_guard lock(mu_);
    free_.push_back(std::move(s));
  }

  // Visit every buffer ever handed out. Only valid when the region is
  // quiescent (after the Group::wait / parallel_for join), when every
  // buffer is back on the free list.
  template <class F>
  void for_each(F&& f) {
    std::lock_guard lock(mu_);
    for (auto& s : free_) f(*s);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace hotlib::util
