#include "util/snapshot.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace hotlib {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string stripe_path(const std::string& base, std::uint32_t k) {
  return base + ".s" + std::to_string(k);
}

bool write_all(std::FILE* f, const void* data, std::size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool read_all(std::FILE* f, void* data, std::size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

std::uint64_t checksum64(std::span<const std::uint8_t> data) {
  // Fletcher-style with 32-bit accumulators folded into 64 bits.
  std::uint64_t a = 1, b = 0;
  for (std::uint8_t byte : data) {
    a = (a + byte) % 0xFFFFFFFBULL;  // largest 32-bit prime
    b = (b + a) % 0xFFFFFFFBULL;
  }
  return (b << 32) | a;
}

SnapshotWriter::SnapshotWriter(std::string base_path, std::uint32_t stripe_count,
                               std::uint32_t stripe_block)
    : base_(std::move(base_path)),
      stripes_(stripe_count == 0 ? 1 : stripe_count),
      block_(stripe_block == 0 ? 1 : stripe_block) {}

bool SnapshotWriter::write(const SnapshotHeader& header,
                           std::span<const std::uint8_t> payload) const {
  SnapshotHeader h = header;
  h.payload_bytes = payload.size();
  h.stripe_count = stripes_;
  h.stripe_block = block_;

  // Manifest: header + whole-payload checksum.
  {
    FilePtr mf(std::fopen((base_ + ".manifest").c_str(), "wb"));
    if (!mf) return false;
    const std::uint64_t csum = checksum64(payload);
    if (!write_all(mf.get(), &h, sizeof h)) return false;
    if (!write_all(mf.get(), &csum, sizeof csum)) return false;
  }

  // Round-robin striping in block_ sized units.
  std::vector<FilePtr> files;
  files.reserve(stripes_);
  for (std::uint32_t k = 0; k < stripes_; ++k) {
    files.emplace_back(std::fopen(stripe_path(base_, k).c_str(), "wb"));
    if (!files.back()) return false;
  }
  std::uint64_t offset = 0, blockno = 0;
  while (offset < payload.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(block_, payload.size() - offset);
    std::FILE* f = files[blockno % stripes_].get();
    if (!write_all(f, payload.data() + offset, n)) return false;
    offset += n;
    ++blockno;
  }
  return true;
}

SnapshotReader::SnapshotReader(std::string base_path) : base_(std::move(base_path)) {}

bool SnapshotReader::read(SnapshotHeader& header, std::vector<std::uint8_t>& payload) const {
  std::uint64_t expect_csum = 0;
  {
    FilePtr mf(std::fopen((base_ + ".manifest").c_str(), "rb"));
    if (!mf) return false;
    if (!read_all(mf.get(), &header, sizeof header)) return false;
    if (!read_all(mf.get(), &expect_csum, sizeof expect_csum)) return false;
  }
  if (header.magic != SnapshotHeader{}.magic) return false;
  if (header.stripe_count == 0 || header.stripe_block == 0) return false;

  payload.assign(header.payload_bytes, 0);
  std::vector<FilePtr> files;
  for (std::uint32_t k = 0; k < header.stripe_count; ++k) {
    files.emplace_back(std::fopen(stripe_path(base_, k).c_str(), "rb"));
    if (!files.back()) return false;
  }
  std::uint64_t offset = 0, blockno = 0;
  while (offset < header.payload_bytes) {
    const std::uint64_t n =
        std::min<std::uint64_t>(header.stripe_block, header.payload_bytes - offset);
    std::FILE* f = files[blockno % header.stripe_count].get();
    if (!read_all(f, payload.data() + offset, n)) return false;
    offset += n;
    ++blockno;
  }
  return checksum64(payload) == expect_csum;
}

std::vector<std::uint8_t> pack_doubles(std::span<const double> values) {
  std::vector<std::uint8_t> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> unpack_doubles(std::span<const std::uint8_t> bytes) {
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(double));
  return out;
}

}  // namespace hotlib
