// snapshot.hpp — striped binary snapshot I/O.
//
// The paper's simulations wrote data files exceeding 2^31 bytes ("several I/O
// routines in our code had to be extended to support 64-bit integers") and on
// Loki the files "were written striped over the 16 disks in the system".
// This module reproduces that I/O path: a snapshot is a 64-bit-clean header
// plus a payload striped round-robin across K stripe files, each stripe
// carrying a checksum so corruption is detected on read.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hotlib {

struct SnapshotHeader {
  std::uint64_t magic = 0x484F544C49423031ULL;  // "HOTLIB01"
  std::uint64_t particle_count = 0;
  std::uint64_t step = 0;
  double time = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t stripe_count = 1;
  std::uint32_t stripe_block = 1 << 20;  // bytes per striping unit
};

// Fletcher-64 style checksum over a byte stream (simple, fast, good enough to
// catch truncation and bit rot in tests).
std::uint64_t checksum64(std::span<const std::uint8_t> data);

class SnapshotWriter {
 public:
  // base_path gets ".manifest" plus ".s<k>" stripe files.
  SnapshotWriter(std::string base_path, std::uint32_t stripe_count,
                 std::uint32_t stripe_block = 1 << 20);

  // Write header+payload; returns false on any I/O failure.
  bool write(const SnapshotHeader& header, std::span<const std::uint8_t> payload) const;

 private:
  std::string base_;
  std::uint32_t stripes_;
  std::uint32_t block_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string base_path);

  // Read and validate; returns false on missing files or checksum mismatch.
  bool read(SnapshotHeader& header, std::vector<std::uint8_t>& payload) const;

 private:
  std::string base_;
};

// Helpers to serialize particle arrays (positions/velocities/masses) into a
// flat little-endian payload and back.
std::vector<std::uint8_t> pack_doubles(std::span<const double> values);
std::vector<double> unpack_doubles(std::span<const std::uint8_t> bytes);

}  // namespace hotlib
