// stats.hpp — streaming summary statistics (Welford) used by diagnostics,
// force-accuracy measurements and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace hotlib {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  // Root-mean-square of the samples themselves (not deviation from mean) —
  // this is the "RMS force error" statistic the paper quotes.
  double rms() const { return n_ > 0 ? std::sqrt(sum_sq_ / static_cast<double>(n_)) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

  RunningStats& merge(const RunningStats& o) {
    if (o.n_ == 0) return *this;
    if (n_ == 0) { *this = o; return *this; }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / total;
    sum_sq_ += o.sum_sq_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ += o.n_;
    return *this;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hotlib
