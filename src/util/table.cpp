#include "util/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hotlib {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no columns");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size())
    throw std::invalid_argument("TextTable: row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace hotlib
