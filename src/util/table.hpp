// table.hpp — fixed-width text table printer used by the benchmark harnesses
// to regenerate the paper's tables in a readable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hotlib {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Append a row; each cell is already formatted. Rows shorter than the
  // header are padded with empty cells, longer rows are an error.
  void add_row(std::vector<std::string> cells);

  // Convenience for mixed numeric rows.
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hotlib
