#include "util/task_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace hotlib::util {

namespace {

// Identity of the calling thread: which pool's worker it is (if any). Set
// once per worker thread at spawn and never changed, so current_worker() is
// a plain thread-local read.
thread_local TaskPool* t_pool = nullptr;
thread_local int t_worker = -1;

}  // namespace

// One worker's deque. The owner pushes/pops at the back under the lane
// mutex; thieves (other workers, or an external caller helping in wait)
// pop at the front. A mutex per lane keeps the handoff a locked edge that
// ThreadSanitizer can verify, and at tree-code grain sizes the lock is
// almost always uncontended.
struct TaskPool::Lane {
  std::mutex mu;
  std::deque<Task> dq;
};

TaskPool::TaskPool(int concurrency) {
  const int lanes = std::max(1, concurrency);
  const int nworkers = lanes - 1;
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) workers_.push_back(std::make_unique<Lane>());
  threads_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pair with the workers' locked wait so the stop flag cannot slip into
    // the window between their predicate check and their sleep.
    std::lock_guard lock(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& th : threads_) th.join();
}

TaskPool::Stats TaskPool::stats() const {
  Stats s;
  s.tasks_executed = tasks_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

int TaskPool::current_worker() { return t_worker; }

void TaskPool::submit(Task t) {
  if (workers_.empty()) {
    // Single-lane pool: run inline. The Group wrapper around every task
    // still does its bookkeeping, so spawn/wait semantics are unchanged.
    t();
    return;
  }
  if (t_pool == this && t_worker >= 0) {
    Lane& lane = *workers_[static_cast<std::size_t>(t_worker)];
    std::lock_guard lock(lane.mu);
    lane.dq.push_back(std::move(t));
  } else {
    std::lock_guard lock(inject_mu_);
    inject_.push_back(std::move(t));
  }
  wake_cv_.notify_one();
}

bool TaskPool::try_pop(int self, Task& out) {
  const int nworkers = static_cast<int>(workers_.size());
  if (self >= 0) {
    Lane& lane = *workers_[static_cast<std::size_t>(self)];
    std::lock_guard lock(lane.mu);
    if (!lane.dq.empty()) {
      out = std::move(lane.dq.back());
      lane.dq.pop_back();
      return true;
    }
  }
  {
    std::lock_guard lock(inject_mu_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  for (int k = 0; k < nworkers; ++k) {
    const int victim = self >= 0 ? (self + 1 + k) % nworkers : k;
    if (victim == self) continue;
    Lane& lane = *workers_[static_cast<std::size_t>(victim)];
    std::lock_guard lock(lane.mu);
    if (!lane.dq.empty()) {
      out = std::move(lane.dq.front());
      lane.dq.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskPool::worker_loop(int index) {
  t_pool = this;
  t_worker = index;
  Task t;
  int idle_spins = 0;
  while (true) {
    if (try_pop(index, t)) {
      idle_spins = 0;
      const auto t0 = std::chrono::steady_clock::now();
      t();  // exceptions are caught by the Group wrapper around every task
      t = nullptr;
      const auto t1 = std::chrono::steady_clock::now();
      busy_ns_.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()),
          std::memory_order_relaxed);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock lock(wake_mu_);
    if (stop_.load(std::memory_order_acquire)) break;
    // Bounded wait instead of a bare wait: a notify that raced past the
    // predicate check costs at most one period, never a hang.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void TaskPool::help_while(Group& g) {
  const int self = (t_pool == this) ? t_worker : -1;
  Task t;
  while (g.pending_.load(std::memory_order_acquire) != 0) {
    if (try_pop(self, t)) {
      // May be a task of another group (we help the whole pool, which is
      // what makes nested waits deadlock-free); it decrements its own group.
      t();
      t = nullptr;
      continue;
    }
    std::unique_lock lock(g.done_mu_);
    g.done_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
      return g.pending_.load(std::memory_order_acquire) == 0;
    });
  }
  // The last task decrements pending and notifies while holding done_mu_.
  // Taking the lock once more after seeing zero guarantees that task has
  // released the mutex — only then may the caller destroy the Group.
  std::lock_guard lock(g.done_mu_);
}

TaskPool::Group::~Group() {
  if (!waited_) pool_.help_while(*this);  // drain; any stored error is dropped
}

void TaskPool::Group::spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit([this, fn = std::move(fn)]() mutable {
    try {
      fn();
    } catch (...) {
      std::lock_guard lock(err_mu_);
      if (!err_) err_ = std::current_exception();
    }
    // Decrement-to-zero happens under done_mu_, and help_while re-acquires
    // done_mu_ once after observing zero: the waiter cannot destroy the
    // Group until this wrapper has released the mutex, so the notify never
    // touches a dead condition variable.
    std::lock_guard lock(done_mu_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      done_cv_.notify_all();
  });
}

void TaskPool::Group::wait() {
  waited_ = true;
  pool_.help_while(*this);
  std::exception_ptr e;
  {
    std::lock_guard lock(err_mu_);
    e = err_;
    err_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<TaskPool> g_global_owner;
std::atomic<TaskPool*> g_global{nullptr};

}  // namespace

int TaskPool::env_concurrency() {
  if (const char* v = std::getenv("HOTLIB_THREADS"); v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && n >= 1)
      return static_cast<int>(std::min(n, 512L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 512u));
}

TaskPool& TaskPool::global() {
  if (TaskPool* p = g_global.load(std::memory_order_acquire); p != nullptr)
    return *p;
  std::lock_guard lock(g_global_mu);
  if (g_global_owner == nullptr) {
    g_global_owner = std::make_unique<TaskPool>(env_concurrency());
    g_global.store(g_global_owner.get(), std::memory_order_release);
  }
  return *g_global_owner;
}

TaskPool* TaskPool::global_if_created() {
  return g_global.load(std::memory_order_acquire);
}

void TaskPool::set_global_concurrency(int concurrency) {
  std::lock_guard lock(g_global_mu);
  g_global.store(nullptr, std::memory_order_release);
  g_global_owner.reset();  // joins the old workers
  g_global_owner =
      std::make_unique<TaskPool>(concurrency < 1 ? env_concurrency() : concurrency);
  g_global.store(g_global_owner.get(), std::memory_order_release);
}

}  // namespace hotlib::util
