// task_pool.hpp — shared-memory task parallelism with work-stealing deques.
//
// One pool owns `concurrency - 1` worker threads; the thread that submits
// work is the remaining lane, so TaskPool(1) runs everything inline and the
// serial build stays the serial build. Each worker keeps a deque: the owner
// pushes and pops at the back (LIFO, so nested spawns run depth-first and
// stay cache-hot), thieves take from the front (FIFO, so a thief grabs the
// biggest remaining subtree). Deques are mutex-guarded rather than lock-free
// — contention is one uncontended lock per task at the grain sizes the tree
// code uses, and every handoff is a visible happens-before edge under
// ThreadSanitizer instead of a proof obligation.
//
// Determinism contract (what lets HOTLIB_THREADS vary without changing a
// single bit of output): the pool never decides *what* work exists or *how*
// it is split — callers partition by data (key ranges, sink groups) — it
// only decides *where* each task runs. Tasks therefore must write to
// disjoint outputs and accumulate order-sensitive values (floating-point
// sums) only within their own partition; cross-task reductions are done by
// the caller in partition order after wait(). Steal order affects timing
// only.
//
// The pool is telemetry-free by construction (util sits below telemetry in
// the link order); consumers attach worker channels from inside their task
// bodies via telemetry::ensure_worker().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hotlib::util {

class TaskPool {
 public:
  // Lifetime totals across all workers (relaxed counters; exact once the
  // pool is quiescent, e.g. after a Group::wait).
  struct Stats {
    std::uint64_t tasks_executed = 0;  // tasks run on worker threads
    std::uint64_t steals = 0;          // tasks taken from another lane's deque
    double busy_seconds = 0.0;         // summed worker time spent inside tasks
  };

  // `concurrency` lanes total: concurrency-1 worker threads plus the caller.
  // Values < 1 clamp to 1 (no threads, everything inline).
  explicit TaskPool(int concurrency);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }
  Stats stats() const;

  // A join scope: spawn any number of tasks, then wait() once. wait() helps
  // execute queued tasks instead of blocking, so nested groups (a task that
  // spawns and waits on subtasks) cannot deadlock the pool. The first
  // exception thrown by any task is captured and rethrown from wait();
  // remaining tasks still run to completion. The destructor waits (and
  // swallows the exception) if wait() was never called.
  class Group {
   public:
    explicit Group(TaskPool& pool) : pool_(pool) {}
    ~Group();
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    void spawn(std::function<void()> fn);
    void wait();

   private:
    friend class TaskPool;
    TaskPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex done_mu_;
    std::condition_variable done_cv_;
    std::mutex err_mu_;
    std::exception_ptr err_;
    bool waited_ = false;
  };

  // Split [0, n) into `grain`-sized chunks and run f(lo, hi) on each. Runs
  // inline when the pool has one lane or only one chunk results. The chunk
  // boundaries depend only on (n, grain) — never on the thread count — so a
  // caller that keeps per-chunk state deterministic gets bit-identical
  // results at every HOTLIB_THREADS.
  template <class F>
  void parallel_for(std::size_t n, std::size_t grain, F&& f) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t nchunks = (n + grain - 1) / grain;
    if (nchunks <= 1) {
      f(std::size_t{0}, n);
      return;
    }
    // Chunk boundaries depend on (n, grain) ONLY — never on lane count.
    // The serial path below walks the exact same chunks the parallel path
    // spawns, so callbacks that care about chunk extents (none should, but
    // the determinism tests check it) see identical splits at any size pool.
    if (concurrency() == 1) {
      for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t lo = c * grain;
        const std::size_t hi = lo + grain < n ? lo + grain : n;
        f(lo, hi);
      }
      return;
    }
    Group g(*this);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = lo + grain < n ? lo + grain : n;
      g.spawn([&f, lo, hi] { f(lo, hi); });
    }
    g.wait();
  }

  // Worker index of the calling thread in its pool: 0..concurrency-2 for
  // pool workers, -1 for every other thread (including the submitting
  // caller). Stable per thread for the pool's lifetime.
  static int current_worker();

  // Process-wide pool, sized from HOTLIB_THREADS (default: hardware
  // concurrency) on first use. global_if_created() peeks without creating —
  // telemetry sampling uses it so a serial run never spawns threads as a
  // side effect of being observed.
  static TaskPool& global();
  static TaskPool* global_if_created();
  // Replace the global pool (waits for the old one's workers to finish).
  // `concurrency` < 1 re-reads HOTLIB_THREADS. Callers must be quiescent —
  // this exists for the determinism sweep in tests and the bench --threads
  // sweep, both of which own the whole process.
  static void set_global_concurrency(int concurrency);
  // HOTLIB_THREADS parsed and clamped to [1, 512]; hardware concurrency
  // when unset or unparsable.
  static int env_concurrency();

 private:
  struct Lane;
  using Task = std::function<void()>;

  void worker_loop(int index);
  bool try_pop(int self, Task& out);  // self = -1 for external threads
  void submit(Task t);
  void help_while(Group& g);

  std::vector<std::unique_ptr<Lane>> workers_;
  std::vector<std::thread> threads_;

  std::deque<Task> inject_;  // submissions from non-worker threads
  mutable std::mutex inject_mu_;

  std::condition_variable wake_cv_;
  std::mutex wake_mu_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace hotlib::util
