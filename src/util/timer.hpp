// timer.hpp — wall-clock timing helpers.
#pragma once

#include <chrono>

namespace hotlib {

// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulating timer for phase breakdowns (tree build / traversal / comm ...).
class PhaseTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++count_;
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  long invocations() const { return count_; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  long count_ = 0;
  bool running_ = false;
};

}  // namespace hotlib
