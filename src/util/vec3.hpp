// vec3.hpp — minimal 3-component vector used throughout hotlib.
//
// Particle state is stored structure-of-arrays in hot paths; Vec3 is the
// convenience value type for geometry, diagnostics and non-critical code.
#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>

namespace hotlib {

template <class T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T xx, T yy, T zz) : x(xx), y(yy), z(zz) {}
  static constexpr Vec3 all(T v) { return {v, v, v}; }

  constexpr T& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(T s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, T s) { return a *= s; }
  friend constexpr Vec3 operator*(T s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, T s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  friend constexpr T dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }
  friend constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
  }
  friend T norm(const Vec3& a) { return std::sqrt(dot(a, a)); }
  friend constexpr T norm2(const Vec3& a) { return dot(a, a); }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;

}  // namespace hotlib
