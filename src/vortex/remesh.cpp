#include "vortex/remesh.hpp"

#include <cmath>
#include <unordered_map>

namespace hotlib::vortex {

double m4prime(double x) {
  x = std::abs(x);
  if (x >= 2.0) return 0.0;
  if (x >= 1.0) return 0.5 * (2.0 - x) * (2.0 - x) * (1.0 - x);
  return 1.0 - 2.5 * x * x + 1.5 * x * x * x;
}

VortexParticles remesh(const VortexParticles& p, const RemeshConfig& cfg) {
  VortexParticles out;
  out.sigma = p.sigma;
  if (p.size() == 0) return out;

  const double h = cfg.spacing > 0 ? cfg.spacing : p.sigma / cfg.overlap;

  // Deposit onto a sparse lattice keyed by integer node coordinates.
  struct NodeHash {
    std::size_t operator()(const std::array<long, 3>& k) const {
      std::size_t h1 = std::hash<long>{}(k[0]);
      std::size_t h2 = std::hash<long>{}(k[1]);
      std::size_t h3 = std::hash<long>{}(k[2]);
      return h1 ^ (h2 * 0x9E3779B97F4A7C15ULL) ^ (h3 * 0xC2B2AE3D27D4EB4FULL);
    }
  };
  std::unordered_map<std::array<long, 3>, Vec3d, NodeHash> lattice;
  lattice.reserve(p.size() * 4);

  for (std::size_t i = 0; i < p.size(); ++i) {
    const Vec3d& x = p.pos[i];
    const long ix = static_cast<long>(std::floor(x.x / h));
    const long iy = static_cast<long>(std::floor(x.y / h));
    const long iz = static_cast<long>(std::floor(x.z / h));
    for (long dz = -1; dz <= 2; ++dz)
      for (long dy = -1; dy <= 2; ++dy)
        for (long dx = -1; dx <= 2; ++dx) {
          const std::array<long, 3> node{ix + dx, iy + dy, iz + dz};
          const double wx = m4prime((x.x - node[0] * h) / h);
          const double wy = m4prime((x.y - node[1] * h) / h);
          const double wz = m4prime((x.z - node[2] * h) / h);
          const double w = wx * wy * wz;
          if (w != 0.0) lattice[node] += w * p.alpha[i];
        }
  }

  const double threshold = cfg.keep_fraction * p.max_strength();
  for (const auto& [node, a] : lattice) {
    if (norm(a) <= threshold) continue;
    out.pos.push_back({node[0] * h, node[1] * h, node[2] * h});
    out.alpha.push_back(a);
    out.vel.push_back({});
    out.dalpha.push_back({});
  }
  return out;
}

}  // namespace hotlib::vortex
