// remesh.hpp — particle remeshing for the vortex method.
//
// "During the computation, the particles are occasionally 'remeshed' in
// order to satisfy the core-overlap condition. This creates additional
// particles, so that by the end of the 340 timestep simulation, there were
// 360,000 vortex particles." We interpolate particle strengths onto a
// regular lattice with the M4' (Monaghan) kernel — which conserves total
// strength exactly (partition of unity) and linear impulse to second order —
// and re-create particles at lattice nodes carrying non-negligible strength.
#pragma once

#include "vortex/vpm.hpp"

namespace hotlib::vortex {

struct RemeshConfig {
  double spacing = 0.0;          // lattice spacing h; 0 => sigma / overlap
  double overlap = 1.5;          // target sigma / h
  double keep_fraction = 1e-4;   // drop nodes below keep_fraction * max |alpha|
};

// M4' interpolation weight for normalized distance x = |dx| / h.
double m4prime(double x);

// Remesh onto a lattice covering the particles; returns the new set (same
// sigma). Typically grows the particle count, as in the paper's run.
VortexParticles remesh(const VortexParticles& p, const RemeshConfig& cfg = {});

}  // namespace hotlib::vortex
