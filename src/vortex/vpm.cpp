#include "vortex/vpm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>

#include "gravity/batch.hpp"
#include "hot/traverse.hpp"
#include "telemetry/trace.hpp"
#include "util/scratch_pool.hpp"
#include "util/task_pool.hpp"

namespace hotlib::vortex {

Vec3d VortexParticles::total_strength() const {
  Vec3d s{};
  for (const auto& a : alpha) s += a;
  return s;
}

Vec3d VortexParticles::linear_impulse() const {
  Vec3d imp{};
  for (std::size_t i = 0; i < size(); ++i) imp += 0.5 * cross(pos[i], alpha[i]);
  return imp;
}

double VortexParticles::max_strength() const {
  double m = 0;
  for (const auto& a : alpha) m = std::max(m, norm(a));
  return m;
}

void vortex_kernel(const Vec3d& xi, const Vec3d& xj, const Vec3d& alpha_j,
                   double sigma2, Vec3d& u, const Vec3d* alpha_i, Vec3d* dalpha) {
  gravity::biot_savart_accumulate(xi, xj, alpha_j, sigma2, u, alpha_i, dalpha);
}

InteractionTally direct_velocities(VortexParticles& p) {
  InteractionTally tally;
  const double sigma2 = p.sigma * p.sigma;
  const std::size_t n = p.size();
  gravity::BiotSavartBatch batch;
  batch.reserve(n);
  for (std::size_t j = 0; j < n; ++j) batch.add(p.pos[j], p.alpha[j]);
  // Independent sinks over a shared read-only batch; disjoint vel/dalpha
  // slices per chunk, so any thread count gives bit-identical output.
  util::TaskPool& pool = util::TaskPool::global();
  const std::size_t grain = std::max<std::size_t>(
      64, n / (static_cast<std::size_t>(pool.concurrency()) * 8));
  pool.parallel_for(n, grain, [&](std::size_t lo, std::size_t hi) {
    telemetry::ensure_worker(util::TaskPool::current_worker());
    for (std::size_t i = lo; i < hi; ++i) {
      Vec3d u{}, da{};
      // Self term vanishes identically (d = 0, alpha_i x alpha_i = 0).
      gravity::batch_biot_savart(batch, p.pos[i], p.alpha[i], sigma2, u, da);
      p.vel[i] = u;
      p.dalpha[i] = da;
    }
  });
  tally.body_body += static_cast<std::uint64_t>(n) * n;
  return tally;
}

InteractionTally tree_velocities(VortexParticles& p, const hot::Mac& mac,
                                 int bucket_size) {
  InteractionTally tally;
  const std::size_t n = p.size();
  if (n == 0) return tally;
  const double sigma2 = p.sigma * p.sigma;

  // Build the tree weighted by |alpha| so cell centroids and MAC moments
  // reflect vorticity, not particle count.
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) weight[i] = norm(p.alpha[i]) + 1e-300;
  const morton::Domain domain = morton::bounding_domain(p.pos.data(), n, 0.05);
  hot::Tree tree;
  tree.build(p.pos, weight, domain, {.bucket_size = bucket_size});

  // Per-cell vector strength (the vector monopole), children before parents.
  std::vector<Vec3d> cell_alpha(tree.cells().size());
  tree.postorder([&](const hot::Cell& c, std::uint32_t ci) {
    Vec3d a{};
    if (c.is_leaf()) {
      for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t)
        a += p.alpha[tree.order()[t]];
    } else {
      for (std::uint32_t k = 0; k < c.nchildren; ++k)
        a += cell_alpha[c.first_child + k];
    }
    cell_alpha[ci] = a;
  });

  // Bodies and accepted cells share the Biot-Savart kernel, so one batch
  // carries both: particle sources first (list order), then cell centroids
  // with their summed vector strengths. Groups are the parallel unit, same
  // contract as gravity::tree_forces: each group's walk, gather and kernel
  // order are fixed, each writes only its own members' vel/dalpha.
  const auto do_group = [&](std::uint32_t li, hot::InteractionLists& lists,
                            gravity::BiotSavartBatch& batch, InteractionTally& t) {
    hot::build_interaction_lists(tree, li, mac, lists, t);
    batch.clear();
    batch.reserve(lists.bodies.size() + lists.cells.size());
    for (std::uint32_t j : lists.bodies) batch.add(p.pos[j], p.alpha[j]);
    for (std::uint32_t ci : lists.cells)
      batch.add(tree.cells()[ci].com, cell_alpha[ci]);
    const hot::Cell& group = tree.cells()[li];
    for (std::uint32_t s = group.body_begin; s < group.body_begin + group.body_count;
         ++s) {
      const std::uint32_t i = tree.order()[s];
      Vec3d u{}, da{};
      gravity::batch_biot_savart(batch, p.pos[i], p.alpha[i], sigma2, u, da);
      p.vel[i] = u;
      p.dalpha[i] = da;
      t.body_body += lists.bodies.size();
      t.body_cell += lists.cells.size();
    }
  };

  const std::vector<std::uint32_t> leaves = hot::leaf_indices(tree);
  util::TaskPool& pool = util::TaskPool::global();
  if (pool.concurrency() == 1 || leaves.size() < 2) {
    hot::InteractionLists lists;
    gravity::BiotSavartBatch batch;
    for (std::uint32_t li : leaves) do_group(li, lists, batch, tally);
  } else {
    struct Scratch {
      hot::InteractionLists lists;
      gravity::BiotSavartBatch batch;
      InteractionTally tally;
    };
    util::ScratchPool<Scratch> scratch;
    const std::size_t grain = std::max<std::size_t>(
        1, leaves.size() / (static_cast<std::size_t>(pool.concurrency()) * 8));
    pool.parallel_for(leaves.size(), grain, [&](std::size_t lo, std::size_t hi) {
      telemetry::ensure_worker(util::TaskPool::current_worker());
      telemetry::Span walk("vortex_walk", telemetry::Phase::kOther, hi - lo);
      std::unique_ptr<Scratch> s = scratch.acquire();
      for (std::size_t g = lo; g < hi; ++g)
        do_group(leaves[g], s->lists, s->batch, s->tally);
      scratch.release(std::move(s));
    });
    scratch.for_each([&](Scratch& s) { tally += s.tally; });
  }
  return tally;
}

void step_euler(VortexParticles& p, double dt, const hot::Mac& mac) {
  tree_velocities(p, mac);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.pos[i] += dt * p.vel[i];
    p.alpha[i] += dt * p.dalpha[i];
  }
}

InteractionTally step_rk2(VortexParticles& p, double dt, const hot::Mac& mac) {
  InteractionTally tally = tree_velocities(p, mac);
  VortexParticles mid = p;
  for (std::size_t i = 0; i < p.size(); ++i) {
    mid.pos[i] += 0.5 * dt * p.vel[i];
    mid.alpha[i] += 0.5 * dt * p.dalpha[i];
  }
  tally += tree_velocities(mid, mac);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.pos[i] += dt * mid.vel[i];
    p.alpha[i] += dt * mid.dalpha[i];
  }
  return tally;
}

VortexParticles make_ring(std::size_t n, double radius, double gamma,
                          const Vec3d& center, const Vec3d& axis, double sigma) {
  VortexParticles p;
  p.resize(n);
  p.sigma = sigma;
  // Orthonormal frame (e1, e2, axis).
  Vec3d e1 = std::abs(axis.x) < 0.9 ? Vec3d{1, 0, 0} : Vec3d{0, 1, 0};
  e1 = e1 - dot(e1, axis) * axis;
  e1 /= norm(e1);
  const Vec3d e2 = cross(axis, e1);
  const double dl = 2.0 * std::numbers::pi * radius / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = 2.0 * std::numbers::pi * static_cast<double>(i) / n;
    const Vec3d rhat = std::cos(phi) * e1 + std::sin(phi) * e2;
    const Vec3d that = cross(axis, rhat);  // right-handed: ring moves along +axis
    p.pos[i] = center + radius * rhat;
    p.alpha[i] = gamma * dl * that;
  }
  return p;
}

VortexParticles merge(const VortexParticles& a, const VortexParticles& b) {
  VortexParticles out = a;
  out.pos.insert(out.pos.end(), b.pos.begin(), b.pos.end());
  out.alpha.insert(out.alpha.end(), b.alpha.begin(), b.alpha.end());
  out.vel.insert(out.vel.end(), b.vel.begin(), b.vel.end());
  out.dalpha.insert(out.dalpha.end(), b.dalpha.begin(), b.dalpha.end());
  return out;
}

}  // namespace hotlib::vortex
