// vpm.hpp — vortex particle method (Winckelmans-style) on the oct-tree.
//
// The paper's price/performance entry includes "a simulation of the fusion
// of two vortex rings using a vortex particle method" on Hyglac; the method
// is implemented "with 2500 lines interfaced to exactly the same library".
// We follow that structure: vortex particles carry a position and a vector
// strength alpha = omega * volume plus a core radius sigma; velocities come
// from the regularized Biot-Savart law (Rosenhead-Moore algebraic kernel)
//
//     u(x) = -1/(4 pi) sum_j (x - x_j) x alpha_j / (|x-x_j|^2 + sigma^2)^{3/2}
//
// and vortex stretching uses the classical scheme d(alpha)/dt = (alpha.grad)u
// with the analytic gradient of the same kernel. The far field is evaluated
// through the hashed oct-tree: cells aggregate a total vector strength at a
// strength-weighted centroid (the vector monopole), accepted by the same MAC
// machinery as gravity.
//
// Each vortex interaction is "substantially more complex than a
// gravitational interaction"; the paper counted flops with hardware
// performance monitors. We use a static count of the kernel's adds/multiplies
// (velocity + full velocity gradient): kFlopsPerVortexInteraction.
#pragma once

#include <span>
#include <vector>

#include "hot/mac.hpp"
#include "hot/tree.hpp"
#include "telemetry/counters.hpp"
#include "util/vec3.hpp"

namespace hotlib::vortex {

// Adds+multiplies in one velocity+gradient evaluation of the RM kernel
// (counted from the implementation in kernels below; includes the Karp
// reciprocal sqrt at 14 flops).
inline constexpr int kFlopsPerVortexInteraction = 104;

struct VortexParticles {
  std::vector<Vec3d> pos;
  std::vector<Vec3d> alpha;   // vector strength (circulation x length / omega x vol)
  std::vector<Vec3d> vel;     // evaluated velocity
  std::vector<Vec3d> dalpha;  // evaluated stretching rate
  double sigma = 0.1;         // shared core radius (remeshing keeps it uniform)

  std::size_t size() const { return pos.size(); }
  void resize(std::size_t n) {
    pos.resize(n);
    alpha.resize(n);
    vel.resize(n);
    dalpha.resize(n);
  }

  // Invariants (see Winckelmans & Leonard 1993):
  Vec3d total_strength() const;   // sum alpha (zero for closed filaments)
  Vec3d linear_impulse() const;   // 1/2 sum x cross alpha (conserved)
  double max_strength() const;
};

// Evaluate one source on one target: velocity and (optionally) the velocity
// gradient contribution contracted with the target's alpha (stretching).
void vortex_kernel(const Vec3d& xi, const Vec3d& xj, const Vec3d& alpha_j,
                   double sigma2, Vec3d& u, const Vec3d* alpha_i, Vec3d* dalpha);

// Direct O(N^2) evaluation of velocity and stretching for all particles.
InteractionTally direct_velocities(VortexParticles& p);

// Treecode evaluation: vector-monopole far field via the hashed oct-tree.
// theta-based MAC; accuracy against direct_velocities is tested.
InteractionTally tree_velocities(VortexParticles& p, const hot::Mac& mac,
                                 int bucket_size = 16);

// Forward-Euler convection + stretching step (the production code uses RK2;
// step_rk2 below does the same with a midpoint evaluation).
void step_euler(VortexParticles& p, double dt, const hot::Mac& mac);
InteractionTally step_rk2(VortexParticles& p, double dt, const hot::Mac& mac);

// Vortex ring: N filament segments on a circle of radius R centered at
// `center`, ring axis `axis` (unit), total circulation gamma.
VortexParticles make_ring(std::size_t n, double radius, double gamma,
                          const Vec3d& center, const Vec3d& axis, double sigma);

// Merge two particle sets (e.g. two rings).
VortexParticles merge(const VortexParticles& a, const VortexParticles& b);

}  // namespace hotlib::vortex
