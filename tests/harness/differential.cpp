#include "harness/differential.hpp"

#include <algorithm>

#include "gravity/direct.hpp"
#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hotlib::harness {

hot::Bodies make_particles(std::size_t n, std::uint64_t seed) {
  if (seed % 2 == 0) return gravity::plummer_sphere(n, seed);
  hot::Bodies b;
  Xoshiro256ss rng(seed);
  const double m = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    b.push_back(rng.in_cube(), {}, m, static_cast<std::uint64_t>(i));
  return b;
}

parc::FaultPlan random_fault_plan(std::uint64_t seed, double intensity) {
  Xoshiro256ss rng(seed ^ 0xfa17ULL);
  // Five non-negative weights summing to 1 split the intensity budget.
  double w[5];
  double total = 0;
  for (double& x : w) total += (x = rng.uniform());
  parc::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = intensity * w[0] / total;
  plan.duplicate_prob = intensity * w[1] / total;
  plan.delay_prob = intensity * w[2] / total;
  plan.reorder_prob = intensity * w[3] / total;
  plan.truncate_prob = intensity * w[4] / total;
  plan.max_delay_deliveries = 1 + static_cast<int>(rng.next() % 6);
  return plan;
}

double mac_error_bound(double theta) { return std::max(0.02, 0.15 * theta * theta); }

namespace {

// Round-robin scatter of the global set onto this rank (ids are preserved,
// so results can be written back to global arrays).
hot::Bodies scatter(const hot::Bodies& all, int rank, int ranks) {
  hot::Bodies local;
  for (std::size_t i = static_cast<std::size_t>(rank); i < all.size();
       i += static_cast<std::size_t>(ranks))
    local.append_from(all, i);
  return local;
}

double rel_rms(const std::vector<Vec3d>& a, const std::vector<Vec3d>& b) {
  RunningStats diff, mag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff.add(norm(a[i] - b[i]));
    mag.add(norm(b[i]));
  }
  return mag.rms() > 0 ? diff.rms() / mag.rms() : 0.0;
}

}  // namespace

PipelineForces run_abm(const Scenario& sc) {
  const hot::Bodies all = make_particles(sc.n, sc.seed);
  const morton::Domain domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = sc.theta},
                                     .softening = sc.softening};

  PipelineForces out;
  out.acc.assign(sc.n, {});
  out.pot.assign(sc.n, 0.0);
  out.run = parc::Runtime::run(
      sc.ranks,
      [&](parc::Rank& r) {
        hot::Bodies local = scatter(all, r.rank(), sc.ranks);
        const auto res = gravity::abm_tree_forces(r, local, domain, cfg);
        for (std::size_t i = 0; i < local.size(); ++i) {
          out.acc[local.id[i]] = local.acc[i];
          out.pot[local.id[i]] = local.pot[i];
        }
        // Sum the traversal and delivery accounting over ranks; only rank 0
        // writes the aggregate back (the join publishes it to the caller).
        hot::DistributedTree::Stats t = res.traversal;
        t.requests_sent = r.allreduce(t.requests_sent, parc::Sum{});
        t.replies_served = r.allreduce(t.replies_served, parc::Sum{});
        t.cache_hits = r.allreduce(t.cache_hits, parc::Sum{});
        t.suspensions = r.allreduce(t.suspensions, parc::Sum{});
        t.rerequest_rounds = r.allreduce(t.rerequest_rounds, parc::Sum{});
        t.lost_keys = r.allreduce(t.lost_keys, parc::Sum{});
        t.tally.body_body = r.allreduce(t.tally.body_body, parc::Sum{});
        t.tally.body_cell = r.allreduce(t.tally.body_cell, parc::Sum{});
        t.tally.mac_tests = r.allreduce(t.tally.mac_tests, parc::Sum{});
        t.tally.cells_opened = r.allreduce(t.tally.cells_opened, parc::Sum{});
        const std::uint64_t posted = r.allreduce(r.am_posted(), parc::Sum{});
        const std::uint64_t dispatched = r.allreduce(r.am_dispatched(), parc::Sum{});
        const std::uint64_t abandoned = r.allreduce(r.am_abandoned(), parc::Sum{});
        if (r.rank() == 0) {
          out.traversal = t;
          out.am_posted = posted;
          out.am_dispatched = dispatched;
          out.am_abandoned = abandoned;
        }
      },
      sc.net, sc.faults);
  return out;
}

DifferentialResult run_differential(const Scenario& sc) {
  DifferentialResult res;
  res.bound = mac_error_bound(sc.theta);

  const hot::Bodies all = make_particles(sc.n, sc.seed);
  const morton::Domain domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = sc.theta},
                                     .softening = sc.softening};

  // Ground truth: serial O(N^2).
  res.direct_acc.assign(sc.n, {});
  std::vector<double> direct_pot(sc.n, 0.0);
  gravity::direct_forces(all.pos, all.mass, sc.softening, cfg.G, res.direct_acc,
                         direct_pot);

  // ABM request-driven traversal under the fault plan.
  res.abm = run_abm(sc);

  // LET-push pipeline on a clean fabric.
  res.let.acc.assign(sc.n, {});
  res.let.pot.assign(sc.n, 0.0);
  res.let.run = parc::Runtime::run(
      sc.ranks,
      [&](parc::Rank& r) {
        hot::Bodies local = scatter(all, r.rank(), sc.ranks);
        gravity::parallel_tree_forces(r, local, domain, cfg);
        for (std::size_t i = 0; i < local.size(); ++i) {
          res.let.acc[local.id[i]] = local.acc[i];
          res.let.pot[local.id[i]] = local.pot[i];
        }
      },
      sc.net);

  res.abm_vs_direct = rel_rms(res.abm.acc, res.direct_acc);
  res.let_vs_direct = rel_rms(res.let.acc, res.direct_acc);
  res.abm_vs_let = rel_rms(res.abm.acc, res.let.acc);
  return res;
}

}  // namespace hotlib::harness
