// differential.hpp — randomized differential test harness for the parallel
// force pipelines under an adversarial fabric.
//
// A Scenario is fully determined by a seed: the particle set (alternating
// Plummer sphere / uniform cube), the fault plan, and the MAC. The harness
// runs the same problem through three independent solvers —
//
//   * serial direct summation           (ground truth, no communication)
//   * LET-push pipeline                 (fault-free fabric)
//   * ABM request-driven traversal      (fabric driven by the fault plan)
//
// — and reports relative RMS force errors plus the ABM layer's delivery
// accounting, so tests can assert (a) force agreement within the MAC error
// bound, (b) exactly-once record delivery, and (c) that injected faults
// actually fired. Reliability is the property under test: with drops,
// duplicates, delays, reorders and truncations in flight, the ABM forces
// must be *bit-identical* to a fault-free run, because the retry layer
// delivers every record exactly once and in channel order.
#pragma once

#include <cstdint>
#include <vector>

#include "gravity/abm_forces.hpp"
#include "hot/bodies.hpp"
#include "hot/dtree.hpp"
#include "parc/parc.hpp"
#include "util/vec3.hpp"

namespace hotlib::harness {

struct Scenario {
  std::size_t n = 1200;
  int ranks = 4;
  std::uint64_t seed = 1;    // drives the particle set shape and positions
  double theta = 0.4;
  double softening = 0.02;
  parc::FaultPlan faults;    // applied to the ABM run's fabric
  parc::NetworkParams net;   // optional machine model (default: free network)
};

// Seeded particle set: even seeds draw a Plummer sphere, odd seeds a uniform
// cube, so the sweep exercises both clustered and homogeneous trees.
hot::Bodies make_particles(std::size_t n, std::uint64_t seed);

// Seeded fault plan whose drop/duplicate/delay/reorder/truncate probabilities
// sum to roughly `intensity` (split at random between the five).
parc::FaultPlan random_fault_plan(std::uint64_t seed, double intensity);

// Relative RMS acceleration error budget for an opening angle: the loose
// empirical envelope of the monopole+quadrupole MAC used across this repo's
// accuracy tests (theta = 0.4 sits near 2e-2).
double mac_error_bound(double theta);

struct PipelineForces {
  std::vector<Vec3d> acc;    // indexed by global body id
  std::vector<double> pot;
  parc::RunStats run;        // fabric totals incl. fault + retry counters
  // ABM pipeline only: traversal stats and AM record accounting summed over
  // ranks (requests, suspensions, lost keys, posted/dispatched/abandoned).
  hot::DistributedTree::Stats traversal;
  std::uint64_t am_posted = 0;
  std::uint64_t am_dispatched = 0;
  std::uint64_t am_abandoned = 0;
};

struct DifferentialResult {
  PipelineForces abm;
  PipelineForces let;
  std::vector<Vec3d> direct_acc;
  double abm_vs_direct = 0.0;  // relative RMS acceleration errors
  double let_vs_direct = 0.0;
  double abm_vs_let = 0.0;
  double bound = 0.0;          // mac_error_bound(theta) for convenience
};

// Run all three solvers on the scenario. Deterministic given the scenario:
// repeated calls produce bit-identical forces.
DifferentialResult run_differential(const Scenario& sc);

// Run only the ABM pipeline (used for bit-exactness and determinism checks).
PipelineForces run_abm(const Scenario& sc);

}  // namespace hotlib::harness
