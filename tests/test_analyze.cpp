// Tests for tools/analyze: report loading against the strict parser, the
// percentile helper, and — most importantly — the perf-gate tolerance
// policy: exact counters fail on any drift, traffic counters get a band,
// wall-clock is an upper bound only (a faster machine never fails), and
// --tol overrides rescale individual keys.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "analyze.hpp"

namespace hotlib::tools {
namespace {

Report make_report() {
  Report r;
  r.name = "unit";
  r.nranks = 4;
  r.wall_seconds = 0.1;
  r.modelled_seconds = 10.0;
  r.interactions = 1000;
  r.flops = 38000;
  Report::Phase p;
  p.name = "traverse";
  p.calls = 2;
  p.wall_seconds = 0.05;
  p.virt_seconds = 4.0;
  p.max_rank_wall = 0.02;
  p.mean_rank_wall = 0.0125;
  r.phases.push_back(p);
  r.counters = {{"body_body", 900.0}, {"messages_sent", 200.0}};
  r.metrics = {{"quality", 1.0}, {"morton_keys_per_s", 1e6}};
  Report::Series s;
  s.rank = 0;
  s.stride_ticks = 16;
  s.tick = {16, 32};
  s.wall_s = {0.01, 0.02};
  s.virt_s = {0.5, 1.0};
  s.gauges["tree_cells"] = {10, 20};
  r.timeseries.push_back(s);
  return r;
}

TEST(Analyze, SelfCheckIsClean) {
  const Report r = make_report();
  const CheckResult res = check_report(r, r, CheckPolicy{});
  EXPECT_TRUE(res.ok()) << (res.violations.empty() ? "" : res.violations[0]);
  EXPECT_GT(res.checked, 5);
}

TEST(Analyze, ExactCounterDriftIsViolation) {
  const Report base = make_report();
  Report r = base;
  r.counters["body_body"] += 1;  // deterministic counter: any drift fails
  const CheckResult res = check_report(r, base, CheckPolicy{});
  ASSERT_EQ(res.violations.size(), 1u);
  EXPECT_NE(res.violations[0].find("body_body"), std::string::npos);
}

TEST(Analyze, TrafficCounterHasBandButNotUnlimited) {
  const Report base = make_report();
  Report r = base;
  r.counters["messages_sent"] = 260;  // +30% of 200, inside the 35% band
  EXPECT_TRUE(check_report(r, base, CheckPolicy{}).ok());
  r.counters["messages_sent"] = 400;  // +100%: out
  EXPECT_FALSE(check_report(r, base, CheckPolicy{}).ok());
}

TEST(Analyze, WallClockIsUpperBoundOnly) {
  const Report base = make_report();
  Report r = base;
  r.wall_seconds = base.wall_seconds / 100.0;  // faster machine: fine
  r.phases[0].wall_seconds /= 100.0;
  r.phases[0].max_rank_wall /= 100.0;
  EXPECT_TRUE(check_report(r, base, CheckPolicy{}).ok());
  r.wall_seconds = base.wall_seconds * 1000.0;  // real regression: caught
  const CheckResult res = check_report(r, base, CheckPolicy{});
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].find("wall_seconds"), std::string::npos);
}

TEST(Analyze, RateMetricsGetFactorBand) {
  const Report base = make_report();
  Report r = base;
  r.metrics["morton_keys_per_s"] = 5e4;  // 20x slower: inside factor-100 band
  EXPECT_TRUE(check_report(r, base, CheckPolicy{}).ok());
  r.metrics["morton_keys_per_s"] = 1e6 / 500.0;  // 500x: out
  EXPECT_FALSE(check_report(r, base, CheckPolicy{}).ok());
}

TEST(Analyze, MissingAndNewKeysAreViolations) {
  const Report base = make_report();
  Report r = base;
  r.counters.erase("body_body");
  r.metrics["brand_new"] = 1.0;
  const CheckResult res = check_report(r, base, CheckPolicy{});
  EXPECT_EQ(res.violations.size(), 2u);
}

TEST(Analyze, PhaseStructureMustMatch) {
  const Report base = make_report();
  Report r = base;
  r.phases[0].calls = 3;  // phase ran a different number of times
  EXPECT_FALSE(check_report(r, base, CheckPolicy{}).ok());
  r = base;
  r.phases.clear();
  EXPECT_FALSE(check_report(r, base, CheckPolicy{}).ok());
}

TEST(Analyze, TolOverrideLoosensExactAndTightensBanded) {
  const Report base = make_report();
  Report r = base;
  r.counters["body_body"] = 910;  // +1.1%
  CheckPolicy loose;
  loose.overrides["counters.body_body"] = 0.05;
  EXPECT_TRUE(check_report(r, base, loose).ok());
  r = base;
  r.counters["messages_sent"] = 230;  // +15%, inside default 35% band
  CheckPolicy tight;
  tight.traffic_abs = 0.0;
  tight.overrides["counters.messages_sent"] = 0.10;
  EXPECT_FALSE(check_report(r, base, tight).ok());
}

TEST(Analyze, Percentile) {
  const std::vector<double> v{4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.95), 7.0);
}

TEST(Analyze, RenderersMentionTheImportantNumbers) {
  const Report r = make_report();
  const std::string report = render_report(r);
  EXPECT_NE(report.find("traverse"), std::string::npos);
  EXPECT_NE(report.find("body_body"), std::string::npos);
  EXPECT_NE(report.find("tree_cells"), std::string::npos);
  Report b = r;
  b.counters["body_body"] = 1000;
  const std::string diff = render_diff(r, b);
  EXPECT_NE(diff.find("body_body"), std::string::npos);
  EXPECT_NE(diff.find("+11.1%"), std::string::npos);
}

TEST(Analyze, LoadReportRejectsJunkAndWrongSchema) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "hotlib_analyze_test";
  fs::create_directories(dir);
  Report out;
  std::string err;
  EXPECT_FALSE(load_report((dir / "missing.json").string(), out, err));
  EXPECT_FALSE(err.empty());
  std::ofstream(dir / "junk.json") << "{\"a\":";
  EXPECT_FALSE(load_report((dir / "junk.json").string(), out, err));
  std::ofstream(dir / "other.json") << "{\"schema\":\"something-else\"}";
  EXPECT_FALSE(load_report((dir / "other.json").string(), out, err));
  EXPECT_NE(err.find("hotlib-run-report-v1"), std::string::npos);
  std::ofstream(dir / "ok.json")
      << "{\"schema\":\"hotlib-run-report-v1\",\"name\":\"t\",\"nranks\":2,"
         "\"wall_seconds\":0.5,\"counters\":{\"body_body\":3},"
         "\"metrics\":{},\"phases\":[],\"timeseries\":[]}";
  EXPECT_TRUE(load_report((dir / "ok.json").string(), out, err)) << err;
  EXPECT_EQ(out.name, "t");
  EXPECT_EQ(out.nranks, 2);
  EXPECT_DOUBLE_EQ(out.counter("body_body"), 3.0);
  fs::remove_all(dir);
}

TEST(Analyze, StampInsertsReplacesAndValidates) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "hotlib_stamp_test";
  fs::create_directories(dir);
  const std::string path = (dir / "r.json").string();
  std::ofstream(path)
      << "{\"schema\":\"hotlib-run-report-v1\",\"name\":\"t\",\"nranks\":1,"
         "\"counters\":{\"body_body\":3},\"metrics\":{},\"phases\":[],"
         "\"timeseries\":[]}";
  Report out;
  std::string err;

  // Insert: document stays loadable, stamp is ignored by the loader.
  ASSERT_TRUE(stamp_report(path, "kernel_path", "avx2", err)) << err;
  ASSERT_TRUE(load_report(path, out, err)) << err;
  EXPECT_EQ(out.name, "t");
  EXPECT_DOUBLE_EQ(out.counter("body_body"), 3.0);
  {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"kernel_path\": \"avx2\""), std::string::npos);
  }

  // Re-stamp replaces instead of duplicating (the strict parser would
  // reject a duplicate key).
  ASSERT_TRUE(stamp_report(path, "kernel_path", "scalar", err)) << err;
  ASSERT_TRUE(load_report(path, out, err)) << err;
  {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"kernel_path\": \"scalar\""), std::string::npos);
    EXPECT_EQ(text.find("avx2"), std::string::npos);
  }

  // A second, different stamp coexists with the first.
  ASSERT_TRUE(stamp_report(path, "toolchain", "gcc", err)) << err;
  ASSERT_TRUE(load_report(path, out, err)) << err;

  // Stamping a key the document already owns elsewhere fails validation
  // (duplicate key) and leaves the file untouched.
  EXPECT_FALSE(stamp_report(path, "name", "x", err));
  EXPECT_NE(err.find("invalid"), std::string::npos);
  ASSERT_TRUE(load_report(path, out, err)) << err;
  EXPECT_EQ(out.name, "t");

  // Quotes/backslashes and junk files are rejected.
  EXPECT_FALSE(stamp_report(path, "bad\"key", "v", err));
  EXPECT_FALSE(stamp_report(path, "k", "bad\\value", err));
  std::ofstream(dir / "junk.json") << "no object here";
  EXPECT_FALSE(stamp_report((dir / "junk.json").string(), "k", "v", err));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hotlib::tools
