// Tests for the batched SoA interaction kernels (gravity/batch.hpp):
// differential checks of the scalar batch path against the per-pair kernels
// (bit-identical by construction), the AVX2 path against the scalar path
// (2 ulp — only accumulation order differs), self-slot handling including
// coincident unsoftened sinks, and flop-tally exactness across paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "gravity/batch.hpp"
#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/kernels.hpp"
#include "gravity/models.hpp"
#include "util/rng.hpp"

namespace hotlib::gravity {
namespace {

// Restores the dispatch default when a test returns.
struct PathGuard {
  ~PathGuard() {
    force_batch_path(batch_avx2_available() ? BatchPath::kAvx2
                                            : BatchPath::kScalar);
  }
};

struct Cloud {
  std::vector<Vec3d> pos;
  std::vector<double> mass;
};

Cloud random_cloud(std::size_t n, std::uint64_t seed) {
  Cloud c;
  Xoshiro256ss rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.pos.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                     rng.uniform(0.0, 1.0)});
    c.mass.push_back(rng.uniform(0.1, 2.0));
  }
  return c;
}

InteractionBatch body_batch(const Cloud& c) {
  InteractionBatch b;
  b.reserve_bodies(c.pos.size());
  for (std::size_t j = 0; j < c.pos.size(); ++j) b.add_body(c.pos[j], c.mass[j]);
  return b;
}

// Odd count exercises both the 4-wide blocks and the remainder tail.
constexpr std::size_t kN = 203;

TEST(Batch, ScalarPpBitIdenticalToPerPair) {
  PathGuard guard;
  force_batch_path(BatchPath::kScalar);
  const Cloud c = random_cloud(kN, 7);
  const InteractionBatch batch = body_batch(c);
  const double eps2 = 0.01;
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, kN / 2, kN - 1}) {
    Vec3d a_ref{};
    double p_ref = 0;
    for (std::size_t j = 0; j < kN; ++j) {
      if (j == i) continue;
      pp_accumulate(c.pos[i], c.pos[j], c.mass[j], eps2, a_ref, p_ref);
    }
    Vec3d a{};
    double p = 0;
    batch_pp(batch, c.pos[i], eps2, i, a, p);
    EXPECT_EQ(std::memcmp(&a, &a_ref, sizeof a), 0);
    EXPECT_EQ(p, p_ref);
  }
}

TEST(Batch, ScalarPcBitIdenticalToPerPair) {
  PathGuard guard;
  force_batch_path(BatchPath::kScalar);
  Xoshiro256ss rng(11);
  for (bool use_quad : {false, true}) {
    InteractionBatch batch;
    batch.use_quad = use_quad;
    std::vector<Vec3d> com;
    std::vector<double> mass;
    std::vector<std::array<double, 6>> quads;
    for (std::size_t j = 0; j < 57; ++j) {
      com.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                     rng.uniform(-1.0, 1.0)});
      mass.push_back(rng.uniform(0.5, 5.0));
      std::array<double, 6> q{};
      for (double& v : q) v = rng.uniform(-0.1, 0.1);
      quads.push_back(q);
      batch.add_cell(com.back(), mass.back(), q);
    }
    const Vec3d xi{2.5, -2.0, 3.0};
    const double eps2 = 0.0;
    Vec3d a_ref{};
    double p_ref = 0;
    for (std::size_t j = 0; j < com.size(); ++j)
      pc_accumulate(xi, com[j], mass[j], quads[j], use_quad, eps2, a_ref, p_ref);
    Vec3d a{};
    double p = 0;
    batch_pc(batch, xi, eps2, a, p);
    EXPECT_EQ(std::memcmp(&a, &a_ref, sizeof a), 0) << "use_quad=" << use_quad;
    EXPECT_EQ(p, p_ref) << "use_quad=" << use_quad;
  }
}

TEST(Batch, ScalarBiotSavartBitIdenticalToPerPair) {
  PathGuard guard;
  force_batch_path(BatchPath::kScalar);
  Xoshiro256ss rng(13);
  BiotSavartBatch batch;
  std::vector<Vec3d> pos, alpha;
  for (std::size_t j = 0; j < kN; ++j) {
    pos.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                   rng.uniform(0.0, 1.0)});
    alpha.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                     rng.uniform(-1.0, 1.0)});
    batch.add(pos.back(), alpha.back());
  }
  const Vec3d xi{0.4, 0.5, 0.6};
  const Vec3d ai{0.3, -0.7, 0.2};
  const double sigma2 = 0.01;
  Vec3d u_ref{}, da_ref{};
  for (std::size_t j = 0; j < kN; ++j)
    biot_savart_accumulate(xi, pos[j], alpha[j], sigma2, u_ref, &ai, &da_ref);
  Vec3d u{}, da{};
  batch_biot_savart(batch, xi, ai, sigma2, u, da);
  EXPECT_EQ(std::memcmp(&u, &u_ref, sizeof u), 0);
  EXPECT_EQ(std::memcmp(&da, &da_ref, sizeof da), 0);
}

// |a - b| within k ulps of the larger magnitude.
::testing::AssertionResult WithinUlps(double a, double b, int k) {
  const double scale = std::max(std::abs(a), std::abs(b));
  const double ulp = scale > 0 ? (std::nextafter(scale, 1e308) - scale) : 0.0;
  if (std::abs(a - b) <= k * ulp) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differs by " << std::abs(a - b) << " > " << k
         << " ulp (" << k * ulp << ")";
}

// Scalar simulation of the AVX2 accumulation schedule: four partial sums
// fed round-robin over full blocks, reduced as (p0+p1)+(p2+p3), then the
// remainder tail appended sequentially. Per-lane arithmetic in the vector
// kernel is the exact scalar operation sequence (no FMA, contraction off),
// so the vector result must match this bit for bit.
void simulate_avx2_pp(const InteractionBatch& b, const Vec3d& xi, double eps2,
                      std::size_t self_slot, Vec3d& acc, double& pot) {
  const std::size_t n = b.body_count();
  const std::size_t blocks_end = n - n % 4;
  Vec3d pa[4]{};
  double pp[4]{};
  for (std::size_t j = 0; j < blocks_end; ++j) {
    if (j == self_slot) continue;  // masked lane contributes exactly +0.0
    pp_accumulate(xi, Vec3d{b.px[j], b.py[j], b.pz[j]}, b.pm[j], eps2, pa[j % 4],
                  pp[j % 4]);
  }
  acc.x += (pa[0].x + pa[1].x) + (pa[2].x + pa[3].x);
  acc.y += (pa[0].y + pa[1].y) + (pa[2].y + pa[3].y);
  acc.z += (pa[0].z + pa[1].z) + (pa[2].z + pa[3].z);
  pot += (pp[0] + pp[1]) + (pp[2] + pp[3]);
  for (std::size_t j = blocks_end; j < n; ++j) {
    if (j == self_slot) continue;
    pp_accumulate(xi, Vec3d{b.px[j], b.py[j], b.pz[j]}, b.pm[j], eps2, acc, pot);
  }
}

TEST(Batch, Avx2PpBitExactAgainstScheduleSimulation) {
  if (!batch_avx2_available()) GTEST_SKIP() << "AVX2 not available";
  PathGuard guard;
  force_batch_path(BatchPath::kAvx2);
  ASSERT_EQ(batch_path(), BatchPath::kAvx2);
  for (std::size_t n : {std::size_t{4}, std::size_t{36}, kN}) {
    for (std::uint64_t seed : {17u, 18u, 19u}) {
      const Cloud c = random_cloud(n, seed);
      const InteractionBatch batch = body_batch(c);
      const double eps2 = 1e-4;
      for (std::size_t self : {kNoSelf, std::size_t{0}, n - 1}) {
        const Vec3d xi =
            self == kNoSelf ? Vec3d{3.0, 3.5, 4.0} : c.pos[self];
        Vec3d a_ref{};
        double p_ref = 0;
        simulate_avx2_pp(batch, xi, eps2, self, a_ref, p_ref);
        Vec3d a_v{};
        double p_v = 0;
        batch_pp(batch, xi, eps2, self, a_v, p_v);
        EXPECT_EQ(std::memcmp(&a_v, &a_ref, sizeof a_v), 0)
            << "n=" << n << " seed=" << seed << " self=" << self;
        EXPECT_EQ(p_v, p_ref) << "n=" << n << " seed=" << seed << " self=" << self;
      }
    }
  }
}

TEST(Batch, Avx2PpWithin2UlpOfScalar) {
  if (!batch_avx2_available()) GTEST_SKIP() << "AVX2 not available";
  PathGuard guard;
  // Per-lane arithmetic is bit-identical across paths (see the schedule
  // simulation test); the residual cross-path difference is pure summation
  // order, within 2 ulp at block scale. Long-list drift grows with list
  // length and is covered by Avx2RandomGeometryCloseToScalar.
  for (std::uint64_t seed : {17u, 18u, 19u, 20u, 21u}) {
    const std::size_t n = 4;
    const Cloud c = random_cloud(n, seed);
    const InteractionBatch batch = body_batch(c);
    // Sink outside the source cloud: per-component contributions share a
    // sign, so the ulp bound is meaningful (no catastrophic cancellation).
    const Vec3d xi{3.0, 3.5, 4.0};
    const double eps2 = 1e-4;
    force_batch_path(BatchPath::kScalar);
    Vec3d a_s{};
    double p_s = 0;
    batch_pp(batch, xi, eps2, kNoSelf, a_s, p_s);
    force_batch_path(BatchPath::kAvx2);
    ASSERT_EQ(batch_path(), BatchPath::kAvx2);
    Vec3d a_v{};
    double p_v = 0;
    batch_pp(batch, xi, eps2, kNoSelf, a_v, p_v);
    EXPECT_TRUE(WithinUlps(a_s.x, a_v.x, 2)) << "seed=" << seed;
    EXPECT_TRUE(WithinUlps(a_s.y, a_v.y, 2)) << "seed=" << seed;
    EXPECT_TRUE(WithinUlps(a_s.z, a_v.z, 2)) << "seed=" << seed;
    EXPECT_TRUE(WithinUlps(p_s, p_v, 2)) << "seed=" << seed;
  }
}

TEST(Batch, Avx2PcWithin2UlpOfScalar) {
  if (!batch_avx2_available()) GTEST_SKIP() << "AVX2 not available";
  PathGuard guard;
  Xoshiro256ss rng(19);
  // Block-scale list (one 4-wide block plus a tail): the residual difference
  // is summation order only, within 2 ulp at this size.
  for (bool use_quad : {false, true}) {
    InteractionBatch batch;
    batch.use_quad = use_quad;
    for (std::size_t j = 0; j < 6; ++j) {
      std::array<double, 6> q{};
      for (double& v : q) v = rng.uniform(-0.05, 0.05);
      batch.add_cell({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                      rng.uniform(0.0, 1.0)},
                     rng.uniform(0.5, 5.0), q);
    }
    const Vec3d xi{3.0, 3.0, 3.0};
    force_batch_path(BatchPath::kScalar);
    Vec3d a_s{};
    double p_s = 0;
    batch_pc(batch, xi, 0.0, a_s, p_s);
    force_batch_path(BatchPath::kAvx2);
    Vec3d a_v{};
    double p_v = 0;
    batch_pc(batch, xi, 0.0, a_v, p_v);
    EXPECT_TRUE(WithinUlps(a_s.x, a_v.x, 2)) << "use_quad=" << use_quad;
    EXPECT_TRUE(WithinUlps(a_s.y, a_v.y, 2)) << "use_quad=" << use_quad;
    EXPECT_TRUE(WithinUlps(a_s.z, a_v.z, 2)) << "use_quad=" << use_quad;
    EXPECT_TRUE(WithinUlps(p_s, p_v, 2)) << "use_quad=" << use_quad;
  }
}

TEST(Batch, Avx2RandomGeometryCloseToScalar) {
  if (!batch_avx2_available()) GTEST_SKIP() << "AVX2 not available";
  PathGuard guard;
  // Sinks inside the cloud: components can cancel, so compare against the
  // accumulated magnitude rather than per-component ulps.
  const Cloud c = random_cloud(kN, 23);
  const InteractionBatch batch = body_batch(c);
  const double eps2 = 1e-4;
  for (std::size_t i = 0; i < kN; i += 17) {
    force_batch_path(BatchPath::kScalar);
    Vec3d a_s{};
    double p_s = 0;
    batch_pp(batch, c.pos[i], eps2, i, a_s, p_s);
    force_batch_path(BatchPath::kAvx2);
    Vec3d a_v{};
    double p_v = 0;
    batch_pp(batch, c.pos[i], eps2, i, a_v, p_v);
    const double scale = norm(a_s) + std::abs(p_s);
    EXPECT_LT(norm(a_s - a_v), 1e-12 * scale);
    EXPECT_LT(std::abs(p_s - p_v), 1e-12 * scale);
  }
}

TEST(Batch, SelfSlotMaskingEveryLanePosition) {
  // The sink coincides with its own slot and eps2 = 0: the self lane's
  // 1/sqrt(0) = inf must be masked out, not multiplied into NaN, for every
  // lane position in a 4-wide block and in the scalar tail.
  PathGuard guard;
  const Cloud c = random_cloud(11, 29);
  const InteractionBatch batch = body_batch(c);
  for (BatchPath path : {BatchPath::kScalar, BatchPath::kAvx2}) {
    if (path == BatchPath::kAvx2 && !batch_avx2_available()) continue;
    force_batch_path(path);
    for (std::size_t i = 0; i < c.pos.size(); ++i) {
      Vec3d a{};
      double p = 0;
      batch_pp(batch, c.pos[i], /*eps2=*/0.0, i, a, p);
      EXPECT_TRUE(std::isfinite(p)) << "path=" << batch_path_name() << " i=" << i;
      EXPECT_TRUE(std::isfinite(a.x) && std::isfinite(a.y) && std::isfinite(a.z))
          << "path=" << batch_path_name() << " i=" << i;
    }
  }
}

TEST(Batch, TallyExactAcrossPaths) {
  // The batch layer only reschedules arithmetic; the interaction counts (and
  // therefore the 38-flop totals) must be identical on every path.
  PathGuard guard;
  const Cloud c = random_cloud(128, 31);
  std::vector<Vec3d> acc(c.pos.size());
  std::vector<double> pot(c.pos.size());

  force_batch_path(BatchPath::kScalar);
  const InteractionTally direct_s =
      direct_forces(c.pos, c.mass, 0.05, 1.0, acc, pot);
  hot::Tree tree;
  const morton::Domain domain = morton::bounding_domain(c.pos.data(), c.pos.size(), 0.05);
  tree.build(c.pos, c.mass, domain);
  TreeForceConfig cfg;
  cfg.softening = 0.05;
  std::vector<Vec3d> acc_t(c.pos.size());
  std::vector<double> pot_t(c.pos.size());
  const InteractionTally tree_s = tree_forces(tree, c.pos, c.mass, cfg, acc_t, pot_t, {});

  if (!batch_avx2_available()) GTEST_SKIP() << "AVX2 not available";
  force_batch_path(BatchPath::kAvx2);
  const InteractionTally direct_v =
      direct_forces(c.pos, c.mass, 0.05, 1.0, acc, pot);
  std::fill(acc_t.begin(), acc_t.end(), Vec3d{});
  std::fill(pot_t.begin(), pot_t.end(), 0.0);
  const InteractionTally tree_v = tree_forces(tree, c.pos, c.mass, cfg, acc_t, pot_t, {});

  EXPECT_EQ(direct_s.body_body, direct_v.body_body);
  EXPECT_EQ(direct_s.body_cell, direct_v.body_cell);
  EXPECT_EQ(direct_s.flops(), direct_v.flops());
  EXPECT_EQ(tree_s.body_body, tree_v.body_body);
  EXPECT_EQ(tree_s.body_cell, tree_v.body_cell);
  EXPECT_EQ(tree_s.flops(), tree_v.flops());
}

TEST(Batch, PathNameMatchesPath) {
  PathGuard guard;
  force_batch_path(BatchPath::kScalar);
  EXPECT_STREQ(batch_path_name(), "scalar");
  if (batch_avx2_available()) {
    force_batch_path(BatchPath::kAvx2);
    EXPECT_STREQ(batch_path_name(), "avx2");
  }
}

}  // namespace
}  // namespace hotlib::gravity
