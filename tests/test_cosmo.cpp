// Tests for src/cosmo: BBKS spectrum, Gaussian random field + Zel'dovich
// displacements, spherical-region construction with the 8x-mass buffer, the
// FoF halo finder, density projection and the end-to-end CosmologySim.
#include <gtest/gtest.h>

#include <numeric>

#include "cosmo/fof.hpp"
#include "cosmo/ics.hpp"
#include "cosmo/power_spectrum.hpp"
#include "cosmo/project.hpp"
#include "cosmo/simulation.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hotlib::cosmo {
namespace {

TEST(CdmSpectrum, TransferLimits) {
  CdmSpectrum ps;
  EXPECT_NEAR(ps.transfer(1e-6), 1.0, 1e-3);     // T -> 1 on large scales
  EXPECT_LT(ps.transfer(10.0), 0.01);            // strong small-scale damping
  EXPECT_GT(ps.transfer(0.1), ps.transfer(1.0));  // monotone decreasing
}

TEST(CdmSpectrum, PowerTurnsOver) {
  CdmSpectrum ps;
  // P(k) rises as ~k on large scales and falls on small scales.
  EXPECT_GT(ps(0.02), ps(0.002));
  EXPECT_GT(ps(0.05), ps(5.0));
}

TEST(CdmSpectrum, SigmaRDecreasesWithScale) {
  CdmSpectrum ps;
  EXPECT_GT(ps.sigma_r(4.0), ps.sigma_r(8.0));
  EXPECT_GT(ps.sigma_r(8.0), ps.sigma_r(16.0));
}

TEST(DisplacementField, DeltaHasZeroMeanAndExpectedVariance) {
  IcsConfig cfg;
  cfg.grid_n = 16;
  cfg.spectrum.amplitude = 50.0;
  const auto f = make_displacement_field(cfg);
  RunningStats s;
  for (double d : f.delta) s.add(d);
  EXPECT_NEAR(s.mean(), 0.0, 1e-10);  // DC mode zeroed
  EXPECT_GT(s.stddev(), 0.0);
}

TEST(DisplacementField, DivergenceOfPsiIsMinusDelta) {
  // Zel'dovich: div psi = -delta. Check with centered differences; the field
  // is band-limited so FD agrees to a few percent when power sits at low k.
  IcsConfig cfg;
  cfg.grid_n = 16;
  cfg.seed = 7;
  cfg.spectrum.amplitude = 10.0;
  cfg.spectrum.spectral_index = -3.0;  // concentrate power at low k
  const auto f = make_displacement_field(cfg);
  const int n = cfg.grid_n;
  const double h = cfg.box_mpc / n;
  auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>((z + n) % n) * n + (y + n) % n) * n + (x + n) % n;
  };
  RunningStats ratio_err;
  RunningStats mag;
  for (double d : f.delta) mag.add(d);
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const double div =
            (f.psi_x[idx(x + 1, y, z)] - f.psi_x[idx(x - 1, y, z)] +
             f.psi_y[idx(x, y + 1, z)] - f.psi_y[idx(x, y - 1, z)] +
             f.psi_z[idx(x, y, z + 1)] - f.psi_z[idx(x, y, z - 1)]) /
            (2 * h);
        ratio_err.add(div + f.delta[idx(x, y, z)]);
      }
  EXPECT_LT(ratio_err.rms(), 0.1 * mag.rms());
}

TEST(GridIcs, CountMassAndBounds) {
  IcsConfig cfg;
  cfg.grid_n = 16;
  const auto b = make_grid_ics(cfg);
  EXPECT_EQ(b.size(), 16u * 16 * 16);
  const double total = std::accumulate(b.mass.begin(), b.mass.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (const auto& x : b.pos) {
    EXPECT_GE(x.x, 0.0);
    EXPECT_LT(x.x, cfg.box_mpc);
  }
  const auto domain = ics_domain(cfg);
  for (const auto& x : b.pos) EXPECT_TRUE(domain.contains(x));
}

TEST(GridIcs, DisplacementsScaleWithGrowth) {
  IcsConfig small;
  small.grid_n = 8;
  small.growth = 0.1;
  small.spectrum.amplitude = 20.0;
  IcsConfig big = small;
  big.growth = 0.4;
  const auto a = make_grid_ics(small);
  const auto b = make_grid_ics(big);
  // Velocities are proportional to growth x psi: 4x larger.
  RunningStats va, vb;
  for (const auto& v : a.vel) va.add(norm(v));
  for (const auto& v : b.vel) vb.add(norm(v));
  EXPECT_NEAR(vb.mean() / va.mean(), 4.0, 1e-6);
}

TEST(SphericalIcs, BufferParticlesAreEightTimesHeavier) {
  IcsConfig cfg;
  cfg.grid_n = 16;
  const auto b = make_spherical_ics(cfg, 0.3, 0.5);
  ASSERT_GT(b.size(), 0u);
  double m_lo = 1e30, m_hi = 0;
  std::size_t n_hi = 0;
  for (double m : b.mass) {
    m_lo = std::min(m_lo, m);
    m_hi = std::max(m_hi, m);
    if (m > 1e-3) ++n_hi;  // heavier class (8x of 1/16^3)
  }
  EXPECT_NEAR(m_hi / m_lo, 8.0, 1e-9);
  EXPECT_GT(n_hi, 0u);
  // Heavy particles live outside the inner radius, light ones inside.
  const Vec3d center = Vec3d::all(cfg.box_mpc / 2);
  for (std::size_t i = 0; i < b.size(); ++i) {
    const bool heavy = b.mass[i] > 1e-3;
    const double undisplaced_ok = 0.05 * cfg.box_mpc;  // displacement slack
    const double r = norm(b.pos[i] - center);
    if (heavy)
      EXPECT_GT(r, 0.3 * cfg.box_mpc - undisplaced_ok);
    else
      EXPECT_LT(r, 0.3 * cfg.box_mpc + undisplaced_ok);
  }
}

TEST(Fof, FindsTwoWellSeparatedClumps) {
  hot::Bodies b;
  hotlib::Xoshiro256ss rng(5);
  for (int i = 0; i < 300; ++i)
    b.push_back(rng.in_sphere(0.1) + Vec3d{1, 1, 1}, {}, 1.0, b.size());
  for (int i = 0; i < 200; ++i)
    b.push_back(rng.in_sphere(0.1) + Vec3d{3, 3, 3}, {}, 1.0, b.size());
  hot::Tree tree;
  tree.build(b.pos, b.mass, gravity::fit_domain(b));
  const auto fof = friends_of_friends(b, tree, 0.08, 10);
  ASSERT_EQ(fof.halos.size(), 2u);
  EXPECT_EQ(fof.halos[0].size, 300u);
  EXPECT_EQ(fof.halos[1].size, 200u);
  EXPECT_NEAR(fof.halos[0].center.x, 1.0, 0.05);
  EXPECT_NEAR(fof.halos[1].center.x, 3.0, 0.05);
}

TEST(Fof, LinkingLengthControlsMerging) {
  hot::Bodies b;
  // Two clumps 0.5 apart: tiny linking length separates, large one merges.
  hotlib::Xoshiro256ss rng(6);
  for (int i = 0; i < 100; ++i) b.push_back(rng.in_sphere(0.05), {}, 1.0, b.size());
  for (int i = 0; i < 100; ++i)
    b.push_back(rng.in_sphere(0.05) + Vec3d{0.5, 0, 0}, {}, 1.0, b.size());
  hot::Tree tree;
  tree.build(b.pos, b.mass, gravity::fit_domain(b));
  EXPECT_EQ(friends_of_friends(b, tree, 0.05, 10).halos.size(), 2u);
  EXPECT_EQ(friends_of_friends(b, tree, 0.6, 10).halos.size(), 1u);
}

TEST(Project, DepositsAllMassInsideFrame) {
  hot::Bodies b;
  hotlib::Xoshiro256ss rng(8);
  for (int i = 0; i < 1000; ++i) b.push_back(rng.in_cube(), {}, 0.001, i);
  PgmImage img(64, 64);
  project_density(b, 2, 0.0, 1.0, img);
  double total = 0;
  for (std::size_t y = 0; y < 64; ++y)
    for (std::size_t x = 0; x < 64; ++x) total += img.at(x, y);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HubbleFlow, RadialVelocityProfile) {
  hot::Bodies b;
  b.push_back({2, 0, 0}, {}, 1.0, 0);
  b.push_back({0, -4, 0}, {}, 1.0, 1);
  add_hubble_flow(b, {0, 0, 0}, 0.5);
  EXPECT_NEAR(b.vel[0].x, 1.0, 1e-12);
  EXPECT_NEAR(b.vel[1].y, -2.0, 1e-12);
}

class CosmoSim : public ::testing::TestWithParam<int> {};

TEST_P(CosmoSim, RunsStepsAndConservesBodies) {
  const int p = GetParam();
  SimConfig cfg;
  cfg.ics.grid_n = 16;
  cfg.ics.spectrum.amplitude = 30.0;
  cfg.dt = 0.2;
  std::vector<std::uint64_t> totals(1, 0);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    CosmologySim sim(r, cfg);
    const std::uint64_t expect = sim.total_bodies();
    StepStats s{};
    for (int i = 0; i < 2; ++i) s = sim.step();
    EXPECT_GT(s.tally.interactions(), 0u);
    EXPECT_LT(s.potential, 0.0);
    const std::uint64_t now =
        r.allreduce(static_cast<std::uint64_t>(sim.local().size()), parc::Sum{});
    EXPECT_EQ(now, expect);
    if (r.rank() == 0) totals[0] = now;
  });
  EXPECT_GT(totals[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CosmoSim, ::testing::Values(1, 2, 4));

TEST(CosmoSim, GravityDeepensThePotentialWell) {
  // Evolving the Zel'dovich field under self-gravity makes the system more
  // bound: the (negative) total potential energy must decrease.
  SimConfig cfg;
  cfg.ics.grid_n = 16;
  cfg.ics.spectrum.amplitude = 80.0;
  cfg.ics.growth = 5.0;
  cfg.hubble = 0.0;
  cfg.dt = 1.0;
  parc::Runtime::run(2, [&](parc::Rank& r) {
    CosmologySim sim(r, cfg);
    const StepStats first = sim.compute_forces();
    StepStats last{};
    for (int i = 0; i < 5; ++i) last = sim.step();
    EXPECT_LT(last.potential, first.potential);
  });
}

}  // namespace
}  // namespace hotlib::cosmo
