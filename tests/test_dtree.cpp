// Tests for the request-driven distributed traversal (hot::DistributedTree)
// and the ABM gravity pipeline: crown completeness, mass coverage of every
// sink group's interaction set, force agreement with the exact direct sum,
// consistency with the LET-push pipeline, and caching/latency-hiding
// behaviour of the request machinery.
#include <gtest/gtest.h>

#include "gravity/abm_forces.hpp"
#include "gravity/direct.hpp"
#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "hot/dtree.hpp"
#include "parc/parc.hpp"
#include "util/stats.hpp"

namespace hotlib::hot {
namespace {

using gravity::fit_domain;
using gravity::plummer_sphere;

// Build a distributed setup on p ranks and run a traversal that checks,
// for every sink group, that the accepted mass equals the global mass.
void check_mass_coverage(int p, std::size_t n, double theta) {
  auto all = plummer_sphere(n, 77);
  const auto domain = fit_domain(all);
  const double total_mass = 1.0;

  parc::Runtime::run(p, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n;
         i += static_cast<std::size_t>(p))
      local.append_from(all, i);
    const auto ranges = decompose(r, local, domain);
    Tree tree;
    tree.build(local.pos, local.mass, domain);
    DistributedTree dtree(r, tree, local.pos, local.mass, ranges, domain);

    std::size_t groups = 0;
    const auto stats = dtree.traverse(
        Mac{.theta = theta},
        [&](std::uint32_t, const InteractionLists& lists,
            const DistributedTree::RemoteLists& remote) {
          double mass = 0;
          for (std::uint32_t j : lists.bodies) mass += local.mass[j];
          for (std::uint32_t ci : lists.cells) mass += tree.cells()[ci].mass;
          for (const auto& s : remote.bodies) mass += s.mass;
          for (const auto& c : remote.cells) mass += c.mass;
          ASSERT_NEAR(mass, total_mass, 1e-9) << "group misses mass";
          ++groups;
        });
    EXPECT_GT(groups, 0u);
    if (p > 1) {
      EXPECT_GT(stats.crown_cells, 0u);
      const auto reqs = r.allreduce(stats.requests_sent, parc::Sum{});
      EXPECT_GT(reqs, 0u);
    }
  });
}

class DtreeCoverage : public ::testing::TestWithParam<int> {};

TEST_P(DtreeCoverage, EveryGroupSeesAllMassExactlyOnce) {
  check_mass_coverage(GetParam(), 1500, 0.5);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DtreeCoverage, ::testing::Values(1, 2, 3, 4, 8));

TEST(Dtree, TightMacStillCovers) { check_mass_coverage(4, 800, 0.2); }

class AbmForces : public ::testing::TestWithParam<int> {};

TEST_P(AbmForces, MatchesDirectSumToMacAccuracy) {
  const int p = GetParam();
  const std::size_t n = 1200;
  auto all = plummer_sphere(n, 53);
  const auto domain = fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = Mac{.theta = 0.4}, .softening = 0.02};

  std::vector<Vec3d> exact_acc(n);
  std::vector<double> exact_pot(n);
  gravity::direct_forces(all.pos, all.mass, 0.02, 1.0, exact_acc, exact_pot);
  RunningStats mag;
  for (const auto& a : exact_acc) mag.add(norm(a));

  std::vector<double> worst(1, 0.0);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n;
         i += static_cast<std::size_t>(p))
      local.append_from(all, i);
    const auto result = gravity::abm_tree_forces(r, local, domain, cfg);
    EXPECT_GT(result.tally.interactions(), 0u);
    RunningStats err;
    for (std::size_t i = 0; i < local.size(); ++i)
      err.add(norm(local.acc[i] - exact_acc[local.id[i]]));
    const double rel = err.rms() / mag.rms();
    const double w = r.allreduce(rel, parc::Max{});
    if (r.rank() == 0) worst[0] = w;
  });
  EXPECT_LT(worst[0], 2e-2);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AbmForces, ::testing::Values(1, 2, 4, 8));

TEST(AbmForces, AgreesWithLetPushPipeline) {
  // Both parallel pipelines implement the same MAC; their accelerations must
  // agree to within the MAC error budget (they differ in which conservative
  // distance each used, not in physics).
  const std::size_t n = 1000;
  auto all = plummer_sphere(n, 11);
  const auto domain = fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = Mac{.theta = 0.4}, .softening = 0.02};

  std::vector<Vec3d> abm_acc(n), let_acc(n);
  parc::Runtime::run(4, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 4)
      local.append_from(all, i);
    gravity::abm_tree_forces(r, local, domain, cfg);
    for (std::size_t i = 0; i < local.size(); ++i) abm_acc[local.id[i]] = local.acc[i];
  });
  parc::Runtime::run(4, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 4)
      local.append_from(all, i);
    gravity::parallel_tree_forces(r, local, domain, cfg);
    for (std::size_t i = 0; i < local.size(); ++i) let_acc[local.id[i]] = local.acc[i];
  });
  RunningStats diff, mag;
  for (std::size_t i = 0; i < n; ++i) {
    diff.add(norm(abm_acc[i] - let_acc[i]));
    mag.add(norm(let_acc[i]));
  }
  EXPECT_LT(diff.rms(), 3e-2 * mag.rms());
}

TEST(Dtree, CachingMakesLaterGroupsCheaper) {
  // Total requests must be far below (groups x remote cells): the remote
  // cache turns repeated accesses into hits, which is what lets the paper
  // hide latency.
  const std::size_t n = 3000;
  auto all = plummer_sphere(n, 21);
  const auto domain = fit_domain(all);
  parc::Runtime::run(4, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 4)
      local.append_from(all, i);
    const auto ranges = decompose(r, local, domain);
    Tree tree;
    tree.build(local.pos, local.mass, domain);
    DistributedTree dtree(r, tree, local.pos, local.mass, ranges, domain);
    const auto stats = dtree.traverse(Mac{.theta = 0.4},
                                      [](std::uint32_t, const InteractionLists&,
                                         const DistributedTree::RemoteLists&) {});
    EXPECT_GT(stats.cache_hits, 5 * stats.requests_sent);
  });
}

TEST(Dtree, RequestsAreBatched) {
  // The ABM layer must coalesce key requests: fabric messages stay far below
  // the number of requests+replies.
  const std::size_t n = 2000;
  auto all = plummer_sphere(n, 33);
  const auto domain = fit_domain(all);
  parc::Runtime::run(4, [&](parc::Rank& r) {
    Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 4)
      local.append_from(all, i);
    const auto ranges = decompose(r, local, domain);
    Tree tree;
    tree.build(local.pos, local.mass, domain);
    const std::uint64_t before = r.fabric().messages_delivered();
    DistributedTree dtree(r, tree, local.pos, local.mass, ranges, domain);
    const auto stats = dtree.traverse(Mac{.theta = 0.4},
                                      [](std::uint32_t, const InteractionLists&,
                                         const DistributedTree::RemoteLists&) {});
    const std::uint64_t msgs = r.fabric().messages_delivered() - before;
    const std::uint64_t traffic =
        r.allreduce(stats.requests_sent + stats.replies_served, parc::Sum{});
    if (traffic > 100) EXPECT_LT(msgs, traffic);
  });
}

}  // namespace
}  // namespace hotlib::hot
