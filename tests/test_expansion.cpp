// Tests for the Einstein-de Sitter comoving integration: scale-factor
// algebra, the closed-form kick/drift factors, and the flagship physics
// check — linear perturbations growing exactly as D+(a) = a when the
// comoving leapfrog is driven by the Ewald periodic solver.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "cosmo/expansion.hpp"
#include "gravity/ewald.hpp"
#include "util/stats.hpp"

namespace hotlib::cosmo {
namespace {

TEST(Eds, ScaleFactorAlgebra) {
  const EdsCosmology c(0.7);
  EXPECT_NEAR(c.a_of_t(c.t0()), 1.0, 1e-12);
  EXPECT_NEAR(c.t_of_a(1.0), c.t0(), 1e-12);
  for (double a : {0.1, 0.5, 0.9, 2.0})
    EXPECT_NEAR(c.a_of_t(c.t_of_a(a)), a, 1e-12);
  // a grows like t^{2/3}.
  EXPECT_NEAR(c.a_of_t(8.0 * c.t0()), 4.0, 1e-12);
  // H(a) = H0 a^{-3/2}: da/dt at t0 equals H0.
  const double h = 1e-7;
  const double adot = (c.a_of_t(c.t0() + h) - c.a_of_t(c.t0() - h)) / (2 * h);
  EXPECT_NEAR(adot, 0.7, 1e-5);
  EXPECT_NEAR(c.hubble_of_a(1.0), 0.7, 1e-12);
}

TEST(Eds, FactorsMatchNumericalQuadrature) {
  const EdsCosmology c(1.3);
  const double t1 = 0.4 * c.t0(), t2 = 1.7 * c.t0();
  const int n = 200000;
  double kick = 0, drift = 0;
  for (int i = 0; i < n; ++i) {
    const double t = t1 + (t2 - t1) * (i + 0.5) / n;
    const double a = c.a_of_t(t);
    kick += (t2 - t1) / n / a;
    drift += (t2 - t1) / n / (a * a);
  }
  EXPECT_NEAR(c.kick_factor(t1, t2), kick, 1e-6 * kick);
  EXPECT_NEAR(c.drift_factor(t1, t2), drift, 1e-6 * drift);
}

TEST(Eds, FactorsAreAdditiveOverSubintervals) {
  const EdsCosmology c(2.0);
  const double t1 = 0.2, t2 = 0.35, t3 = 0.6;
  EXPECT_NEAR(c.kick_factor(t1, t3),
              c.kick_factor(t1, t2) + c.kick_factor(t2, t3), 1e-14);
  EXPECT_NEAR(c.drift_factor(t1, t3),
              c.drift_factor(t1, t2) + c.drift_factor(t2, t3), 1e-14);
}

TEST(Eds, LinearPlaneWaveGrowsLikeScaleFactor) {
  // Zel'dovich plane wave in a unit periodic box of unit mass (Omega = 1:
  // H0^2 = 8 pi G / 3 with G = 1). Evolve a = 0.5 -> 0.8 with the comoving
  // leapfrog + Ewald periodic forces: the displacement amplitude must grow
  // by a factor 0.8 / 0.5 = 1.6 (linear growing mode D+ = a).
  const double h0 = std::sqrt(8.0 * std::numbers::pi / 3.0);
  const EdsCosmology cosmo(h0);
  const int n = 8;
  const double amp0 = 0.004;  // deeply linear (|delta| ~ 2 pi amp n ~ 0.2)
  const double a_start = 0.5, a_end = 0.8;

  hot::Bodies b;
  const double m = 1.0 / (n * n * n);
  std::vector<double> psi_x;  // per-particle unit displacement
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const Vec3d q{(x + 0.5) / n, (y + 0.5) / n, (z + 0.5) / n};
        const double psi = amp0 * std::sin(2.0 * std::numbers::pi * q.x);
        psi_x.push_back(psi);
        // x = q + a psi; p = a^2 dx/dt = a^3 H(a) psi (growing mode D = a).
        const double t = cosmo.t_of_a(a_start);
        (void)t;
        const double p = std::pow(a_start, 3) * cosmo.hubble_of_a(a_start) * psi;
        b.push_back(q + Vec3d{a_start * psi, 0, 0}, Vec3d{p, 0, 0}, m, b.size());
      }

  gravity::EwaldTable ewald(1.0, 12);
  auto forces = [&](hot::Bodies& bb) {
    bb.clear_forces();
    std::vector<Vec3d> acc(bb.size());
    std::vector<double> pot(bb.size());
    // Comoving potential gradient: G = 1 on comoving positions, periodic.
    gravity::periodic_direct_forces(bb.pos, bb.mass, ewald, 0.01, 1.0, acc, pot);
    bb.acc = acc;
    bb.pot = pot;
  };

  forces(b);
  double t = cosmo.t_of_a(a_start);
  const double t_end = cosmo.t_of_a(a_end);
  const int steps = 64;
  const double dt = (t_end - t) / steps;
  for (int s = 0; s < steps; ++s) {
    comoving_kdk_step(b, cosmo, t, dt, forces);
    t += dt;
    // Periodic wrap.
    for (auto& x : b.pos) x.x -= std::floor(x.x);
  }

  // Measure the displacement amplitude by projecting onto the input mode.
  double num = 0, den = 0;
  std::size_t i = 0;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x, ++i) {
        const double qx = (x + 0.5) / n;
        double dx = b.pos[i].x - qx;
        dx -= std::nearbyint(dx);  // wrap
        num += dx * psi_x[i];
        den += psi_x[i] * psi_x[i];
      }
  const double amplitude = num / den;  // current D(a)
  EXPECT_NEAR(amplitude / a_start, a_end / a_start, 0.08 * (a_end / a_start))
      << "grew to D = " << amplitude << ", expected " << a_end;
  // Transverse directions stay clean.
  RunningStats vy;
  for (const auto& v : b.vel) vy.add(std::abs(v.y) + std::abs(v.z));
  EXPECT_LT(vy.max(), 1e-5);  // Ewald-table interpolation noise only
}

}  // namespace
}  // namespace hotlib::cosmo
