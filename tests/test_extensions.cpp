// Tests for the extension modules: Ewald periodic gravity, Hilbert keys,
// checkpoint/restart, and the two-point correlation function.
#include <gtest/gtest.h>

#include <filesystem>
#include <numbers>

#include "cosmo/checkpoint.hpp"
#include "cosmo/correlate.hpp"
#include "gravity/ewald.hpp"
#include "gravity/models.hpp"
#include "morton/hilbert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hotlib {
namespace {

// ---- Ewald -----------------------------------------------------------------

TEST(Ewald, CorrectionVanishesAtOriginAndIsAntisymmetric) {
  gravity::EwaldTable ewald(1.0, 8);
  EXPECT_NEAR(norm(ewald.exact_correction({0, 0, 0})), 0.0, 1e-10);
  const Vec3d d{0.21, -0.13, 0.34};
  const Vec3d c1 = ewald.exact_correction(d);
  const Vec3d c2 = ewald.exact_correction(-1.0 * d);
  EXPECT_NEAR(norm(c1 + c2), 0.0, 1e-10);
}

TEST(Ewald, MatchesBruteForceReplicaSum) {
  // Correction + bare Newton must approximate the (truncated) lattice sum.
  gravity::EwaldTable ewald(1.0, 8);
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Vec3d d{rng.uniform(-0.45, 0.45), rng.uniform(-0.45, 0.45),
            rng.uniform(-0.45, 0.45)};
    if (norm(d) < 0.05) continue;  // avoid the singular region for the check
    // Cube-truncated replica sum. The bare lattice force is conditionally
    // convergent: a cube-truncated sum equals the Ewald ("tinfoil") value
    // minus the surface dipole term (4 pi / 3 L^3) d, which we add back.
    Vec3d brute{};
    const int c = 6;
    for (int nx = -c; nx <= c; ++nx)
      for (int ny = -c; ny <= c; ++ny)
        for (int nz = -c; nz <= c; ++nz) {
          const Vec3d r{d.x - nx, d.y - ny, d.z - nz};
          const double u = norm(r);
          brute -= r / (u * u * u);
        }
    brute += (4.0 * std::numbers::pi / 3.0) * d;  // remove the surface term
    const Vec3d newton = -1.0 / norm2(d) / norm(d) * d;
    const Vec3d model = newton + ewald.exact_correction(d);
    EXPECT_NEAR(norm(model - brute), 0.0, 0.02 * norm(brute) + 0.01)
        << "d=" << d << " model=" << model << " brute=" << brute;
  }
}

TEST(Ewald, InterpolatedTableMatchesExact) {
  gravity::EwaldTable ewald(2.0, 16);
  Xoshiro256ss rng(5);
  RunningStats err, mag;
  for (int i = 0; i < 200; ++i) {
    const Vec3d d{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3d exact = ewald.exact_correction(d);
    err.add(norm(ewald.correction(d) - exact));
    mag.add(norm(exact));
  }
  EXPECT_LT(err.rms(), 0.05 * mag.rms() + 1e-6);
}

TEST(Ewald, MinimumImageWraps) {
  gravity::EwaldTable ewald(10.0, 4);
  const Vec3d d = ewald.minimum_image({9.0, -9.0, 4.9});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_NEAR(d.y, 1.0, 1e-12);
  EXPECT_NEAR(d.z, 4.9, 1e-12);
}

TEST(Ewald, PeriodicForcesConserveMomentumAndAreTranslationInvariant) {
  const std::size_t n = 40;
  auto b = gravity::uniform_cube(n, 11);
  gravity::EwaldTable ewald(1.0, 8);
  std::vector<Vec3d> acc(n), acc2(n);
  std::vector<double> pot(n), pot2(n);
  gravity::periodic_direct_forces(b.pos, b.mass, ewald, 0.05, 1.0, acc, pot);

  Vec3d f{};
  for (std::size_t i = 0; i < n; ++i) f += b.mass[i] * acc[i];
  EXPECT_NEAR(norm(f), 0.0, 1e-8);

  // Shift everything by a lattice-periodic offset: forces unchanged.
  auto shifted = b;
  for (auto& x : shifted.pos) {
    x += Vec3d{0.37, 0.81, 0.15};
    for (int a = 0; a < 3; ++a) {
      double& c = x[static_cast<std::size_t>(a)];
      c -= std::floor(c);
    }
  }
  gravity::periodic_direct_forces(shifted.pos, shifted.mass, ewald, 0.05, 1.0, acc2,
                                  pot2);
  RunningStats diff, mag;
  for (std::size_t i = 0; i < n; ++i) {
    diff.add(norm(acc[i] - acc2[i]));
    mag.add(norm(acc[i]));
  }
  EXPECT_LT(diff.rms(), 0.03 * mag.rms() + 1e-8);
}

TEST(Ewald, UniformLatticeFeelsNoNetForce) {
  // A perfect periodic lattice is an equilibrium of the periodic force.
  hot::Bodies b;
  const int m = 4;
  for (int z = 0; z < m; ++z)
    for (int y = 0; y < m; ++y)
      for (int x = 0; x < m; ++x)
        b.push_back({(x + 0.5) / m, (y + 0.5) / m, (z + 0.5) / m}, {},
                    1.0 / (m * m * m), b.size());
  gravity::EwaldTable ewald(1.0, 20);
  std::vector<Vec3d> acc(b.size());
  std::vector<double> pot(b.size());
  gravity::periodic_direct_forces(b.pos, b.mass, ewald, 0.02, 1.0, acc, pot);
  // The typical single-pair force scale is m/r^2 ~ 0.25; the residual is
  // table-interpolation noise (largest at half-box separations) far below it.
  for (const auto& a : acc) EXPECT_LT(norm(a), 1.5e-3);
}

// ---- Hilbert keys ----------------------------------------------------------

TEST(Hilbert, RoundTripBijection) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next() % morton::kCoordRange);
    const auto y = static_cast<std::uint32_t>(rng.next() % morton::kCoordRange);
    const auto z = static_cast<std::uint32_t>(rng.next() % morton::kCoordRange);
    const morton::Key k = morton::hilbert_from_coords(x, y, z);
    const morton::Coords c = morton::coords_from_hilbert(k);
    ASSERT_EQ(c.x, x);
    ASSERT_EQ(c.y, y);
    ASSERT_EQ(c.z, z);
    ASSERT_EQ(morton::level(k), morton::kMaxLevel);
  }
}

TEST(Hilbert, ConsecutiveKeysAreFaceAdjacent) {
  // The defining Hilbert property: successive curve positions differ by
  // exactly one lattice step in exactly one axis. Walk a stretch of the
  // curve by inverting consecutive indices.
  // Build key payloads directly: index -> transpose -> axes.
  for (std::uint64_t start : {0ULL, 12345ULL, 999999ULL}) {
    morton::Coords prev{};
    bool have_prev = false;
    for (std::uint64_t idx = start; idx < start + 200; ++idx) {
      const morton::Key k = (morton::Key{1} << 63) | idx;
      const morton::Coords c = morton::coords_from_hilbert(k);
      if (have_prev) {
        const long dx = std::labs(static_cast<long>(c.x) - static_cast<long>(prev.x));
        const long dy = std::labs(static_cast<long>(c.y) - static_cast<long>(prev.y));
        const long dz = std::labs(static_cast<long>(c.z) - static_cast<long>(prev.z));
        ASSERT_EQ(dx + dy + dz, 1) << "idx=" << idx;
      }
      prev = c;
      have_prev = true;
    }
  }
}

TEST(Hilbert, BetterLocalityThanMorton) {
  // Mean jump distance between key-order neighbours of a random point set:
  // Hilbert must beat Morton (it is why later codes switched).
  Xoshiro256ss rng(13);
  const morton::Domain d{};
  std::vector<Vec3d> pts(4000);
  for (auto& p : pts) p = rng.in_cube();

  auto mean_jump = [&](auto key_fn) {
    std::vector<std::pair<morton::Key, std::size_t>> keyed;
    keyed.reserve(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) keyed.push_back({key_fn(pts[i], d), i});
    std::sort(keyed.begin(), keyed.end());
    RunningStats jump;
    for (std::size_t i = 1; i < keyed.size(); ++i)
      jump.add(norm(pts[keyed[i].second] - pts[keyed[i - 1].second]));
    return jump.mean();
  };
  const double morton_jump = mean_jump(
      [](const Vec3d& p, const morton::Domain& dd) { return morton::key_from_position(p, dd); });
  const double hilbert_jump = mean_jump([](const Vec3d& p, const morton::Domain& dd) {
    return morton::hilbert_from_position(p, dd);
  });
  EXPECT_LT(hilbert_jump, morton_jump);
}

// ---- checkpoint/restart -----------------------------------------------------

TEST(Checkpoint, RoundTripPreservesFullState) {
  auto b = gravity::plummer_sphere(500, 21);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.acc[i] = {0.1 * i, -0.2, 0.3};
    b.pot[i] = -static_cast<double>(i);
    b.work[i] = 3.5 + i;
  }
  const std::string base =
      (std::filesystem::temp_directory_path() / "hotlib_ckpt").string();
  cosmo::CheckpointInfo info{.step = 437, .time = 13.5};
  ASSERT_TRUE(cosmo::save_checkpoint(base, b, info, 16));

  hot::Bodies r;
  cosmo::CheckpointInfo back;
  ASSERT_TRUE(cosmo::load_checkpoint(base, r, back));
  EXPECT_EQ(back.step, 437u);
  EXPECT_DOUBLE_EQ(back.time, 13.5);
  ASSERT_EQ(r.size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(r.pos[i], b.pos[i]);
    ASSERT_EQ(r.vel[i], b.vel[i]);
    ASSERT_EQ(r.acc[i], b.acc[i]);
    ASSERT_EQ(r.mass[i], b.mass[i]);
    ASSERT_EQ(r.pot[i], b.pot[i]);
    ASSERT_EQ(r.work[i], b.work[i]);
    ASSERT_EQ(r.id[i], b.id[i]);
  }
}

TEST(Checkpoint, MissingFileFailsCleanly) {
  hot::Bodies r;
  cosmo::CheckpointInfo info;
  EXPECT_FALSE(cosmo::load_checkpoint("/nonexistent/path/ckpt", r, info));
}

// ---- correlation function ----------------------------------------------------

TEST(Correlation, UniformFieldHasZeroXi) {
  auto b = gravity::uniform_cube(8000, 31);
  hot::Tree tree;
  tree.build(b.pos, b.mass, morton::Domain{});
  const auto xi = cosmo::two_point_correlation(b, tree, 1.0, 0.02, 0.15, 6);
  for (const auto& bin : xi) {
    EXPECT_NEAR(bin.xi, 0.0, 0.25) << "bin " << bin.r_lo;
    EXPECT_GT(bin.pairs, 0u);
  }
}

TEST(Correlation, ClusteredFieldHasPositiveXiAtSmallR) {
  // Clumps of points: strong excess at separations below the clump size.
  Xoshiro256ss rng(41);
  hot::Bodies b;
  for (int c = 0; c < 60; ++c) {
    const Vec3d center = rng.in_cube() * 0.8 + Vec3d::all(0.1);
    for (int i = 0; i < 60; ++i)
      b.push_back(center + rng.in_sphere(0.02), {}, 1.0, b.size());
  }
  hot::Tree tree;
  tree.build(b.pos, b.mass, morton::Domain{});
  const auto xi = cosmo::two_point_correlation(b, tree, 1.0, 0.005, 0.3, 8);
  EXPECT_GT(xi.front().xi, 10.0);             // strong clustering at small r
  EXPECT_LT(xi.back().xi, xi.front().xi / 5);  // decays with separation
}

}  // namespace
}  // namespace hotlib
