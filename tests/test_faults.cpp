// Randomized differential tests of the fault-injecting fabric and the
// reliable ABM layer: force agreement across LET-push / ABM / direct
// summation under injected faults, exactly-once delivery invariants,
// bit-exact determinism, and graceful degradation instead of hangs when a
// link is dead beyond recovery.
#include <gtest/gtest.h>

#include <cstring>

#include "gravity/abm_forces.hpp"
#include "gravity/models.hpp"
#include "harness/differential.hpp"
#include "parc/parc.hpp"

namespace hotlib {
namespace {

using harness::Scenario;

void expect_exactly_once(const harness::PipelineForces& abm) {
  // Every posted AM record was dispatched exactly once: duplicates deduped,
  // truncations retransmitted, drops recovered, nothing abandoned.
  EXPECT_EQ(abm.am_abandoned, 0u);
  EXPECT_EQ(abm.am_posted, abm.am_dispatched);
  EXPECT_EQ(abm.traversal.lost_keys, 0u);
}

// The ISSUE's acceptance criterion: 10% drops + 5% duplicates at seed 42
// must complete and match direct summation within the MAC error bound.
TEST(FaultDifferential, AcceptanceSeed42DropTenDupFive) {
  Scenario sc;
  sc.n = 1500;
  sc.ranks = 4;
  sc.seed = 42;
  sc.faults.seed = 42;
  sc.faults.drop_prob = 0.10;
  sc.faults.duplicate_prob = 0.05;

  const auto res = harness::run_differential(sc);
  EXPECT_LT(res.abm_vs_direct, res.bound);
  EXPECT_LT(res.let_vs_direct, res.bound);
  expect_exactly_once(res.abm);
  // The plan really fired, and the retry layer really worked for its living.
  EXPECT_GT(res.abm.run.faults.dropped, 0u);
  EXPECT_GT(res.abm.run.faults.duplicated, 0u);
  EXPECT_GT(res.abm.run.retransmits, 0u);
}

// Sweep seeded random fault plans over seeded random particle sets. Both
// parallel pipelines must agree with the exact answer and with each other
// regardless of what the fabric does to the ABM traffic.
TEST(FaultDifferential, RandomizedPlansAndParticleSets) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario sc;
    sc.n = 900;
    sc.ranks = 4;
    sc.seed = seed;
    sc.faults = harness::random_fault_plan(seed, /*intensity=*/0.3);

    const auto res = harness::run_differential(sc);
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan " + sc.faults.describe());
    EXPECT_LT(res.abm_vs_direct, res.bound);
    EXPECT_LT(res.let_vs_direct, res.bound);
    // Same MAC, same physics: the two parallel pipelines sit inside the
    // combined error budget of the conservative distances they each use.
    EXPECT_LT(res.abm_vs_let, 1.5 * res.bound);
    expect_exactly_once(res.abm);
    EXPECT_GT(res.abm.run.faults.total(), 0u) << "plan never fired";
  }
}

// Reliable delivery is exactly-once and in channel order, so the forces from
// a faulted run must be bit-identical to a fault-free run of the same
// scenario — any divergence means a record was lost, duplicated into the
// sums, or applied out of walk order.
TEST(FaultDifferential, FaultedForcesBitIdenticalToFaultFree) {
  Scenario clean;
  clean.n = 1000;
  clean.ranks = 4;
  clean.seed = 8;  // Plummer
  Scenario faulted = clean;
  faulted.faults = harness::random_fault_plan(97, 0.35);

  const auto a = harness::run_abm(clean);
  const auto b = harness::run_abm(faulted);
  ASSERT_GT(b.run.faults.total(), 0u);
  for (std::size_t i = 0; i < a.acc.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a.acc[i], &b.acc[i], sizeof(Vec3d)), 0) << "body " << i;
    ASSERT_EQ(a.pot[i], b.pot[i]) << "body " << i;
  }
}

// Same seed + same fault plan => bit-identical forces and identical
// deterministic traversal statistics across repeated runs. Catches hidden
// wall-clock, iteration-order or scheduling dependence. (Timing-dependent
// stats — suspensions, cache hits, retransmits — are legitimately run-to-run
// variable and deliberately excluded.)
TEST(FaultDifferential, RepeatedRunsAreBitIdentical) {
  Scenario sc;
  sc.n = 800;
  sc.ranks = 3;
  sc.seed = 5;  // uniform cube
  sc.faults = harness::random_fault_plan(5, 0.25);

  const auto a = harness::run_abm(sc);
  const auto b = harness::run_abm(sc);
  for (std::size_t i = 0; i < a.acc.size(); ++i)
    ASSERT_EQ(std::memcmp(&a.acc[i], &b.acc[i], sizeof(Vec3d)), 0) << "body " << i;
  EXPECT_EQ(a.traversal.tally.body_body, b.traversal.tally.body_body);
  EXPECT_EQ(a.traversal.tally.body_cell, b.traversal.tally.body_cell);
  EXPECT_EQ(a.traversal.tally.mac_tests, b.traversal.tally.mac_tests);
  EXPECT_EQ(a.traversal.tally.cells_opened, b.traversal.tally.cells_opened);
  EXPECT_EQ(a.traversal.crown_cells, b.traversal.crown_cells);
  EXPECT_EQ(a.am_posted, b.am_posted);
  expect_exactly_once(a);
  expect_exactly_once(b);
}

// A fabric that eats *all* ABM traffic can't be survived — but it must be
// failed gracefully: bounded retries, a health report, lost regions treated
// as empty, and the traversal returning instead of hanging.
TEST(FaultDegradation, TotalAmLossReturnsHealthReportInsteadOfHanging) {
  const std::size_t n = 400;
  auto all = harness::make_particles(n, 4);
  const auto domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.4}, .softening = 0.02};

  parc::FaultPlan blackhole;
  blackhole.seed = 7;
  blackhole.drop_prob = 1.0;

  const auto stats = parc::Runtime::run(
      2,
      [&](parc::Rank& r) {
        // Fast-failing retry budget: the point is the degradation path, not
        // waiting out the full backoff schedule.
        r.am_set_retry_params({.base_timeout_ticks = 2, .max_backoff_shift = 2,
                               .max_attempts = 3});
        hot::Bodies local;
        for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n; i += 2)
          local.append_from(all, i);
        const auto res = gravity::abm_tree_forces(r, local, domain, cfg);
        // Every remote key this rank asked for was eventually given up on.
        EXPECT_GT(res.traversal.requests_sent, 0u);
        EXPECT_GT(res.traversal.lost_keys, 0u);
        EXPECT_TRUE(res.traversal.degraded());
        EXPECT_GT(res.health.retransmits, 0u);
        EXPECT_TRUE(res.health.degraded());
        ASSERT_FALSE(res.health.peers.empty());
        EXPECT_TRUE(res.health.peers.front().dead);
      },
      {}, blackhole);
  EXPECT_GT(stats.faults.dropped, 0u);
  EXPECT_GT(stats.abandoned_records, 0u);
  EXPECT_TRUE(stats.degraded());
}

}  // namespace
}  // namespace hotlib
