// Tests for src/fft: 1-D against the O(n^2) DFT, inverse round trips,
// Parseval, 3-D impulse/plane-wave identities and the slab-parallel 3-D FFT
// against the serial one.
#include <gtest/gtest.h>

#include <numbers>

#include "fft/fft.hpp"
#include "fft/slab_fft.hpp"
#include "parc/parc.hpp"
#include "util/rng.hpp"

namespace hotlib::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = {rng.normal(), rng.normal()};
  return v;
}

class Fft1D : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1D, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto data = random_signal(n, n);
  const auto ref = dft_reference(data, Direction::Forward);
  fft(data, Direction::Forward);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(data[i] - ref[i]), 0.0, 1e-9 * static_cast<double>(n));
}

TEST_P(Fft1D, InverseRoundTrip) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, 2 * n + 1);
  auto data = orig;
  fft(data, Direction::Forward);
  fft(data, Direction::Inverse);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(std::abs(data[i] - orig[i]), 0.0, 1e-10 * static_cast<double>(n));
}

TEST_P(Fft1D, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto data = random_signal(n, 3 * n + 7);
  double time_energy = 0;
  for (const auto& c : data) time_energy += std::norm(c);
  fft(data, Direction::Forward);
  double freq_energy = 0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft1D, ::testing::Values(1u, 2u, 4u, 16u, 64u, 256u));

TEST(Fft1D, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(12);
  EXPECT_THROW(fft(v, Direction::Forward), std::invalid_argument);
}

TEST(Fft1D, PureToneLandsInSingleBin) {
  const std::size_t n = 64;
  std::vector<Complex> v(n);
  const int k0 = 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2 * std::numbers::pi * k0 * static_cast<double>(j) / n;
    v[j] = {std::cos(ang), std::sin(ang)};
  }
  fft(v, Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0)
      EXPECT_NEAR(std::abs(v[k]), static_cast<double>(n), 1e-9);
    else
      ASSERT_NEAR(std::abs(v[k]), 0.0, 1e-9);
  }
}

TEST(Fft3D, ImpulseGivesFlatSpectrum) {
  const int n = 8;
  std::vector<Complex> v(static_cast<std::size_t>(n) * n * n, Complex{0, 0});
  v[0] = {1, 0};
  fft3d(v, n, n, n, Direction::Forward);
  for (const auto& c : v) ASSERT_NEAR(std::abs(c - Complex{1, 0}), 0.0, 1e-10);
}

TEST(Fft3D, RoundTrip) {
  const int n = 8;
  auto orig = random_signal(static_cast<std::size_t>(n) * n * n, 99);
  auto v = orig;
  fft3d(v, n, n, n, Direction::Forward);
  fft3d(v, n, n, n, Direction::Inverse);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_NEAR(std::abs(v[i] - orig[i]), 0.0, 1e-9);
}

TEST(Fft3D, SeparablePlaneWave) {
  const int n = 8;
  std::vector<Complex> v(static_cast<std::size_t>(n) * n * n);
  const int kx = 2, ky = 3, kz = 1;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const double ang =
            2 * std::numbers::pi * (kx * x + ky * y + kz * z) / static_cast<double>(n);
        v[(static_cast<std::size_t>(z) * n + y) * n + x] = {std::cos(ang), std::sin(ang)};
      }
  fft3d(v, n, n, n, Direction::Forward);
  const std::size_t hit = (static_cast<std::size_t>(kz) * n + ky) * n + kx;
  EXPECT_NEAR(std::abs(v[hit]), static_cast<double>(n) * n * n, 1e-7);
  double rest = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (i != hit) rest = std::max(rest, std::abs(v[i]));
  EXPECT_LT(rest, 1e-7);
}

class SlabFft : public ::testing::TestWithParam<int> {};

TEST_P(SlabFft, MatchesSerialFft3D) {
  const int p = GetParam();
  const int n = 16;
  auto global = random_signal(static_cast<std::size_t>(n) * n * n, 1234);
  auto serial = global;
  fft3d(serial, n, n, n, Direction::Forward);

  parc::Runtime::run(p, [&](parc::Rank& r) {
    SlabFft3D plan(r, n);
    const int z0 = plan.z_offset();
    std::vector<Complex> slab(plan.local_size());
    for (int zl = 0; zl < plan.local_planes(); ++zl)
      for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
          slab[plan.local_index(zl, y, x)] =
              global[(static_cast<std::size_t>(z0 + zl) * n + y) * n + x];

    const auto out = plan.forward(slab);
    // Output is transposed: out[yl][z][x] with yl local to this rank.
    const int y0 = r.rank() * plan.local_planes();
    for (int yl = 0; yl < plan.local_planes(); ++yl)
      for (int z = 0; z < n; ++z)
        for (int x = 0; x < n; ++x) {
          const Complex expect =
              serial[(static_cast<std::size_t>(z) * n + (y0 + yl)) * n + x];
          const Complex got = out[(static_cast<std::size_t>(yl) * n + z) * n + x];
          ASSERT_NEAR(std::abs(got - expect), 0.0, 1e-8);
        }

    // Inverse returns the original z-slab layout.
    const auto back = plan.inverse(out);
    for (std::size_t i = 0; i < back.size(); ++i)
      ASSERT_NEAR(std::abs(back[i] - slab[i]), 0.0, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SlabFft, ::testing::Values(1, 2, 4, 8));

TEST(SlabFft, RejectsIndivisibleRankCount) {
  parc::Runtime::run(3, [](parc::Rank& r) {
    EXPECT_THROW(SlabFft3D(r, 16), std::invalid_argument);
  });
}

}  // namespace
}  // namespace hotlib::fft
