// Tests for the gravity module: the Karp reciprocal-sqrt kernel, the direct
// O(N^2) solvers (serial and ring-parallel), treecode accuracy against direct
// summation, the Salmon-Warren error bound, the full parallel pipeline and
// the leapfrog integrator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/integrator.hpp"
#include "gravity/kernels.hpp"
#include "gravity/models.hpp"
#include "gravity/parallel.hpp"
#include "parc/parc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hotlib::gravity {
namespace {

TEST(KarpRsqrt, FullDoublePrecisionOverWideRange) {
  Xoshiro256ss rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double x = std::exp(rng.uniform(-60.0, 60.0));
    const double y = karp_rsqrt(x);
    const double ref = 1.0 / std::sqrt(x);
    ASSERT_NEAR(y / ref, 1.0, 1e-15) << "x=" << x;
  }
}

TEST(KarpRsqrt, TableSeededVariantMatches) {
  const KarpRsqrtTable table;
  Xoshiro256ss rng(2);
  for (int i = 0; i < 100000; ++i) {
    const double x = std::exp(rng.uniform(-60.0, 60.0));
    const double ref = 1.0 / std::sqrt(x);
    ASSERT_NEAR(table(x) / ref, 1.0, 1e-15) << "x=" << x;
  }
}

TEST(KarpRsqrt, EdgeCasesMatchIeee) {
  // Zeros, infinities, NaN and negatives must match 1.0 / std::sqrt(x)
  // exactly — the seed bit-hack used to turn them into large finite garbage.
  const KarpRsqrtTable table;
  EXPECT_EQ(karp_rsqrt(0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(table(0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(karp_rsqrt(-0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(table(-0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(karp_rsqrt(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_EQ(table(std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_TRUE(std::isnan(karp_rsqrt(-1.0)));
  EXPECT_TRUE(std::isnan(table(-1.0)));
  EXPECT_TRUE(std::isnan(karp_rsqrt(-std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(table(-std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(karp_rsqrt(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(table(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(karp_rsqrt(-std::numeric_limits<double>::denorm_min())));
  EXPECT_TRUE(std::isnan(table(-std::numeric_limits<double>::denorm_min())));
}

TEST(KarpRsqrt, DenormalsFullPrecision) {
  // Denormal inputs have a zero exponent field; both variants renormalise by
  // an exact power of two and must keep full precision down to denorm_min.
  const KarpRsqrtTable table;
  for (double x : {std::numeric_limits<double>::denorm_min(),
                   0.5 * std::numeric_limits<double>::min(),
                   0x1.fffffffffffffp-1023, 0x1p-1074, 0x1.8p-1060}) {
    const double ref = 1.0 / std::sqrt(x);
    ASSERT_NEAR(karp_rsqrt(x) / ref, 1.0, 1e-15) << "x=" << x;
    ASSERT_NEAR(table(x) / ref, 1.0, 1e-15) << "x=" << x;
  }
}

TEST(KarpRsqrt, FullRangeSweepBothVariants) {
  // Every binade from denorm_min to DBL_MAX, several mantissas per binade,
  // both variants against 1.0 / std::sqrt(x).
  const KarpRsqrtTable table;
  for (int e = -1074; e <= 1023; ++e) {
    for (double frac : {1.0, 1.171875, 1.5, 1.984375}) {
      const double x = std::ldexp(frac, e);
      if (x == 0.0 || std::isinf(x)) continue;
      const double ref = 1.0 / std::sqrt(x);
      ASSERT_NEAR(karp_rsqrt(x) / ref, 1.0, 1e-15) << "e=" << e << " frac=" << frac;
      ASSERT_NEAR(table(x) / ref, 1.0, 1e-15) << "e=" << e << " frac=" << frac;
    }
  }
}

TEST(Kernels, CoincidentUnsoftenedParticlesDiverge) {
  // Two particles at the same point with eps = 0: the 1/r potential must
  // diverge (infinite, not large-finite-garbage as the unguarded seed gave).
  const Vec3d x{0.25, -1.5, 3.0};
  Vec3d a{};
  double p = 0;
  pp_accumulate(x, x, 2.0, /*eps2=*/0.0, a, p);
  EXPECT_TRUE(std::isinf(p));
  EXPECT_LT(p, 0.0);
  // With softening the same pair is regular and finite.
  Vec3d a2{};
  double p2 = 0;
  pp_accumulate(x, x, 2.0, /*eps2=*/0.01, a2, p2);
  EXPECT_TRUE(std::isfinite(p2));
  EXPECT_NEAR(p2, -2.0 / 0.1, 1e-12);
  EXPECT_EQ(a2, Vec3d{});
}

TEST(Kernels, PairPotentialAndForceConsistent) {
  // Finite-difference check: acc = -grad(pot) for the softened kernel.
  const Vec3d xj{0.3, -0.2, 0.7};
  const double mj = 2.0, eps2 = 0.01;
  const Vec3d xi{1.0, 1.0, 1.0};
  Vec3d a{};
  double p = 0;
  pp_accumulate(xi, xj, mj, eps2, a, p);
  const double h = 1e-6;
  for (int ax = 0; ax < 3; ++ax) {
    Vec3d xp = xi, xm = xi;
    xp[static_cast<std::size_t>(ax)] += h;
    xm[static_cast<std::size_t>(ax)] -= h;
    Vec3d dummy{};
    double pp = 0, pm = 0;
    pp_accumulate(xp, xj, mj, eps2, dummy, pp);
    pp_accumulate(xm, xj, mj, eps2, dummy, pm);
    EXPECT_NEAR(a[static_cast<std::size_t>(ax)], -(pp - pm) / (2 * h), 1e-5);
  }
}

TEST(Kernels, CellMonopoleEqualsPointMass) {
  hot::Cell c;
  c.com = {0.5, 0.5, 0.5};
  c.mass = 3.0;
  c.quad = {};
  const Vec3d xi{2, 2, 2};
  Vec3d a_cell{}, a_pp{};
  double p_cell = 0, p_pp = 0;
  pc_accumulate(xi, c, /*use_quad=*/true, 0.0, a_cell, p_cell);
  pp_accumulate(xi, c.com, c.mass, 0.0, a_pp, p_pp);
  EXPECT_NEAR(a_cell.x, a_pp.x, 1e-14);
  EXPECT_NEAR(p_cell, p_pp, 1e-14);
}

TEST(Kernels, QuadrupoleReducesFarFieldError) {
  // A dumbbell far away: quadrupole correction must shrink the error vs the
  // exact two-point force.
  const Vec3d p1{0.1, 0, 0}, p2{-0.1, 0, 0};
  const double m = 0.5;
  hot::RawMoments raw;
  raw.accumulate(p1, m);
  raw.accumulate(p2, m);
  hot::Cell c;
  finalize_moments(raw, 0.1, c);

  const Vec3d xi{0.9, 0.7, 0.4};
  Vec3d exact{}, mono{}, quad{};
  double pe = 0, pm = 0, pq = 0;
  pp_accumulate(xi, p1, m, 0.0, exact, pe);
  pp_accumulate(xi, p2, m, 0.0, exact, pe);
  pc_accumulate(xi, c, false, 0.0, mono, pm);
  pc_accumulate(xi, c, true, 0.0, quad, pq);
  EXPECT_LT(norm(quad - exact), 0.3 * norm(mono - exact));
  EXPECT_LT(std::abs(pq - pe), 0.3 * std::abs(pm - pe));
}

TEST(Direct, NewtonThirdLawMomentumConservation) {
  auto b = plummer_sphere(300, 7);
  direct_forces(b.pos, b.mass, 0.01, 1.0, b.acc, b.pot);
  Vec3d f{};
  for (std::size_t i = 0; i < b.size(); ++i) f += b.mass[i] * b.acc[i];
  EXPECT_NEAR(norm(f), 0.0, 1e-10);
}

TEST(Direct, TwoBodyAnalytic) {
  std::vector<Vec3d> pos{{0, 0, 0}, {2, 0, 0}};
  std::vector<double> mass{3.0, 5.0};
  std::vector<Vec3d> acc(2);
  std::vector<double> pot(2);
  const auto tally = direct_forces(pos, mass, 0.0, 1.0, acc, pot);
  EXPECT_EQ(tally.interactions(), 2u);
  EXPECT_NEAR(acc[0].x, 5.0 / 4.0, 1e-12);
  EXPECT_NEAR(acc[1].x, -3.0 / 4.0, 1e-12);
  EXPECT_NEAR(pot[0], -5.0 / 2.0, 1e-12);
  EXPECT_NEAR(pot[1], -3.0 / 2.0, 1e-12);
}

class RingDirect : public ::testing::TestWithParam<int> {};

TEST_P(RingDirect, MatchesSerialAcrossRankCounts) {
  const int p = GetParam();
  const std::size_t n = 240;
  auto all = plummer_sphere(n, 17);
  std::vector<Vec3d> ref_acc(n);
  std::vector<double> ref_pot(n);
  const auto serial_tally =
      direct_forces(all.pos, all.mass, 0.05, 1.0, ref_acc, ref_pot);

  std::vector<std::uint64_t> total(1, 0);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    // Contiguous blocks.
    const std::size_t lo = n * static_cast<std::size_t>(r.rank()) / p;
    const std::size_t hi = n * (static_cast<std::size_t>(r.rank()) + 1) / p;
    std::vector<Vec3d> pos(all.pos.begin() + lo, all.pos.begin() + hi);
    std::vector<double> mass(all.mass.begin() + lo, all.mass.begin() + hi);
    std::vector<Vec3d> acc(hi - lo);
    std::vector<double> pot(hi - lo);
    const auto tally = ring_direct_forces(r, pos, mass, 0.05, 1.0, acc, pot);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      ASSERT_NEAR(norm(acc[i] - ref_acc[lo + i]), 0.0, 1e-10);
      ASSERT_NEAR(pot[i], ref_pot[lo + i], 1e-10);
    }
    const auto sum = r.allreduce(tally.body_body, parc::Sum{});
    if (r.rank() == 0) total[0] = sum;
  });
  EXPECT_EQ(total[0], serial_tally.body_body);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RingDirect, ::testing::Values(1, 2, 3, 4, 6));

double tree_rms_error(std::size_t n, const hot::Mac& mac, double softening = 0.02) {
  auto b = plummer_sphere(n, 29);
  const auto domain = fit_domain(b);
  std::vector<Vec3d> ref_acc(n);
  std::vector<double> ref_pot(n);
  direct_forces(b.pos, b.mass, softening, 1.0, ref_acc, ref_pot);

  hot::Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 8});
  TreeForceConfig cfg{.mac = mac, .softening = softening, .G = 1.0};
  b.clear_forces();
  tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);

  RunningStats rel;
  RunningStats mean_a;
  for (std::size_t i = 0; i < n; ++i) mean_a.add(norm(ref_acc[i]));
  for (std::size_t i = 0; i < n; ++i) rel.add(norm(b.acc[i] - ref_acc[i]));
  return rel.rms() / mean_a.rms();
}

TEST(TreeForces, ErrorDecreasesWithTheta) {
  // Note: our theta bounds bmax/d (Warren-Salmon convention), which at equal
  // theta is ~2x looser than the classic cell-side/d criterion; theta = 0.3
  // here corresponds to the paper's production accuracy regime.
  const double e_loose = tree_rms_error(700, hot::Mac{.theta = 1.0});
  const double e_mid = tree_rms_error(700, hot::Mac{.theta = 0.6});
  const double e_tight = tree_rms_error(700, hot::Mac{.theta = 0.3});
  EXPECT_LT(e_mid, e_loose);
  EXPECT_LT(e_tight, e_mid);
  EXPECT_LT(e_mid, 2.5e-2);
  EXPECT_LT(e_tight, 1.2e-3);  // the paper's "better than 1e-3 RMS" regime
  // Quadrupole truncation error scales like theta^4: halving theta must gain
  // at least a factor ~8 (allowing constant-factor slack).
  EXPECT_LT(e_tight, e_mid / 8.0);
}

TEST(TreeForces, QuadrupoleBeatsMonopole) {
  hot::Mac mono{.theta = 0.4, .quadrupole = false};
  hot::Mac quad{.theta = 0.4, .quadrupole = true};
  EXPECT_LT(tree_rms_error(700, quad), 0.5 * tree_rms_error(700, mono));
}

TEST(TreeForces, SalmonWarrenMacMeetsAbsoluteBound) {
  const std::size_t n = 600;
  auto b = plummer_sphere(n, 41);
  const auto domain = fit_domain(b);
  std::vector<Vec3d> ref_acc(n);
  std::vector<double> ref_pot(n);
  direct_forces(b.pos, b.mass, 0.02, 1.0, ref_acc, ref_pot);

  for (double eps_abs : {1e-2, 1e-3, 1e-4}) {
    hot::Tree tree;
    tree.build(b.pos, b.mass, domain, {.bucket_size = 8});
    TreeForceConfig cfg{
        .mac = hot::Mac{.type = hot::MacType::SalmonWarren, .eps_abs = eps_abs},
        .softening = 0.02,
        .G = 1.0};
    b.clear_forces();
    tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
    RunningStats err;
    for (std::size_t i = 0; i < n; ++i) err.add(norm(b.acc[i] - ref_acc[i]));
    // The bound is per accepted cell; the RMS total error stays within a
    // small multiple of eps_abs (errors add incoherently).
    EXPECT_LT(err.rms(), 30 * eps_abs) << "eps_abs=" << eps_abs;
  }
}

TEST(TreeForces, InteractionCountFarBelowNSquared) {
  const std::size_t n = 3000;
  auto b = plummer_sphere(n, 47);
  hot::Tree tree;
  tree.build(b.pos, b.mass, fit_domain(b));
  TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.6}, .softening = 0.02};
  b.clear_forces();
  const auto tally = tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
  EXPECT_LT(tally.interactions(), static_cast<std::uint64_t>(n) * n / 4);
  EXPECT_GT(tally.interactions(), static_cast<std::uint64_t>(n));  // sanity
}

class ParallelTree : public ::testing::TestWithParam<int> {};

TEST_P(ParallelTree, MatchesSerialTreecode) {
  const int p = GetParam();
  const std::size_t n = 1200;
  auto all = plummer_sphere(n, 53);
  const auto domain = fit_domain(all);
  const TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.5}, .softening = 0.02};

  // Serial treecode reference at the same MAC (for the error budget) and
  // exact direct forces (for the absolute error).
  auto serial = all;
  hot::Tree tree;
  tree.build(serial.pos, serial.mass, domain, {.bucket_size = 16});
  serial.clear_forces();
  tree_forces(tree, serial.pos, serial.mass, cfg, serial.acc, serial.pot);

  std::vector<Vec3d> exact_acc(n);
  std::vector<double> exact_pot(n);
  direct_forces(all.pos, all.mass, 0.02, 1.0, exact_acc, exact_pot);
  RunningStats exact_mag, serial_err;
  for (std::size_t i = 0; i < n; ++i) exact_mag.add(norm(exact_acc[i]));
  for (std::size_t i = 0; i < n; ++i)
    serial_err.add(norm(serial.acc[i] - exact_acc[serial.id[i]]));
  const double serial_rel = serial_err.rms() / exact_mag.rms();

  std::vector<double> max_rel(1, 0.0);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n;
         i += static_cast<std::size_t>(p))
      local.append_from(all, i);

    parallel_tree_forces(r, local, domain, cfg);

    // Parallel result must match the *exact* force to treecode accuracy.
    RunningStats err;
    for (std::size_t i = 0; i < local.size(); ++i)
      err.add(norm(local.acc[i] - exact_acc[local.id[i]]));
    const double rel = err.rms() / exact_mag.rms();
    const double worst = r.allreduce(rel, parc::Max{});
    if (r.rank() == 0) max_rel[0] = worst;
  });
  // The LET import obeys the same MAC, so the parallel error must stay within
  // a small factor of the serial treecode error at this MAC (and bounded
  // absolutely).
  EXPECT_LT(max_rel[0], 4 * serial_rel + 1e-4);
  EXPECT_LT(max_rel[0], 5e-2);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelTree, ::testing::Values(1, 2, 4, 8));

TEST(ParallelTree, WorkWeightsAreRefreshed) {
  parc::Runtime::run(2, [](parc::Rank& r) {
    auto all = plummer_sphere(600, 61);
    const auto domain = fit_domain(all);
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size(); i += 2)
      local.append_from(all, i);
    parallel_tree_forces(r, local, domain,
                         TreeForceConfig{.mac = hot::Mac{.theta = 0.6}});
    // After a force computation every body carries a nonzero work estimate.
    for (double w : local.work) ASSERT_GT(w, 0.0);
  });
}

TEST(Integrator, TwoBodyCircularOrbitClosesAfterOnePeriod) {
  auto b = two_body_circular(1.0, 1.0, 1.0);
  const double mtot = 2.0;
  const double omega = std::sqrt(mtot);           // d = 1
  const double period = 2 * std::numbers::pi / omega;
  const int steps = 2000;
  const double dt = period / steps;
  const Vec3d x0 = b.pos[0];

  auto forces = [&](hot::Bodies& bb) {
    bb.clear_forces();
    direct_forces(bb.pos, bb.mass, 0.0, 1.0, bb.acc, bb.pot);
  };
  forces(b);
  for (int s = 0; s < steps; ++s) {
    kick(b, dt / 2);
    drift(b, dt);
    forces(b);
    kick(b, dt / 2);
  }
  EXPECT_NEAR(norm(b.pos[0] - x0), 0.0, 2e-3);
}

TEST(Integrator, LeapfrogConservesEnergyOverPlummerEvolution) {
  auto b = plummer_sphere(300, 71);
  const double eps = 0.05;
  auto forces = [&](hot::Bodies& bb) {
    bb.clear_forces();
    direct_forces(bb.pos, bb.mass, eps, 1.0, bb.acc, bb.pot);
  };
  forces(b);
  const double e0 = kinetic_energy(b) + potential_energy(b);
  const Vec3d p0 = total_momentum(b);
  const double dt = 0.005;
  for (int s = 0; s < 200; ++s) {
    kick(b, dt / 2);
    drift(b, dt);
    forces(b);
    kick(b, dt / 2);
  }
  const double e1 = kinetic_energy(b) + potential_energy(b);
  EXPECT_NEAR((e1 - e0) / std::abs(e0), 0.0, 5e-3);
  EXPECT_NEAR(norm(total_momentum(b) - p0), 0.0, 1e-10);
}

TEST(Integrator, PlummerModelIsNearVirialEquilibrium) {
  auto b = plummer_sphere(4000, 83);
  b.clear_forces();
  direct_forces(b.pos, b.mass, 0.0, 1.0, b.acc, b.pot);
  const double ke = kinetic_energy(b);
  const double pe = potential_energy(b);
  // Virial theorem: 2KE + PE = 0 (finite-N and clipping tolerance).
  EXPECT_NEAR(2 * ke / std::abs(pe), 1.0, 0.1);
}

TEST(Models, TwoBodyCircularHasZeroNetMomentum) {
  auto b = two_body_circular(2.0, 3.0, 1.5);
  EXPECT_NEAR(norm(total_momentum(b)), 0.0, 1e-12);
}

TEST(Models, PlummerCollisionCountsAndMass) {
  auto b = plummer_collision(500, 3);
  EXPECT_EQ(b.size(), 1000u);
  double m = 0;
  for (double mi : b.mass) m += mi;
  EXPECT_NEAR(m, 1.0, 1e-9);
}

}  // namespace
}  // namespace hotlib::gravity
