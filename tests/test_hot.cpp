// Tests for the hashed oct-tree core: hash table, tree construction
// invariants, multipole moments, MACs, traversal interaction lists, the
// weighted domain decomposition and the LET exchange.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "gravity/models.hpp"
#include "hot/hot.hpp"
#include "parc/parc.hpp"
#include "util/rng.hpp"

namespace hotlib::hot {
namespace {

using gravity::fit_domain;
using gravity::plummer_sphere;
using gravity::uniform_cube;

TEST(KeyHashTable, InsertFindAbsent) {
  KeyHashTable h;
  EXPECT_EQ(h.find(123), KeyHashTable::kNotFound);
  h.insert(123, 7);
  h.insert(456, 9);
  EXPECT_EQ(h.find(123), 7u);
  EXPECT_EQ(h.find(456), 9u);
  EXPECT_EQ(h.find(789), KeyHashTable::kNotFound);
  EXPECT_EQ(h.size(), 2u);
}

TEST(KeyHashTable, OverwriteSameKey) {
  KeyHashTable h;
  h.insert(42, 1);
  h.insert(42, 2);
  EXPECT_EQ(h.find(42), 2u);
  EXPECT_EQ(h.size(), 1u);
}

TEST(KeyHashTable, GrowsUnderLoad) {
  KeyHashTable h(4);
  Xoshiro256ss rng(2);
  std::map<std::uint64_t, std::uint32_t> ref;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next() | 1;  // nonzero
    ref[k] = i;
    h.insert(k, i);
  }
  for (const auto& [k, v] : ref) ASSERT_EQ(h.find(k), v);
  EXPECT_GE(h.capacity() * 7, h.size() * 10);  // load factor respected
}

TEST(KeyHashTable, AdversarialClusteredKeys) {
  // Sequential keys stress linear probing.
  KeyHashTable h;
  for (std::uint64_t k = 1; k <= 4096; ++k) h.insert(k, static_cast<std::uint32_t>(k));
  for (std::uint64_t k = 1; k <= 4096; ++k)
    ASSERT_EQ(h.find(k), static_cast<std::uint32_t>(k));
}

class TreeBuild : public ::testing::TestWithParam<int> {};

TEST_P(TreeBuild, PartitionAndMassInvariants) {
  const int bucket = GetParam();
  auto b = plummer_sphere(2000, 31);
  const auto domain = fit_domain(b);
  Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = bucket});

  // Root covers every body; total mass conserved.
  EXPECT_EQ(tree.root().body_count, b.size());
  EXPECT_NEAR(tree.root().mass, std::accumulate(b.mass.begin(), b.mass.end(), 0.0),
              1e-12);

  // Every internal cell's children partition its body range exactly.
  for (const Cell& c : tree.cells()) {
    if (c.is_leaf()) {
      EXPECT_LE(c.body_count, static_cast<std::uint32_t>(bucket));
      continue;
    }
    std::uint32_t covered = 0;
    double child_mass = 0;
    for (std::uint32_t k = 0; k < c.nchildren; ++k) {
      const Cell& ch = tree.cells()[c.first_child + k];
      EXPECT_EQ(morton::parent(ch.key), c.key);
      EXPECT_EQ(ch.body_begin, c.body_begin + covered);
      covered += ch.body_count;
      child_mass += ch.mass;
    }
    EXPECT_EQ(covered, c.body_count);
    EXPECT_NEAR(child_mass, c.mass, 1e-12 * std::max(1.0, c.mass));
  }

  // The order() permutation is a bijection.
  std::vector<bool> seen(b.size(), false);
  for (std::uint32_t i : tree.order()) {
    ASSERT_LT(i, b.size());
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, TreeBuild, ::testing::Values(1, 4, 16, 64));

TEST(Tree, HashFindsEveryCellAndOnlyThose) {
  auto b = uniform_cube(1500, 77);
  const auto domain = fit_domain(b);
  Tree tree;
  tree.build(b.pos, b.mass, domain);
  for (std::size_t i = 0; i < tree.cells().size(); ++i) {
    const Cell* c = tree.find(tree.cells()[i].key);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->key, tree.cells()[i].key);
  }
  // A key that cannot exist (child of a leaf in empty space) misses.
  EXPECT_EQ(tree.find(morton::child(morton::kRootKey, 0) |
                      (morton::Key{1} << 40)),
            nullptr);
}

TEST(Tree, MomentsMatchBruteForce) {
  auto b = plummer_sphere(500, 5);
  const auto domain = fit_domain(b);
  Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 8});

  // For every cell, recompute mass/com/quad/b2 directly from its bodies.
  for (const Cell& c : tree.cells()) {
    if (c.body_count == 0) continue;
    RawMoments raw;
    for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t) {
      const std::uint32_t i = tree.order()[t];
      raw.accumulate(b.pos[i], b.mass[i]);
    }
    Cell ref;
    finalize_moments(raw, 0.0, ref);
    EXPECT_NEAR(ref.mass, c.mass, 1e-12);
    EXPECT_NEAR(ref.com.x, c.com.x, 1e-9);
    EXPECT_NEAR(ref.com.y, c.com.y, 1e-9);
    EXPECT_NEAR(ref.com.z, c.com.z, 1e-9);
    for (int q = 0; q < 6; ++q)
      EXPECT_NEAR(ref.quad[static_cast<std::size_t>(q)],
                  c.quad[static_cast<std::size_t>(q)], 1e-7 * std::max(1.0, c.b2));
    EXPECT_NEAR(ref.b2, c.b2, 1e-9 * std::max(1.0, c.b2));
    // bmax upper-bounds the true enclosing radius.
    double true_bmax = 0;
    for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t) {
      const std::uint32_t i = tree.order()[t];
      true_bmax = std::max(true_bmax, norm(b.pos[i] - c.com));
    }
    EXPECT_GE(c.bmax + 1e-12, true_bmax);
  }
}

TEST(Tree, QuadrupoleIsTraceFree) {
  auto b = uniform_cube(800, 9);
  Tree tree;
  tree.build(b.pos, b.mass, fit_domain(b));
  for (const Cell& c : tree.cells()) {
    if (c.body_count == 0) continue;
    EXPECT_NEAR(c.quad[0] + c.quad[3] + c.quad[5], 0.0, 1e-9 * std::max(1.0, c.b2));
  }
}

TEST(Tree, EmptyAndSingleton) {
  Tree tree;
  tree.build({}, {}, morton::Domain{});
  EXPECT_EQ(tree.root().body_count, 0u);

  const Vec3d p{0.5, 0.5, 0.5};
  const double m = 2.0;
  tree.build(std::span<const Vec3d>(&p, 1), std::span<const double>(&m, 1),
             morton::Domain{});
  EXPECT_EQ(tree.root().body_count, 1u);
  EXPECT_DOUBLE_EQ(tree.root().mass, 2.0);
  EXPECT_DOUBLE_EQ(tree.root().bmax, 0.0);
}

TEST(Tree, CoincidentBodiesDoNotRecurseForever) {
  // 100 bodies at the same point exceed any bucket: depth is capped.
  std::vector<Vec3d> pos(100, Vec3d{0.25, 0.25, 0.25});
  std::vector<double> mass(100, 0.01);
  Tree tree;
  tree.build(pos, mass, morton::Domain{}, {.bucket_size = 8});
  EXPECT_LE(tree.max_depth(), morton::kMaxLevel);
  EXPECT_EQ(tree.root().body_count, 100u);
}

TEST(Tree, FindWithinReturnsAllTrueNeighbors) {
  auto b = uniform_cube(2000, 13);
  const auto domain = fit_domain(b);
  Tree tree;
  tree.build(b.pos, b.mass, domain);
  Xoshiro256ss rng(4);
  std::vector<std::uint32_t> cand;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3d c = rng.in_cube();
    const double radius = 0.15;
    tree.find_within(c, radius, cand);
    std::vector<bool> in_cand(b.size(), false);
    for (std::uint32_t i : cand) in_cand[i] = true;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (norm(b.pos[i] - c) <= radius) {
        ASSERT_TRUE(in_cand[i]) << "missed neighbor " << i;
      }
    }
  }
}

TEST(Mac, BarnesHutCriticalRadiusScalesWithTheta) {
  Cell c;
  c.bmax = 1.0;
  c.b2 = 0.5;
  Mac tight{.type = MacType::BarnesHut, .theta = 0.3};
  Mac loose{.type = MacType::BarnesHut, .theta = 0.9};
  EXPECT_GT(tight.r_crit(c), loose.r_crit(c));
  EXPECT_TRUE(loose.accept(c, 2.0));
  EXPECT_FALSE(tight.accept(c, 2.0));
}

TEST(Mac, SalmonWarrenTightensWithEps) {
  Cell c;
  c.bmax = 0.5;
  c.b2 = 0.2;
  Mac coarse{.type = MacType::SalmonWarren, .eps_abs = 1e-2};
  Mac fine{.type = MacType::SalmonWarren, .eps_abs = 1e-6};
  EXPECT_GT(fine.r_crit(c), coarse.r_crit(c));
}

TEST(Mac, PointMassAlwaysAcceptable) {
  Cell c;  // single particle: b2 == 0, bmax == 0
  Mac m{.type = MacType::SalmonWarren, .eps_abs = 1e-9};
  EXPECT_TRUE(m.accept(c, 1e-3));
}

TEST(Traverse, ListsCoverEveryBodyExactlyOnce) {
  // For any sink group, every body of the system must appear exactly once:
  // either directly on the body list or inside exactly one accepted cell.
  auto b = plummer_sphere(800, 21);
  const auto domain = fit_domain(b);
  Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 16});
  const Mac mac{.type = MacType::BarnesHut, .theta = 0.7};

  InteractionLists lists;
  InteractionTally tally;
  for (std::uint32_t li : leaf_indices(tree)) {
    build_interaction_lists(tree, li, mac, lists, tally);
    std::vector<int> covered(b.size(), 0);
    for (std::uint32_t i : lists.bodies) covered[i] += 1;
    for (std::uint32_t ci : lists.cells) {
      const Cell& c = tree.cells()[ci];
      for (std::uint32_t t = c.body_begin; t < c.body_begin + c.body_count; ++t)
        covered[tree.order()[t]] += 1;
    }
    for (std::size_t i = 0; i < b.size(); ++i)
      ASSERT_EQ(covered[i], 1) << "body " << i << " covered " << covered[i] << " times";
    // Mass on the lists equals total mass.
    double mass = 0;
    for (std::uint32_t i : lists.bodies) mass += b.mass[i];
    for (std::uint32_t ci : lists.cells) mass += tree.cells()[ci].mass;
    ASSERT_NEAR(mass, tree.root().mass, 1e-9);
  }
  EXPECT_GT(tally.mac_tests, 0u);
}

TEST(Traverse, TighterThetaOpensMoreCells) {
  auto b = plummer_sphere(1500, 23);
  Tree tree;
  tree.build(b.pos, b.mass, fit_domain(b));
  InteractionLists lists;
  InteractionTally t_tight, t_loose;
  std::size_t direct_tight = 0, direct_loose = 0;
  for (std::uint32_t li : leaf_indices(tree)) {
    build_interaction_lists(tree, li, Mac{.theta = 0.3}, lists, t_tight);
    direct_tight += lists.bodies.size();
    build_interaction_lists(tree, li, Mac{.theta = 1.0}, lists, t_loose);
    direct_loose += lists.bodies.size();
  }
  EXPECT_GT(t_tight.cells_opened, t_loose.cells_opened);
  EXPECT_GT(direct_tight, direct_loose);
}

// ---- parallel pieces -------------------------------------------------------

class Decompose : public ::testing::TestWithParam<int> {};

TEST_P(Decompose, PreservesBodiesAndBalancesWork) {
  const int p = GetParam();
  const std::size_t n_total = 4000;
  auto all = plummer_sphere(n_total, 55);
  const auto domain = fit_domain(all);

  std::vector<double> imbalance(1);
  std::vector<std::vector<std::uint64_t>> per_rank_ids(static_cast<std::size_t>(p));
  parc::Runtime::run(p, [&](parc::Rank& r) {
    // Deal bodies round-robin to ranks as the "previous" distribution.
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < n_total;
         i += static_cast<std::size_t>(p))
      local.append_from(all, i);

    DecomposeStats stats;
    const auto ranges = decompose(r, local, domain, &stats);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(p));

    // Every local body's key is inside this rank's range.
    for (std::size_t i = 0; i < local.size(); ++i) {
      const auto k = morton::key_from_position(local.pos[i], domain);
      ASSERT_TRUE(ranges[static_cast<std::size_t>(r.rank())].contains(k));
    }
    // Keys sorted after exchange.
    for (std::size_t i = 1; i < local.size(); ++i) {
      ASSERT_LE(morton::key_from_position(local.pos[i - 1], domain),
                morton::key_from_position(local.pos[i], domain));
    }
    per_rank_ids[static_cast<std::size_t>(r.rank())] = local.id;
    if (r.rank() == 0) imbalance[0] = stats.imbalance();
  });

  // No body lost or duplicated.
  std::vector<bool> seen(n_total, false);
  std::size_t count = 0;
  for (const auto& ids : per_rank_ids)
    for (std::uint64_t id : ids) {
      ASSERT_LT(id, n_total);
      ASSERT_FALSE(seen[id]);
      seen[id] = true;
      ++count;
    }
  EXPECT_EQ(count, n_total);
  // Equal unit weights: balance within 25% of perfect for small P.
  EXPECT_LT(imbalance[0], 1.25);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Decompose, ::testing::Values(1, 2, 4, 8));

TEST(Decompose, RespectsWorkWeights) {
  // Put all the work weight on one half of the system; the heavy half must
  // spread over more ranks than the light half.
  const int p = 4;
  auto all = uniform_cube(2000, 3);
  const auto domain = fit_domain(all);
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  parc::Runtime::run(p, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
         i += static_cast<std::size_t>(p)) {
      local.append_from(all, i);
      local.work.back() = all.pos[i].x < 0.5 ? 100.0 : 1.0;
    }
    decompose(r, local, domain);
    counts[static_cast<std::size_t>(r.rank())] = local.size();
  });
  // The last rank (owning the high-key, light half) must hold far more
  // bodies than the first rank (heavy half).
  EXPECT_GT(counts[3], 2 * counts[0]);
}

TEST(Aabb, DistanceInsideAndOutside) {
  Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(box.distance({0.5, 0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(box.distance({2.0, 0.5, 0.5}), 1.0);
  EXPECT_NEAR(box.distance({2.0, 2.0, 0.5}), std::sqrt(2.0), 1e-12);
}

TEST(Let, ImportedMassAccountsForWholeRemoteSystem) {
  // With 2 ranks, the cells+bodies imported from the other rank must sum to
  // exactly the other rank's total mass.
  const int p = 2;
  auto all = plummer_sphere(1000, 91);
  const auto domain = fit_domain(all);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size();
         i += static_cast<std::size_t>(p))
      local.append_from(all, i);
    decompose(r, local, domain);

    Tree tree;
    tree.build(local.pos, local.mass, domain);
    const double my_mass = tree.root().body_count > 0 ? tree.root().mass : 0.0;
    const auto boxes = r.allgather(local_aabb(local));
    const Mac mac{.type = MacType::BarnesHut, .theta = 0.6};
    const LetImport import =
        exchange_let(r, tree, local.pos, local.mass, boxes, mac);

    double imported = 0;
    for (const auto& c : import.cells) imported += c.mass;
    for (const auto& s : import.bodies) imported += s.mass;
    const double total = r.allreduce(my_mass, parc::Sum{});
    EXPECT_NEAR(imported, total - my_mass, 1e-9);
  });
}

}  // namespace
}  // namespace hotlib::hot
