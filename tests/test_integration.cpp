// Cross-module integration tests: full simulation checkpoint/resume, the
// ABM-backed cosmology driver, the per-message-overhead network model, and
// end-to-end invariants that only emerge when the whole stack runs together.
#include <gtest/gtest.h>

#include <filesystem>

#include "cosmo/checkpoint.hpp"
#include "cosmo/correlate.hpp"
#include "cosmo/simulation.hpp"
#include "gravity/direct.hpp"
#include "gravity/ewald.hpp"
#include "gravity/integrator.hpp"
#include "gravity/models.hpp"
#include "parc/parc.hpp"
#include "util/stats.hpp"

namespace hotlib {
namespace {

TEST(Integration, CheckpointResumeContinuesBitForBit) {
  // Run 4 steps; checkpoint after 2; resume from the checkpoint and verify
  // the resumed trajectory equals the uninterrupted one exactly (the solver
  // is deterministic given identical state).
  auto run_steps = [](hot::Bodies& b, int steps, const morton::Domain& domain) {
    const double dt = 0.01, eps = 0.05;
    auto forces = [&](hot::Bodies& bb) {
      bb.clear_forces();
      gravity::direct_forces(bb.pos, bb.mass, eps, 1.0, bb.acc, bb.pot);
    };
    (void)domain;
    forces(b);
    for (int s = 0; s < steps; ++s) {
      gravity::kick(b, dt / 2);
      gravity::drift(b, dt);
      forces(b);
      gravity::kick(b, dt / 2);
    }
  };

  auto b_full = gravity::plummer_sphere(300, 5);
  const auto domain = gravity::fit_domain(b_full);
  auto b_half = b_full;

  run_steps(b_full, 4, domain);

  run_steps(b_half, 2, domain);
  const std::string base =
      (std::filesystem::temp_directory_path() / "hotlib_resume").string();
  ASSERT_TRUE(cosmo::save_checkpoint(base, b_half, {.step = 2, .time = 0.02}, 4));
  hot::Bodies resumed;
  cosmo::CheckpointInfo info;
  ASSERT_TRUE(cosmo::load_checkpoint(base, resumed, info));
  EXPECT_EQ(info.step, 2u);
  run_steps(resumed, 2, domain);

  for (std::size_t i = 0; i < b_full.size(); ++i) {
    ASSERT_EQ(resumed.pos[i], b_full.pos[i]) << i;
    ASSERT_EQ(resumed.vel[i], b_full.vel[i]) << i;
  }
}

TEST(Integration, CosmologyWithAbmPipelineMatchesLetPipeline) {
  // The same simulation driven by both parallel force pipelines must agree
  // on global energies to MAC accuracy after several steps.
  cosmo::SimConfig base;
  base.ics.grid_n = 16;
  base.ics.spectrum.amplitude = 40.0;
  base.dt = 0.4;
  cosmo::SimConfig abm = base;
  abm.use_abm = true;

  double e_let = 0, e_abm = 0;
  parc::Runtime::run(4, [&](parc::Rank& r) {
    cosmo::CosmologySim sim(r, base);
    cosmo::StepStats st{};
    for (int i = 0; i < 3; ++i) st = sim.step();
    if (r.rank() == 0) e_let = st.kinetic + st.potential;
  });
  parc::Runtime::run(4, [&](parc::Rank& r) {
    cosmo::CosmologySim sim(r, abm);
    cosmo::StepStats st{};
    for (int i = 0; i < 3; ++i) st = sim.step();
    if (r.rank() == 0) e_abm = st.kinetic + st.potential;
  });
  EXPECT_NEAR(e_abm, e_let, 0.02 * std::abs(e_let));
}

TEST(Integration, OverheadModelMakesSmallMessagesExpensive) {
  // With per-message software overhead, 1000 tiny messages cost ~1000x the
  // overhead, while one large message of the same volume costs ~one.
  parc::NetworkParams net{.latency_s = 10e-6, .bandwidth_Bps = 1e9,
                          .overhead_s = 40e-6};
  auto run = [&](int messages, std::size_t bytes_each) {
    return parc::Runtime::run(
               2,
               [&](parc::Rank& r) {
                 std::vector<std::uint8_t> buf(bytes_each);
                 if (r.rank() == 0)
                   for (int i = 0; i < messages; ++i) r.send(1, 5, buf);
                 else
                   for (int i = 0; i < messages; ++i) (void)r.recv(0, 5);
               },
               net)
        .max_vclock;
  };
  const double many_small = run(1000, 100);
  const double one_big = run(1, 100000);
  EXPECT_GT(many_small, 30 * one_big);
  // Sender and receiver overheads overlap (pipelined), so the makespan is
  // ~1000 x one overhead, not two.
  EXPECT_NEAR(many_small, 1000 * 40e-6, 0.5 * many_small);
}

TEST(Integration, PeriodicCosmologyBoxDevelopsStructure) {
  // Full periodic loop: Poisson-sampled unit box (shot noise seeds
  // clustering), Ewald-periodic direct forces, leapfrog; the coarse-mesh
  // density contrast must grow under self-gravity.
  hot::Bodies b = gravity::uniform_cube(512, 99);

  gravity::EwaldTable ewald(1.0, 10);
  auto forces = [&](hot::Bodies& bb) {
    bb.clear_forces();
    gravity::periodic_direct_forces(bb.pos, bb.mass, ewald, 0.03, 1.0, bb.acc,
                                    bb.pot);
  };
  // Density contrast on a coarse mesh (the lattice ICs make small-r pair
  // statistics degenerate, so measure clustering through cell counts).
  auto contrast = [&](const hot::Bodies& bb) {
    const int m = 4;
    std::vector<double> cells(static_cast<std::size_t>(m) * m * m, 0.0);
    for (const auto& x : bb.pos) {
      const int cx = std::min(m - 1, static_cast<int>(x.x * m));
      const int cy = std::min(m - 1, static_cast<int>(x.y * m));
      const int cz = std::min(m - 1, static_cast<int>(x.z * m));
      cells[(static_cast<std::size_t>(cz) * m + cy) * m + cx] += 1.0;
    }
    RunningStats s;
    for (double c : cells) s.add(c);
    return s.stddev() / s.mean();
  };

  const double xi0 = contrast(b);
  forces(b);
  const double dt = 0.25;  // dynamical time at unit mean density is O(1)
  for (int s = 0; s < 8; ++s) {
    gravity::kick(b, dt / 2);
    gravity::drift(b, dt);
    for (auto& x : b.pos)  // periodic wrap
      for (int a = 0; a < 3; ++a) {
        double& c = x[static_cast<std::size_t>(a)];
        c -= std::floor(c);
      }
    forces(b);
    gravity::kick(b, dt / 2);
  }
  const double xi1 = contrast(b);
  EXPECT_GT(xi1, xi0);  // gravity amplifies density contrast

  // Momentum stays conserved through the periodic force.
  EXPECT_LT(norm(gravity::total_momentum(b)), 1e-6);
}

TEST(Integration, WorkWeightedDecompositionImprovesSecondStepBalance) {
  // After one force computation the work weights reflect real interaction
  // counts; the next decomposition must balance *work*, not body counts.
  auto all = gravity::plummer_sphere(3000, 17);
  const auto domain = gravity::fit_domain(all);
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.35},
                                     .softening = 0.02};
  parc::Runtime::run(4, [&](parc::Rank& r) {
    hot::Bodies local;
    for (std::size_t i = static_cast<std::size_t>(r.rank()); i < all.size(); i += 4)
      local.append_from(all, i);
    const auto first = gravity::parallel_tree_forces(r, local, domain, cfg);
    const auto second = gravity::parallel_tree_forces(r, local, domain, cfg);
    // Second step decomposes on measured interaction counts.
    EXPECT_LT(second.decomp.imbalance(), 1.35);
    EXPECT_GT(first.tally.interactions(), 0u);
  });
}

TEST(Integration, SnapshotOfGatheredSimulationRoundTrips) {
  cosmo::SimConfig cfg;
  cfg.ics.grid_n = 8;
  parc::Runtime::run(2, [&](parc::Rank& r) {
    cosmo::CosmologySim sim(r, cfg);
    sim.step();
    hot::Bodies all = sim.gather_all();
    if (r.rank() == 0) {
      const std::string base =
          (std::filesystem::temp_directory_path() / "hotlib_sim_snap").string();
      ASSERT_TRUE(cosmo::save_checkpoint(base, all, {.step = 1, .time = sim.time()}, 8));
      hot::Bodies back;
      cosmo::CheckpointInfo info;
      ASSERT_TRUE(cosmo::load_checkpoint(base, back, info));
      EXPECT_EQ(back.size(), all.size());
      double m1 = 0, m2 = 0;
      for (double m : all.mass) m1 += m;
      for (double m : back.mass) m2 += m;
      EXPECT_DOUBLE_EQ(m1, m2);
    }
  });
}

}  // namespace
}  // namespace hotlib
