// Tests for src/machine and src/simnet: the paper's price tables, the
// $/Mflop arithmetic, and the machine-model projections against the paper's
// own reported numbers.
#include <gtest/gtest.h>

#include "machine/prices.hpp"
#include "simnet/machine.hpp"

namespace hotlib {
namespace {

TEST(Prices, LokiTable1TotalMatchesPaper) {
  const auto lines = machine::loki_parts_sept1996();
  EXPECT_DOUBLE_EQ(machine::total_price(lines), 51379.0);
}

TEST(Prices, Aug1997SystemIsAbout28k) {
  // "A 16 processor 200Mhz-2 Gbyte memory-50 Gbyte disk system with BayStack
  // switch would be $28k."
  const double total = machine::total_price(machine::system_aug1997());
  EXPECT_NEAR(total, 28000.0, 1500.0);
}

TEST(Prices, DollarsPerMflop) {
  // Loki's 10-day run: $51,379 at 879 Mflops sustained => ~$58/Mflop.
  EXPECT_NEAR(machine::dollars_per_mflop(51379.0, 879e6), 58.45, 0.1);
  // SC'96: $103k at 2.19 Gflops => ~$47/Mflop and ~21 Gflops/M$.
  EXPECT_NEAR(machine::dollars_per_mflop(103000.0, 2.19e9), 47.0, 0.5);
  EXPECT_NEAR(machine::gflops_per_million_dollars(103000.0, 2.19e9), 21.3, 0.3);
}

TEST(Simnet, CatalogBasics) {
  const auto machines = simnet::catalog();
  EXPECT_GE(machines.size(), 8u);
  const auto red = simnet::asci_red_april97();
  EXPECT_EQ(red.procs(), 6800);
  EXPECT_NEAR(red.peak_flops(), 1.36e12, 1e10);  // paper: 1.36 Tflops peak
  const auto loki = simnet::loki();
  EXPECT_EQ(loki.procs(), 16);
  EXPECT_DOUBLE_EQ(loki.cost_usd, 51379.0);
}

TEST(Simnet, NsqProjectionReproduces635Gflops) {
  // E1: 1M particles, 4 steps, 6800 procs, paper: 239.3 s => 635 Gflops.
  const auto red = simnet::asci_red_april97();
  const auto proj = simnet::project_nsq_run(red, 1e6, 4);
  EXPECT_NEAR(proj.gflops(), 635.0, 10.0);
  EXPECT_NEAR(proj.seconds, 239.3, 5.0);
}

TEST(Simnet, TreecodeProjectionReproduces430And170Gflops) {
  // E3: first 5 steps on 6800 procs: 7.18e12 interactions in 632 s => 431
  // Gflops. interactions/particle = 7.18e12 / (322e6 * 5) = ~4459.
  const auto red = simnet::asci_red_april97();
  const auto early = simnet::project_tree_run(red, 322e6, 5, 4459.0, false);
  EXPECT_NEAR(early.gflops(), 431.0, 15.0);

  // E2: steps 150-437 on 2048 nodes: 1.52e14 interactions over 9.4 h => 170
  // Gflops; interactions/particle/step = 1.52e14 / (322e6 * 287) = ~1645.
  const auto red2048 = simnet::asci_red_2048();
  const auto sustained = simnet::project_tree_run(red2048, 322e6, 287, 1645.0, true);
  EXPECT_NEAR(sustained.gflops(), 170.0, 10.0);
  EXPECT_NEAR(sustained.seconds / 3600.0, 9.4, 0.6);
}

TEST(Simnet, LokiProjectionReproduces1190And879Mflops) {
  // E5: Loki first 30 steps: 1.15e12 interactions in 36973 s => 1.19 Gflops.
  const auto loki = simnet::loki();
  const double ipp_early = 1.15e12 / (9.75e6 * 30);
  const auto early = simnet::project_tree_run(loki, 9.75e6, 30, ipp_early, false);
  EXPECT_NEAR(early.gflops(), 1.19, 0.05);
  EXPECT_NEAR(early.seconds, 36973.0, 2000.0);

  // Whole run to Apr 30: 1.97e13 interactions in 850000 s => 879 Mflops.
  const double ipp = 1.97e13 / (9.75e6 * 750);
  const auto run = simnet::project_tree_run(loki, 9.75e6, 750, ipp, true);
  EXPECT_NEAR(run.gflops(), 0.879, 0.05);
}

TEST(Simnet, ParticlesPerSecondAndGrapeComparison) {
  // Conclusion: treecode updates ~3e6 particles/s on 3400 nodes; the N^2
  // algorithm on the same machine manages ~52 particles/s; the treecode is
  // therefore ~1e5 x more efficient at fixed accuracy.
  const auto red = simnet::asci_red_april97();
  const auto tree = simnet::project_tree_run(red, 322e6, 5, 4459.0, false);
  const double tree_pps = simnet::particles_per_second(tree, 322e6, 5);
  EXPECT_NEAR(tree_pps / 3e6, 1.0, 0.25);

  const auto nsq = simnet::project_nsq_run(red, 322e6, 1);
  const double nsq_pps = simnet::particles_per_second(nsq, 322e6, 1);
  EXPECT_NEAR(nsq_pps / 52.0, 1.0, 0.25);
  // "approximately 1e5 times more efficient": same order of magnitude.
  EXPECT_GT(tree_pps / nsq_pps, 3e4);
  EXPECT_LT(tree_pps / nsq_pps, 3e5);

  // GRAPE-like device on the same N: comparable to the Red N^2 rate, i.e.
  // vastly slower than the treecode.
  const double grape_pps =
      simnet::grape_particles_per_second(simnet::grape4_like(), 322e6);
  EXPECT_LT(grape_pps, tree_pps / 1e4);
}

TEST(Simnet, EthernetVsMeshMattersForCommBoundRuns) {
  // A communication-dominated pattern (tiny compute, large volume) must be
  // much slower on Loki's fast ethernet than on the Red mesh.
  const auto loki = simnet::loki();
  const auto red16 = simnet::asci_red_16();
  const auto on_loki = simnet::project_interactions(loki, 1e6, 5e8, 1000);
  const auto on_red = simnet::project_interactions(red16, 1e6, 5e8, 1000);
  EXPECT_GT(on_loki.seconds, 5 * on_red.seconds);
}

}  // namespace
}  // namespace hotlib
