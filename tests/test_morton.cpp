// Tests for src/morton: bit interleaving, key algebra (parent/child/level/
// ancestor), position mapping and cell geometry.
#include <gtest/gtest.h>

#include "morton/key.hpp"
#include "util/rng.hpp"

namespace hotlib::morton {
namespace {

TEST(ExpandBits, RoundTrip) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next() & 0x1FFFFF);
    EXPECT_EQ(compact_bits(expand_bits(v)), v);
  }
}

TEST(ExpandBits, BitsAreThreeApart) {
  const std::uint64_t e = expand_bits(0x1FFFFF);
  EXPECT_EQ(e, 0x1249249249249249ULL);
}

TEST(Key, CoordsRoundTrip) {
  Xoshiro256ss rng(12);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next() % kCoordRange);
    const auto y = static_cast<std::uint32_t>(rng.next() % kCoordRange);
    const auto z = static_cast<std::uint32_t>(rng.next() % kCoordRange);
    const Key k = key_from_coords(x, y, z);
    const Coords c = coords_from_key(k);
    ASSERT_EQ(c.x, x);
    ASSERT_EQ(c.y, y);
    ASSERT_EQ(c.z, z);
    ASSERT_EQ(level(k), kMaxLevel);
  }
}

TEST(Key, RootAndLevels) {
  EXPECT_EQ(level(kRootKey), 0);
  Key k = kRootKey;
  for (int lv = 1; lv <= kMaxLevel; ++lv) {
    k = child(k, 5);
    EXPECT_EQ(level(k), lv);
    EXPECT_EQ(octant(k), 5);
  }
  for (int lv = kMaxLevel; lv >= 1; --lv) {
    EXPECT_EQ(level(k), lv);
    k = parent(k);
  }
  EXPECT_EQ(k, kRootKey);
}

TEST(Key, ParentChildInverse) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 1000; ++i) {
    Key k = kRootKey;
    const int depth = 1 + static_cast<int>(rng.next() % kMaxLevel);
    for (int d = 0; d < depth; ++d) k = child(k, static_cast<int>(rng.next() % 8));
    Key up = k;
    for (int d = 0; d < depth; ++d) up = parent(up);
    EXPECT_EQ(up, kRootKey);
    EXPECT_EQ(ancestor_at_level(k, 0), kRootKey);
    EXPECT_EQ(ancestor_at_level(k, depth), k);
  }
}

TEST(Key, AncestorPredicate) {
  const Key a = child(child(kRootKey, 3), 1);
  const Key b = child(child(a, 7), 2);
  EXPECT_TRUE(is_ancestor_of(kRootKey, b));
  EXPECT_TRUE(is_ancestor_of(a, b));
  EXPECT_TRUE(is_ancestor_of(a, a));
  EXPECT_FALSE(is_ancestor_of(b, a));
  EXPECT_FALSE(is_ancestor_of(child(kRootKey, 4), b));
}

TEST(Key, CommonAncestor) {
  const Key a = child(child(child(kRootKey, 3), 1), 0);
  const Key b = child(child(child(kRootKey, 3), 2), 7);
  EXPECT_EQ(common_ancestor(a, b), child(kRootKey, 3));
  EXPECT_EQ(common_ancestor(a, a), a);
  EXPECT_EQ(common_ancestor(a, child(kRootKey, 5)), kRootKey);
  EXPECT_EQ(common_ancestor(a, child(a, 2)), a);
}

TEST(Key, PositionMappingPreservesOrderAlongDiagonal) {
  // Positions in the same octant share the level-1 key digit.
  const Domain d{{0, 0, 0}, 1.0};
  const Key k_low = key_from_position({0.1, 0.2, 0.3}, d);
  const Key k_high = key_from_position({0.9, 0.8, 0.7}, d);
  EXPECT_NE(ancestor_at_level(k_low, 1), ancestor_at_level(k_high, 1));
}

TEST(Key, BoundaryPositionsClamped) {
  const Domain d{{0, 0, 0}, 1.0};
  const Key k = key_from_position({1.0, 1.0, 1.0}, d);  // on the upper face
  const Coords c = coords_from_key(k);
  EXPECT_EQ(c.x, kCoordRange - 1);
  EXPECT_EQ(c.y, kCoordRange - 1);
  EXPECT_EQ(c.z, kCoordRange - 1);
}

TEST(CellBox, RootIsWholeDomain) {
  const Domain d{{-2, -2, -2}, 4.0};
  const CellBox b = cell_box(kRootKey, d);
  EXPECT_DOUBLE_EQ(b.half, 2.0);
  EXPECT_DOUBLE_EQ(b.center.x, 0.0);
  EXPECT_DOUBLE_EQ(b.center.y, 0.0);
  EXPECT_DOUBLE_EQ(b.center.z, 0.0);
}

TEST(CellBox, ChildHalvesAndContainsItsPositions) {
  const Domain d{{0, 0, 0}, 1.0};
  Xoshiro256ss rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3d p = rng.in_cube();
    Key k = key_from_position(p, d);
    // Every ancestor's box must contain p.
    for (int lv = kMaxLevel; lv >= 0; --lv) {
      const Key a = ancestor_at_level(k, lv);
      const CellBox b = cell_box(a, d);
      EXPECT_NEAR(b.half, 0.5 / static_cast<double>(1u << std::min(lv, 30)), 1e-12);
      for (int ax = 0; ax < 3; ++ax) {
        ASSERT_LE(b.center[static_cast<std::size_t>(ax)] - b.half,
                  p[static_cast<std::size_t>(ax)] + 1e-12);
        ASSERT_GE(b.center[static_cast<std::size_t>(ax)] + b.half,
                  p[static_cast<std::size_t>(ax)] - 1e-12);
      }
      if (lv > 12) continue;  // half-size formula check only meaningful shallow
    }
  }
}

TEST(BoundingDomain, CoversAllPoints) {
  Xoshiro256ss rng(23);
  std::vector<Vec3d> pts;
  for (int i = 0; i < 500; ++i)
    pts.push_back({rng.uniform(-3, 5), rng.uniform(10, 11), rng.uniform(-1, 1)});
  const Domain d = bounding_domain(pts.data(), pts.size());
  for (const auto& p : pts) EXPECT_TRUE(d.contains(p));
}

TEST(BoundingDomain, DegenerateInput) {
  const Vec3d p{1, 2, 3};
  const Domain d = bounding_domain(&p, 1);
  EXPECT_TRUE(d.contains(p));
  EXPECT_GT(d.size, 0.0);
}

// Property sweep: Morton order preserves spatial locality in the sense that
// key-adjacent lattice cells are geometrically close (within a few cell
// sizes at the same refinement level).
class MortonLocality : public ::testing::TestWithParam<int> {};

TEST_P(MortonLocality, AdjacentKeysShareDeepAncestors) {
  const int lv = GetParam();
  Xoshiro256ss rng(100 + static_cast<std::uint64_t>(lv));
  const Domain d{{0, 0, 0}, 1.0};
  int shared = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const Vec3d p = rng.in_cube();
    const Key k = key_from_position(p, d);
    const Key a = ancestor_at_level(k, lv);
    // Perturb by half a cell at level lv: usually stays in same/nearby cell.
    const double h = 0.25 / static_cast<double>(1 << lv);
    Vec3d q = p + Vec3d{rng.uniform(-h, h), rng.uniform(-h, h), rng.uniform(-h, h)};
    q.x = std::clamp(q.x, 0.0, 0.999999);
    q.y = std::clamp(q.y, 0.0, 0.999999);
    q.z = std::clamp(q.z, 0.0, 0.999999);
    const Key a2 = ancestor_at_level(key_from_position(q, d), lv);
    shared += (a == a2) ? 1 : 0;
    ++total;
  }
  // More than a third of half-cell perturbations stay in the same cell.
  EXPECT_GT(shared, total / 3);
}

INSTANTIATE_TEST_SUITE_P(Levels, MortonLocality, ::testing::Values(1, 2, 4, 6, 8));

}  // namespace
}  // namespace hotlib::morton
