// Tests for the mini-NPB suite: EP against the published NPB reference sums
// (bit-exact), IS/MG/FT/CG/BT/SP/LU verification and serial-vs-parallel
// agreement.
#include <gtest/gtest.h>

#include "npb/adi.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "parc/parc.hpp"

namespace hotlib::npb {
namespace {

TEST(Ep, ClassSMatchesPublishedSums) {
  const EpResult r = run_ep_serial(24);
  EXPECT_TRUE(r.verified);
  EXPECT_NEAR(r.sx, -3.247834652034740e+3, 1e-8);
  EXPECT_NEAR(r.sy, -6.958407078382297e+3, 1e-8);
}

class EpParallel : public ::testing::TestWithParam<int> {};

TEST_P(EpParallel, MatchesSerialSums) {
  const int p = GetParam();
  const EpResult serial = run_ep_serial(20);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const EpResult par = run_ep(r, 20);
    // Same gaussians, summed in a different (rank-blocked) order: equal to
    // within FP associativity noise; counts are exactly equal.
    EXPECT_NEAR(par.sx, serial.sx, 1e-10 * std::abs(serial.sx));
    EXPECT_NEAR(par.sy, serial.sy, 1e-10 * std::abs(serial.sy));
    EXPECT_EQ(par.pairs, serial.pairs);
    EXPECT_EQ(par.counts, serial.counts);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, EpParallel, ::testing::Values(1, 2, 3, 4, 8));

TEST(Ep, AnnulusCountsArePlausible) {
  const EpResult r = run_ep_serial(18);
  // ~pi/4 of pairs accepted.
  EXPECT_NEAR(static_cast<double>(r.pairs) / (1 << 18), 3.14159 / 4.0, 0.01);
  // Counts decrease with annulus index (gaussian tails).
  EXPECT_GT(r.counts[0], r.counts[2]);
  EXPECT_GT(r.counts[2], r.counts[4]);
}

class IsParallel : public ::testing::TestWithParam<int> {};

TEST_P(IsParallel, SortsAndVerifies) {
  const int p = GetParam();
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const IsResult res = run_is(r, 14, 10);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(res.total_keys, 1u << 14);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, IsParallel, ::testing::Values(1, 2, 4, 8));

TEST(Is, CommVolumeGrowsWithRanks) {
  double bytes1 = 0, bytes8 = 0;
  parc::Runtime::run(1, [&](parc::Rank& r) { bytes1 = run_is(r, 12, 10).comm_bytes; });
  parc::Runtime::run(8, [&](parc::Rank& r) {
    const auto res = run_is(r, 12, 10);
    if (r.rank() == 0) bytes8 = res.comm_bytes;
  });
  EXPECT_EQ(bytes1, 0.0);       // nothing leaves a single rank
  EXPECT_GT(bytes8, 10000.0);   // all-to-all dominated
}

class MgParallel : public ::testing::TestWithParam<int> {};

TEST_P(MgParallel, VCyclesReduceResidual) {
  const int p = GetParam();
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const MgResult res = run_mg(r, 5, 8);  // 32^3
    EXPECT_TRUE(res.verified);
    EXPECT_LT(res.final_residual, 0.1 * res.initial_residual);
    EXPECT_GT(res.ops, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MgParallel, ::testing::Values(1, 2, 4, 8));

TEST(Mg, ConvergenceComparableAcrossRankCounts) {
  // More ranks truncate the level hierarchy earlier (each rank must keep
  // >= 2 planes), so exact equality is not expected — but the convergence
  // quality must stay in the same ballpark.
  double serial_final = 0;
  parc::Runtime::run(1, [&](parc::Rank& r) { serial_final = run_mg(r, 4, 4).final_residual; });
  parc::Runtime::run(4, [&](parc::Rank& r) {
    const MgResult res = run_mg(r, 4, 4);
    EXPECT_LT(res.final_residual, 10 * serial_final);
    EXPECT_GT(res.final_residual, 0.0);
  });
}

class FtParallel : public ::testing::TestWithParam<int> {};

TEST_P(FtParallel, ChecksumsMatchSerial) {
  const int p = GetParam();
  FtResult serial;
  parc::Runtime::run(1, [&](parc::Rank& r) { serial = run_ft(r, 4, 4); });
  ASSERT_TRUE(serial.verified);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const FtResult res = run_ft(r, 4, 4);
    EXPECT_TRUE(res.verified);
    ASSERT_EQ(res.checksums.size(), serial.checksums.size());
    for (std::size_t i = 0; i < res.checksums.size(); ++i)
      EXPECT_NEAR(std::abs(res.checksums[i] - serial.checksums[i]), 0.0, 1e-6)
          << "step " << i;
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, FtParallel, ::testing::Values(1, 2, 4, 8));

class CgParallel : public ::testing::TestWithParam<int> {};

TEST_P(CgParallel, ConvergesToSameZeta) {
  const int p = GetParam();
  CgResult serial;
  parc::Runtime::run(1, [&](parc::Rank& r) { serial = run_cg(r, 512); });
  EXPECT_TRUE(serial.verified);
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const CgResult res = run_cg(r, 512);
    EXPECT_TRUE(res.verified);
    EXPECT_NEAR(res.zeta, serial.zeta, 1e-10);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CgParallel, ::testing::Values(1, 2, 4, 8));

class AdiAll : public ::testing::TestWithParam<std::tuple<AdiVariant, int>> {};

TEST_P(AdiAll, SolvesVerifyAndDissipate) {
  const auto [variant, p] = GetParam();
  parc::Runtime::run(p, [&](parc::Rank& r) {
    const AdiResult res = run_adi(r, variant, 16, 2);
    EXPECT_TRUE(res.verified) << variant_name(variant)
                              << " residual=" << res.max_solve_residual
                              << " norms " << res.initial_norm << " -> "
                              << res.final_norm;
    EXPECT_LT(res.final_norm, res.initial_norm);
  });
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndRanks, AdiAll,
    ::testing::Combine(::testing::Values(AdiVariant::BT, AdiVariant::SP,
                                         AdiVariant::LU),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(variant_name(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Adi, ResultIndependentOfRankCount) {
  for (AdiVariant v : {AdiVariant::BT, AdiVariant::SP}) {
    double serial_norm = 0;
    parc::Runtime::run(1, [&](parc::Rank& r) {
      serial_norm = run_adi(r, v, 16, 2).final_norm;
    });
    parc::Runtime::run(4, [&](parc::Rank& r) {
      const AdiResult res = run_adi(r, v, 16, 2);
      EXPECT_NEAR(res.final_norm, serial_norm, 1e-10 * (1 + serial_norm))
          << variant_name(v);
    });
  }
}

TEST(Adi, LuWavefrontConvergesToSameSolutionAcrossRanks) {
  // The SSOR inner solve iterates to the unique solution of the implicit
  // system, so the result is rank-count independent up to the solve
  // tolerance (1e-4 relative residual).
  double n1 = 0, n4 = 0;
  parc::Runtime::run(1, [&](parc::Rank& r) { n1 = run_adi(r, AdiVariant::LU, 16, 2).final_norm; });
  parc::Runtime::run(4, [&](parc::Rank& r) {
    const auto res = run_adi(r, AdiVariant::LU, 16, 2);
    EXPECT_TRUE(res.verified);
    if (r.rank() == 0) n4 = res.final_norm;
  });
  EXPECT_NEAR(n4, n1, 1e-3 * n1);
}

}  // namespace
}  // namespace hotlib::npb
