// Bit-exact determinism sweep over HOTLIB_THREADS: the test suite the
// shared-memory parallelism stands on. The contract (docs/parallelism.md):
// forces, potentials, 38-flop tallies, the tree's cell layout and the body
// permutation are IDENTICAL — compared bit-for-bit, not to a tolerance —
// for any thread count, and across repeated runs at the same thread count
// (work stealing must affect timing only). Runs under the `tsan` label too
// (scripts/tsan.sh).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gravity/direct.hpp"
#include "gravity/evaluator.hpp"
#include "gravity/models.hpp"
#include "hot/let.hpp"
#include "hot/mac.hpp"
#include "hot/tree.hpp"
#include "morton/key.hpp"
#include "util/task_pool.hpp"
#include "vortex/vpm.hpp"

namespace {

using hotlib::InteractionTally;
using hotlib::Vec3d;
using hotlib::util::TaskPool;

// Bitwise equality for doubles/Vec3d: catches -0.0 vs 0.0 and any last-ulp
// drift a tolerance comparison would wave through.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}
bool same_bits(const Vec3d& a, const Vec3d& b) {
  return same_bits(a.x, b.x) && same_bits(a.y, b.y) && same_bits(a.z, b.z);
}

template <class T>
::testing::AssertionResult bitwise_equal(const std::vector<T>& a,
                                         const std::vector<T>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_bits(a[i], b[i]))
      return ::testing::AssertionFailure() << "element " << i << " differs";
  }
  return ::testing::AssertionSuccess();
}

bool operator_eq_tally(const InteractionTally& a, const InteractionTally& b) {
  return a.body_body == b.body_body && a.body_cell == b.body_cell &&
         a.cells_opened == b.cells_opened && a.mac_tests == b.mac_tests;
}

// The thread counts of the determinism sweep. hardware_concurrency is in
// the set so the sweep covers whatever this machine would default to.
std::vector<int> sweep_threads() {
  std::vector<int> t{1, 2, 3, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) t.push_back(static_cast<int>(hw));
  return t;
}

// Restore a 1-lane global pool after each test so the rest of the suite
// sees the serial default regardless of sweep order.
class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { TaskPool::set_global_concurrency(0); }
};

struct GravityResult {
  std::vector<Vec3d> acc;
  std::vector<double> pot;
  std::vector<double> work;
  InteractionTally tally;
  // Tree structure, captured field-by-field.
  std::vector<hotlib::morton::Key> cell_keys;
  std::vector<std::uint32_t> topology;  // first_child, nchildren, body ranges
  std::vector<double> moments;          // mass, com, quad, b2, bmax per cell
  std::vector<std::uint32_t> order;
  int max_depth = 0;
};

GravityResult run_gravity(int nthreads, std::size_t n, bool quadrupole) {
  TaskPool::set_global_concurrency(nthreads);
  hotlib::hot::Bodies b = hotlib::gravity::plummer_sphere(n, /*seed=*/42);
  const hotlib::morton::Domain domain =
      hotlib::morton::bounding_domain(b.pos.data(), b.pos.size());
  hotlib::hot::Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 16});

  GravityResult r;
  r.acc.assign(b.size(), Vec3d{});
  r.pot.assign(b.size(), 0.0);
  r.work.assign(b.size(), 0.0);
  hotlib::gravity::TreeForceConfig cfg;
  cfg.mac.theta = 0.7;
  cfg.mac.quadrupole = quadrupole;
  cfg.softening = 0.01;
  r.tally = hotlib::gravity::tree_forces(tree, b.pos, b.mass, cfg, r.acc, r.pot, r.work);

  for (const hotlib::hot::Cell& c : tree.cells()) {
    r.cell_keys.push_back(c.key);
    r.topology.insert(r.topology.end(),
                      {c.first_child, c.nchildren, c.body_begin, c.body_count});
    r.moments.insert(r.moments.end(), {c.mass, c.com.x, c.com.y, c.com.z, c.quad[0],
                                       c.quad[1], c.quad[2], c.quad[3], c.quad[4],
                                       c.quad[5], c.b2, c.bmax});
  }
  r.order.assign(tree.order().begin(), tree.order().end());
  r.max_depth = tree.max_depth();
  return r;
}

void expect_same_gravity(const GravityResult& a, const GravityResult& b,
                         const char* what) {
  EXPECT_TRUE(bitwise_equal(a.acc, b.acc)) << what << ": acc";
  EXPECT_TRUE(bitwise_equal(a.pot, b.pot)) << what << ": pot";
  EXPECT_TRUE(bitwise_equal(a.work, b.work)) << what << ": work";
  EXPECT_TRUE(operator_eq_tally(a.tally, b.tally)) << what << ": tally";
  EXPECT_EQ(a.cell_keys, b.cell_keys) << what << ": cell keys";
  EXPECT_EQ(a.topology, b.topology) << what << ": cell topology";
  EXPECT_TRUE(bitwise_equal(a.moments, b.moments)) << what << ": moments";
  EXPECT_EQ(a.order, b.order) << what << ": body permutation";
  EXPECT_EQ(a.max_depth, b.max_depth) << what << ": max_depth";
}

TEST_F(ParallelDeterminism, GravitySweepBitExact) {
  const GravityResult ref = run_gravity(1, 3000, /*quadrupole=*/true);
  ASSERT_GT(ref.tally.interactions(), 0u);
  for (int t : sweep_threads()) {
    const GravityResult got = run_gravity(t, 3000, true);
    expect_same_gravity(ref, got, ("threads=" + std::to_string(t)).c_str());
  }
}

TEST_F(ParallelDeterminism, GravitySweepMonopoleOnly) {
  const GravityResult ref = run_gravity(1, 2000, /*quadrupole=*/false);
  for (int t : {2, 8}) {
    const GravityResult got = run_gravity(t, 2000, false);
    expect_same_gravity(ref, got, ("threads=" + std::to_string(t)).c_str());
  }
}

TEST_F(ParallelDeterminism, RepeatedRunsSameThreadCountStealOrderIndependent) {
  // Same thread count twice: steal order and scratch-buffer reuse differ
  // between runs, the bits must not.
  for (int rep = 0; rep < 3; ++rep) {
    const GravityResult a = run_gravity(8, 2500, true);
    const GravityResult b = run_gravity(8, 2500, true);
    expect_same_gravity(a, b, ("rep=" + std::to_string(rep)).c_str());
  }
}

TEST_F(ParallelDeterminism, DirectForcesSweepBitExact) {
  hotlib::hot::Bodies b = hotlib::gravity::plummer_sphere(800, 7);
  std::vector<Vec3d> ref_acc(b.size());
  std::vector<double> ref_pot(b.size());
  TaskPool::set_global_concurrency(1);
  const InteractionTally ref = hotlib::gravity::direct_forces(
      b.pos, b.mass, /*eps=*/0.02, /*G=*/1.0, ref_acc, ref_pot);
  for (int t : sweep_threads()) {
    TaskPool::set_global_concurrency(t);
    std::vector<Vec3d> acc(b.size());
    std::vector<double> pot(b.size());
    const InteractionTally got =
        hotlib::gravity::direct_forces(b.pos, b.mass, 0.02, 1.0, acc, pot);
    EXPECT_TRUE(bitwise_equal(ref_acc, acc)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref_pot, pot)) << "threads=" << t;
    EXPECT_TRUE(operator_eq_tally(ref, got)) << "threads=" << t;
  }
}

TEST_F(ParallelDeterminism, LetImportApplicationBitExact) {
  // Fabricated import: the parallel sink loop must reproduce the serial
  // accumulation exactly (shared read-only batch, disjoint sink chunks).
  hotlib::hot::Bodies b = hotlib::gravity::plummer_sphere(700, 3);
  hotlib::hot::LetImport import;
  for (std::size_t i = 0; i < 200; ++i) {
    import.bodies.push_back({Vec3d{1.0 + 0.01 * static_cast<double>(i), -0.5, 0.25},
                             1e-3 * static_cast<double>(i + 1)});
  }
  for (std::size_t i = 0; i < 64; ++i) {
    hotlib::hot::CellRecord c;
    c.com = Vec3d{-2.0, 0.03 * static_cast<double>(i), 1.5};
    c.mass = 0.5 + 0.1 * static_cast<double>(i);
    c.quad = {0.1, 0.02, -0.03, 0.05, 0.001, -0.15};
    c.b2 = 0.2;
    c.bmax = 0.4;
    import.cells.push_back(c);
  }
  hotlib::gravity::TreeForceConfig cfg;
  cfg.softening = 0.01;

  TaskPool::set_global_concurrency(1);
  std::vector<Vec3d> ref_acc(b.size(), Vec3d{});
  std::vector<double> ref_pot(b.size(), 0.0), ref_work(b.size(), 0.0);
  const InteractionTally ref = hotlib::gravity::apply_let_import(
      import, b.pos, cfg, ref_acc, ref_pot, ref_work);
  for (int t : sweep_threads()) {
    TaskPool::set_global_concurrency(t);
    std::vector<Vec3d> acc(b.size(), Vec3d{});
    std::vector<double> pot(b.size(), 0.0), work(b.size(), 0.0);
    const InteractionTally got =
        hotlib::gravity::apply_let_import(import, b.pos, cfg, acc, pot, work);
    EXPECT_TRUE(bitwise_equal(ref_acc, acc)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref_pot, pot)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref_work, work)) << "threads=" << t;
    EXPECT_TRUE(operator_eq_tally(ref, got)) << "threads=" << t;
  }
}

struct VortexResult {
  std::vector<Vec3d> pos, alpha, vel, dalpha;
  InteractionTally tally;
};

VortexResult run_vortex(int nthreads) {
  TaskPool::set_global_concurrency(nthreads);
  hotlib::vortex::VortexParticles p = hotlib::vortex::make_ring(
      1500, /*radius=*/1.0, /*gamma=*/1.0, Vec3d{0, 0, 0}, Vec3d{0, 0, 1},
      /*sigma=*/0.08);
  hotlib::hot::Mac mac;
  mac.theta = 0.55;
  VortexResult r;
  r.tally = hotlib::vortex::tree_velocities(p, mac, /*bucket_size=*/16);
  r.tally += hotlib::vortex::step_rk2(p, /*dt=*/1e-3, mac);
  r.pos = p.pos;
  r.alpha = p.alpha;
  r.vel = p.vel;
  r.dalpha = p.dalpha;
  return r;
}

TEST_F(ParallelDeterminism, VortexSweepBitExact) {
  const VortexResult ref = run_vortex(1);
  ASSERT_GT(ref.tally.interactions(), 0u);
  for (int t : sweep_threads()) {
    const VortexResult got = run_vortex(t);
    EXPECT_TRUE(bitwise_equal(ref.pos, got.pos)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref.alpha, got.alpha)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref.vel, got.vel)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref.dalpha, got.dalpha)) << "threads=" << t;
    EXPECT_TRUE(operator_eq_tally(ref.tally, got.tally)) << "threads=" << t;
  }
}

TEST_F(ParallelDeterminism, VortexDirectSweepBitExact) {
  hotlib::vortex::VortexParticles ref_p = hotlib::vortex::make_ring(
      600, 1.0, 1.0, Vec3d{0, 0, 0}, Vec3d{0, 0, 1}, 0.1);
  TaskPool::set_global_concurrency(1);
  const InteractionTally ref = hotlib::vortex::direct_velocities(ref_p);
  for (int t : sweep_threads()) {
    TaskPool::set_global_concurrency(t);
    hotlib::vortex::VortexParticles p = hotlib::vortex::make_ring(
        600, 1.0, 1.0, Vec3d{0, 0, 0}, Vec3d{0, 0, 1}, 0.1);
    const InteractionTally got = hotlib::vortex::direct_velocities(p);
    EXPECT_TRUE(bitwise_equal(ref_p.vel, p.vel)) << "threads=" << t;
    EXPECT_TRUE(bitwise_equal(ref_p.dalpha, p.dalpha)) << "threads=" << t;
    EXPECT_TRUE(operator_eq_tally(ref, got)) << "threads=" << t;
  }
}

}  // namespace
