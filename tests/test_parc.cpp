// Tests for the parc message-passing runtime: point-to-point semantics,
// collectives built on p2p, all-to-all, the ABM active-message layer and the
// LogP-style virtual clock.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parc/parc.hpp"

namespace hotlib::parc {
namespace {

TEST(Parc, PingPong) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_value(1, 7, 12345);
      EXPECT_EQ(r.recv_value<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(r.recv_value<int>(0, 7), 12345);
      r.send_value(0, 8, 54321);
    }
  });
}

TEST(Parc, TagMatchingOutOfOrder) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_value(1, 1, 10);
      r.send_value(1, 2, 20);
    } else {
      // Receive in reverse tag order.
      EXPECT_EQ(r.recv_value<int>(0, 2), 20);
      EXPECT_EQ(r.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(Parc, WildcardReceive) {
  Runtime::run(3, [](Rank& r) {
    if (r.rank() != 0) {
      r.send_value(0, 5, r.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Message m = r.recv(kAnySource, 5);
        sum += m.as<int>();
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Parc, FifoPerSourceAndTag) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < 100; ++i) r.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) ASSERT_EQ(r.recv_value<int>(0, 3), i);
    }
  });
}

class ParcCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ParcCollectives, Barrier) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  Runtime::run(p, [&](Rank& r) {
    arrived.fetch_add(1);
    r.barrier();
    EXPECT_EQ(arrived.load(), p);  // nobody passes before everyone arrives
    r.barrier();
  });
}

TEST_P(ParcCollectives, Broadcast) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    for (int root = 0; root < p; ++root) {
      const double v = r.rank() == root ? 3.25 + root : -1.0;
      EXPECT_DOUBLE_EQ(r.broadcast(v, root), 3.25 + root);
    }
  });
}

TEST_P(ParcCollectives, BroadcastVector) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<int> v;
    if (r.rank() == 0) v = {1, 2, 3, 4, 5};
    v = r.broadcast_vector(v, 0);
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
  });
}

TEST_P(ParcCollectives, AllreduceSumMinMax) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const int me = r.rank() + 1;
    EXPECT_EQ(r.allreduce(me, Sum{}), p * (p + 1) / 2);
    EXPECT_EQ(r.allreduce(me, Min{}), 1);
    EXPECT_EQ(r.allreduce(me, Max{}), p);
  });
}

TEST_P(ParcCollectives, ReduceToEveryRoot) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    for (int root = 0; root < p; ++root) {
      const int v = r.reduce(r.rank(), Sum{}, root);
      if (r.rank() == root) EXPECT_EQ(v, p * (p - 1) / 2);
      r.barrier();
    }
  });
}

TEST_P(ParcCollectives, Allgather) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const auto all = r.allgather(10 * r.rank());
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int i = 0; i < p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], 10 * i);
  });
}

TEST_P(ParcCollectives, AllgatherVectorVariableSizes) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<int> mine(static_cast<std::size_t>(r.rank()), r.rank());
    const auto all = r.allgather_vector<int>(mine);
    for (int i = 0; i < p; ++i) {
      ASSERT_EQ(all[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(i));
      for (int v : all[static_cast<std::size_t>(i)]) EXPECT_EQ(v, i);
    }
  });
}

TEST_P(ParcCollectives, ExscanSum) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const int v = r.exscan(1, Sum{}, 0);
    EXPECT_EQ(v, r.rank());
  });
}

TEST_P(ParcCollectives, AlltoallvExchangesPersonalizedData) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      out[static_cast<std::size_t>(d)] =
          std::vector<int>(static_cast<std::size_t>(d + 1), 100 * r.rank() + d);
    const auto in = r.alltoallv_typed<int>(out);
    for (int s = 0; s < p; ++s) {
      const auto& block = in[static_cast<std::size_t>(s)];
      ASSERT_EQ(block.size(), static_cast<std::size_t>(r.rank() + 1));
      for (int v : block) EXPECT_EQ(v, 100 * s + r.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParcCollectives, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(ParcAbm, RoundTripRequestResponse) {
  // Rank 0 asks every other rank to double a value; replies arrive via a
  // second handler. Exactly the request/response shape of the tree walk.
  Runtime::run(4, [](Rank& r) {
    std::vector<int> replies;
    const int reply_h = r.am_register(
        [&replies](Rank&, int, std::span<const std::uint8_t> body) {
          Message m;
          m.payload.assign(body.begin(), body.end());
          replies.push_back(m.as<int>());
        });
    const int request_h = r.am_register(
        [reply_h](Rank& me, int src, std::span<const std::uint8_t> body) {
          Message m;
          m.payload.assign(body.begin(), body.end());
          me.am_post_value(src, reply_h, 2 * m.as<int>());
        });

    if (r.rank() == 0) {
      for (int d = 1; d < r.size(); ++d) r.am_post_value(d, request_h, d);
    }
    r.am_quiesce();
    if (r.rank() == 0) {
      ASSERT_EQ(replies.size(), 3u);
      int sum = 0;
      for (int v : replies) sum += v;
      EXPECT_EQ(sum, 2 * (1 + 2 + 3));
    } else {
      EXPECT_TRUE(replies.empty());
    }
  });
}

TEST(ParcAbm, BatchingCoalescesMessages) {
  // 1000 small posts to one destination with a large batch limit must produce
  // far fewer fabric messages than posts.
  Runtime::run(2, [](Rank& r) {
    const int h = r.am_register([](Rank&, int, std::span<const std::uint8_t>) {});
    if (r.rank() == 0) {
      r.am_set_batch_limit(1 << 20);
      for (int i = 0; i < 1000; ++i) r.am_post_value(1, h, i);
    }
    r.am_quiesce();
    // Poster counts posts, receiver dispatches; both total 1000 records...
    EXPECT_EQ(r.am_posted() + r.am_dispatched(), 1000u);
    // ...but the fabric saw only a handful of batched messages (plus the
    // quiescence allreduce traffic), not one per record.
    EXPECT_LT(r.fabric().messages_delivered(), 100u);
  });
}

TEST(ParcAbm, AutoFlushOnBatchLimit) {
  Runtime::run(2, [](Rank& r) {
    const int h = r.am_register([](Rank&, int, std::span<const std::uint8_t>) {});
    if (r.rank() == 0) {
      r.am_set_batch_limit(64);  // tiny: forces eager sends
      for (int i = 0; i < 100; ++i) r.am_post_value(1, h, i);
      EXPECT_GT(r.fabric().messages_delivered(), 5u);
    }
    r.am_quiesce();
  });
}

TEST(ParcAbm, CascadedHandlersTerminate) {
  // Handlers that re-post (a chain of length 20 across ranks) must still
  // quiesce.
  Runtime::run(3, [](Rank& r) {
    std::atomic<int>* counter = nullptr;
    static std::atomic<int> hits{0};
    if (r.rank() == 0) hits = 0;
    (void)counter;
    const int h = r.am_register([](Rank& me, int, std::span<const std::uint8_t> body) {
      Message m;
      m.payload.assign(body.begin(), body.end());
      const int remaining = m.as<int>();
      hits.fetch_add(1);
      if (remaining > 0)
        me.am_post_value((me.rank() + 1) % me.size(), 0, remaining - 1);
    });
    if (r.rank() == 0) r.am_post_value(1, h, 20);
    r.am_quiesce();
    r.barrier();
    if (r.rank() == 0) EXPECT_EQ(hits.load(), 21);
  });
}

TEST(ParcVclock, ComputeChargesAdvanceClock) {
  NetworkParams net{.latency_s = 1e-4, .bandwidth_Bps = 1e7, .flops_per_s = 1e8};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        r.charge_flops(1e8);  // 1 second of modelled compute
        r.barrier();
      },
      net);
  EXPECT_GE(stats.max_vclock, 1.0);
  EXPECT_LT(stats.max_vclock, 1.1);
}

TEST(ParcVclock, MessageCostLatencyPlusBandwidth) {
  NetworkParams net{.latency_s = 1e-3, .bandwidth_Bps = 1e6, .flops_per_s = 0};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        if (r.rank() == 0) {
          std::vector<std::uint8_t> big(1000000);  // 1 s at 1 MB/s
          r.send(1, 9, big);
        } else {
          (void)r.recv(0, 9);
        }
      },
      net);
  EXPECT_NEAR(stats.max_vclock, 1.001, 0.01);
}

TEST(ParcVclock, CausalityThroughForwardChain) {
  // 0 -> 1 -> 2 chained messages accumulate two latencies.
  NetworkParams net{.latency_s = 0.5, .bandwidth_Bps = 0, .flops_per_s = 0};
  const RunStats stats = Runtime::run(
      3,
      [](Rank& r) {
        if (r.rank() == 0) r.send_value(1, 1, 1);
        if (r.rank() == 1) {
          (void)r.recv(0, 1);
          r.send_value(2, 2, 1);
        }
        if (r.rank() == 2) (void)r.recv(1, 2);
      },
      net);
  EXPECT_NEAR(stats.max_vclock, 1.0, 1e-9);
}

TEST(ParcRuntime, PropagatesExceptions) {
  EXPECT_THROW(Runtime::run(3,
                            [](Rank& r) {
                              if (r.rank() == 1) throw std::runtime_error("boom");
                              // Other ranks exit without communication.
                            }),
               std::runtime_error);
}

TEST(ParcRuntime, RunCollectGathersResults) {
  std::vector<int> results;
  Runtime::run_collect<int>(5, [](Rank& r) { return r.rank() * r.rank(); }, results);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ParcRuntime, RejectsNonPositiveRanks) {
  EXPECT_THROW(Runtime::run(0, [](Rank&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace hotlib::parc
