// Tests for the parc message-passing runtime: point-to-point semantics,
// collectives built on p2p, all-to-all, the ABM active-message layer and the
// LogP-style virtual clock.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parc/parc.hpp"

namespace hotlib::parc {
namespace {

TEST(Parc, PingPong) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_value(1, 7, 12345);
      EXPECT_EQ(r.recv_value<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(r.recv_value<int>(0, 7), 12345);
      r.send_value(0, 8, 54321);
    }
  });
}

TEST(Parc, TagMatchingOutOfOrder) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      r.send_value(1, 1, 10);
      r.send_value(1, 2, 20);
    } else {
      // Receive in reverse tag order.
      EXPECT_EQ(r.recv_value<int>(0, 2), 20);
      EXPECT_EQ(r.recv_value<int>(0, 1), 10);
    }
  });
}

TEST(Parc, WildcardReceive) {
  Runtime::run(3, [](Rank& r) {
    if (r.rank() != 0) {
      r.send_value(0, 5, r.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        Message m = r.recv(kAnySource, 5);
        sum += m.as<int>();
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(Parc, FifoPerSourceAndTag) {
  Runtime::run(2, [](Rank& r) {
    if (r.rank() == 0) {
      for (int i = 0; i < 100; ++i) r.send_value(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) ASSERT_EQ(r.recv_value<int>(0, 3), i);
    }
  });
}

class ParcCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ParcCollectives, Barrier) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  Runtime::run(p, [&](Rank& r) {
    arrived.fetch_add(1);
    r.barrier();
    EXPECT_EQ(arrived.load(), p);  // nobody passes before everyone arrives
    r.barrier();
  });
}

TEST_P(ParcCollectives, Broadcast) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    for (int root = 0; root < p; ++root) {
      const double v = r.rank() == root ? 3.25 + root : -1.0;
      EXPECT_DOUBLE_EQ(r.broadcast(v, root), 3.25 + root);
    }
  });
}

TEST_P(ParcCollectives, BroadcastVector) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<int> v;
    if (r.rank() == 0) v = {1, 2, 3, 4, 5};
    v = r.broadcast_vector(v, 0);
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
  });
}

TEST_P(ParcCollectives, AllreduceSumMinMax) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const int me = r.rank() + 1;
    EXPECT_EQ(r.allreduce(me, Sum{}), p * (p + 1) / 2);
    EXPECT_EQ(r.allreduce(me, Min{}), 1);
    EXPECT_EQ(r.allreduce(me, Max{}), p);
  });
}

TEST_P(ParcCollectives, ReduceToEveryRoot) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    for (int root = 0; root < p; ++root) {
      const int v = r.reduce(r.rank(), Sum{}, root);
      if (r.rank() == root) EXPECT_EQ(v, p * (p - 1) / 2);
      r.barrier();
    }
  });
}

TEST_P(ParcCollectives, Allgather) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const auto all = r.allgather(10 * r.rank());
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int i = 0; i < p; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], 10 * i);
  });
}

TEST_P(ParcCollectives, AllgatherVectorVariableSizes) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<int> mine(static_cast<std::size_t>(r.rank()), r.rank());
    const auto all = r.allgather_vector<int>(mine);
    for (int i = 0; i < p; ++i) {
      ASSERT_EQ(all[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(i));
      for (int v : all[static_cast<std::size_t>(i)]) EXPECT_EQ(v, i);
    }
  });
}

TEST_P(ParcCollectives, ExscanSum) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    const int v = r.exscan(1, Sum{}, 0);
    EXPECT_EQ(v, r.rank());
  });
}

TEST_P(ParcCollectives, AlltoallvExchangesPersonalizedData) {
  const int p = GetParam();
  Runtime::run(p, [&](Rank& r) {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      out[static_cast<std::size_t>(d)] =
          std::vector<int>(static_cast<std::size_t>(d + 1), 100 * r.rank() + d);
    const auto in = r.alltoallv_typed<int>(out);
    for (int s = 0; s < p; ++s) {
      const auto& block = in[static_cast<std::size_t>(s)];
      ASSERT_EQ(block.size(), static_cast<std::size_t>(r.rank() + 1));
      for (int v : block) EXPECT_EQ(v, 100 * s + r.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParcCollectives, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(ParcAbm, RoundTripRequestResponse) {
  // Rank 0 asks every other rank to double a value; replies arrive via a
  // second handler. Exactly the request/response shape of the tree walk.
  Runtime::run(4, [](Rank& r) {
    std::vector<int> replies;
    const int reply_h = r.am_register(
        [&replies](Rank&, int, std::span<const std::uint8_t> body) {
          Message m;
          m.payload.assign(body.begin(), body.end());
          replies.push_back(m.as<int>());
        });
    const int request_h = r.am_register(
        [reply_h](Rank& me, int src, std::span<const std::uint8_t> body) {
          Message m;
          m.payload.assign(body.begin(), body.end());
          me.am_post_value(src, reply_h, 2 * m.as<int>());
        });

    if (r.rank() == 0) {
      for (int d = 1; d < r.size(); ++d) r.am_post_value(d, request_h, d);
    }
    r.am_quiesce();
    if (r.rank() == 0) {
      ASSERT_EQ(replies.size(), 3u);
      int sum = 0;
      for (int v : replies) sum += v;
      EXPECT_EQ(sum, 2 * (1 + 2 + 3));
    } else {
      EXPECT_TRUE(replies.empty());
    }
  });
}

TEST(ParcAbm, BatchingCoalescesMessages) {
  // 1000 small posts to one destination with a large batch limit must produce
  // far fewer fabric messages than posts.
  Runtime::run(2, [](Rank& r) {
    const int h = r.am_register([](Rank&, int, std::span<const std::uint8_t>) {});
    if (r.rank() == 0) {
      r.am_set_batch_limit(1 << 20);
      for (int i = 0; i < 1000; ++i) r.am_post_value(1, h, i);
    }
    r.am_quiesce();
    // Poster counts posts, receiver dispatches; both total 1000 records...
    EXPECT_EQ(r.am_posted() + r.am_dispatched(), 1000u);
    // ...but the fabric saw only a handful of batched messages (plus the
    // quiescence allreduce traffic), not one per record.
    EXPECT_LT(r.fabric().messages_delivered(), 100u);
  });
}

TEST(ParcAbm, AutoFlushOnBatchLimit) {
  Runtime::run(2, [](Rank& r) {
    const int h = r.am_register([](Rank&, int, std::span<const std::uint8_t>) {});
    if (r.rank() == 0) {
      r.am_set_batch_limit(64);  // tiny: forces eager sends
      for (int i = 0; i < 100; ++i) r.am_post_value(1, h, i);
      EXPECT_GT(r.fabric().messages_delivered(), 5u);
    }
    r.am_quiesce();
  });
}

TEST(ParcAbm, CascadedHandlersTerminate) {
  // Handlers that re-post (a chain of length 20 across ranks) must still
  // quiesce.
  Runtime::run(3, [](Rank& r) {
    std::atomic<int>* counter = nullptr;
    static std::atomic<int> hits{0};
    if (r.rank() == 0) hits = 0;
    (void)counter;
    const int h = r.am_register([](Rank& me, int, std::span<const std::uint8_t> body) {
      Message m;
      m.payload.assign(body.begin(), body.end());
      const int remaining = m.as<int>();
      hits.fetch_add(1);
      if (remaining > 0)
        me.am_post_value((me.rank() + 1) % me.size(), 0, remaining - 1);
    });
    if (r.rank() == 0) r.am_post_value(1, h, 20);
    r.am_quiesce();
    r.barrier();
    if (r.rank() == 0) EXPECT_EQ(hits.load(), 21);
  });
}

TEST(ParcNetworkParams, TransferTimeIsLatencyPlusBytesOverBandwidth) {
  NetworkParams net{.latency_s = 1e-3, .bandwidth_Bps = 1e6};
  EXPECT_DOUBLE_EQ(net.transfer_time(0), 1e-3);
  EXPECT_DOUBLE_EQ(net.transfer_time(500000), 1e-3 + 0.5);
  // Zero bandwidth means infinite: transfer cost degenerates to latency.
  NetworkParams infinite{.latency_s = 2e-3, .bandwidth_Bps = 0.0};
  EXPECT_DOUBLE_EQ(infinite.transfer_time(1 << 30), 2e-3);
}

TEST(ParcNetworkParams, EffectiveLatencyAddsBothOverheads) {
  // The LogP software-to-software latency of a small message: wire latency
  // plus the per-message CPU occupancy charged at *both* endpoints.
  NetworkParams net{.latency_s = 100e-6, .overhead_s = 54e-6};
  EXPECT_DOUBLE_EQ(net.effective_latency(), 100e-6 + 2 * 54e-6);
  EXPECT_DOUBLE_EQ(NetworkParams{}.effective_latency(), 0.0);
}

TEST(ParcNetworkParams, ComputeTimeScalesWithRate) {
  NetworkParams net{.flops_per_s = 200e6};
  EXPECT_DOUBLE_EQ(net.compute_time(100e6), 0.5);
  // Zero rate means compute is free (pure correctness mode).
  EXPECT_DOUBLE_EQ(NetworkParams{}.compute_time(1e12), 0.0);
}

TEST(ParcNetworkParams, OverheadChargedAtSenderAndReceiver) {
  // One small message: the sender's clock advances by o at send; the
  // receiver ends at depart + latency + o = 2o + L total — the virtual
  // clock realises effective_latency() end to end.
  NetworkParams net{.latency_s = 1e-3, .bandwidth_Bps = 0, .overhead_s = 250e-6};
  std::vector<double> clocks;
  Runtime::run_collect<double>(
      2,
      [](Rank& r) {
        if (r.rank() == 0) r.send_value(1, 3, 1);
        else (void)r.recv(0, 3);
        return r.vclock();
      },
      clocks, net);
  EXPECT_DOUBLE_EQ(clocks[0], 250e-6);
  EXPECT_DOUBLE_EQ(clocks[1], net.effective_latency());
}

TEST(ParcVclock, ComputeChargesAdvanceClock) {
  NetworkParams net{.latency_s = 1e-4, .bandwidth_Bps = 1e7, .flops_per_s = 1e8};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        r.charge_flops(1e8);  // 1 second of modelled compute
        r.barrier();
      },
      net);
  EXPECT_GE(stats.max_vclock, 1.0);
  EXPECT_LT(stats.max_vclock, 1.1);
}

TEST(ParcVclock, MessageCostLatencyPlusBandwidth) {
  NetworkParams net{.latency_s = 1e-3, .bandwidth_Bps = 1e6, .flops_per_s = 0};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        if (r.rank() == 0) {
          std::vector<std::uint8_t> big(1000000);  // 1 s at 1 MB/s
          r.send(1, 9, big);
        } else {
          (void)r.recv(0, 9);
        }
      },
      net);
  EXPECT_NEAR(stats.max_vclock, 1.001, 0.01);
}

TEST(ParcVclock, CausalityThroughForwardChain) {
  // 0 -> 1 -> 2 chained messages accumulate two latencies.
  NetworkParams net{.latency_s = 0.5, .bandwidth_Bps = 0, .flops_per_s = 0};
  const RunStats stats = Runtime::run(
      3,
      [](Rank& r) {
        if (r.rank() == 0) r.send_value(1, 1, 1);
        if (r.rank() == 1) {
          (void)r.recv(0, 1);
          r.send_value(2, 2, 1);
        }
        if (r.rank() == 2) (void)r.recv(1, 2);
      },
      net);
  EXPECT_NEAR(stats.max_vclock, 1.0, 1e-9);
}

// ---- fault injection + reliable ABM mode ----

TEST(ParcFaults, DrawsAreDeterministicAndSeedSensitive) {
  FaultPlan plan{.seed = 9, .drop_prob = 0.3, .duplicate_prob = 0.2,
                 .delay_prob = 0.2, .reorder_prob = 0.2, .truncate_prob = 0.1};
  int differs = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    const FaultDraw a = plan.draw(0, 1, s, 64);
    const FaultDraw b = plan.draw(0, 1, s, 64);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.duplicate, b.duplicate);
    EXPECT_EQ(a.reorder, b.reorder);
    EXPECT_EQ(a.delay_deliveries, b.delay_deliveries);
    EXPECT_EQ(a.truncate_to, b.truncate_to);
    FaultPlan other = plan;
    other.seed = 10;
    const FaultDraw c = other.draw(0, 1, s, 64);
    if (a.drop != c.drop || a.duplicate != c.duplicate) ++differs;
  }
  EXPECT_GT(differs, 10);  // a different seed is a different adversary
}

TEST(ParcFaults, ScopeExemptsCollectivesAndUserTags) {
  FaultPlan plan{.drop_prob = 1.0};
  EXPECT_TRUE(plan.applies(kAmTag));
  EXPECT_TRUE(plan.applies(kAmAckTag));
  EXPECT_FALSE(plan.applies(3));               // user tag, default scope
  EXPECT_FALSE(plan.applies(1 << 30));         // collective: always exempt
  plan.include_user_tags = true;
  EXPECT_TRUE(plan.applies(3));
  EXPECT_FALSE(plan.applies(1 << 30));
  EXPECT_FALSE(FaultPlan{}.applies(kAmTag));   // inactive plan faults nothing
}

TEST(ParcFaults, CollectivesSurviveAnActivePlan) {
  // Collective traffic is out of scope by construction; a hostile plan must
  // not perturb reductions or barriers.
  FaultPlan plan{.seed = 3, .drop_prob = 0.5, .duplicate_prob = 0.3};
  Runtime::run(
      4,
      [](Rank& r) {
        for (int i = 0; i < 20; ++i) {
          EXPECT_EQ(r.allreduce(r.rank(), Sum{}), 6);
          r.barrier();
        }
      },
      {}, plan);
}

TEST(ParcFaults, ReliableModeAutoEnablesWithPlan) {
  FaultPlan plan{.seed = 1, .drop_prob = 0.1};
  Runtime::run(2, [](Rank& r) { EXPECT_TRUE(r.am_reliable()); }, {}, plan);
  Runtime::run(2, [](Rank& r) { EXPECT_FALSE(r.am_reliable()); });
}

TEST(ParcFaults, ReliableDeliveryIsExactlyOnceAndInOrder) {
  // 500 records through a fabric that drops, duplicates, delays, reorders
  // and truncates: the receiver must see 0..499 exactly once, in order.
  FaultPlan plan{.seed = 1234, .drop_prob = 0.15, .duplicate_prob = 0.10,
                 .delay_prob = 0.10, .reorder_prob = 0.15, .truncate_prob = 0.10};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        std::vector<int> seen;
        const int h = r.am_register([&seen](Rank&, int, std::span<const std::uint8_t> b) {
          Message m;
          m.payload.assign(b.begin(), b.end());
          seen.push_back(m.as<int>());
        });
        if (r.rank() == 0) {
          r.am_set_batch_limit(256);  // many small batches => many fault draws
          for (int i = 0; i < 500; ++i) r.am_post_value(1, h, i);
        }
        r.am_quiesce();
        if (r.rank() == 1) {
          ASSERT_EQ(seen.size(), 500u);
          for (int i = 0; i < 500; ++i) ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);
          const auto health = r.am_health();
          EXPECT_FALSE(health.degraded());
        }
        EXPECT_EQ(r.am_abandoned(), 0u);
      },
      {}, plan);
  EXPECT_GT(stats.faults.total(), 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.abandoned_records, 0u);
}

TEST(ParcFaults, ReliableModeWithoutFaultsIsTransparent) {
  // Forced reliability on a clean fabric: same semantics, acks flow, no
  // retransmits needed (quiescence outpaces every timeout).
  Runtime::run(3, [](Rank& r) {
    r.am_set_reliable(true);
    std::vector<int> seen;
    const int h = r.am_register([&seen](Rank&, int, std::span<const std::uint8_t> b) {
      Message m;
      m.payload.assign(b.begin(), b.end());
      seen.push_back(m.as<int>());
    });
    for (int d = 0; d < r.size(); ++d)
      if (d != r.rank())
        for (int i = 0; i < 50; ++i) r.am_post_value(d, h, i);
    r.am_quiesce();
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(r.am_health().abandoned_records, 0u);
  });
}

TEST(ParcFaults, BoundedRetriesAbandonAndQuiesceStillTerminates) {
  // A black-hole link: every AM message vanishes. Bounded retries must give
  // up, surface the loss in the health report, and am_quiesce must still
  // terminate via the abandoned-record accounting.
  FaultPlan blackhole{.seed = 2, .drop_prob = 1.0};
  const RunStats stats = Runtime::run(
      2,
      [](Rank& r) {
        r.am_set_retry_params({.base_timeout_ticks = 1, .max_backoff_shift = 1,
                               .max_attempts = 2});
        int got = 0;
        const int h = r.am_register(
            [&got](Rank&, int, std::span<const std::uint8_t>) { ++got; });
        if (r.rank() == 0) for (int i = 0; i < 10; ++i) r.am_post_value(1, h, i);
        r.am_quiesce();
        if (r.rank() == 0) {
          EXPECT_EQ(r.am_abandoned(), 10u);
          const auto health = r.am_health();
          EXPECT_TRUE(health.degraded());
          ASSERT_EQ(health.peers.size(), 1u);
          EXPECT_EQ(health.peers[0].peer, 1);
          EXPECT_TRUE(health.peers[0].dead);
          EXPECT_GT(health.retransmits, 0u);
        } else {
          EXPECT_EQ(got, 0);
        }
      },
      {}, blackhole);
  EXPECT_EQ(stats.abandoned_records, 10u);
}

TEST(ParcFaults, DelayedMessagesCannotDeadlockBlockingRecv) {
  // User-tag scope + 100% delay probability: a blocking recv must still get
  // the message (deferred mail is force-released before the receiver waits).
  FaultPlan plan{.seed = 6, .delay_prob = 1.0, .max_delay_deliveries = 4,
                 .include_user_tags = true};
  Runtime::run(
      2,
      [](Rank& r) {
        if (r.rank() == 0) r.send_value(1, 5, 77);
        else EXPECT_EQ(r.recv_value<int>(0, 5), 77);
      },
      {}, plan);
}

TEST(ParcRuntime, PropagatesExceptions) {
  EXPECT_THROW(Runtime::run(3,
                            [](Rank& r) {
                              if (r.rank() == 1) throw std::runtime_error("boom");
                              // Other ranks exit without communication.
                            }),
               std::runtime_error);
}

TEST(ParcRuntime, RunCollectGathersResults) {
  std::vector<int> results;
  Runtime::run_collect<int>(5, [](Rank& r) { return r.rank() * r.rank(); }, results);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ParcRuntime, RejectsNonPositiveRanks) {
  EXPECT_THROW(Runtime::run(0, [](Rank&) {}), std::invalid_argument);
}

}  // namespace
}  // namespace hotlib::parc
