// Tests for src/sph: kernel identities, summation density on a lattice,
// pairwise conservation and Sod shock-tube behaviour.
#include <gtest/gtest.h>

#include <numbers>

#include "sph/sph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hotlib::sph {
namespace {

TEST(Kernel, CompactSupportAndPeak) {
  EXPECT_DOUBLE_EQ(kernel_w(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(kernel_w(3.0, 1.0), 0.0);
  EXPECT_GT(kernel_w(0.0, 1.0), kernel_w(0.5, 1.0));
  EXPECT_GT(kernel_w(0.5, 1.0), kernel_w(1.5, 1.0));
  EXPECT_NEAR(kernel_w(0.0, 1.0), 1.0 / std::numbers::pi, 1e-12);
}

TEST(Kernel, NormalizationIntegratesToOne) {
  // Radial quadrature of 4 pi r^2 W(r) dr over [0, 2h].
  const double h = 0.7;
  const int n = 20000;
  double integral = 0;
  for (int i = 0; i < n; ++i) {
    const double r = (i + 0.5) * (2 * h) / n;
    integral += 4 * std::numbers::pi * r * r * kernel_w(r, h) * (2 * h / n);
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(Kernel, DerivativeMatchesFiniteDifference) {
  const double h = 0.9;
  for (double r : {0.2, 0.7, 1.1, 1.7}) {
    const double fd = (kernel_w(r + 1e-6, h) - kernel_w(r - 1e-6, h)) / 2e-6;
    EXPECT_NEAR(kernel_dw(r, h), fd, 1e-5) << "r=" << r;
  }
}

TEST(Density, UniformLatticeRecoversTrueDensity) {
  // Equal-mass particles on a cubic lattice: summation density in the bulk
  // must match m / dx^3 to a few percent.
  SphParticles p;
  const int n = 10;
  const double dx = 0.1, rho_true = 2.0, m = rho_true * dx * dx * dx;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        p.pos.push_back({(x + 0.5) * dx, (y + 0.5) * dx, (z + 0.5) * dx});
        p.vel.push_back({});
        p.acc.push_back({});
        p.mass.push_back(m);
        p.h.push_back(1.3 * dx);
        p.rho.push_back(0);
        p.press.push_back(0);
        p.u.push_back(1.0);
        p.du.push_back(0);
      }
  compute_density(p, SphConfig{});
  RunningStats bulk;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Vec3d& x = p.pos[i];
    const double margin = 3 * dx;
    if (x.x > margin && x.x < n * dx - margin && x.y > margin &&
        x.y < n * dx - margin && x.z > margin && x.z < n * dx - margin)
      bulk.add(p.rho[i]);
  }
  ASSERT_GT(bulk.count(), 0u);
  EXPECT_NEAR(bulk.mean(), rho_true, 0.05 * rho_true);
}

TEST(Forces, UniformCubeCoreNearEquilibrium) {
  // A uniform lattice cube with constant pressure: boundary particles feel a
  // strong one-sided (free-surface) force, but the interior core must be in
  // near-equilibrium — core accelerations far below surface accelerations.
  SphParticles p;
  const int n = 12;
  const double dx = 0.1;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        p.pos.push_back({(x + 0.5) * dx, (y + 0.5) * dx, (z + 0.5) * dx});
        p.vel.push_back({});
        p.acc.push_back({});
        p.mass.push_back(1.0 * dx * dx * dx);
        p.h.push_back(1.3 * dx);
        p.rho.push_back(0);
        p.press.push_back(0);
        p.u.push_back(1.5);
        p.du.push_back(0);
      }
  compute_density(p, SphConfig{});
  compute_forces(p, SphConfig{});
  RunningStats core, surface;
  const double lo = 4 * dx, hi = (n - 4) * dx;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Vec3d& x = p.pos[i];
    const bool inside = x.x > lo && x.x < hi && x.y > lo && x.y < hi &&
                        x.z > lo && x.z < hi;
    (inside ? core : surface).add(norm(p.acc[i]));
  }
  ASSERT_GT(core.count(), 0u);
  EXPECT_LT(core.mean(), 0.05 * surface.mean());
}

TEST(Forces, MomentumConservedByPairSymmetry) {
  SphParticles p = make_sod_tube(10, 1.0, 0.1);
  compute_density(p, SphConfig{});
  compute_forces(p, SphConfig{});
  Vec3d f{};
  for (std::size_t i = 0; i < p.size(); ++i) f += p.mass[i] * p.acc[i];
  RunningStats amag;
  for (std::size_t i = 0; i < p.size(); ++i) amag.add(norm(p.mass[i] * p.acc[i]));
  EXPECT_LT(norm(f), 1e-9 * std::max(1.0, amag.rms() * p.size()));
}

TEST(SodTube, ShockDevelopsTowardLowDensitySide) {
  SphParticles p = make_sod_tube(14, 1.0, 0.1);
  const double e0 = total_energy(p);
  for (int s = 0; s < 20; ++s) step(p, 0.002, SphConfig{});
  // Gas flows from the high-pressure left into the right half.
  RunningStats vx_interface;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p.pos[i].x > 0.45 && p.pos[i].x < 0.65) vx_interface.add(p.vel[i].x);
  ASSERT_GT(vx_interface.count(), 0u);
  EXPECT_GT(vx_interface.mean(), 0.0);
  // Total (kinetic + internal) energy is conserved to integration accuracy.
  EXPECT_NEAR(total_energy(p), e0, 0.02 * std::abs(e0));
}

}  // namespace
}  // namespace hotlib::sph
