// Unit + stress tests of util::TaskPool: the work-stealing substrate under
// every parallel region. Structure-level properties only — the bit-exact
// determinism of the tree pipeline built on top is test_parallel.cpp's job.
// The whole file runs under -DHOTLIB_SANITIZE=thread via the `tsan` ctest
// label (scripts/tsan.sh).
#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using hotlib::util::TaskPool;

TEST(TaskPool, SingleLanePoolRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1);
  std::thread::id spawn_thread;
  TaskPool::Group g(pool);
  g.spawn([&] { spawn_thread = std::this_thread::get_id(); });
  // Inline execution: the task already ran inside spawn, on this thread.
  EXPECT_EQ(spawn_thread, std::this_thread::get_id());
  g.wait();
}

TEST(TaskPool, ConcurrencyClampsToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1);
  TaskPool pool2(-7);
  EXPECT_EQ(pool2.concurrency(), 1);
}

TEST(TaskPool, EmptyGroupWaitReturns) {
  TaskPool pool(4);
  TaskPool::Group g(pool);
  g.wait();  // nothing spawned: must not hang
}

TEST(TaskPool, EmptyParallelFor) {
  TaskPool pool(4);
  bool ran = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int lanes : {1, 2, 3, 8}) {
    TaskPool pool(lanes);
    for (std::size_t n : {1u, 7u, 64u, 1000u}) {
      for (std::size_t grain : {1u, 3u, 64u, 2000u}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, grain, [&](std::size_t lo, std::size_t hi) {
          ASSERT_LE(lo, hi);
          ASSERT_LE(hi, n);
          for (std::size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1) << "lanes=" << lanes << " n=" << n
                                       << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(TaskPool, ChunkBoundariesIndependentOfLaneCount) {
  // The determinism contract leans on parallel_for splitting by (n, grain)
  // only. Record the chunk set at several lane counts and compare.
  const std::size_t n = 1003, grain = 17;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> per_lanes;
  for (int lanes : {1, 2, 5}) {
    TaskPool pool(lanes);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(n, grain, [&](std::size_t lo, std::size_t hi) {
      std::lock_guard lock(mu);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    per_lanes.push_back(std::move(chunks));
  }
  EXPECT_EQ(per_lanes[0], per_lanes[1]);
  EXPECT_EQ(per_lanes[0], per_lanes[2]);
}

TEST(TaskPool, NestedSpawnRecursiveSum) {
  // Recursive divide-and-conquer with a Group per node: exercises workers
  // waiting on groups while helping (the nested-wait path).
  TaskPool pool(4);
  struct Rec {
    static std::uint64_t sum(TaskPool& p, std::uint64_t lo, std::uint64_t hi) {
      if (hi - lo <= 64) {
        std::uint64_t s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += i;
        return s;
      }
      const std::uint64_t mid = lo + (hi - lo) / 2;
      std::uint64_t left = 0, right = 0;
      TaskPool::Group g(p);
      g.spawn([&] { left = sum(p, lo, mid); });
      g.spawn([&] { right = sum(p, mid, hi); });
      g.wait();
      return left + right;
    }
  };
  const std::uint64_t n = 100000;
  EXPECT_EQ(Rec::sum(pool, 0, n), n * (n - 1) / 2);
}

TEST(TaskPool, ExceptionPropagatesFromWait) {
  TaskPool pool(3);
  TaskPool::Group g(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    g.spawn([&ran, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(g.wait(), std::runtime_error);
  // Sibling tasks still ran to completion; the pool survives.
  EXPECT_EQ(ran.load(), 15);
  TaskPool::Group g2(pool);
  g2.spawn([] {});
  g2.wait();  // usable after an exception
}

TEST(TaskPool, ExceptionFirstOneWins) {
  TaskPool pool(4);
  TaskPool::Group g(pool);
  for (int i = 0; i < 8; ++i)
    g.spawn([] { throw std::runtime_error("boom"); });
  // Exactly one is rethrown, the rest are dropped; wait must not terminate.
  EXPECT_THROW(g.wait(), std::runtime_error);
}

TEST(TaskPool, ExceptionInsideParallelFor) {
  TaskPool pool(2);
  EXPECT_THROW(pool.parallel_for(100, 10,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo == 50) throw std::logic_error("chunk");
                                 }),
               std::logic_error);
}

TEST(TaskPool, GroupDestructorDrainsWithoutWait) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskPool::Group g(pool);
    for (int i = 0; i < 32; ++i)
      g.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): the destructor must drain (and would swallow errors).
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskPool, Oversubscription) {
  // Far more lanes than this machine has cores: everything still completes
  // and the stats add up. (The sleep/wake path gets heavy traffic here.)
  TaskPool pool(32);
  EXPECT_EQ(pool.concurrency(), 32);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(10000, 7, [&](std::size_t lo, std::size_t hi) {
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
}

TEST(TaskPool, StatsAccumulate) {
  TaskPool pool(4);
  const TaskPool::Stats before = pool.stats();
  pool.parallel_for(1000, 10, [](std::size_t, std::size_t) {});
  const TaskPool::Stats after = pool.stats();
  // The caller helps, so workers need not have run all 100 chunks — but the
  // totals never go backwards and busy time is finite.
  EXPECT_GE(after.tasks_executed, before.tasks_executed);
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(after.busy_seconds, before.busy_seconds);
}

TEST(TaskPool, CurrentWorkerIdsAreSaneAndStable) {
  TaskPool pool(4);
  // Caller is never a worker.
  EXPECT_EQ(TaskPool::current_worker(), -1);
  std::mutex mu;
  std::vector<int> seen;
  pool.parallel_for(256, 1, [&](std::size_t, std::size_t) {
    const int w = TaskPool::current_worker();
    std::lock_guard lock(mu);
    seen.push_back(w);
  });
  for (int w : seen) {
    EXPECT_GE(w, -1);
    EXPECT_LT(w, pool.concurrency() - 1);
  }
}

TEST(TaskPool, RandomizedWorkStealingStress) {
  // Randomized DAG of nested spawns with per-slot results: under TSan this
  // is the main race hunt over the deques, the injector and Group state.
  // The *work* is randomized; the checked invariant (every slot written
  // exactly once with its own value) is not.
  std::mt19937 rng(12345);
  for (int round = 0; round < 10; ++round) {
    TaskPool pool(2 + static_cast<int>(rng() % 6));
    const std::size_t ntasks = 64 + rng() % 512;
    std::vector<std::uint32_t> slot(ntasks, 0);
    std::vector<std::uint32_t> expect(ntasks);
    for (std::size_t i = 0; i < ntasks; ++i) expect[i] = rng();
    TaskPool::Group g(pool);
    for (std::size_t i = 0; i < ntasks; ++i) {
      const bool nested = (expect[i] % 3) == 0;
      g.spawn([&, i, nested] {
        if (nested) {
          TaskPool::Group inner(pool);
          inner.spawn([&, i] { slot[i] = expect[i]; });
          inner.wait();
        } else {
          slot[i] = expect[i];
        }
      });
    }
    g.wait();
    EXPECT_EQ(slot, expect) << "round " << round;
  }
}

TEST(TaskPool, EnvConcurrencyParsing) {
  const char* old = std::getenv("HOTLIB_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("HOTLIB_THREADS", "3", 1);
  EXPECT_EQ(TaskPool::env_concurrency(), 3);
  setenv("HOTLIB_THREADS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(TaskPool::env_concurrency(), 1);
  setenv("HOTLIB_THREADS", "garbage", 1);
  EXPECT_GE(TaskPool::env_concurrency(), 1);
  setenv("HOTLIB_THREADS", "99999", 1);  // clamped
  EXPECT_EQ(TaskPool::env_concurrency(), 512);
  if (old != nullptr)
    setenv("HOTLIB_THREADS", saved.c_str(), 1);
  else
    unsetenv("HOTLIB_THREADS");
}

TEST(TaskPool, SetGlobalConcurrencySwapsPool) {
  hotlib::util::TaskPool::set_global_concurrency(2);
  EXPECT_EQ(TaskPool::global().concurrency(), 2);
  EXPECT_EQ(TaskPool::global_if_created(), &TaskPool::global());
  hotlib::util::TaskPool::set_global_concurrency(1);
  EXPECT_EQ(TaskPool::global().concurrency(), 1);
}

}  // namespace
