// Tests for src/telemetry: ring-buffer wrap-around, span nesting and
// phase attribution, the disabled path, exact counter/tally agreement,
// concurrent per-rank recording under the parc runtime (the faults label
// puts this file in the TSan slice), the strict JSON parser, and the
// run-report/Chrome-trace exporters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gravity/evaluator.hpp"
#include "gravity/models.hpp"
#include "hot/tree.hpp"
#include "parc/parc.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/telemetry.hpp"

namespace hotlib::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset();
  }
  void TearDown() override {
    detach_rank();
    set_enabled(false);
    Registry::instance().reset();
    Registry::instance().set_capacity(1 << 14);
  }

  // Spin until at least `seconds` of registry wall time has passed.
  static void busy(double seconds) {
    const double until = Registry::instance().now() + seconds;
    while (Registry::instance().now() < until) {
    }
  }
};

// ---- ring buffer -----------------------------------------------------------

TEST_F(TelemetryTest, RingKeepsEventsInOrderBeforeWrap) {
  Registry::instance().set_capacity(16);
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  for (std::uint64_t i = 0; i < 5; ++i) instant("tick", Phase::kOther, i);
  EXPECT_EQ(ch->size(), 5u);
  EXPECT_EQ(ch->dropped(), 0u);
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].arg, i);
}

TEST_F(TelemetryTest, RingWrapAroundKeepsNewestAndCountsDropped) {
  Registry::instance().set_capacity(8);
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  for (std::uint64_t i = 0; i < 20; ++i) instant("tick", Phase::kOther, i);
  EXPECT_EQ(ch->size(), 8u);
  EXPECT_EQ(ch->capacity(), 8u);
  EXPECT_EQ(ch->dropped(), 12u);
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-to-newest: the 12 oldest were overwritten, 12..19 remain.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].arg, 12 + i);
}

// ---- spans -----------------------------------------------------------------

TEST_F(TelemetryTest, SpanNestingRecordsDepths) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  {
    Span outer("outer", Phase::kTreeBuild);
    {
      Span mid("mid", Phase::kTreeBuild);
      Span inner("inner", Phase::kComm);
    }
  }
  // Destruction order: inner, mid, outer.
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(ch->depth(), 0);
}

TEST_F(TelemetryTest, OnlyTopLevelSpansAccumulatePhaseTotals) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  {
    Span outer("outer", Phase::kTreeBuild);
    // Nested spans — same phase and a different one — must not double-count:
    // their time already lives inside the outer span's total.
    Span same("nested_same", Phase::kTreeBuild);
    Span comm("nested_comm", Phase::kComm);
    busy(1e-4);
  }
  EXPECT_EQ(ch->phase_total(Phase::kTreeBuild).calls, 1u);
  EXPECT_GT(ch->phase_total(Phase::kTreeBuild).wall_seconds, 0.0);
  EXPECT_EQ(ch->phase_total(Phase::kComm).calls, 0u);
  // kOther spans are traced but never enter the phase rollup.
  { Span other("misc", Phase::kOther); }
  EXPECT_EQ(ch->phase_total(Phase::kOther).calls, 0u);
}

TEST_F(TelemetryTest, DisabledPathRecordsNothing) {
  set_enabled(false);
  EXPECT_EQ(attach_rank(0), nullptr);
  EXPECT_EQ(channel(), nullptr);
  {
    Span span("ghost", Phase::kForceEval, 7);
    instant("ghost_marker", Phase::kComm);
    count(Counter::kBodyBody, 99);
  }
  EXPECT_TRUE(Registry::instance().channels().empty());
  EXPECT_EQ(global_counters()[Counter::kBodyBody], 0u);
}

// ---- counters --------------------------------------------------------------

TEST_F(TelemetryTest, CounterBlockArithmetic) {
  CounterBlock a, b;
  a[Counter::kBodyBody] = 100;
  a[Counter::kBodyCell] = 20;
  b[Counter::kBodyBody] = 60;
  const CounterBlock sum = a + b;
  EXPECT_EQ(sum[Counter::kBodyBody], 160u);
  const CounterBlock diff = sum - b;
  EXPECT_EQ(diff[Counter::kBodyBody], 100u);
  EXPECT_EQ(sum.interactions(), 180u);
  EXPECT_DOUBLE_EQ(sum.flops(), 180.0 * kFlopsPerGravityInteraction);
}

TEST_F(TelemetryTest, RegistryFlopsMatchReturnedTallyExactly) {
  attach_rank(0);
  auto b = gravity::plummer_sphere(500, 42);
  const auto domain = gravity::fit_domain(b);
  hot::Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 16});
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.5},
                                     .softening = 0.02};
  const InteractionTally tally =
      gravity::tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
  // The paper's acceptance bar: registry totals equal the tally bit-for-bit,
  // because hot loops flush their local tally through count_tally() once.
  const CounterBlock c = global_counters();
  EXPECT_EQ(c[Counter::kBodyBody], tally.body_body);
  EXPECT_EQ(c[Counter::kBodyCell], tally.body_cell);
  EXPECT_EQ(c[Counter::kCellsOpened], tally.cells_opened);
  EXPECT_EQ(c[Counter::kMacTests], tally.mac_tests);
  EXPECT_EQ(c.interactions(), tally.interactions());
  EXPECT_DOUBLE_EQ(c.flops(), tally.flops());
  EXPECT_GT(c.interactions(), 0u);
}

// ---- concurrent rank recording (runs under TSan via the faults label) ------

TEST_F(TelemetryTest, ConcurrentRankWritesStayPerChannel) {
  constexpr int kRanks = 8;
  constexpr std::uint64_t kIters = 2000;
  parc::Runtime::run(kRanks, [&](parc::Rank& r) {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      Span span("work", Phase::kForceEval, i);
      count(Counter::kBodyBody);
      if ((i & 255) == 0) instant("marker", Phase::kComm, i);
    }
    // Cross-rank rollup via the collectives while ranks are live.
    const CounterBlock all = allreduce_counters(r);
    EXPECT_GE(all[Counter::kBodyBody], static_cast<std::uint64_t>(r.size()));
  });
  const auto channels = Registry::instance().channels();
  ASSERT_EQ(channels.size(), static_cast<std::size_t>(kRanks));
  std::uint64_t total = 0;
  for (const RankChannel* ch : channels) {
    EXPECT_GT(ch->size(), 0u);
    EXPECT_EQ(ch->phase_total(Phase::kForceEval).calls, kIters);
    total += ch->counters()[Counter::kBodyBody];
  }
  EXPECT_EQ(total, kRanks * kIters);
  EXPECT_EQ(global_counters()[Counter::kBodyBody], kRanks * kIters);
}

// ---- strict JSON parser ----------------------------------------------------

TEST(TelemetryJson, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-0.5e3",
           "\"a\\n\\\"b\\\\c\\u0041\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
           "  [ 1 , 2 ]  ",
       }) {
    EXPECT_TRUE(json_parse(doc).ok) << doc;
  }
}

TEST(TelemetryJson, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "[1,2,]",          // trailing comma
           "{\"a\":1,}",      // trailing comma in object
           "01",              // leading zero
           "+1",              // leading plus
           "1.",              // bare decimal point
           ".5",              // missing integer part
           "nan",
           "Infinity",
           "'a'",             // single quotes
           "\"a\nb\"",        // raw control character in string
           "\"\\x41\"",       // invalid escape
           "{}{}",            // trailing garbage
           "{\"a\" 1}",       // missing colon
           "{1:2}",           // non-string key
           "[1 2]",           // missing comma
           "{\"a\":}",        // missing value
           "[",               // unterminated
           "\"abc",           // unterminated string
       }) {
    const auto r = json_parse(doc);
    EXPECT_FALSE(r.ok) << "accepted: " << doc;
    EXPECT_FALSE(r.error.empty()) << doc;
  }
}

TEST(TelemetryJson, WriterRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("tree \"build\"\n");
  w.key("pi");
  w.value(3.25);
  w.key("big");
  w.value(std::uint64_t{1} << 53);
  w.key("list");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  const auto r = json_parse(w.str());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.find("name")->as_string(), "tree \"build\"\n");
  EXPECT_DOUBLE_EQ(r.value.find("pi")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(r.value.find("big")->as_number(), 9007199254740992.0);
  ASSERT_TRUE(r.value.find("list")->is_array());
  EXPECT_TRUE(r.value.find("list")->as_array()[0].as_bool());
  EXPECT_TRUE(r.value.find("list")->as_array()[1].is_null());
}

TEST(TelemetryJson, NumbersNeverEmitNanOrInf) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
}

// ---- exporters -------------------------------------------------------------

TEST_F(TelemetryTest, PhaseWallTimesSumToCoveredWall) {
  attach_rank(0);
  const double wall0 = Registry::instance().now();
  { Span d("decompose", Phase::kDecompose); busy(2e-3); }
  { Span t("tree_build", Phase::kTreeBuild); busy(2e-3); }
  { Span f("tree_forces", Phase::kForceEval); busy(2e-3); }
  const double covered = Registry::instance().now() - wall0;
  const RunReport r = build_run_report("phase_sum", covered);
  double phase_sum = 0;
  for (const auto& p : r.phases) phase_sum += p.wall_seconds;
  // Acceptance bar from the issue: per-phase times sum to the covered wall
  // time within 5% (the gap is span setup + the gaps between scopes).
  EXPECT_NEAR(phase_sum, covered, 0.05 * covered);
  EXPECT_EQ(r.nranks, 1);
}

TEST_F(TelemetryTest, RunReportJsonIsStrictValid) {
  attach_rank(0);
  { Span t("tree_build", Phase::kTreeBuild, 123); busy(1e-4); }
  count(Counter::kBodyBody, 41);
  RunReport report = build_run_report("unit", 0.25);
  report.metrics["custom_metric"] = 1.5;
  const auto r = json_parse(run_report_json(report));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.find("schema")->as_string(), "hotlib-run-report-v1");
  EXPECT_EQ(r.value.find("name")->as_string(), "unit");
  EXPECT_DOUBLE_EQ(r.value.find("wall_seconds")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(
      r.value.find("counters")->find(counter_name(Counter::kBodyBody))->as_number(),
      41.0);
  EXPECT_DOUBLE_EQ(r.value.find("metrics")->find("custom_metric")->as_number(), 1.5);
  ASSERT_TRUE(r.value.find("phases")->is_array());
  const auto& phase0 = r.value.find("phases")->as_array().at(0);
  EXPECT_EQ(phase0.find("name")->as_string(), "tree_build");
  EXPECT_DOUBLE_EQ(phase0.find("calls")->as_number(), 1.0);
}

TEST_F(TelemetryTest, ChromeTraceJsonIsStrictValidWithSpansAndInstants) {
  attach_rank(3);
  { Span t("tree_build", Phase::kTreeBuild); busy(1e-4); }
  instant("fault_drop", Phase::kComm, 9);
  const auto r = json_parse(chrome_trace_json());
  ASSERT_TRUE(r.ok) << r.error;
  // trace_event "JSON Object Format": {"traceEvents": [...]}.
  ASSERT_TRUE(r.value.is_object());
  ASSERT_NE(r.value.find("traceEvents"), nullptr);
  ASSERT_TRUE(r.value.find("traceEvents")->is_array());
  const JsonArray& events = r.value.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 2u);
  bool saw_complete = false, saw_instant = false;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 3.0);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      saw_complete = true;
      EXPECT_EQ(e.find("name")->as_string(), "tree_build");
      EXPECT_GT(e.find("dur")->as_number(), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.find("name")->as_string(), "fault_drop");
      EXPECT_DOUBLE_EQ(e.find("args")->find("arg")->as_number(), 9.0);
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
}

TEST_F(TelemetryTest, SessionWritesSchemaValidReportFile) {
  const auto dir = std::filesystem::temp_directory_path() / "hotlib_tel_test";
  std::filesystem::create_directories(dir);
  setenv("HOTLIB_REPORT_DIR", dir.c_str(), 1);
  {
    Session session("unittest");
    { Span t("tree_build", Phase::kTreeBuild); busy(1e-4); }
    session.metric("answer", 42.0);
    session.set_modelled_seconds(1.5);
  }
  unsetenv("HOTLIB_REPORT_DIR");
  std::ifstream in(dir / "BENCH_unittest.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto r = json_parse(buf.str());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("schema")->as_string(), "hotlib-run-report-v1");
  EXPECT_EQ(r.value.find("name")->as_string(), "unittest");
  EXPECT_DOUBLE_EQ(r.value.find("modelled_seconds")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(r.value.find("metrics")->find("answer")->as_number(), 42.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hotlib::telemetry
