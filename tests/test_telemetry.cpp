// Tests for src/telemetry: ring-buffer wrap-around, span nesting and
// phase attribution, the disabled path, exact counter/tally agreement,
// concurrent per-rank recording under the parc runtime (the faults label
// puts this file in the TSan slice), the strict JSON parser, and the
// run-report/Chrome-trace exporters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gravity/evaluator.hpp"
#include "gravity/models.hpp"
#include "hot/tree.hpp"
#include "parc/parc.hpp"
#include "telemetry/collect.hpp"
#include "telemetry/telemetry.hpp"

namespace hotlib::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::instance().reset();
  }
  void TearDown() override {
    detach_rank();
    set_enabled(false);
    Registry::instance().reset();
    Registry::instance().set_capacity(1 << 14);
    Registry::instance().set_sample_capacity(256);
  }

  // Spin until at least `seconds` of registry wall time has passed.
  static void busy(double seconds) {
    const double until = Registry::instance().now() + seconds;
    while (Registry::instance().now() < until) {
    }
  }
};

// ---- ring buffer -----------------------------------------------------------

TEST_F(TelemetryTest, RingKeepsEventsInOrderBeforeWrap) {
  Registry::instance().set_capacity(16);
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  for (std::uint64_t i = 0; i < 5; ++i) instant("tick", Phase::kOther, i);
  EXPECT_EQ(ch->size(), 5u);
  EXPECT_EQ(ch->dropped(), 0u);
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].arg, i);
}

TEST_F(TelemetryTest, RingWrapAroundKeepsNewestAndCountsDropped) {
  Registry::instance().set_capacity(8);
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  for (std::uint64_t i = 0; i < 20; ++i) instant("tick", Phase::kOther, i);
  EXPECT_EQ(ch->size(), 8u);
  EXPECT_EQ(ch->capacity(), 8u);
  EXPECT_EQ(ch->dropped(), 12u);
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-to-newest: the 12 oldest were overwritten, 12..19 remain.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].arg, 12 + i);
}

// ---- spans -----------------------------------------------------------------

TEST_F(TelemetryTest, SpanNestingRecordsDepths) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  {
    Span outer("outer", Phase::kTreeBuild);
    {
      Span mid("mid", Phase::kTreeBuild);
      Span inner("inner", Phase::kComm);
    }
  }
  // Destruction order: inner, mid, outer.
  const auto events = ch->events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(ch->depth(), 0);
}

TEST_F(TelemetryTest, OnlyTopLevelSpansAccumulatePhaseTotals) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  {
    Span outer("outer", Phase::kTreeBuild);
    // Nested spans — same phase and a different one — must not double-count:
    // their time already lives inside the outer span's total.
    Span same("nested_same", Phase::kTreeBuild);
    Span comm("nested_comm", Phase::kComm);
    busy(1e-4);
  }
  EXPECT_EQ(ch->phase_total(Phase::kTreeBuild).calls, 1u);
  EXPECT_GT(ch->phase_total(Phase::kTreeBuild).wall_seconds, 0.0);
  EXPECT_EQ(ch->phase_total(Phase::kComm).calls, 0u);
  // kOther spans are traced but never enter the phase rollup.
  { Span other("misc", Phase::kOther); }
  EXPECT_EQ(ch->phase_total(Phase::kOther).calls, 0u);
}

TEST_F(TelemetryTest, DisabledPathRecordsNothing) {
  set_enabled(false);
  EXPECT_EQ(attach_rank(0), nullptr);
  EXPECT_EQ(channel(), nullptr);
  {
    Span span("ghost", Phase::kForceEval, 7);
    instant("ghost_marker", Phase::kComm);
    count(Counter::kBodyBody, 99);
  }
  EXPECT_TRUE(Registry::instance().channels().empty());
  EXPECT_EQ(global_counters()[Counter::kBodyBody], 0u);
}

// ---- counters --------------------------------------------------------------

TEST_F(TelemetryTest, CounterBlockArithmetic) {
  CounterBlock a, b;
  a[Counter::kBodyBody] = 100;
  a[Counter::kBodyCell] = 20;
  b[Counter::kBodyBody] = 60;
  const CounterBlock sum = a + b;
  EXPECT_EQ(sum[Counter::kBodyBody], 160u);
  const CounterBlock diff = sum - b;
  EXPECT_EQ(diff[Counter::kBodyBody], 100u);
  EXPECT_EQ(sum.interactions(), 180u);
  EXPECT_DOUBLE_EQ(sum.flops(), 180.0 * kFlopsPerGravityInteraction);
}

TEST_F(TelemetryTest, RegistryFlopsMatchReturnedTallyExactly) {
  attach_rank(0);
  auto b = gravity::plummer_sphere(500, 42);
  const auto domain = gravity::fit_domain(b);
  hot::Tree tree;
  tree.build(b.pos, b.mass, domain, {.bucket_size = 16});
  const gravity::TreeForceConfig cfg{.mac = hot::Mac{.theta = 0.5},
                                     .softening = 0.02};
  const InteractionTally tally =
      gravity::tree_forces(tree, b.pos, b.mass, cfg, b.acc, b.pot);
  // The paper's acceptance bar: registry totals equal the tally bit-for-bit,
  // because hot loops flush their local tally through count_tally() once.
  const CounterBlock c = global_counters();
  EXPECT_EQ(c[Counter::kBodyBody], tally.body_body);
  EXPECT_EQ(c[Counter::kBodyCell], tally.body_cell);
  EXPECT_EQ(c[Counter::kCellsOpened], tally.cells_opened);
  EXPECT_EQ(c[Counter::kMacTests], tally.mac_tests);
  EXPECT_EQ(c.interactions(), tally.interactions());
  EXPECT_DOUBLE_EQ(c.flops(), tally.flops());
  EXPECT_GT(c.interactions(), 0u);
}

// ---- concurrent rank recording (runs under TSan via the faults label) ------

TEST_F(TelemetryTest, ConcurrentRankWritesStayPerChannel) {
  constexpr int kRanks = 8;
  constexpr std::uint64_t kIters = 2000;
  parc::Runtime::run(kRanks, [&](parc::Rank& r) {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      Span span("work", Phase::kForceEval, i);
      count(Counter::kBodyBody);
      if ((i & 255) == 0) instant("marker", Phase::kComm, i);
    }
    // Cross-rank rollup via the collectives while ranks are live.
    const CounterBlock all = allreduce_counters(r);
    EXPECT_GE(all[Counter::kBodyBody], static_cast<std::uint64_t>(r.size()));
  });
  const auto channels = Registry::instance().channels();
  ASSERT_EQ(channels.size(), static_cast<std::size_t>(kRanks));
  std::uint64_t total = 0;
  for (const RankChannel* ch : channels) {
    EXPECT_GT(ch->size(), 0u);
    EXPECT_EQ(ch->phase_total(Phase::kForceEval).calls, kIters);
    total += ch->counters()[Counter::kBodyBody];
  }
  EXPECT_EQ(total, kRanks * kIters);
  EXPECT_EQ(global_counters()[Counter::kBodyBody], kRanks * kIters);
}

// ---- health sampler --------------------------------------------------------

TEST_F(TelemetryTest, GaugesAreSetAddAndSnapshotted) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  gauge_set(Gauge::kTreeCells, 100.0);
  gauge_add(Gauge::kTreeCells, 32.0);
  gauge_set(Gauge::kHashMeanProbe, 1.25);
  EXPECT_DOUBLE_EQ(ch->gauge(Gauge::kTreeCells), 132.0);
  EXPECT_DOUBLE_EQ(ch->gauge(Gauge::kHashMeanProbe), 1.25);
  EXPECT_TRUE(ch->samples().empty());
  sample_now();
  ASSERT_EQ(ch->samples().size(), 1u);
  const HealthSample& s = ch->samples().back();
  EXPECT_DOUBLE_EQ(s.gauges[static_cast<std::size_t>(Gauge::kTreeCells)], 132.0);
  EXPECT_DOUBLE_EQ(s.gauges[static_cast<std::size_t>(Gauge::kHashMeanProbe)], 1.25);
  EXPECT_GE(s.wall, 0.0);
}

TEST_F(TelemetryTest, SampleTickFiresOncePerStride) {
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  const std::uint64_t stride = ch->sample_stride();
  ASSERT_GT(stride, 1u);
  int fired = 0;
  for (std::uint64_t i = 0; i < 3 * stride; ++i)
    if (sample_tick()) {
      ++fired;
      sample_now();
    }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(ch->samples().size(), 3u);
}

TEST_F(TelemetryTest, SampleRingDecimatesInsteadOfDropping) {
  Registry::instance().set_sample_capacity(8);
  RankChannel* ch = attach_rank(0);
  ASSERT_NE(ch, nullptr);
  const std::uint64_t stride0 = ch->sample_stride();
  for (int i = 0; i < 100; ++i) {
    gauge_set(Gauge::kTreeCells, static_cast<double>(i));
    sample_now();
  }
  // Bounded memory: the ring halves itself (keeping every other sample) and
  // doubles the stride rather than discarding the newest or oldest samples.
  EXPECT_LE(ch->samples().size(), 8u);
  EXPECT_GT(ch->sample_stride(), stride0);
  // Coverage spans the whole run: first-ish and the latest sample survive.
  EXPECT_DOUBLE_EQ(ch->samples().back().gauges[static_cast<std::size_t>(Gauge::kTreeCells)],
                   99.0);
  EXPECT_LT(ch->samples().front().gauges[static_cast<std::size_t>(Gauge::kTreeCells)],
            50.0);
}

TEST_F(TelemetryTest, SamplerDisabledPathIsInert) {
  set_enabled(false);
  gauge_set(Gauge::kTreeCells, 5.0);
  gauge_add(Gauge::kTreeBodies, 5.0);
  EXPECT_FALSE(sample_tick());
  sample_now();
  EXPECT_TRUE(Registry::instance().channels().empty());
}

TEST_F(TelemetryTest, MemoryGaugeTracksLiveAndPeakBytes) {
  mem_gauge_reset();
  const double live0 = mem_live_bytes();
  {
    std::vector<char> block(1 << 20);
    EXPECT_GE(mem_live_bytes(), live0 + (1 << 20));
    EXPECT_GE(mem_peak_bytes(), mem_live_bytes());
  }
  EXPECT_LT(mem_live_bytes(), live0 + (1 << 20));
  EXPECT_GE(mem_peak_bytes(), live0 + (1 << 20));  // peak survives the free
}

TEST_F(TelemetryTest, RunReportJsonCarriesTimeseries) {
  attach_rank(2);
  gauge_set(Gauge::kTreeCells, 7.0);
  sample_now();
  sample_now();
  const auto r = json_parse(run_report_json(build_run_report("ts", 0.1)));
  ASSERT_TRUE(r.ok) << r.error;
  const JsonValue* ts = r.value.find("timeseries");
  ASSERT_NE(ts, nullptr);
  ASSERT_TRUE(ts->is_array());
  ASSERT_EQ(ts->as_array().size(), 1u);
  const JsonValue& s = ts->as_array()[0];
  EXPECT_DOUBLE_EQ(s.find("rank")->as_number(), 2.0);
  EXPECT_GE(s.find("stride_ticks")->as_number(), 1.0);
  ASSERT_TRUE(s.find("tick")->is_array());
  const std::size_t n = s.find("tick")->as_array().size();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(s.find("wall_s")->as_array().size(), n);
  EXPECT_EQ(s.find("virt_s")->as_array().size(), n);
  const JsonValue* gauges = s.find("gauges");
  ASSERT_NE(gauges, nullptr);
  // Every registered gauge has a track of the same length.
  for (int g = 0; g < kGaugeCount; ++g) {
    const JsonValue* track = gauges->find(gauge_name(static_cast<Gauge>(g)));
    ASSERT_NE(track, nullptr) << gauge_name(static_cast<Gauge>(g));
    EXPECT_EQ(track->as_array().size(), n);
  }
  EXPECT_DOUBLE_EQ(gauges->find("tree_cells")->as_array()[0].as_number(), 7.0);
}

TEST_F(TelemetryTest, ChromeTraceCarriesHealthCounterEvents) {
  attach_rank(1);
  gauge_set(Gauge::kHashEntries, 64.0);
  sample_now();
  const auto r = json_parse(chrome_trace_json());
  ASSERT_TRUE(r.ok) << r.error;
  bool saw_counter = false;
  for (const auto& e : r.value.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "C") continue;
    saw_counter = true;
    EXPECT_EQ(e.find("name")->as_string(), "health");
    EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(e.find("args")->find("hash_entries")->as_number(), 64.0);
  }
  EXPECT_TRUE(saw_counter);
}

TEST_F(TelemetryTest, ParcPollProducesHealthSamples) {
  // End-to-end: ABM traffic through am_poll must tick the sampler and leave
  // queue-depth snapshots on the rank channels.
  parc::Runtime::run(4, [&](parc::Rank& r) {
    std::vector<std::uint64_t> got;
    const int h = r.am_register(
        [&got](parc::Rank&, int, std::span<const std::uint8_t> p) {
          got.push_back(p.size());
        });
    const std::uint8_t payload[16] = {};
    for (int round = 0; round < 64; ++round) {
      r.am_post((r.rank() + 1) % r.size(), h, payload);
      r.am_flush();
      r.am_poll();
    }
    r.am_quiesce();
    r.barrier();
  });
  std::size_t total_samples = 0;
  for (const RankChannel* ch : Registry::instance().channels())
    total_samples += ch->samples().size();
  EXPECT_GT(total_samples, 0u);
}

// ---- strict JSON parser ----------------------------------------------------

TEST(TelemetryJson, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-0.5e3",
           "\"a\\n\\\"b\\\\c\\u0041\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
           "  [ 1 , 2 ]  ",
       }) {
    EXPECT_TRUE(json_parse(doc).ok) << doc;
  }
}

TEST(TelemetryJson, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "[1,2,]",          // trailing comma
           "{\"a\":1,}",      // trailing comma in object
           "01",              // leading zero
           "+1",              // leading plus
           "1.",              // bare decimal point
           ".5",              // missing integer part
           "nan",
           "Infinity",
           "'a'",             // single quotes
           "\"a\nb\"",        // raw control character in string
           "\"\\x41\"",       // invalid escape
           "{}{}",            // trailing garbage
           "{\"a\" 1}",       // missing colon
           "{1:2}",           // non-string key
           "[1 2]",           // missing comma
           "{\"a\":}",        // missing value
           "[",               // unterminated
           "\"abc",           // unterminated string
       }) {
    const auto r = json_parse(doc);
    EXPECT_FALSE(r.ok) << "accepted: " << doc;
    EXPECT_FALSE(r.error.empty()) << doc;
  }
}

TEST(TelemetryJson, WriterRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("tree \"build\"\n");
  w.key("pi");
  w.value(3.25);
  w.key("big");
  w.value(std::uint64_t{1} << 53);
  w.key("list");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  const auto r = json_parse(w.str());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.find("name")->as_string(), "tree \"build\"\n");
  EXPECT_DOUBLE_EQ(r.value.find("pi")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(r.value.find("big")->as_number(), 9007199254740992.0);
  ASSERT_TRUE(r.value.find("list")->is_array());
  EXPECT_TRUE(r.value.find("list")->as_array()[0].as_bool());
  EXPECT_TRUE(r.value.find("list")->as_array()[1].is_null());
}

TEST(TelemetryJson, NumbersNeverEmitNanOrInf) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
}

TEST(TelemetryJson, RejectsNanAndInfinityLiterals) {
  for (const char* doc : {
           "NaN", "nan", "-NaN",
           "Infinity", "-Infinity", "inf", "-inf", "1e",
           "{\"wall_seconds\": NaN}",
           "[1, Infinity]",
       }) {
    const auto r = json_parse(doc);
    EXPECT_FALSE(r.ok) << "accepted: " << doc;
  }
}

TEST(TelemetryJson, RejectsDuplicateObjectKeys) {
  // A duplicate key in a run report means the writer is broken; silently
  // keeping either value would corrupt a baseline comparison.
  const auto r = json_parse("{\"a\":1,\"a\":2}");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate"), std::string::npos) << r.error;
  EXPECT_TRUE(json_parse("{\"a\":{\"b\":1},\"c\":{\"b\":1}}").ok)
      << "same key in different objects is fine";
}

TEST(TelemetryJson, DeepNestingIsRejectedNotStackOverflowed) {
  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += '[';
  for (int i = 0; i < 10000; ++i) deep += ']';
  const auto r = json_parse(deep);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nesting"), std::string::npos) << r.error;
  // A document at modest depth still parses.
  std::string ok;
  for (int i = 0; i < 64; ++i) ok += '[';
  for (int i = 0; i < 64; ++i) ok += ']';
  EXPECT_TRUE(json_parse(ok).ok);
}

TEST(TelemetryJson, FuzzStyleMalformedReportsNeverParse) {
  // Corpus of corrupted run reports: truncations, swapped delimiters,
  // duplicate sections — the shapes a crashed harness or a bad merge
  // actually produces. The strict parser must reject every one with a
  // non-empty error and without crashing.
  const std::string good =
      "{\"schema\":\"hotlib-run-report-v1\",\"name\":\"x\",\"nranks\":1,"
      "\"counters\":{\"body_body\":12},\"metrics\":{\"m\":0.5}}";
  ASSERT_TRUE(json_parse(good).ok);
  std::vector<std::string> corpus;
  // Every proper prefix of a valid report is invalid.
  for (std::size_t cut = 0; cut < good.size(); cut += 7)
    corpus.push_back(good.substr(0, cut));
  // Single-byte mutations swapping structural characters.
  for (const auto& [from, to] : std::vector<std::pair<char, char>>{
           {'{', '['}, {'}', ']'}, {':', ','}, {',', ':'}, {'"', '\''}}) {
    std::string mutated = good;
    mutated[mutated.find(from)] = to;
    corpus.push_back(mutated);
  }
  corpus.push_back(good + good);                      // two documents
  corpus.push_back(good + "x");                       // trailing garbage
  corpus.push_back("\xEF\xBB\xBF" + good);            // UTF-8 BOM
  corpus.push_back(std::string(1, '\0') + good);      // NUL prefix
  std::string dup = good;
  dup.insert(1, "\"name\":\"y\",");                    // duplicate "name"
  corpus.push_back(dup);
  for (const std::string& doc : corpus) {
    const auto r = json_parse(doc);
    EXPECT_FALSE(r.ok) << "accepted: " << doc;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(TelemetryJson, NumbersUseShortestRoundTrip) {
  // Byte-stable reports: the fewest digits that re-parse to the identical
  // double, so rewriting an unchanged baseline is a no-op diff.
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(1e300), "1e+300");
  EXPECT_EQ(json_number(-2.5e-7), "-2.5e-07");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(1.0 / 3.0), "0.3333333333333333");
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, 0.30000000000000004,
                         123456789.123456789, 2.2250738585072014e-308}) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    const auto parsed = json_parse(s);
    ASSERT_TRUE(parsed.ok) << s;
    EXPECT_EQ(parsed.value.as_number(), v) << s;
  }
}

// ---- exporters -------------------------------------------------------------

TEST_F(TelemetryTest, PhaseWallTimesSumToCoveredWall) {
  attach_rank(0);
  const double wall0 = Registry::instance().now();
  { Span d("decompose", Phase::kDecompose); busy(2e-3); }
  { Span t("tree_build", Phase::kTreeBuild); busy(2e-3); }
  { Span f("tree_forces", Phase::kForceEval); busy(2e-3); }
  const double covered = Registry::instance().now() - wall0;
  const RunReport r = build_run_report("phase_sum", covered);
  double phase_sum = 0;
  for (const auto& p : r.phases) phase_sum += p.wall_seconds;
  // Acceptance bar from the issue: per-phase times sum to the covered wall
  // time within 5% (the gap is span setup + the gaps between scopes).
  EXPECT_NEAR(phase_sum, covered, 0.05 * covered);
  EXPECT_EQ(r.nranks, 1);
}

TEST_F(TelemetryTest, RunReportJsonIsStrictValid) {
  attach_rank(0);
  { Span t("tree_build", Phase::kTreeBuild, 123); busy(1e-4); }
  count(Counter::kBodyBody, 41);
  RunReport report = build_run_report("unit", 0.25);
  report.metrics["custom_metric"] = 1.5;
  const auto r = json_parse(run_report_json(report));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_EQ(r.value.find("schema")->as_string(), "hotlib-run-report-v1");
  EXPECT_EQ(r.value.find("name")->as_string(), "unit");
  EXPECT_DOUBLE_EQ(r.value.find("wall_seconds")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(
      r.value.find("counters")->find(counter_name(Counter::kBodyBody))->as_number(),
      41.0);
  EXPECT_DOUBLE_EQ(r.value.find("metrics")->find("custom_metric")->as_number(), 1.5);
  ASSERT_TRUE(r.value.find("phases")->is_array());
  const auto& phase0 = r.value.find("phases")->as_array().at(0);
  EXPECT_EQ(phase0.find("name")->as_string(), "tree_build");
  EXPECT_DOUBLE_EQ(phase0.find("calls")->as_number(), 1.0);
}

TEST_F(TelemetryTest, ChromeTraceJsonIsStrictValidWithSpansAndInstants) {
  attach_rank(3);
  { Span t("tree_build", Phase::kTreeBuild); busy(1e-4); }
  instant("fault_drop", Phase::kComm, 9);
  const auto r = json_parse(chrome_trace_json());
  ASSERT_TRUE(r.ok) << r.error;
  // trace_event "JSON Object Format": {"traceEvents": [...]}.
  ASSERT_TRUE(r.value.is_object());
  ASSERT_NE(r.value.find("traceEvents"), nullptr);
  ASSERT_TRUE(r.value.find("traceEvents")->is_array());
  const JsonArray& events = r.value.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 2u);
  bool saw_complete = false, saw_instant = false;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    EXPECT_DOUBLE_EQ(e.find("tid")->as_number(), 3.0);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      saw_complete = true;
      EXPECT_EQ(e.find("name")->as_string(), "tree_build");
      EXPECT_GT(e.find("dur")->as_number(), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.find("name")->as_string(), "fault_drop");
      EXPECT_DOUBLE_EQ(e.find("args")->find("arg")->as_number(), 9.0);
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
}

TEST_F(TelemetryTest, SessionWritesSchemaValidReportFile) {
  const auto dir = std::filesystem::temp_directory_path() / "hotlib_tel_test";
  std::filesystem::create_directories(dir);
  setenv("HOTLIB_REPORT_DIR", dir.c_str(), 1);
  {
    Session session("unittest");
    { Span t("tree_build", Phase::kTreeBuild); busy(1e-4); }
    session.metric("answer", 42.0);
    session.set_modelled_seconds(1.5);
  }
  unsetenv("HOTLIB_REPORT_DIR");
  std::ifstream in(dir / "BENCH_unittest.json");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto r = json_parse(buf.str());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("schema")->as_string(), "hotlib-run-report-v1");
  EXPECT_EQ(r.value.find("name")->as_string(), "unittest");
  EXPECT_DOUBLE_EQ(r.value.find("modelled_seconds")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(r.value.find("metrics")->find("answer")->as_number(), 42.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hotlib::telemetry
