// Tests for src/util: RNG determinism and statistics, the NPB LCG, running
// stats, table printing, PGM output, and striped snapshot I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "telemetry/counters.hpp"
#include "util/pgm.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hotlib {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformMeanAndVariance) {
  Xoshiro256ss rng(1234);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 5e-3);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 5e-3);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256ss rng(99);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 1e-2);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-2);
}

TEST(Xoshiro, InSphereStaysInside) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(norm(rng.in_sphere(2.5)), 2.5 + 1e-12);
  }
}

TEST(NpbLcg, MatchesWideMultiplication) {
  // mulmod46 must agree with a 128-bit reference.
  NpbLcg gen(314159265ULL);
  std::uint64_t x = 314159265ULL;
  for (int i = 0; i < 1000; ++i) {
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(x) * NpbLcg::kDefaultA;
    x = static_cast<std::uint64_t>(wide & NpbLcg::kModMask);
    gen.next();
    ASSERT_EQ(gen.raw(), x) << "diverged at step " << i;
  }
}

TEST(NpbLcg, SkipMatchesSequentialAdvance) {
  NpbLcg a(314159265ULL), b(314159265ULL);
  for (int i = 0; i < 12345; ++i) a.next();
  b.skip(12345);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(NpbLcg, ValuesInUnitInterval) {
  NpbLcg g;
  for (int i = 0; i < 1000; ++i) {
    const double v = g.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.rms(), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(RunningStats, MergeEqualsCombined) {
  Xoshiro256ss rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(InteractionTally, FlopAccounting) {
  InteractionTally t;
  t.body_body = 100;
  t.body_cell = 50;
  EXPECT_EQ(t.interactions(), 150u);
  EXPECT_DOUBLE_EQ(t.flops(), 150.0 * 38);
  InteractionTally u = t + t;
  EXPECT_EQ(u.interactions(), 300u);
}

TEST(Throughput, Rates) {
  Throughput t{.flops = 38e9, .seconds = 2.0};
  EXPECT_DOUBLE_EQ(t.gflops(), 19.0);
  EXPECT_DOUBLE_EQ(t.mflops(), 19000.0);
}

TEST(TextTable, FormatsAligned) {
  TextTable t({"Item", "Qty"});
  t.add_row({"CPU", "16"});
  t.add_row({"Switch", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| CPU"), std::string::npos);
  EXPECT_NE(s.find("| Switch"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsWideRow) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Checksum, DetectsCorruption) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t c0 = checksum64(data);
  data[500] ^= 1;
  EXPECT_NE(c0, checksum64(data));
}

class SnapshotTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SnapshotTest, RoundTripAcrossStripes) {
  const std::uint32_t stripes = GetParam();
  const std::string base =
      (std::filesystem::temp_directory_path() / ("hotlib_snap_" + std::to_string(stripes)))
          .string();

  std::vector<double> values(10000);
  Xoshiro256ss rng(stripes);
  for (auto& v : values) v = rng.normal();
  const auto payload = pack_doubles(values);

  SnapshotHeader h;
  h.particle_count = values.size() / 3;
  h.step = 437;
  h.time = 13.5;
  SnapshotWriter writer(base, stripes, /*stripe_block=*/4096);
  ASSERT_TRUE(writer.write(h, payload));

  SnapshotHeader h2;
  std::vector<std::uint8_t> back;
  SnapshotReader reader(base);
  ASSERT_TRUE(reader.read(h2, back));
  EXPECT_EQ(h2.step, 437u);
  EXPECT_DOUBLE_EQ(h2.time, 13.5);
  EXPECT_EQ(unpack_doubles(back), values);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, SnapshotTest, ::testing::Values(1u, 2u, 7u, 16u));

TEST(Snapshot, DetectsTamperedStripe) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "hotlib_snap_tamper").string();
  std::vector<double> values(512, 1.25);
  SnapshotWriter writer(base, 4, 256);
  ASSERT_TRUE(writer.write(SnapshotHeader{}, pack_doubles(values)));
  {
    // Flip one byte in stripe 2.
    std::FILE* f = std::fopen((base + ".s2").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  SnapshotHeader h;
  std::vector<std::uint8_t> back;
  EXPECT_FALSE(SnapshotReader(base).read(h, back));
}

TEST(Pgm, WritesValidHeaderAndScales) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotlib_test.pgm").string();
  PgmImage img(32, 16);
  img.deposit(3, 4, 10.0);
  img.deposit(3, 4, 5.0);
  EXPECT_DOUBLE_EQ(img.at(3, 4), 15.0);
  ASSERT_TRUE(img.write_log(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  std::fclose(f);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '5');
}

TEST(Pgm, OutOfBoundsDepositIgnored) {
  PgmImage img(4, 4);
  img.deposit(100, 100, 1.0);  // must not crash or corrupt
  EXPECT_DOUBLE_EQ(img.at(0, 0), 0.0);
}

}  // namespace
}  // namespace hotlib
