// Tests for src/vortex: the regularized Biot-Savart kernel and its analytic
// gradient, invariants (total strength, linear impulse), ring self-induction
// physics, treecode-vs-direct accuracy and M4' remeshing conservation.
#include <gtest/gtest.h>

#include <numbers>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vortex/remesh.hpp"
#include "vortex/vpm.hpp"

namespace hotlib::vortex {
namespace {

TEST(Kernel, SingleSourceAnalyticVelocity) {
  // alpha = (0,0,a) at origin, target on the x axis: u = -1/(4pi) d x alpha.
  const Vec3d xi{2, 0, 0}, xj{0, 0, 0}, aj{0, 0, 3};
  Vec3d u{};
  vortex_kernel(xi, xj, aj, 0.0, u, nullptr, nullptr);
  // d x alpha = (2,0,0) x (0,0,3) = (0*3-0*0, 0*0-2*3, 0) = (0,-6,0).
  const double expect = -(1.0 / (4 * std::numbers::pi)) * (-6.0) / 8.0;
  EXPECT_NEAR(u.y, expect, 1e-14);
  EXPECT_NEAR(u.x, 0.0, 1e-14);
  EXPECT_NEAR(u.z, 0.0, 1e-14);
}

TEST(Kernel, SelfInteractionVanishes) {
  const Vec3d x{1, 2, 3}, a{0.5, -0.2, 0.1};
  Vec3d u{}, da{};
  vortex_kernel(x, x, a, 0.01, u, &a, &da);
  EXPECT_NEAR(norm(u), 0.0, 1e-15);
  EXPECT_NEAR(norm(da), 0.0, 1e-15);
}

TEST(Kernel, StretchingMatchesFiniteDifferenceGradient) {
  // dalpha = (alpha_i . grad) u must match numerical differentiation of the
  // velocity field.
  const Vec3d xj{0.2, -0.1, 0.4}, aj{0.3, 0.8, -0.5};
  const Vec3d xi{1.0, 0.7, -0.2}, ai{-0.4, 0.25, 0.6};
  const double sigma2 = 0.05;
  Vec3d u{}, da{};
  vortex_kernel(xi, xj, aj, sigma2, u, &ai, &da);

  const double h = 1e-6;
  Vec3d fd{};
  for (int c = 0; c < 3; ++c) {
    Vec3d xp = xi, xm = xi;
    xp[static_cast<std::size_t>(c)] += h;
    xm[static_cast<std::size_t>(c)] -= h;
    Vec3d up{}, um{};
    vortex_kernel(xp, xj, aj, sigma2, up, nullptr, nullptr);
    vortex_kernel(xm, xj, aj, sigma2, um, nullptr, nullptr);
    fd += ai[static_cast<std::size_t>(c)] * ((up - um) / (2 * h));
  }
  EXPECT_NEAR(norm(da - fd), 0.0, 1e-7);
}

TEST(Ring, ClosedRingHasZeroTotalStrength) {
  const auto ring = make_ring(64, 1.0, 2.0, {0, 0, 0}, {0, 0, 1}, 0.2);
  EXPECT_NEAR(norm(ring.total_strength()), 0.0, 1e-12);
}

TEST(Ring, ImpulseAlongAxis) {
  // I = 1/2 sum x cross alpha = Gamma * pi R^2 * axis for a thin ring.
  const double gamma = 2.0, radius = 1.5;
  const auto ring = make_ring(128, radius, gamma, {0, 0, 0}, {0, 0, 1}, 0.2);
  const Vec3d imp = ring.linear_impulse();
  EXPECT_NEAR(imp.z, gamma * std::numbers::pi * radius * radius, 1e-2);
  EXPECT_NEAR(imp.x, 0.0, 1e-10);
  EXPECT_NEAR(imp.y, 0.0, 1e-10);
}

TEST(Ring, SelfInducedTranslationAlongAxis) {
  // A thin vortex ring propagates along its axis at roughly
  // Gamma/(4 pi R) (ln(8R/sigma) - 0.558) (Kelvin). Check direction and
  // magnitude within a factor of ~1.5 (our core model differs in detail).
  const double gamma = 1.0, radius = 1.0, sigma = 0.1;
  auto ring = make_ring(256, radius, gamma, {0, 0, 0}, {0, 0, 1}, sigma);
  direct_velocities(ring);
  RunningStats uz;
  for (const auto& v : ring.vel) uz.add(v.z);
  const double kelvin = gamma / (4 * std::numbers::pi * radius) *
                        (std::log(8 * radius / sigma) - 0.558);
  EXPECT_GT(uz.mean(), 0.0);
  EXPECT_NEAR(uz.mean() / kelvin, 1.0, 0.5);
  // All segments move together (rigid translation of a perfect ring).
  EXPECT_LT(uz.stddev(), 1e-6 * std::abs(uz.mean()) + 1e-9);
}

TEST(Tree, MatchesDirectVelocities) {
  // Random vortex blob: treecode within a fraction of a percent of direct.
  VortexParticles p;
  Xoshiro256ss rng(3);
  const std::size_t n = 600;
  p.resize(n);
  p.sigma = 0.05;
  for (std::size_t i = 0; i < n; ++i) {
    p.pos[i] = rng.in_sphere(1.0);
    p.alpha[i] = {rng.normal(), rng.normal(), rng.normal()};
    p.alpha[i] *= 0.01;
  }
  VortexParticles ref = p;
  direct_velocities(ref);

  // The vortex far field is monopole-only, so the error scales like theta^3;
  // check both the absolute accuracy at a production theta and the scaling.
  auto rel_err = [&](double theta) {
    VortexParticles q = p;
    const auto tally = tree_velocities(q, hot::Mac{.theta = theta});
    EXPECT_LT(tally.interactions(), n * n);  // actually used the tree
    RunningStats err, mag;
    for (std::size_t i = 0; i < n; ++i) {
      err.add(norm(q.vel[i] - ref.vel[i]));
      mag.add(norm(ref.vel[i]));
    }
    RunningStats serr, smag;
    for (std::size_t i = 0; i < n; ++i) {
      serr.add(norm(q.dalpha[i] - ref.dalpha[i]));
      smag.add(norm(ref.dalpha[i]));
    }
    EXPECT_LT(serr.rms(), 10 * err.rms() / mag.rms() * smag.rms() + 1e-12);
    return err.rms() / mag.rms();
  };
  const double e3 = rel_err(0.3);
  const double e15 = rel_err(0.15);
  EXPECT_LT(e3, 6e-2);
  EXPECT_LT(e15, 1.5e-2);
  EXPECT_LT(e15, 0.4 * e3);  // ~theta^3 improvement
}

TEST(Step, RingAdvancesAndConservesImpulse) {
  auto ring = make_ring(128, 1.0, 1.0, {0, 0, 0}, {0, 0, 1}, 0.15);
  const Vec3d imp0 = ring.linear_impulse();
  const double z0 = [&] {
    double z = 0;
    for (const auto& x : ring.pos) z += x.z;
    return z / static_cast<double>(ring.size());
  }();
  for (int s = 0; s < 10; ++s) step_rk2(ring, 0.05, hot::Mac{.theta = 0.3});
  double z1 = 0;
  for (const auto& x : ring.pos) z1 += x.z;
  z1 /= static_cast<double>(ring.size());
  EXPECT_GT(z1, z0 + 0.01);  // moved along +z
  const Vec3d imp1 = ring.linear_impulse();
  EXPECT_NEAR(norm(imp1 - imp0), 0.0, 0.02 * norm(imp0));
}

TEST(Remesh, M4PrimeIsPartitionOfUnity) {
  // For any offset t in [0,1), the weights at the four covering nodes sum
  // to exactly 1.
  for (double t : {0.0, 0.13, 0.5, 0.77, 0.99}) {
    const double sum =
        m4prime(t + 1.0) + m4prime(t) + m4prime(1.0 - t) + m4prime(2.0 - t);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(m4prime(2.0), 0.0);
  EXPECT_DOUBLE_EQ(m4prime(0.0), 1.0);
}

TEST(Remesh, ConservesTotalStrengthAndImpulse) {
  VortexParticles p;
  Xoshiro256ss rng(9);
  p.resize(500);
  p.sigma = 0.1;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.pos[i] = rng.in_sphere(0.8);
    p.alpha[i] = Vec3d{rng.normal(), rng.normal(), rng.normal()} * 0.01;
  }
  const Vec3d s0 = p.total_strength();
  const Vec3d i0 = p.linear_impulse();
  const auto q = remesh(p, {.keep_fraction = 0.0});
  EXPECT_NEAR(norm(q.total_strength() - s0), 0.0, 1e-10);
  EXPECT_NEAR(norm(q.linear_impulse() - i0), 0.0,
              0.02 * norm(i0) + 1e-10);  // 2nd-order accurate
  EXPECT_DOUBLE_EQ(q.sigma, p.sigma);
}

TEST(Remesh, GrowsParticleCountForSpreadVorticity) {
  // The paper's run grew 57k -> 360k particles via remeshing; at our scale a
  // thin ring remeshed onto an overlapping lattice must also gain particles.
  auto ring = make_ring(64, 1.0, 1.0, {0, 0, 0}, {0, 0, 1}, 0.3);
  const auto q = remesh(ring, {.overlap = 2.0, .keep_fraction = 1e-6});
  EXPECT_GT(q.size(), ring.size());
}

TEST(Merge, ConcatenatesSets) {
  auto a = make_ring(16, 1.0, 1.0, {0, 0, 0}, {0, 0, 1}, 0.1);
  auto b = make_ring(24, 1.0, 1.0, {0, 0, 2}, {0, 0, 1}, 0.1);
  const auto m = merge(a, b);
  EXPECT_EQ(m.size(), 40u);
  EXPECT_NEAR(norm(m.total_strength()), 0.0, 1e-12);
}

}  // namespace
}  // namespace hotlib::vortex
