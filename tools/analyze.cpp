#include "analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/table.hpp"

namespace hotlib::tools {

namespace telemetry = hotlib::telemetry;

namespace {

// Counters whose values are fully determined by the problem instance: the
// interaction tallies, record totals and hash statistics came out identical
// across repeated runs of every harness, so the gate holds them to exact
// equality — any drift is a real behaviour change.
const std::set<std::string>& exact_counters() {
  static const std::set<std::string> k = {
      "body_body",      "body_cell",         "cells_opened",
      "mac_tests",      "hash_hits",         "hash_misses",
      "dtree_replies_served", "let_cells_imported", "let_bodies_imported",
      "abm_records_posted",   "abm_records_dispatched",
      "abm_abandoned_records", "abm_corrupt_batches",
  };
  return k;
}

// Host-speed metrics: wall-clock rates and latencies that vary with the
// machine the gate runs on. Checked only to a within-a-factor band.
bool is_rate_metric(const std::string& key) {
  return key.ends_with("_per_s") || key.ends_with("_ns") || key.ends_with("_us") ||
         key.ends_with("_per_sec");
}

std::string fmt(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", frac * 100.0);
  return buf;
}

double num_or(const telemetry::JsonValue& obj, const char* key, double fallback = 0.0) {
  const telemetry::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool load_column(const telemetry::JsonValue& obj, const char* key, std::vector<double>& out) {
  const telemetry::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) return false;
  out.reserve(v->as_array().size());
  for (const telemetry::JsonValue& e : v->as_array()) {
    if (!e.is_number()) return false;
    out.push_back(e.as_number());
  }
  return true;
}

}  // namespace

const Report::Phase* Report::phase(const std::string& n) const {
  for (const Phase& p : phases)
    if (p.name == n) return &p;
  return nullptr;
}

double Report::counter(const std::string& n) const {
  auto it = counters.find(n);
  return it != counters.end() ? it->second : 0.0;
}

bool load_report(const std::string& path, Report& out, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = path + ": cannot open";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const telemetry::JsonParseResult parsed = telemetry::json_parse(buf.str());
  if (!parsed.ok) {
    err = path + ": " + parsed.error;
    return false;
  }
  const telemetry::JsonValue& root = parsed.value;
  if (!root.is_object()) {
    err = path + ": top level is not an object";
    return false;
  }
  const telemetry::JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "hotlib-run-report-v1") {
    err = path + ": not a hotlib-run-report-v1 document";
    return false;
  }

  out = Report{};
  out.path = path;
  if (const telemetry::JsonValue* v = root.find("name"); v != nullptr && v->is_string())
    out.name = v->as_string();
  out.nranks = static_cast<int>(num_or(root, "nranks"));
  out.wall_seconds = num_or(root, "wall_seconds");
  out.modelled_seconds = num_or(root, "modelled_seconds");
  out.interactions = num_or(root, "interactions");
  out.flops = num_or(root, "flops");
  out.gflops_wall = num_or(root, "gflops_wall");

  if (const telemetry::JsonValue* phases = root.find("phases");
      phases != nullptr && phases->is_array()) {
    for (const telemetry::JsonValue& p : phases->as_array()) {
      if (!p.is_object()) continue;
      Report::Phase ph;
      if (const telemetry::JsonValue* n = p.find("name"); n != nullptr && n->is_string())
        ph.name = n->as_string();
      ph.wall_seconds = num_or(p, "wall_seconds");
      ph.virt_seconds = num_or(p, "virt_seconds");
      ph.max_rank_wall = num_or(p, "max_rank_wall");
      ph.mean_rank_wall = num_or(p, "mean_rank_wall");
      ph.imbalance = num_or(p, "imbalance", 1.0);
      ph.calls = num_or(p, "calls");
      out.phases.push_back(std::move(ph));
    }
  }

  if (const telemetry::JsonValue* ts = root.find("timeseries");
      ts != nullptr && ts->is_array()) {
    for (const telemetry::JsonValue& s : ts->as_array()) {
      if (!s.is_object()) continue;
      Report::Series series;
      series.rank = static_cast<int>(num_or(s, "rank"));
      series.stride_ticks = num_or(s, "stride_ticks");
      load_column(s, "tick", series.tick);
      load_column(s, "wall_s", series.wall_s);
      load_column(s, "virt_s", series.virt_s);
      if (const telemetry::JsonValue* g = s.find("gauges"); g != nullptr && g->is_object()) {
        for (const auto& [key, track] : g->as_object()) {
          std::vector<double> col;
          if (track.is_array()) {
            for (const telemetry::JsonValue& e : track.as_array())
              if (e.is_number()) col.push_back(e.as_number());
          }
          series.gauges.emplace(key, std::move(col));
        }
      }
      out.timeseries.push_back(std::move(series));
    }
  }

  if (const telemetry::JsonValue* c = root.find("counters"); c != nullptr && c->is_object())
    for (const auto& [key, v] : c->as_object())
      if (v.is_number()) out.counters[key] = v.as_number();
  if (const telemetry::JsonValue* m = root.find("metrics"); m != nullptr && m->is_object())
    for (const auto& [key, v] : m->as_object())
      if (v.is_number()) out.metrics[key] = v.as_number();
  return true;
}

bool stamp_report(const std::string& path, const std::string& key,
                  const std::string& value, std::string& err) {
  if (key.empty() || key.find_first_of("\"\\") != std::string::npos ||
      value.find_first_of("\"\\") != std::string::npos) {
    err = "stamp: key and value must be non-empty and free of quotes/backslashes";
    return false;
  }
  std::ifstream in(path);
  if (!in) {
    err = path + ": cannot open";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) {
    err = path + ": no JSON object";
    return false;
  }
  // A previous stamp of the same key sits immediately after the opening
  // brace; drop it (through its trailing comma) before re-inserting.
  const std::string quoted = "\"" + key + "\"";
  const std::size_t p = text.find_first_not_of(" \t\r\n", brace + 1);
  if (p != std::string::npos && text.compare(p, quoted.size(), quoted) == 0) {
    const std::size_t comma = text.find(',', p);
    if (comma == std::string::npos) {
      err = path + ": malformed existing stamp for " + key;
      return false;
    }
    text.erase(brace + 1, comma - brace);
  }
  text.insert(brace + 1, "\"" + key + "\": \"" + value + "\", ");
  // Strict-validate before touching the file; the parser also rejects
  // duplicate keys, so stamping a key the document already owns elsewhere
  // fails here instead of corrupting the report.
  const telemetry::JsonParseResult parsed = telemetry::json_parse(text);
  if (!parsed.ok) {
    err = path + ": stamped document invalid: " + parsed.error;
    return false;
  }
  std::ofstream outf(path, std::ios::trunc);
  if (!outf) {
    err = path + ": cannot write";
    return false;
  }
  outf << text;
  return true;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string render_report(const Report& r) {
  std::string out;
  out += "=== " + r.name + " (" + r.path + ") ===\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "ranks %d   wall %.4g s   modelled %.4g s   interactions %s   "
                "flops %s   Mflop/s(wall) %.4g\n\n",
                r.nranks, r.wall_seconds, r.modelled_seconds,
                fmt(r.interactions).c_str(), fmt(r.flops).c_str(),
                r.wall_seconds > 0 ? r.flops / r.wall_seconds / 1e6 : 0.0);
  out += line;

  if (!r.phases.empty()) {
    TextTable t({"phase", "calls", "wall s", "virt s", "max rank s", "mean rank s",
                 "imbalance"});
    for (const Report::Phase& p : r.phases)
      t.add_row({p.name, fmt(p.calls), TextTable::num(p.wall_seconds, 4),
                 TextTable::num(p.virt_seconds, 4), TextTable::num(p.max_rank_wall, 4),
                 TextTable::num(p.mean_rank_wall, 4), TextTable::num(p.imbalance, 2)});
    out += "Phases (totals across ranks; imbalance = max/mean rank wall):\n";
    out += t.to_string() + "\n";
  }

  {
    TextTable t({"counter", "value"});
    for (const auto& [key, v] : r.counters)
      if (v != 0.0) t.add_row({key, fmt(v)});
    if (t.rows() > 0) {
      out += "Counters (non-zero):\n" + t.to_string() + "\n";
    }
  }

  if (!r.metrics.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& [key, v] : r.metrics) t.add_row({key, fmt(v)});
    out += "Metrics:\n" + t.to_string() + "\n";
  }

  if (!r.timeseries.empty()) {
    std::size_t nsamples = 0;
    std::map<std::string, std::vector<double>> merged;
    for (const Report::Series& s : r.timeseries) {
      nsamples += s.tick.size();
      for (const auto& [key, col] : s.gauges) {
        auto& dst = merged[key];
        dst.insert(dst.end(), col.begin(), col.end());
      }
    }
    std::snprintf(line, sizeof line, "Health timeseries: %zu series, %zu samples\n",
                  r.timeseries.size(), nsamples);
    out += line;
    TextTable t({"gauge", "p50", "p95", "max"});
    for (const auto& [key, col] : merged) {
      if (std::all_of(col.begin(), col.end(), [](double v) { return v == 0.0; }))
        continue;
      t.add_row({key, fmt(percentile(col, 0.5)), fmt(percentile(col, 0.95)),
                 fmt(*std::max_element(col.begin(), col.end()))});
    }
    if (t.rows() > 0) out += t.to_string() + "\n";
  }
  return out;
}

namespace {

void diff_row(TextTable& t, const std::string& key, double a, double b) {
  const double delta = b - a;
  if (a == 0.0 && b == 0.0) return;
  const std::string rel = a != 0.0 ? fmt_pct(delta / std::fabs(a)) : "n/a";
  t.add_row({key, fmt(a), fmt(b), fmt(delta), rel});
}

}  // namespace

std::string render_diff(const Report& a, const Report& b) {
  std::string out;
  out += "=== diff: " + a.path + "  ->  " + b.path + " ===\n";
  if (a.name != b.name)
    out += "WARNING: comparing different harnesses (" + a.name + " vs " + b.name + ")\n";
  out += "\n";

  TextTable top({"quantity", a.name + " (A)", b.name + " (B)", "delta", "rel"});
  diff_row(top, "nranks", a.nranks, b.nranks);
  diff_row(top, "wall_seconds", a.wall_seconds, b.wall_seconds);
  diff_row(top, "modelled_seconds", a.modelled_seconds, b.modelled_seconds);
  diff_row(top, "interactions", a.interactions, b.interactions);
  diff_row(top, "flops", a.flops, b.flops);
  diff_row(top, "gflops_wall", a.gflops_wall, b.gflops_wall);
  out += top.to_string() + "\n";

  {
    TextTable t({"phase", "wall A", "wall B", "virt A", "virt B", "imb A", "imb B"});
    std::set<std::string> names;
    for (const auto& p : a.phases) names.insert(p.name);
    for (const auto& p : b.phases) names.insert(p.name);
    for (const std::string& n : names) {
      const Report::Phase* pa = a.phase(n);
      const Report::Phase* pb = b.phase(n);
      t.add_row({n, pa != nullptr ? TextTable::num(pa->wall_seconds, 4) : "-",
                 pb != nullptr ? TextTable::num(pb->wall_seconds, 4) : "-",
                 pa != nullptr ? TextTable::num(pa->virt_seconds, 4) : "-",
                 pb != nullptr ? TextTable::num(pb->virt_seconds, 4) : "-",
                 pa != nullptr ? TextTable::num(pa->imbalance, 2) : "-",
                 pb != nullptr ? TextTable::num(pb->imbalance, 2) : "-"});
    }
    if (t.rows() > 0) out += "Phases:\n" + t.to_string() + "\n";
  }

  {
    TextTable t({"counter", "A", "B", "delta", "rel"});
    std::set<std::string> keys;
    for (const auto& [k, v] : a.counters) keys.insert(k);
    for (const auto& [k, v] : b.counters) keys.insert(k);
    for (const std::string& k : keys) diff_row(t, k, a.counter(k), b.counter(k));
    if (t.rows() > 0) out += "Counters:\n" + t.to_string() + "\n";
  }

  {
    TextTable t({"metric", "A", "B", "delta", "rel"});
    std::set<std::string> keys;
    for (const auto& [k, v] : a.metrics) keys.insert(k);
    for (const auto& [k, v] : b.metrics) keys.insert(k);
    for (const std::string& k : keys) {
      const auto ia = a.metrics.find(k);
      const auto ib = b.metrics.find(k);
      diff_row(t, k, ia != a.metrics.end() ? ia->second : 0.0,
               ib != b.metrics.end() ? ib->second : 0.0);
    }
    if (t.rows() > 0) out += "Metrics:\n" + t.to_string() + "\n";
  }
  return out;
}

namespace {

class Checker {
 public:
  Checker(const CheckPolicy& policy, CheckResult& result)
      : policy_(policy), result_(result) {}

  double tolerance_for(const std::string& key, double fallback) const {
    auto it = policy_.overrides.find(key);
    return it != policy_.overrides.end() ? it->second : fallback;
  }

  void exact(const std::string& key, double got, double want) {
    const double rel = tolerance_for(key, 0.0);
    if (rel > 0.0) {  // a --tol override downgrades an exact check to a band
      banded(key, got, want, rel, 0.0);
      return;
    }
    ++result_.checked;
    if (got != want)
      fail(key + ": got " + fmt(got) + ", baseline " + fmt(want) + " (exact match required)");
  }

  void banded(const std::string& key, double got, double want, double rel, double abs) {
    ++result_.checked;
    rel = tolerance_for(key, rel);
    const double slack = std::max(rel * std::fabs(want), abs);
    if (std::fabs(got - want) > slack)
      fail(key + ": got " + fmt(got) + ", baseline " + fmt(want) + " (allowed ±" +
           fmt(slack) + ")");
  }

  // Wall-clock: only regressions fail, a faster machine never does.
  void upper(const std::string& key, double got, double want) {
    ++result_.checked;
    const double factor = tolerance_for(key, policy_.wall_factor);
    const double bound = factor * want + policy_.wall_abs;
    if (got > bound)
      fail(key + ": got " + fmt(got) + " s, baseline " + fmt(want) + " s (bound " +
           fmt(bound) + " s)");
  }

  void factor_band(const std::string& key, double got, double want) {
    ++result_.checked;
    const double factor = tolerance_for(key, policy_.rate_factor);
    if (!std::isfinite(got)) {
      fail(key + ": got non-finite value");
      return;
    }
    if (want == 0.0) return;  // nothing meaningful to band against
    const double ratio = got / want;
    if (ratio > factor || ratio < 1.0 / factor)
      fail(key + ": got " + fmt(got) + ", baseline " + fmt(want) + " (allowed within " +
           fmt(factor) + "x)");
  }

  void fail(const std::string& msg) { result_.violations.push_back(msg); }

 private:
  const CheckPolicy& policy_;
  CheckResult& result_;
};

}  // namespace

CheckResult check_report(const Report& r, const Report& base, const CheckPolicy& policy) {
  CheckResult result;
  Checker c(policy, result);

  if (r.name != base.name)
    c.fail("name: report is \"" + r.name + "\" but baseline is \"" + base.name + "\"");
  c.exact("nranks", r.nranks, base.nranks);
  c.exact("interactions", r.interactions, base.interactions);
  c.exact("flops", r.flops, base.flops);
  c.upper("wall_seconds", r.wall_seconds, base.wall_seconds);
  c.banded("modelled_seconds", r.modelled_seconds, base.modelled_seconds, policy.virt_rel,
           policy.virt_abs);

  // Phase structure must match: same phases, same call counts. Times follow
  // the wall/virt rules above.
  for (const Report::Phase& bp : base.phases) {
    const Report::Phase* rp = r.phase(bp.name);
    if (rp == nullptr) {
      c.fail("phases." + bp.name + ": present in baseline, missing from report");
      continue;
    }
    c.exact("phases." + bp.name + ".calls", rp->calls, bp.calls);
    c.upper("phases." + bp.name + ".wall_seconds", rp->wall_seconds, bp.wall_seconds);
    c.upper("phases." + bp.name + ".max_rank_wall", rp->max_rank_wall, bp.max_rank_wall);
    c.banded("phases." + bp.name + ".virt_seconds", rp->virt_seconds, bp.virt_seconds,
             policy.virt_rel, policy.virt_abs);
  }
  for (const Report::Phase& rp : r.phases)
    if (base.phase(rp.name) == nullptr)
      c.fail("phases." + rp.name + ": new phase not in baseline (refresh baselines)");

  // Counters: deterministic ones exact, traffic ones banded. A counter
  // appearing or disappearing means the enum and the baseline diverged.
  for (const auto& [key, bv] : base.counters) {
    auto it = r.counters.find(key);
    if (it == r.counters.end()) {
      c.fail("counters." + key + ": present in baseline, missing from report");
      continue;
    }
    if (exact_counters().count(key) > 0)
      c.exact("counters." + key, it->second, bv);
    else
      c.banded("counters." + key, it->second, bv, policy.traffic_rel, policy.traffic_abs);
  }
  for (const auto& [key, rv] : r.counters)
    if (base.counters.find(key) == base.counters.end())
      c.fail("counters." + key + ": new counter not in baseline (refresh baselines)");

  for (const auto& [key, bv] : base.metrics) {
    auto it = r.metrics.find(key);
    if (it == r.metrics.end()) {
      c.fail("metrics." + key + ": present in baseline, missing from report");
      continue;
    }
    if (is_rate_metric(key))
      c.factor_band("metrics." + key, it->second, bv);
    else
      c.banded("metrics." + key, it->second, bv, policy.metric_rel, policy.metric_abs);
  }
  for (const auto& [key, rv] : r.metrics)
    if (base.metrics.find(key) == base.metrics.end())
      c.fail("metrics." + key + ": new metric not in baseline (refresh baselines)");

  // The sampler must have produced a timeseries; its values are workload
  // shape, not budget, so only presence is gated.
  ++result.checked;
  if (base.nranks > 0 && r.timeseries.empty())
    c.fail("timeseries: baseline run produced health samples, report has none");

  return result;
}

}  // namespace hotlib::tools
