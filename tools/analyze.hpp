// analyze.hpp — perf-analysis library behind the hotlib-analyze CLI.
//
// Loads hotlib-run-report-v1 JSON files (the BENCH_<name>.json every bench
// harness writes) into a flat Report, and implements the three CLI verbs:
//
//   render_report  paper-style tables: per-phase wall/virtual time with
//                  max/mean imbalance, Mflop/s, message/byte totals, and
//                  queue-depth / hash-occupancy percentiles from the
//                  health-sampler timeseries.
//   render_diff    side-by-side comparison of two reports with absolute and
//                  relative deltas.
//   check_report   compare a report against a committed baseline under a
//                  per-metric tolerance policy; the perf-gate ctest slice is
//                  built on this.
//
// Lives in tools/ (not src/) because it is a consumer of the library's
// public report format, exactly like an external analysis script would be —
// but it links the same strict JSON parser so reports and baselines are
// validated, never fuzzily re-parsed.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hotlib::tools {

// Flattened view of one hotlib-run-report-v1 document.
struct Report {
  std::string path;  // where it was loaded from (for messages)
  std::string name;
  int nranks = 0;
  double wall_seconds = 0;
  double modelled_seconds = 0;
  double interactions = 0;
  double flops = 0;
  double gflops_wall = 0;

  struct Phase {
    std::string name;
    double wall_seconds = 0;
    double virt_seconds = 0;
    double max_rank_wall = 0;
    double mean_rank_wall = 0;
    double imbalance = 1.0;
    double calls = 0;
  };
  std::vector<Phase> phases;

  struct Series {
    int rank = 0;
    double stride_ticks = 0;
    std::vector<double> tick, wall_s, virt_s;
    std::map<std::string, std::vector<double>> gauges;
  };
  std::vector<Series> timeseries;

  std::map<std::string, double> counters;
  std::map<std::string, double> metrics;

  const Phase* phase(const std::string& name) const;
  double counter(const std::string& name) const;  // 0 when absent
};

// Strict-parse `path`; on failure returns false and fills `err`.
bool load_report(const std::string& path, Report& out, std::string& err);

// Splice a top-level string entry `"key": "value"` into the report at
// `path`, replacing a previous stamp of the same key. The stamped document
// is strict-parsed before the file is rewritten, so a bad key/value can
// never corrupt a baseline. Stamps live outside counters/metrics and are
// ignored by check_report — provenance annotations (e.g. the active kernel
// path), not gated quantities.
bool stamp_report(const std::string& path, const std::string& key,
                  const std::string& value, std::string& err);

std::string render_report(const Report& r);
std::string render_diff(const Report& a, const Report& b);

// Tolerance policy for check_report. Counters are classified by name:
// deterministic ones (interaction tallies, record counts, hash statistics)
// must match the baseline exactly; traffic counters (message/byte/ack/
// retransmit totals) depend on thread scheduling and get a banded check;
// wall-clock times are upper-bounded only, so a faster machine never fails
// a committed baseline but a real slowdown does.
struct CheckPolicy {
  double traffic_rel = 0.35;  // |new-base| <= max(rel*base, abs) for traffic counters
  double traffic_abs = 64.0;
  double wall_factor = 50.0;  // new_wall <= factor*base_wall + abs (upper bound only)
  double wall_abs = 1.0;      // seconds; absorbs scheduler noise on ms-scale runs
  double virt_rel = 0.35;     // band for modelled / virtual (LogP) times
  double virt_abs = 1e-6;     // seconds
  double metric_rel = 0.5;    // band for scalar metrics...
  double metric_abs = 0.25;   // ...with absolute slack for near-zero values
  double rate_factor = 100.0; // host-speed metrics (_per_s/_ns/_us) band factor
  // Per-metric overrides: full key ("metrics.keys_per_s", "counters.bytes_sent")
  // -> relative tolerance. Parsed from --tol=key=rel CLI flags.
  std::map<std::string, double> overrides;
};

struct CheckResult {
  int checked = 0;  // number of individual comparisons made
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

CheckResult check_report(const Report& r, const Report& base, const CheckPolicy& policy);

// Percentile over an unsorted sample set (nearest-rank, q in [0,1]).
double percentile(std::vector<double> values, double q);

}  // namespace hotlib::tools
