// hotlib-analyze — perf-analysis CLI over hotlib run reports.
//
//   hotlib-analyze report FILE...            paper-style tables for each report
//   hotlib-analyze diff A B                  compare two reports
//   hotlib-analyze check REPORT BASELINE     gate a report against a baseline
//   hotlib-analyze gate EXE NAME BASELINE    run a bench harness (tiny sizes,
//                                            reports into --report-dir), then
//                                            check it against BASELINE
//
// check/gate flags (all optional):
//   --tol=KEY=REL        per-metric relative tolerance override, e.g.
//                        --tol=counters.bytes_sent=0.5 ; REL=0 on a banded
//                        key tightens it, REL>0 on an exact key loosens it
//   --traffic-rel=F --traffic-abs=F   band for scheduling-dependent counters
//   --wall-factor=F --wall-abs=F      upper bound for wall-clock times
//   --virt-rel=F                      band for modelled / virtual times
//   --metric-rel=F --metric-abs=F     band for scalar metrics
//   --rate-factor=F                   within-a-factor band for _per_s/_ns/_us
//   --report-dir=DIR                  (gate) where the harness writes reports
//
// Exit status: 0 clean, 1 check violations or broken input, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze.hpp"

using namespace hotlib::tools;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hotlib-analyze report FILE...\n"
               "       hotlib-analyze diff A B\n"
               "       hotlib-analyze check REPORT BASELINE [--tol=KEY=REL ...]\n"
               "       hotlib-analyze gate EXE NAME BASELINE [--report-dir=DIR ...]\n"
               "       hotlib-analyze stamp FILE KEY=VALUE\n");
  return 2;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

// Consumes --flag=value arguments into `policy`; leaves positionals in `pos`.
bool parse_args(int argc, char** argv, CheckPolicy& policy, std::string& report_dir,
                std::vector<std::string>& pos) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.starts_with("--")) {
      pos.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "hotlib-analyze: %s needs =value\n", arg.c_str());
      return false;
    }
    const std::string flag = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    if (flag == "--tol") {
      const auto eq2 = val.find('=');
      double rel = 0.0;
      if (eq2 == std::string::npos || !parse_double(val.c_str() + eq2 + 1, rel)) {
        std::fprintf(stderr, "hotlib-analyze: --tol wants KEY=REL, got %s\n", val.c_str());
        return false;
      }
      policy.overrides[val.substr(0, eq2)] = rel;
      continue;
    }
    if (flag == "--report-dir") {
      report_dir = val;
      continue;
    }
    double v = 0.0;
    if (!parse_double(val.c_str(), v)) {
      std::fprintf(stderr, "hotlib-analyze: %s is not a number\n", val.c_str());
      return false;
    }
    if (flag == "--traffic-rel") policy.traffic_rel = v;
    else if (flag == "--traffic-abs") policy.traffic_abs = v;
    else if (flag == "--wall-factor") policy.wall_factor = v;
    else if (flag == "--wall-abs") policy.wall_abs = v;
    else if (flag == "--virt-rel") policy.virt_rel = v;
    else if (flag == "--virt-abs") policy.virt_abs = v;
    else if (flag == "--metric-rel") policy.metric_rel = v;
    else if (flag == "--metric-abs") policy.metric_abs = v;
    else if (flag == "--rate-factor") policy.rate_factor = v;
    else {
      std::fprintf(stderr, "hotlib-analyze: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int run_check(const std::string& report_path, const std::string& baseline_path,
              const CheckPolicy& policy) {
  Report report, baseline;
  std::string err;
  if (!load_report(report_path, report, err) || !load_report(baseline_path, baseline, err)) {
    std::fprintf(stderr, "hotlib-analyze: %s\n", err.c_str());
    return 1;
  }
  const CheckResult res = check_report(report, baseline, policy);
  if (res.ok()) {
    std::printf("hotlib-analyze: %s vs %s: %d checks OK\n", report_path.c_str(),
                baseline_path.c_str(), res.checked);
    return 0;
  }
  std::fprintf(stderr, "hotlib-analyze: %s vs %s: %zu of %d checks FAILED\n",
               report_path.c_str(), baseline_path.c_str(), res.violations.size(),
               res.checked);
  for (const std::string& v : res.violations)
    std::fprintf(stderr, "  %s\n", v.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  CheckPolicy policy;
  std::string report_dir = ".";
  std::vector<std::string> pos;
  if (!parse_args(argc - 2, argv + 2, policy, report_dir, pos)) return 2;

  if (mode == "report") {
    if (pos.empty()) return usage();
    int rc = 0;
    for (const std::string& path : pos) {
      Report r;
      std::string err;
      if (!load_report(path, r, err)) {
        std::fprintf(stderr, "hotlib-analyze: %s\n", err.c_str());
        rc = 1;
        continue;
      }
      std::fputs(render_report(r).c_str(), stdout);
    }
    return rc;
  }

  if (mode == "diff") {
    if (pos.size() != 2) return usage();
    Report a, b;
    std::string err;
    if (!load_report(pos[0], a, err) || !load_report(pos[1], b, err)) {
      std::fprintf(stderr, "hotlib-analyze: %s\n", err.c_str());
      return 1;
    }
    std::fputs(render_diff(a, b).c_str(), stdout);
    return 0;
  }

  if (mode == "check") {
    if (pos.size() != 2) return usage();
    return run_check(pos[0], pos[1], policy);
  }

  if (mode == "stamp") {
    if (pos.size() != 2) return usage();
    const auto eq = pos[1].find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "hotlib-analyze: stamp wants KEY=VALUE, got %s\n",
                   pos[1].c_str());
      return 2;
    }
    std::string err;
    if (!stamp_report(pos[0], pos[1].substr(0, eq), pos[1].substr(eq + 1), err)) {
      std::fprintf(stderr, "hotlib-analyze: %s\n", err.c_str());
      return 1;
    }
    return 0;
  }

  if (mode == "gate") {
    if (pos.size() != 3) return usage();
    const std::string& exe = pos[0];
    const std::string& name = pos[1];
    const std::string& baseline = pos[2];
    // Tiny sizes into a private report dir, so a parallel bench-smoke run of
    // the same harness never races the gate on BENCH_<name>.json.
    setenv("HOTLIB_BENCH_TINY", "1", 1);
    setenv("HOTLIB_REPORT_DIR", report_dir.c_str(), 1);
    const std::string report = report_dir + "/BENCH_" + name + ".json";
    std::remove(report.c_str());
    const int rc = std::system((exe + " > /dev/null").c_str());
    if (rc != 0) {
      std::fprintf(stderr, "hotlib-analyze: %s exited with status %d\n", exe.c_str(), rc);
      return 1;
    }
    return run_check(report, baseline, policy);
  }

  return usage();
}
