#!/bin/sh
# update_baselines.sh — regenerate the committed perf-gate baselines.
#
#   tools/update_baselines.sh [build-dir] [baselines-dir]
#
# Runs every bench harness at tiny sizes (HOTLIB_BENCH_TINY=1) and copies the
# BENCH_<name>.json reports into bench/baselines/. Run this after an
# *intentional* behaviour change (new counter, different traversal, changed
# problem sizes), review the diff with
#   build/tools/hotlib-analyze diff bench/baselines/BENCH_x.json new/BENCH_x.json
# and commit the result. The perf-gate ctest slice holds every future run to
# these files.
set -eu

build=${1:-build}
dest=${2:-$(dirname "$0")/../bench/baselines}

if [ ! -d "$build/bench" ]; then
  echo "update_baselines: $build/bench not found (configure + build first)" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

names="nsquared treecode loki vortex sc96 npb accuracy comm price kernels abm faults keys scaling"
for name in $names; do
  exe="$build/bench/bench_$name"
  if [ ! -x "$exe" ]; then
    echo "update_baselines: missing $exe" >&2
    exit 2
  fi
  echo "update_baselines: running bench_$name (tiny)"
  # Baselines are single-threaded by contract: the perf-gate tests pin
  # HOTLIB_THREADS=1 (bench/CMakeLists.txt) so gate runs match. Counters are
  # thread-count-invariant anyway; this keeps the wall-clock bound honest.
  HOTLIB_BENCH_TINY=1 HOTLIB_THREADS=1 HOTLIB_REPORT_DIR="$tmp" "$exe" > /dev/null
done

# Stamp the kernel path the benches ran with (scalar or avx2, after any
# HOTLIB_SIMD override) into each report, so a baseline records which
# dispatch produced it. The stamp is provenance only — check ignores it.
analyze="$build/tools/hotlib-analyze"
if [ ! -x "$analyze" ]; then
  echo "update_baselines: missing $analyze" >&2
  exit 2
fi
kpath=$("$build/bench/bench_kernels" --print-kernel-path)
for name in $names; do
  "$analyze" stamp "$tmp/BENCH_$name.json" "kernel_path=$kpath"
  "$analyze" stamp "$tmp/BENCH_$name.json" "threads=1"
done

mkdir -p "$dest"
for name in $names; do
  cp "$tmp/BENCH_$name.json" "$dest/BENCH_$name.json"
done
echo "update_baselines: wrote $(echo "$names" | wc -w) baselines to $dest (kernel_path=$kpath)"
